"""Microburst detection and "which flow built this queue" attribution.

PrintQueue's diagnosis question, answered from the windowed monitors:
given a run's telemetry, find the windows where a queue actually built
(microbursts), name the port that hurt the most, and rank the flows
whose bytes were resident while it hurt.  Everything here is read-side
arithmetic over :class:`~repro.telemetry.windows.Window` records — no
simulator state, so it can run mid-simulation or post-hoc.

Attribution ranks flows by their **occupancy-integral contribution**
(byte·seconds of queue residency) within a window: the flow whose bytes
sat in the queue longest is the flow that built it.  That is exactly the
quantity the monitors decompose per flow at enqueue time, so attribution
is a sort, not a reconstruction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.telemetry.windows import PortMonitor, TelemetryHub, Window

#: A window qualifies as a microburst when its max observed depth
#: reaches this many packets...
DEFAULT_MIN_DEPTH = 8

#: ...or its occupancy integral exceeds this multiple of the mean
#: occupancy across the port's non-empty windows.
DEFAULT_OCCUPANCY_FACTOR = 3.0


@dataclass(frozen=True)
class Microburst:
    """One detected burst: a (port, window) pair and why it qualified."""

    port: tuple[str, str]
    window: Window
    peak_depth: int
    occupancy: float

    @property
    def start(self) -> float:
        return self.window.start

    @property
    def end(self) -> float:
        return self.window.end


def rank_flows(window: Window) -> list[tuple[str, float]]:
    """Flows in ``window`` by occupancy contribution, heaviest first.

    Deterministic: ties break on the flow label, so equal contributions
    rank identically on every machine.
    """
    return sorted(
        window.occupancy_by_flow.items(), key=lambda item: (-item[1], item[0])
    )


def top_flow(window: Window) -> "str | None":
    """The single heaviest flow in ``window`` (``None`` when empty)."""
    ranked = rank_flows(window)
    return ranked[0][0] if ranked else None


def detect_microbursts(
    hub: TelemetryHub,
    min_depth: int = DEFAULT_MIN_DEPTH,
    occupancy_factor: float = DEFAULT_OCCUPANCY_FACTOR,
) -> list[Microburst]:
    """Windows where a queue genuinely built, across every monitor.

    A window qualifies when its max depth reaches ``min_depth`` packets,
    or its occupancy integral exceeds ``occupancy_factor`` times the
    mean over that port's non-empty windows (so a port with steady
    moderate queueing does not flag every window).  Results are ordered
    by (port, window index) — deterministic for scoring.
    """
    bursts: list[Microburst] = []
    for key in hub.ports():
        monitor = hub.monitors[key]
        windows = monitor.windows()
        busy = [w.occupancy for w in windows if w.occupancy > 0.0]
        mean_occ = sum(busy) / len(busy) if busy else 0.0
        for win in windows:
            if win.depth_max >= min_depth or (
                mean_occ > 0.0 and win.occupancy > occupancy_factor * mean_occ
            ):
                bursts.append(
                    Microburst(
                        port=key,
                        window=win,
                        peak_depth=win.depth_max,
                        occupancy=win.occupancy,
                    )
                )
    return bursts


@dataclass(frozen=True)
class Diagnosis:
    """The telemetry layer's answer to "where did the queue build, and who
    built it?".

    ``ports`` ranks monitored ports by total occupancy integral;
    ``flows`` ranks flows by their contribution at the culprit port's
    peak window (the question a diagnosis asks is *who built this
    queue*, not who sent the most bytes overall).  ``bursts`` lists the
    detected microburst windows for context.
    """

    ports: tuple[tuple[tuple[str, str], float], ...]
    flows: tuple[tuple[str, float], ...]
    bursts: tuple[Microburst, ...]

    @property
    def culprit_port(self) -> "tuple[str, str] | None":
        return self.ports[0][0] if self.ports else None

    @property
    def culprit_flow(self) -> "str | None":
        return self.flows[0][0] if self.flows else None


def diagnose(
    hub: TelemetryHub,
    min_depth: int = DEFAULT_MIN_DEPTH,
    occupancy_factor: float = DEFAULT_OCCUPANCY_FACTOR,
) -> Diagnosis:
    """Localize the hottest port and attribute its peak window's flows."""
    ranked_ports = sorted(
        ((key, hub.monitors[key].occupancy) for key in hub.ports()),
        key=lambda item: (-item[1], item[0]),
    )
    flows: tuple[tuple[str, float], ...] = ()
    if ranked_ports and ranked_ports[0][1] > 0.0:
        monitor: PortMonitor = hub.monitors[ranked_ports[0][0]]
        peak = monitor.peak_window
        if peak is not None:
            flows = tuple(rank_flows(peak))
    bursts = tuple(
        detect_microbursts(
            hub, min_depth=min_depth, occupancy_factor=occupancy_factor
        )
    )
    return Diagnosis(ports=tuple(ranked_ports), flows=flows, bursts=bursts)
