"""In-fabric telemetry: windowed queue monitors, INT stamping, diagnosis.

The simulator can see what real data planes struggle to measure — this
package makes that a feature (ROADMAP item 3, PrintQueue-style).  It has
three layers, all strictly observational (a telemetry-on run is
bit-identical in packet timing to a telemetry-off run):

* :mod:`~repro.telemetry.windows` — per-port time-windowed queue
  monitors: depth samples, wait times, drop/enqueue counters, and
  per-flow occupancy integrals per fixed-width window;
* INT-style per-packet stamping — queue depth and wait time at each
  hop, carried on the packet and folded into
  :class:`repro.sim.stats.LatencyRecorder` flow records on delivery
  (enabled via :class:`TelemetryConfig.stamping`);
* :mod:`~repro.telemetry.attribution` — microburst detection and
  "which flow built this queue" attribution over the monitor windows.

Arm it per network (``Network(topo, router, telemetry=True)`` or a
:class:`TelemetryConfig`) or globally via ``REPRO_TELEMETRY=1``.  While
monitors are armed the cohort batching engine stands down (monitors
observe per-packet state the vectorized commit elides); the compiled
fast path keeps running, with hooks in both forwarding loops.
"""

from repro.telemetry.attribution import (
    DEFAULT_MIN_DEPTH,
    DEFAULT_OCCUPANCY_FACTOR,
    Diagnosis,
    Microburst,
    detect_microbursts,
    diagnose,
    rank_flows,
    top_flow,
)
from repro.telemetry.windows import (
    DEFAULT_WINDOW,
    TELEMETRY_ENV,
    PortMonitor,
    TelemetryConfig,
    TelemetryError,
    TelemetryHub,
    Window,
    resolve_config,
    telemetry_env_enabled,
)

__all__ = [
    "DEFAULT_MIN_DEPTH",
    "DEFAULT_OCCUPANCY_FACTOR",
    "DEFAULT_WINDOW",
    "Diagnosis",
    "Microburst",
    "PortMonitor",
    "TELEMETRY_ENV",
    "TelemetryConfig",
    "TelemetryError",
    "TelemetryHub",
    "Window",
    "detect_microbursts",
    "diagnose",
    "rank_flows",
    "resolve_config",
    "telemetry_env_enabled",
    "top_flow",
]
