"""Time-windowed per-port queue monitors — the PrintQueue data structure.

A real data plane struggles to answer "how deep was this queue at
microsecond t, and which flows made it deep?"; the simulator knows both
exactly, and this module makes that knowledge a first-class surface.

Every output port the simulator forwards through gets (on first use) a
:class:`PortMonitor` that tiles simulated time into fixed-width,
half-open windows ``[k·w, (k+1)·w)``.  Per window it accumulates

* **enqueues / drops** — packets that joined the port's queue, packets
  the port turned away (buffer tail-drops and fault severing alike);
* **depth samples** — the queue depth each arriving packet observed
  (packets already accepted whose tails had not left the wire yet),
  kept as sum and max so mean/max depth per window are O(1);
* **wait time** — each packet's queueing delay at this port (transmit
  start minus arrival at the port), kept as sum and max;
* **occupancy integral** — byte·seconds of queue residency, split
  *per flow*: a packet resident ``[arrival, tail_out)`` contributes
  ``size × overlap`` to every window its residency crosses.  The
  occupancy split is what "which flow built this queue" attribution
  ranks on (:mod:`repro.telemetry.attribution`).

Windows are derived purely from simulated timestamps, so monitors never
schedule engine events and never perturb the simulation: a telemetry-on
run produces bit-identical packet timings to a telemetry-off run.
Materialized windows (:meth:`PortMonitor.windows`) are contiguous —
every index between the first and last observed window is present, empty
windows included — so consumers can rely on "no overlaps, no skipped
time" structurally.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Iterator

from repro.units import MICROSECONDS

#: Environment variable arming telemetry for networks built with
#: ``telemetry=None`` (mirrors ``REPRO_FASTPATH_DISABLE`` /
#: ``REPRO_BATCH_DISABLE``: unset, empty, or ``"0"`` leaves it off).
TELEMETRY_ENV = "REPRO_TELEMETRY"

#: Default monitoring window width (PrintQueue uses microsecond-scale
#: windows; 50 µs keeps per-run window counts modest at sim timescales).
DEFAULT_WINDOW = 50 * MICROSECONDS

#: Flow label for packets injected without a ``group``, shared with
#: :mod:`repro.sim.stats`.
UNGROUPED = "<ungrouped>"


class TelemetryError(ValueError):
    """Raised for invalid telemetry configurations or queries."""


@dataclass(frozen=True)
class TelemetryConfig:
    """Knobs for one network's telemetry layer.

    ``window`` is the monitor window width in seconds.  ``stamping``
    additionally carries an INT-style record on every packet (queue
    depth seen and wait time paid at each hop) and folds it into the
    network's flow records on delivery — costs one list append per hop
    per packet on top of the monitors.
    """

    window: float = DEFAULT_WINDOW
    stamping: bool = True

    def __post_init__(self) -> None:
        if self.window <= 0:
            raise TelemetryError(
                f"window width must be positive, got {self.window}"
            )


def telemetry_env_enabled(environ: "dict[str, str] | None" = None) -> bool:
    """Whether :data:`TELEMETRY_ENV` requests telemetry by default."""
    # Imported lazily: repro.sim.network imports this module at the top
    # level, so a module-level import of repro.sim here would be a cycle.
    from repro.sim.knobs import env_truthy

    return env_truthy(TELEMETRY_ENV, environ)


def resolve_config(
    telemetry: "TelemetryConfig | bool | None",
) -> "TelemetryConfig | None":
    """Resolve the ``Network(telemetry=...)`` argument to a config.

    ``None`` follows :data:`TELEMETRY_ENV` via the shared knob helper
    (:func:`repro.sim.knobs.resolve_flag`, in its env-*enables* sense —
    telemetry is the one knob that defaults off); ``True`` arms the
    defaults; ``False`` forces telemetry off regardless of the
    environment; a :class:`TelemetryConfig` is used as given.
    """
    if isinstance(telemetry, TelemetryConfig):
        return telemetry
    from repro.sim.knobs import resolve_flag

    armed = resolve_flag(telemetry, TELEMETRY_ENV, env_disables=False)
    return TelemetryConfig() if armed else None


@dataclass
class Window:
    """One port's accumulated state over ``[start, end)``."""

    index: int
    start: float
    end: float
    enqueues: int = 0
    drops: int = 0
    depth_sum: int = 0
    depth_max: int = 0
    wait_sum: float = 0.0
    wait_max: float = 0.0
    #: Occupancy integral (byte·seconds of queue residency) per flow.
    occupancy_by_flow: dict[str, float] = field(default_factory=dict)

    @property
    def occupancy(self) -> float:
        """Total occupancy integral over every flow, byte·seconds."""
        return math.fsum(self.occupancy_by_flow.values())

    @property
    def mean_depth(self) -> float:
        """Mean queue depth over this window's depth samples."""
        return self.depth_sum / self.enqueues if self.enqueues else 0.0

    def as_dict(self) -> dict:
        """JSON-friendly rendering (flows sorted for stable output)."""
        return {
            "index": self.index,
            "start": self.start,
            "end": self.end,
            "enqueues": self.enqueues,
            "drops": self.drops,
            "depth_max": self.depth_max,
            "mean_depth": self.mean_depth,
            "wait_sum": self.wait_sum,
            "wait_max": self.wait_max,
            "occupancy": self.occupancy,
            "occupancy_by_flow": {
                flow: self.occupancy_by_flow[flow]
                for flow in sorted(self.occupancy_by_flow)
            },
        }


class PortMonitor:
    """Windowed queue telemetry for one directed link's output port."""

    __slots__ = ("key", "width", "_windows", "_tails", "enqueues", "drops")

    def __init__(self, key: tuple[str, str], width: float) -> None:
        self.key = key
        self.width = width
        self._windows: dict[int, Window] = {}
        #: Departure (tail_out) times of packets still resident, FIFO —
        #: the port's busy_until chain is nondecreasing, so the deque
        #: stays sorted and the depth probe is an amortized O(1) drain.
        self._tails: deque[float] = deque()
        self.enqueues = 0
        self.drops = 0

    def _window(self, index: int) -> Window:
        win = self._windows.get(index)
        if win is None:
            width = self.width
            win = self._windows[index] = Window(
                index=index, start=index * width, end=(index + 1) * width
            )
        return win

    def record_enqueue(
        self,
        flow: "str | None",
        size_bytes: float,
        arrival: float,
        start: float,
        tail_out: float,
    ) -> tuple[int, float]:
        """One packet joined this port's queue; returns ``(depth, wait)``.

        ``arrival`` is when the packet reached the port (its earliest
        possible transmit start), ``start`` when the port actually began
        clocking it out, ``tail_out`` when its last bit left.  The
        returned depth (packets already queued ahead of it, still
        resident at ``arrival``) and wait (``start − arrival``) are what
        INT stamping carries on the packet.
        """
        tails = self._tails
        while tails and tails[0] <= arrival:
            tails.popleft()
        depth = len(tails)
        tails.append(tail_out)
        wait = start - arrival
        self.enqueues += 1

        width = self.width
        index = int(math.floor(arrival / width))
        win = self._windows.get(index)
        if win is None:
            win = self._window(index)
        win.enqueues += 1
        win.depth_sum += depth
        if depth > win.depth_max:
            win.depth_max = depth
        win.wait_sum += wait
        if wait > win.wait_max:
            win.wait_max = wait

        label = flow if flow is not None else UNGROUPED
        boundary = (index + 1) * width
        if tail_out <= boundary:
            # The overwhelmingly common case (sub-µs residencies inside
            # 50 µs windows): the whole [arrival, tail_out) slice lands
            # in the window already in hand — one multiply and one dict
            # update, no boundary walk.  Bit-identical to the general
            # loop below collapsing to its single iteration.
            contribution = size_bytes * (tail_out - arrival)
            if contribution > 0.0:
                occ = win.occupancy_by_flow
                occ[label] = occ.get(label, 0.0) + contribution
            return depth, wait

        # Residency crosses window boundaries: spread the occupancy
        # integral across every window [arrival, tail_out) touches.
        # Each slice is a non-negative duration times a positive size,
        # so per-flow integrals can never go negative.
        t = arrival
        while t < tail_out:
            boundary = (index + 1) * width
            slice_end = tail_out if tail_out < boundary else boundary
            win = self._window(index)
            contribution = size_bytes * (slice_end - t)
            if contribution > 0.0:
                win.occupancy_by_flow[label] = (
                    win.occupancy_by_flow.get(label, 0.0) + contribution
                )
            t = boundary
            index += 1
        return depth, wait

    def record_drop(self, flow: "str | None", time: float) -> None:
        """One packet this port turned away (buffer full or link dead)."""
        self.drops += 1
        self._window(int(math.floor(time / self.width))).drops += 1

    def windows(self) -> list[Window]:
        """Observed windows, contiguous from first to last index.

        Indices between the first and last observed window that saw no
        traffic are materialized empty, so the returned list tiles the
        monitored span with no gaps and no overlaps.
        """
        if not self._windows:
            return []
        lo = min(self._windows)
        hi = max(self._windows)
        return [self._window(i) for i in range(lo, hi + 1)]

    @property
    def occupancy(self) -> float:
        """Total occupancy integral across all windows, byte·seconds."""
        return math.fsum(w.occupancy for w in self._windows.values())

    @property
    def peak_window(self) -> "Window | None":
        """The window with the largest occupancy integral (ties: earliest)."""
        best: Window | None = None
        for index in sorted(self._windows):
            win = self._windows[index]
            if best is None or win.occupancy > best.occupancy:
                best = win
        return best


class TelemetryHub:
    """All of one network's port monitors, plus run-level counters.

    The network owns exactly one hub when telemetry is armed
    (``Network.telemetry``); forwarding hooks call :meth:`on_enqueue` /
    :meth:`on_drop` and everything else is read-side.  Monitors are
    created lazily, so idle ports cost nothing.
    """

    def __init__(self, config: TelemetryConfig) -> None:
        self.config = config
        self.monitors: dict[tuple[str, str], PortMonitor] = {}
        self.unroutable = 0

    @property
    def stamping(self) -> bool:
        return self.config.stamping

    def monitor(self, key: tuple[str, str]) -> PortMonitor:
        """The (lazily created) monitor for directed link ``key``."""
        mon = self.monitors.get(key)
        if mon is None:
            mon = self.monitors[key] = PortMonitor(key, self.config.window)
        return mon

    def on_enqueue(
        self,
        key: tuple[str, str],
        flow: "str | None",
        size_bytes: float,
        arrival: float,
        start: float,
        tail_out: float,
    ) -> tuple[int, float]:
        return self.monitor(key).record_enqueue(
            flow, size_bytes, arrival, start, tail_out
        )

    def on_drop(self, key: tuple[str, str], flow: "str | None", time: float) -> None:
        self.monitor(key).record_drop(flow, time)

    def on_unroutable(self) -> None:
        """Offered load the router had no path for (no port to charge)."""
        self.unroutable += 1

    # -- read side ----------------------------------------------------------------

    def ports(self) -> list[tuple[str, str]]:
        """Monitored directed links, sorted."""
        return sorted(self.monitors)

    def iter_windows(self) -> Iterator[tuple[tuple[str, str], Window]]:
        """Every (port key, window) pair, ports sorted, windows in order."""
        for key in self.ports():
            for win in self.monitors[key].windows():
                yield key, win

    def total_enqueues(self) -> int:
        return sum(m.enqueues for m in self.monitors.values())

    def total_drops(self) -> int:
        return sum(m.drops for m in self.monitors.values())

    def window_dump(self) -> dict:
        """JSON-friendly dump of every monitor's windows.

        The shape CI uploads as the telemetry-smoke artifact: one entry
        per monitored port, windows contiguous and sorted.
        """
        return {
            "window_width": self.config.window,
            "stamping": self.config.stamping,
            "unroutable": self.unroutable,
            "ports": {
                f"{u}->{v}": {
                    "enqueues": self.monitors[(u, v)].enqueues,
                    "drops": self.monitors[(u, v)].drops,
                    "occupancy": self.monitors[(u, v)].occupancy,
                    "windows": [
                        w.as_dict() for w in self.monitors[(u, v)].windows()
                    ],
                }
                for (u, v) in self.ports()
            },
        }
