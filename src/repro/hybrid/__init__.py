"""Hybrid packet/flow co-simulation: packet fidelity where it matters.

Foreground traffic (the incast, the partition-aggregate query, the
latency distribution under study) runs on the packet simulator;
background traffic runs at flow level and reaches the packet side only
as time-varying residual capacity per link.  See
:class:`~repro.hybrid.engine.HybridNetwork` for the contract and
``REPRO_HYBRID_DISABLE`` / ``hybrid=False`` for the pure-packet oracle.
"""

from repro.hybrid.background import (
    BackgroundFlow,
    BackgroundSchedule,
    HybridError,
    random_background_schedule,
)
from repro.hybrid.engine import (
    BACKGROUND_GROUP,
    DEFAULT_MIN_RESIDUAL_FRACTION,
    HybridNetwork,
)
from repro.sim.knobs import HYBRID_ENV

__all__ = [
    "BACKGROUND_GROUP",
    "BackgroundFlow",
    "BackgroundSchedule",
    "DEFAULT_MIN_RESIDUAL_FRACTION",
    "HYBRID_ENV",
    "HybridError",
    "HybridNetwork",
    "random_background_schedule",
]
