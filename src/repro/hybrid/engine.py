"""The hybrid packet/flow co-simulation engine.

:class:`HybridNetwork` runs the packet simulator for *foreground*
traffic only, and carries *background* traffic at flow level as
time-varying residual capacity:

* the engine tiles sim time into **epochs** — maximal intervals over
  which the active background-flow set and the fault state are both
  constant.  Epoch boundaries are the background schedule's start/stop
  times plus any ``fail_link`` / ``repair_link`` call;
* at each boundary the flow-level allocator
  (:class:`repro.flowsim.maxmin.ResidualSolver`) re-solves max-min fair
  rates for the active background flows — incrementally when only
  capacities changed — and hands back per-link **residuals**
  (capacity − background load);
* the packet side consumes residuals by rescaling each directed link's
  serialization factor (``ser = 8 / residual``): foreground packets
  serialize as if the link were narrower by exactly the bandwidth the
  background occupies.  Compiled :class:`~repro.sim.fastpath.HopPlan`
  and stacked-plan caches are cleared whenever any link's residual
  changes, the same invalidation discipline ``fail_link`` uses, so the
  fast path and the batched engine stay hot *within* an epoch and
  recompile lazily after one;
* the epoch-boundary callback sits in the event queue, so the batched
  engine's lookahead (``engine.peek_time``) structurally prevents any
  vectorized cohort commit from crossing a boundary.

Approximations (see API.md for the full contract): background flows are
fluid (no background packets, no background queueing jitter), foreground
packets already in flight keep the serialization they started with
(epoch changes apply to packets injected afterwards), and background
flows do not re-path on repair (only on failure of a link they cross).

With the hybrid knob disabled (``REPRO_HYBRID_DISABLE=1``, or
``hybrid=False``) the same class becomes the **pure-packet oracle**:
every background flow materializes as a Poisson packet source at its
demand bandwidth and the fabric simulates all packets.  The oracle is
the accuracy baseline ``bench_hybrid_scale`` gates against.
"""

from __future__ import annotations

import time as _time
from typing import Sequence

import networkx as nx

from repro import obs as _obs
from repro.flowsim.maxmin import Flow, ResidualSolver, capacities_of
from repro.hybrid.background import BackgroundFlow, BackgroundSchedule, HybridError
from repro.routing.base import Router, RoutingError
from repro.sim.network import Network
from repro.sim.sources import PoissonSource
from repro.topology.base import Topology
from repro.units import BITS_PER_BYTE

#: Floor on a link's effective (residual) capacity, as a fraction of its
#: physical capacity.  Max-min can drive a residual to exactly zero,
#: which would stall foreground serialization forever; real transports
#: never let background traffic fully starve a link.
DEFAULT_MIN_RESIDUAL_FRACTION = 0.01

#: Flow-stats group under which oracle-mode background packets report.
BACKGROUND_GROUP = "background"

#: "No route" surfaces as RoutingError from the router's own checks or
#: as a networkx error when the underlying graph search finds the pair
#: partitioned — background admission treats both as "park the flow".
_NO_ROUTE = (RoutingError, nx.NetworkXNoPath, nx.NodeNotFound)


class HybridNetwork(Network):
    """A :class:`~repro.sim.network.Network` with flow-level background.

    ``background`` is the schedule of flow-level demands; foreground
    traffic is injected exactly as on a plain network (``send``,
    ``send_cohort``, traffic sources).  The ``hybrid`` knob (resolved by
    the base class from the argument and ``REPRO_HYBRID_DISABLE``)
    selects the mode:

    * **hybrid** (default): background rides the residual-capacity
      handoff described in the module docstring;
    * **oracle** (knob off): background materializes as per-flow
      Poisson packet sources — every packet simulated, group
      ``"background"`` so foreground stats stay separable.

    ``min_residual_fraction`` floors each link's effective capacity;
    ``record_timeline`` keeps the per-epoch residual timeline in
    :attr:`residual_timeline` (disable for the largest runs).
    """

    def __init__(
        self,
        topo: Topology,
        router: Router,
        background: "BackgroundSchedule | Sequence[BackgroundFlow] | None" = None,
        *,
        min_residual_fraction: float = DEFAULT_MIN_RESIDUAL_FRACTION,
        record_timeline: bool = True,
        background_packet_bytes: float = 1500.0,
        **kwargs: object,
    ) -> None:
        super().__init__(topo, router, **kwargs)  # type: ignore[arg-type]
        if not 0.0 < min_residual_fraction < 1.0:
            raise HybridError(
                "min_residual_fraction must be in (0, 1),"
                f" got {min_residual_fraction}"
            )
        if background is None:
            background = BackgroundSchedule(())
        elif not isinstance(background, BackgroundSchedule):
            background = BackgroundSchedule(background)
        self.background = background
        self.min_residual_fraction = min_residual_fraction
        self.record_timeline = record_timeline
        self.background_packet_bytes = background_packet_bytes
        #: Epoch boundaries processed so far (fault epochs included).
        self.epochs = 0
        #: Residual re-applications that actually changed a link.
        self.residual_epoch = 0
        #: Background flows skipped because no route existed when they
        #: started (or when a failure forced a re-path).
        self.background_unroutable = 0
        #: ``[(time, {directed link: new effective capacity})]`` — one
        #: entry per epoch that changed at least one link.
        self.residual_timeline: list[tuple[float, dict[tuple[str, str], float]]] = []
        #: Oracle-mode packet sources (empty in hybrid mode).
        self.background_sources: list[PoissonSource] = []

        self._solver: ResidualSolver | None = None
        # flow_id → (BackgroundFlow, fluid Flow with its current paths).
        self._active_bg: dict[int, tuple[BackgroundFlow, Flow]] = {}
        # Started flows that currently have no route (re-admitted on repair).
        self._parked_bg: dict[int, BackgroundFlow] = {}

        if self.hybrid_enabled:
            self._solver = ResidualSolver(capacities_of(topo))
            self._schedule_epoch_boundaries()
        else:
            self._materialize_oracle_sources()

    # -- epoch machinery (hybrid mode) ---------------------------------------------

    def _schedule_epoch_boundaries(self) -> None:
        """Queue one boundary callback per distinct start/stop time."""
        events: dict[float, tuple[list, list]] = {}
        for flow in self.background:
            events.setdefault(flow.start, ([], []))[0].append(flow)
            events.setdefault(flow.stop, ([], []))[1].append(flow)
        self.engine.call_at_many(
            (time, self._epoch_boundary, (starts, stops))
            for time, (starts, stops) in sorted(events.items())
        )

    def _epoch_boundary(
        self, starts: list[BackgroundFlow], stops: list[BackgroundFlow]
    ) -> None:
        solver = self._solver
        for flow in stops:
            if flow.flow_id in self._active_bg:
                solver.remove_flow(flow.flow_id)
                del self._active_bg[flow.flow_id]
            self._parked_bg.pop(flow.flow_id, None)
        for flow in starts:
            self._admit(flow)
        self._apply_residuals()

    def _admit(self, flow: BackgroundFlow) -> None:
        """Add one background flow to the solver over its current routes."""
        try:
            paths = tuple(self.router.weighted_paths(flow.src, flow.dst))
        except _NO_ROUTE:
            paths = ()
        if not paths:
            self.background_unroutable += 1
            self._parked_bg[flow.flow_id] = flow
            return
        fluid = Flow(flow.flow_id, paths, flow.demand_bps)
        self._solver.add_flow(fluid)
        self._active_bg[flow.flow_id] = (flow, fluid)

    def _apply_residuals(self) -> None:
        """Re-solve and push residuals into the packet side's link records.

        A link's effective capacity is ``max(residual, floor)``; only
        links whose effective capacity moved are rewritten, and the
        compiled-plan caches are cleared only when at least one moved —
        an epoch that resolves to the same allocation costs nothing on
        the packet side.

        Armed observability records one ``hybrid.epoch`` span plus the
        re-solve count, duration, and links-changed tallies per call.
        """
        o = self.obs
        start = _time.perf_counter() if o is not None else 0.0
        solution = self._solver.solve()
        residual = solution.residual
        floor_frac = self.min_residual_fraction
        link_rec = self._link_rec
        changed: dict[tuple[str, str], float] = {}
        for key, rec in link_rec.items():
            base = self._capacity[key]
            eff = residual.get(key, base)
            floor = floor_frac * base
            if eff < floor:
                eff = floor
            if eff != rec[2]:
                link_rec[key] = (BITS_PER_BYTE / eff, rec[1], eff)
                changed[key] = eff
        self.epochs += 1
        if changed:
            # Same invalidation fail_link performs: stale per-path plans
            # (and their per-size product caches) must not survive a
            # serialization change.  Packets already in flight keep the
            # plan they started with — the documented approximation.
            self._plans.clear()
            self._stacked.clear()
            self.residual_epoch += 1
            if self.record_timeline:
                self.residual_timeline.append((self.engine.now, changed))
        if o is not None:
            duration = _time.perf_counter() - start
            o.incr("hybrid.resolves")
            o.observe("hybrid.epoch_seconds", duration)
            if changed:
                o.incr("hybrid.residual_epochs")
                o.incr("hybrid.links_changed", len(changed))
            tracer = _obs.tracer()
            if tracer is not None:
                tracer.add(
                    "hybrid.epoch", start, duration,
                    sim_time=self.engine.now, links_changed=len(changed),
                )

    # -- faults mutate the epoch too -----------------------------------------------

    def fail_link(self, u: str, v: str) -> int:
        already_dead = (u, v) in self._dead_links
        dropped = super().fail_link(u, v)
        if self._solver is not None and not already_dead:
            self._solver.fail_link(u, v)
            # Background flows crossing the cut re-path like foreground
            # packets detour; flows not crossing it keep their paths, so
            # the solver's incidence survives and the re-solve is the
            # cheap capacity-only incremental case.
            dead = {(u, v), (v, u)}
            for fid in [
                fid
                for fid, (_, fluid) in self._active_bg.items()
                if _crosses(fluid, dead)
            ]:
                bg, _ = self._active_bg.pop(fid)
                self._solver.remove_flow(fid)
                self._admit(bg)
            self._apply_residuals()
        return dropped

    def repair_link(self, u: str, v: str) -> bool:
        repaired = super().repair_link(u, v)
        if self._solver is not None and repaired:
            self._solver.repair_link(u, v)
            # Parked flows (no route at start or after a cut) get another
            # chance; flows with routes keep them — no re-path on repair.
            now = self.engine.now
            for fid in sorted(self._parked_bg):
                flow = self._parked_bg[fid]
                if flow.stop > now:
                    try:
                        paths = tuple(
                            self.router.weighted_paths(flow.src, flow.dst)
                        )
                    except _NO_ROUTE:
                        continue
                    if paths:
                        del self._parked_bg[fid]
                        fluid = Flow(fid, paths, flow.demand_bps)
                        self._solver.add_flow(fluid)
                        self._active_bg[fid] = (flow, fluid)
            self._apply_residuals()
        return repaired

    # -- oracle mode -----------------------------------------------------------------

    def _materialize_oracle_sources(self) -> None:
        """Background flows as packet sources: the pure-packet baseline."""
        for flow in self.background:
            source = PoissonSource.at_bandwidth(
                self,
                flow.src,
                flow.dst,
                flow.demand_bps,
                size_bytes=self.background_packet_bytes,
                group=BACKGROUND_GROUP,
                flow_id=flow.flow_id,
                seed=flow.flow_id,
                stop_at=flow.stop,
            )
            source.start(delay=flow.start)
            self.background_sources.append(source)

    # -- introspection ---------------------------------------------------------------

    @property
    def active_background(self) -> list[int]:
        """Ids of background flows currently in the solver, sorted."""
        return sorted(self._active_bg)

    def background_rates(self) -> dict[int, float]:
        """Current max-min rate of each active background flow (bps)."""
        if self._solver is None:
            raise HybridError("background rates exist only in hybrid mode")
        solution = self._solver.solve()
        return {fid: solution.rates[fid] for fid in self._active_bg}

    def effective_capacity(self, u: str, v: str) -> float:
        """The capacity foreground packets currently see on ``u → v``."""
        return self._link_rec[(u, v)][2]


def _crosses(fluid: Flow, dead: set[tuple[str, str]]) -> bool:
    return any(
        (wp.path[i], wp.path[i + 1]) in dead
        for wp in fluid.paths
        for i in range(len(wp.path) - 1)
    )
