"""Background traffic for the hybrid packet/flow engine.

Background flows are the traffic whose *aggregate* effect matters but
whose individual packets do not: long-lived shuffles, backup streams,
the steady hum a production fabric carries underneath the latency-
sensitive foreground.  The hybrid engine never simulates their packets —
each flow is a demand that occupies fabric capacity between its start
and stop times, solved at flow level
(:class:`repro.flowsim.maxmin.ResidualSolver`) every time the active
set changes.

A :class:`BackgroundSchedule` is just the immutable list of those
flows plus the derived epoch structure (the sorted start/stop times at
which the flow-level solution can change).  The same schedule drives
both hybrid mode (flows → demands) and the pure-packet oracle mode
(flows → Poisson packet sources at the same bandwidth), which is what
makes the accuracy gate an apples-to-apples comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np


class HybridError(ValueError):
    """Raised for malformed background flows or hybrid configurations."""


@dataclass(frozen=True)
class BackgroundFlow:
    """One flow-level background demand: ``demand_bps`` from ``src`` to
    ``dst`` over ``[start, stop)`` seconds of sim time."""

    flow_id: int
    src: str
    dst: str
    demand_bps: float
    start: float
    stop: float

    def __post_init__(self) -> None:
        if self.demand_bps <= 0:
            raise HybridError(
                f"background flow {self.flow_id} demand must be positive,"
                f" got {self.demand_bps}"
            )
        if self.start < 0:
            raise HybridError(
                f"background flow {self.flow_id} starts at {self.start} < 0"
            )
        if self.stop <= self.start:
            raise HybridError(
                f"background flow {self.flow_id} stops at {self.stop},"
                f" not after its start {self.start}"
            )
        if self.src == self.dst:
            raise HybridError(
                f"background flow {self.flow_id} sends {self.src!r} to itself"
            )

    @property
    def duration(self) -> float:
        return self.stop - self.start


class BackgroundSchedule:
    """An immutable set of background flows with unique ids."""

    def __init__(self, flows: Sequence[BackgroundFlow] = ()) -> None:
        self.flows: tuple[BackgroundFlow, ...] = tuple(flows)
        seen: set[int] = set()
        for flow in self.flows:
            if flow.flow_id in seen:
                raise HybridError(f"duplicate background flow id {flow.flow_id}")
            seen.add(flow.flow_id)

    def __len__(self) -> int:
        return len(self.flows)

    def __iter__(self) -> Iterator[BackgroundFlow]:
        return iter(self.flows)

    def boundaries(self) -> list[float]:
        """Sorted, de-duplicated epoch boundary times (starts and stops)."""
        times = {f.start for f in self.flows} | {f.stop for f in self.flows}
        return sorted(times)

    def active_at(self, time: float) -> list[BackgroundFlow]:
        """Flows whose ``[start, stop)`` interval contains ``time``."""
        return [f for f in self.flows if f.start <= time < f.stop]

    def peak_concurrency(self) -> int:
        """Maximum number of simultaneously active flows.

        A sorted +1/−1 event sweep; stops sort before starts at the same
        instant, matching the half-open ``[start, stop)`` intervals.
        """
        events = sorted(
            [(f.start, 1) for f in self.flows]
            + [(f.stop, -1) for f in self.flows]
        )
        peak = current = 0
        for _, delta in events:
            current += delta
            peak = max(peak, current)
        return peak


def random_background_schedule(
    servers: Sequence[str],
    n_flows: int,
    *,
    horizon: float,
    mean_duration: float,
    demand_bps: float,
    seed: int = 0,
    flow_id_base: int = 1_000_000,
) -> BackgroundSchedule:
    """A reproducible random schedule over the given servers.

    Starts are uniform over ``[0, horizon)``, durations exponential with
    the given mean (clipped below so every flow lives at least one
    microsecond), endpoints uniform distinct server pairs.  Flow ids
    start at ``flow_id_base`` (high, so they never collide with
    foreground flow ids).  Everything is drawn from one seeded
    generator, so the same arguments always yield the same schedule.
    """
    if n_flows < 0:
        raise HybridError(f"flow count must be non-negative, got {n_flows}")
    if len(servers) < 2:
        raise HybridError("need at least two servers for background traffic")
    if horizon <= 0:
        raise HybridError(f"horizon must be positive, got {horizon}")
    rng = np.random.default_rng(seed)
    starts = rng.uniform(0.0, horizon, n_flows)
    durations = np.maximum(rng.exponential(mean_duration, n_flows), 1e-6)
    src_idx = rng.integers(0, len(servers), n_flows)
    # Distinct destination: offset by 1..len-1 modulo the server count.
    dst_off = rng.integers(1, len(servers), n_flows)
    flows = [
        BackgroundFlow(
            flow_id=flow_id_base + i,
            src=servers[int(src_idx[i])],
            dst=servers[int((src_idx[i] + dst_off[i]) % len(servers))],
            demand_bps=demand_bps,
            start=float(starts[i]),
            stop=float(starts[i] + durations[i]),
        )
        for i in range(n_flows)
    ]
    return BackgroundSchedule(flows)
