"""Shared resolution of the simulator's boolean feature knobs.

Every optional engine feature follows the same contract: a constructor
argument that defaults to ``None``, backed by an environment variable,
where an **explicit argument always wins** over the environment.  Before
this module the resolution logic was copy-pasted per knob — the fastpath
and batch knobs in :class:`~repro.sim.network.Network`, the telemetry
knob in :func:`repro.telemetry.windows.resolve_config`, and the chunk
selection in :mod:`repro.sim.sources` — with two *senses* of environment
variable in play:

* **env-disables** (``REPRO_FASTPATH_DISABLE``, ``REPRO_BATCH_DISABLE``,
  ``REPRO_HYBRID_DISABLE``): the feature defaults *on*; a truthy
  environment value turns it off for networks built with ``None``;
* **env-enables** (``REPRO_TELEMETRY``): the feature defaults *off*; a
  truthy environment value turns it on for networks built with ``None``.

Either way a truthy environment value is anything but unset, empty, or
``"0"`` — and an explicit ``True``/``False`` argument overrides the
environment entirely (``Network(fastpath=False)`` stays off even when
``REPRO_FASTPATH_DISABLE`` is unset; ``Network(telemetry=False)`` stays
off even under ``REPRO_TELEMETRY=1``).

This module holds no simulator state and imports nothing from the rest
of the package, so any layer (sim, telemetry, hybrid, sources) can use
it without import cycles.
"""

from __future__ import annotations

import os
from typing import Mapping

#: Environment values that read as "flag not set" (feature untouched).
_FALSY = ("", "0")

#: Environment variable that disables the hybrid packet/flow engine's
#: residual-capacity handoff (``repro.hybrid`` then runs its background
#: schedule in the pure-packet oracle mode).  Defined here rather than
#: in :mod:`repro.hybrid` so :class:`~repro.sim.network.Network` can
#: resolve its ``hybrid=`` knob without importing the hybrid layer.
HYBRID_ENV = "REPRO_HYBRID_DISABLE"

#: Environment variable that disables the conservative-window parallel
#: DES (:mod:`repro.sim.parallel` then runs its scenario serially in one
#: process — the reference execution every parallel run must match).
#: Defined here for the same reason as :data:`HYBRID_ENV`: the network
#: records the resolved knob without importing the parallel layer.
PARALLEL_ENV = "REPRO_PARALLEL_DISABLE"

#: Environment variable that arms the runtime observability layer
#: (:mod:`repro.obs`): metrics registry, span tracer, and run manifests.
#: Env-*enables*, like ``REPRO_TELEMETRY`` — observation is opt-in, and
#: armed runs are required to stay fingerprint-identical to disarmed
#: ones.  The canonical owner is ``repro.obs.OBS_ENV`` (that package
#: must stay importable without touching ``repro.sim``); the literal is
#: mirrored here — keeping this module import-free — and the obs test
#: suite asserts the two stay equal.
OBS_ENV = "REPRO_OBS"


def env_truthy(env: str, environ: "Mapping[str, str] | None" = None) -> bool:
    """Whether environment variable ``env`` is set to a truthy value.

    Unset, empty, and ``"0"`` are falsy; everything else is truthy —
    the convention every ``REPRO_*`` knob shares.
    """
    source = os.environ if environ is None else environ
    return source.get(env, "0") not in _FALSY


def resolve_flag(
    value: "bool | None",
    env: str,
    *,
    env_disables: bool,
    environ: "Mapping[str, str] | None" = None,
) -> bool:
    """Resolve one boolean feature knob: explicit argument beats environment.

    ``value`` is the constructor argument: ``True``/``False`` are taken
    as given (explicit ``False`` wins over any environment state), and
    ``None`` defers to the environment variable ``env``.

    ``env_disables`` selects the variable's sense: ``True`` means the
    feature is on by default and a truthy ``env`` turns it *off* (the
    ``*_DISABLE`` escape hatches); ``False`` means the feature is off by
    default and a truthy ``env`` turns it *on* (opt-in knobs like
    ``REPRO_TELEMETRY``).

    ``environ`` substitutes for ``os.environ`` in tests.
    """
    if value is not None:
        return bool(value)
    truthy = env_truthy(env, environ)
    return not truthy if env_disables else truthy
