"""Compiled per-path forwarding plans — the simulator's fast path.

The reference forwarding loop (:meth:`Network._transmit` /
:meth:`Network._arrive`) re-derives the same per-hop facts for every
packet at every hop: the link record behind a ``(u, v)`` dict lookup,
the switch model behind a node lookup, and the cut-through serialization
credit from two more link lookups.  For a path that thousands of packets
share, all of that is loop-invariant.

A :class:`HopPlan` resolves it once per unique path into parallel
tuples indexed by hop number, so the fast-path loop walks plain tuple
indices with zero dict lookups:

* ``keys[h]`` — the directed link ``(path[h], path[h+1])``, used only
  for the dead-link check and in-flight fault tracking;
* ``ser[h]`` — serialization factor (seconds per byte) of link ``h``;
* ``ports[h]`` / ``caps[h]`` — the output :class:`PortState` and link
  capacity (the capacity feeds the bounded-buffer backlog check);
* ``lat[h]`` / ``latf[h]`` — the forwarding delay charged at node
  ``path[h]`` before transmitting on link ``h``, folded into the affine
  form ``earliest = now + size * latf[h] + lat[h]``.  Store-and-forward
  hops have ``latf == 0.0``; cut-through hops carry
  ``-min(ser_in, ser_out)`` so the serialization credit is one multiply.

The affine form is **bit-identical** to the reference arithmetic:
``size * latf`` equals ``-(min(ser_in, ser_out) * size)`` exactly (IEEE
754 multiplication is sign-symmetric and monotonic, so the minimum
commutes with the scaling), and ``now + (-x) + lat`` performs the same
two additions, in the same order, as the reference ``(now - x) + lat``.

Plans hold no mutable forwarding state — ports stay owned by the
network — so a plan is shared by every packet on its path and survives
fault events structurally: dead links are still checked per transmit
against the network's live ``_dead_links`` set, which is what preserves
severing, detours, and drop accounting exactly.  The network still
clears its plan cache on :meth:`Network.fail_link` /
:meth:`Network.repair_link` so the cache cannot accumulate stale paths
across fault churn.  Set ``REPRO_FASTPATH_DISABLE=1`` to force the
reference loop; both paths produce bit-identical metrics.

With :mod:`repro.obs` armed, the owning network counts plan compiles,
cache hits, and fault invalidations (``fastpath.*`` counters); this
module adds ``fastpath.size_products`` — the distinct per-packet-size
coefficient sets stacked plans materialize — so a sweep that floods the
per-size cache with unique packet sizes shows up in the run manifest.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro import obs as _obs

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.routing.base import Path
    from repro.sim.network import PortState

#: Environment variable that forces the reference (uncompiled) loop.
FASTPATH_ENV = "REPRO_FASTPATH_DISABLE"

#: Environment variable that disables cohort batching (the scalar
#: fast path and reference loop stay available as oracles).
BATCH_ENV = "REPRO_BATCH_DISABLE"


class HopPlan:
    """Per-path forwarding chain, resolved once and walked by index."""

    __slots__ = ("path", "last", "keys", "ser", "ports", "caps", "lat", "latf")

    def __init__(
        self,
        path: "Path",
        keys: tuple,
        ser: tuple,
        ports: tuple,
        caps: tuple,
        lat: tuple,
        latf: tuple,
    ) -> None:
        self.path = path
        self.last = len(path) - 1  # hop index of the destination node
        self.keys = keys
        self.ser = ser
        self.ports = ports
        self.caps = caps
        self.lat = lat
        self.latf = latf

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HopPlan({' -> '.join(self.path)})"


class StackedPlan:
    """A :class:`HopPlan`'s parallel tuples stacked into numpy arrays.

    This is the batched flight engine's per-path program: one float64
    array per hop-indexed coefficient, so a whole cohort of same-size
    packets advances through hop ``h`` with a handful of elementwise
    operations instead of one event per packet per hop.

    Bit-identity with the scalar loops is preserved operation by
    operation: IEEE 754 elementwise array arithmetic performs the same
    rounding as the equivalent sequence of scalar operations, so
    ``times + ser`` equals ``time + ser`` computed per packet, in the
    same order the scalar fast path performs the additions.  Per-size
    products (``size * ser``, ``size * latf``) are cached per plan —
    multiplication is a single isolated operation, so hoisting it out of
    the per-cohort loop cannot change any result bit.

    Plans are immutable and hold no port state; the network owns a
    ``path -> StackedPlan`` cache cleared on ``fail_link`` /
    ``repair_link`` alongside the scalar plan cache.
    """

    __slots__ = ("plan", "nhops", "keys", "ports", "ser", "lat", "latf", "_by_size")

    def __init__(self, plan: HopPlan) -> None:
        self.plan = plan
        self.nhops = plan.last  # number of links == arrival events per packet
        self.keys = plan.keys
        self.ports = plan.ports
        self.ser = np.asarray(plan.ser)
        self.lat = plan.lat  # tuple: each entry is added as a scalar
        self.latf = np.asarray(plan.latf)
        self._by_size: dict[float, tuple[np.ndarray, np.ndarray]] = {}

    def for_size(
        self, size_bytes: float
    ) -> "tuple[np.ndarray, np.ndarray, tuple, tuple]":
        """Per-hop ``size * ser`` / ``size * latf``, as arrays and floats.

        The arrays drive the vectorized cohort advance; the Python-float
        tuples drive the scalar single-packet probe and the contended
        port replay without per-element numpy conversions.
        """
        cached = self._by_size.get(size_bytes)
        if cached is None:
            ser_s = size_bytes * self.ser
            latf_s = size_bytes * self.latf
            cached = self._by_size[size_bytes] = (
                ser_s, latf_s, tuple(ser_s.tolist()), tuple(latf_s.tolist())
            )
            reg = _obs.registry()
            if reg is not None:  # miss path only — hits stay untouched
                reg.incr("fastpath.size_products")
        return cached

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StackedPlan({' -> '.join(self.plan.path)})"


def stack_plan(plan: HopPlan) -> StackedPlan:
    """Stack one compiled plan's tuples into the batched-engine form."""
    return StackedPlan(plan)


def compile_plan(
    link_rec: "dict[tuple[str, str], tuple[float, PortState, float]]",
    hop_rec: "dict[str, tuple[bool, float]]",
    path: "Path",
) -> HopPlan:
    """Resolve ``path`` against the network's link and node records.

    Raises :class:`~repro.sim.network.NetworkSimError` if any hop has no
    link — the same failure the reference loop reports lazily when the
    packet reaches that hop.
    """
    n = len(path)
    keys = []
    ser = []
    ports = []
    caps = []
    for h in range(n - 1):
        key = (path[h], path[h + 1])
        rec = link_rec.get(key)
        if rec is None:
            from repro.sim.network import NetworkSimError

            raise NetworkSimError(f"no link {path[h]!r} → {path[h + 1]!r} on path")
        keys.append(key)
        ser.append(rec[0])
        ports.append(rec[1])
        caps.append(rec[2])
    lat = [0.0] * max(1, n - 1)
    latf = [0.0] * max(1, n - 1)
    for h in range(1, n - 1):
        cut_through, latency = hop_rec[path[h]]
        lat[h] = latency
        if cut_through:
            ser_in = ser[h - 1]
            ser_out = ser[h]
            latf[h] = -(ser_in if ser_in < ser_out else ser_out)
    return HopPlan(
        path, tuple(keys), tuple(ser), tuple(ports), tuple(caps),
        tuple(lat), tuple(latf),
    )
