"""Traffic sources for the packet-level simulator.

Three source types cover every workload in the paper's evaluation:

* :class:`PoissonSource` — Section 7's model: servers send 400-byte
  packets according to a Poisson process.
* :class:`BurstSource` — Section 6.1's cross-traffic: fixed-size packet
  bursts separated by idle intervals sized to hit a target bandwidth.
* :class:`RPCSource` — Section 6.1's latency probe: a closed-loop
  request/response ping-pong ("Hello World" RPC), one call at a time.

Poisson draws are **vectorized**: gaps and destination picks come from
two independent numpy streams that are pre-drawn in chunks, so a
million-packet source pays one RNG call per few hundred packets instead
of one per packet.  numpy generators fill arrays from the same bit
stream an element-at-a-time draw would consume, so the batched sequence
is bit-identical for every chunk size — ``chunk=1`` (what
``REPRO_FASTPATH_DISABLE=1`` forces) is the per-packet reference and
produces exactly the same packets.  Each packet's *injection* still
fires as its own engine event: port queueing interleaves with other
traffic at arrival times, so arrivals cannot be applied in batch
without changing results.
"""

from __future__ import annotations

import random
from typing import Callable, Sequence

import numpy as np

from repro.routing.base import RoutingError
from repro.sim.fastpath import FASTPATH_ENV
from repro.sim.knobs import env_truthy
from repro.sim.network import Network, Packet
from repro.units import BITS_PER_BYTE

#: Packet size used throughout the paper's simulations (Section 7).
DEFAULT_PACKET_BYTES = 400

#: Poisson pre-draw batch size (packets per RNG call).
DEFAULT_CHUNK = 256

#: Smallest cohort worth the vectorized path; below this the scalar
#: fire is faster than the array setup (results are identical either way).
MIN_COHORT = 8

#: Scalar fires between cohort retries after a failed commit: when the
#: event queue is too busy for batching, probing every fire would cost
#: more than it saves.  Purely a performance knob — attempts never
#: change results.
COHORT_RETRY_BACKOFF = 32

#: Non-negative 64-bit seed material for numpy's SeedSequence.
_SEED_MASK = (1 << 64) - 1


class SourceError(ValueError):
    """Raised for invalid traffic-source configurations."""


class PoissonSource:
    """Sends fixed-size packets with exponential inter-arrival times.

    ``dst`` may be a single server or a sequence; with a sequence each
    packet goes to an independently, uniformly sampled destination.

    ``vary_flow_per_packet`` gives each packet a distinct flow id, so
    multipath routers (VLB) spread the stream packet-by-packet rather
    than pinning it to one path — the granularity the paper's VLB needs
    when a handful of heavy flows share one channel (Section 7.2).

    Gap and destination draws come from two independent seeded numpy
    streams, pre-drawn ``chunk`` packets at a time.  The packet sequence
    is identical for every chunk size (numpy fills batches from the same
    bit stream as repeated scalar draws), so batching is purely a speed
    knob; ``chunk=None`` picks the default batch, or the per-packet
    reference when ``REPRO_FASTPATH_DISABLE`` is set.
    """

    def __init__(
        self,
        network: Network,
        src: str,
        dst: str | Sequence[str],
        rate_pps: float,
        size_bytes: float = DEFAULT_PACKET_BYTES,
        group: str | None = None,
        flow_id: int = 0,
        seed: int = 0,
        stop_at: float | None = None,
        vary_flow_per_packet: bool = False,
        on_delivered: Callable[[Packet, float], None] | None = None,
        chunk: int | None = None,
    ) -> None:
        if rate_pps <= 0:
            raise SourceError(f"rate must be positive, got {rate_pps}")
        if chunk is None:
            chunk = 1 if env_truthy(FASTPATH_ENV) else DEFAULT_CHUNK
        if chunk < 1:
            raise SourceError(f"chunk must be at least 1, got {chunk}")
        self.network = network
        self.src = src
        self._dsts = [dst] if isinstance(dst, str) else list(dst)
        if not self._dsts:
            raise SourceError("need at least one destination")
        self.rate_pps = rate_pps
        self.size_bytes = size_bytes
        self.group = group
        self.flow_id = flow_id
        self.stop_at = stop_at
        self.vary_flow_per_packet = vary_flow_per_packet
        self.on_delivered = on_delivered
        self.packets_sent = 0
        self.chunk = chunk
        # Independent streams so the interleaving of gap and destination
        # draws — and therefore the values — cannot depend on ``chunk``.
        self._gap_rng = np.random.default_rng((seed & _SEED_MASK, 0))
        self._gaps: list[float] = []
        self._gap_i = 0
        if len(self._dsts) > 1:
            self._dst_rng = np.random.default_rng((seed & _SEED_MASK, 1))
            self._dst_picks: list[int] = []
            self._dst_i = 0
        else:
            self._dst_rng = None
        self._running = False
        self._cohort_skip = 0

    @classmethod
    def at_bandwidth(
        cls,
        network: Network,
        src: str,
        dst: str | Sequence[str],
        bandwidth_bps: float,
        size_bytes: float = DEFAULT_PACKET_BYTES,
        **kwargs: object,
    ) -> "PoissonSource":
        """Convenience constructor: packet rate from a target bandwidth."""
        rate = bandwidth_bps / (size_bytes * BITS_PER_BYTE)
        return cls(network, src, dst, rate_pps=rate, size_bytes=size_bytes, **kwargs)  # type: ignore[arg-type]

    def start(self, delay: float = 0.0) -> None:
        if self._running:
            raise SourceError("source already started")
        self._running = True
        self.network.engine.schedule(delay + self._next_gap(), self._fire)

    def stop(self) -> None:
        self._running = False

    def _next_gap(self) -> float:
        """Next exponential inter-arrival gap (pre-drawn in batches)."""
        i = self._gap_i
        gaps = self._gaps
        if i >= len(gaps):
            batch = self._gap_rng.standard_exponential(self.chunk)
            batch /= self.rate_pps
            gaps = self._gaps = batch.tolist()
            i = 0
        self._gap_i = i + 1
        return gaps[i]

    def _next_dst(self) -> str:
        """Next uniformly sampled destination (pre-drawn in batches)."""
        i = self._dst_i
        picks = self._dst_picks
        if i >= len(picks):
            picks = self._dst_picks = self._dst_rng.integers(
                0, len(self._dsts), self.chunk
            ).tolist()
            i = 0
        self._dst_i = i + 1
        return self._dsts[picks[i]]

    def _fire(self) -> None:
        engine = self.network.engine
        if not self._running:
            return
        now = engine.now
        if self.stop_at is not None and now >= self.stop_at:
            self._running = False
            return
        if (
            self._dst_rng is None
            and self.on_delivered is None
            and not self.vary_flow_per_packet
            and self.network.batch_enabled
            and engine.batching_ok
        ):
            if self._cohort_skip:
                self._cohort_skip -= 1
            elif self._fire_cohort(engine, now):
                return
        dst = self._dsts[0] if self._dst_rng is None else self._next_dst()
        flow = self.flow_id
        if self.vary_flow_per_packet:
            flow = self.flow_id * 1_000_003 + self.packets_sent
        try:
            self.network.send(
                self.src, dst, self.size_bytes, flow_id=flow, group=self.group,
                on_delivered=self.on_delivered,
            )
        except RoutingError:
            # A partitioned mesh (simultaneous fibre cuts) leaves the
            # pair unreachable; the offered packet is lost, not fatal.
            self.network.note_unroutable(self.group)
        self.packets_sent += 1
        engine.call_at(engine.now + self._next_gap(), self._fire)

    def _fire_cohort(self, engine, now: float) -> bool:
        """Try to inject a whole cohort of pre-drawn packets at once.

        Candidate injection times extend ``now`` by the gaps already
        pre-drawn for this chunk, accumulated with the same sequential
        float additions the per-packet fires would perform (the chain
        ``t += gap`` is order-sensitive, so it is *not* vectorized).
        :meth:`Network.send_cohort` commits the longest event-safe
        prefix; on any commit the gap cursor, packet counter, and the
        engine's logical event count advance exactly as the per-packet
        fires would have left them, and the next fire is scheduled from
        the last committed injection.  Returns ``False`` to make the
        caller fall back to the scalar single-packet fire.
        """
        gaps = self._gaps
        i = self._gap_i
        n = len(gaps)
        if i >= n:
            return False  # chunk exhausted: the scalar fire refills it
        # Candidate times are capped by everything that bounds a commit
        # anyway — the next queued event (strict), the run horizon, and
        # ``stop_at`` — so a busy queue costs a short list, not a chunk.
        peek = engine.peek_time()
        horizon = engine.run_horizon
        stop_at = self.stop_at
        cap = peek if stop_at is None or peek <= stop_at else stop_at
        times = [now]
        t = now
        for k in range(i, n):
            t = t + gaps[k]
            if t >= cap or (horizon is not None and t > horizon):
                break
            times.append(t)
        if len(times) < MIN_COHORT:
            self._cohort_skip = COHORT_RETRY_BACKOFF
            return False
        try:
            m = self.network.send_cohort(
                self.src, self._dsts[0], self.size_bytes, times,
                flow_id=self.flow_id, group=self.group,
            )
        except RoutingError:
            return False  # scalar fire counts the unroutable packet
        if m == 0:
            self._cohort_skip = COHORT_RETRY_BACKOFF
            return False
        self.packets_sent += m
        self._gap_i = i + (m - 1)
        engine.credit_events(m - 1)  # the elided per-packet fire events
        engine.call_at(times[m - 1] + self._next_gap(), self._fire)
        return True


class BurstSource:
    """Back-to-back packet bursts separated by idle gaps.

    Reproduces the prototype's Nuttcp cross-traffic: "20 packet bursts
    that are separated by idle intervals, the duration of which is
    selected to meet a target bandwidth" (Section 6.1).
    """

    def __init__(
        self,
        network: Network,
        src: str,
        dst: str,
        target_bandwidth_bps: float,
        burst_packets: int = 20,
        size_bytes: float = 1500,
        group: str | None = None,
        flow_id: int = 0,
        seed: int = 0,
        stop_at: float | None = None,
    ) -> None:
        if target_bandwidth_bps <= 0:
            raise SourceError("target bandwidth must be positive")
        if burst_packets < 1:
            raise SourceError("burst must contain at least one packet")
        self.network = network
        self.src = src
        self.dst = dst
        self.burst_packets = burst_packets
        self.size_bytes = size_bytes
        self.group = group
        self.flow_id = flow_id
        self.stop_at = stop_at
        self.packets_sent = 0
        burst_bits = burst_packets * size_bytes * BITS_PER_BYTE
        #: Time from the start of one burst to the start of the next.
        self.burst_interval = burst_bits / target_bandwidth_bps
        self._rng = random.Random(seed)
        self._running = False

    def start(self, delay: float | None = None) -> None:
        """Begin bursting; ``delay`` defaults to a random phase within one
        interval so concurrent sources are unsynchronized (as in the paper)."""
        if self._running:
            raise SourceError("source already started")
        self._running = True
        phase = self._rng.uniform(0, self.burst_interval) if delay is None else delay
        self.network.engine.schedule(phase, self._fire_burst)

    def stop(self) -> None:
        self._running = False

    def _fire_burst(self) -> None:
        if not self._running:
            return
        now = self.network.engine.now
        if self.stop_at is not None and now >= self.stop_at:
            self._running = False
            return
        for _ in range(self.burst_packets):
            self.network.send(
                self.src, self.dst, self.size_bytes, flow_id=self.flow_id, group=self.group
            )
            self.packets_sent += 1
        engine = self.network.engine
        engine.call_at(engine.now + self.burst_interval, self._fire_burst)


class RPCSource:
    """Closed-loop request/response pairs; records full round-trip times.

    The destination replies as soon as the request is delivered (plus
    ``server_think_time``); the next call is issued when the response
    lands.  Round-trip latencies go to ``network.stats`` under
    ``group`` — per-leg packet latencies are not recorded, matching how
    the prototype measures RPC latency.
    """

    def __init__(
        self,
        network: Network,
        client: str,
        server: str,
        num_calls: int = 1000,
        request_bytes: float = 200,
        response_bytes: float = 200,
        server_think_time: float = 0.0,
        group: str = "rpc",
        flow_id: int = 0,
    ) -> None:
        if num_calls < 1:
            raise SourceError("need at least one RPC call")
        self.network = network
        self.client = client
        self.server = server
        self.num_calls = num_calls
        self.request_bytes = request_bytes
        self.response_bytes = response_bytes
        self.server_think_time = server_think_time
        self.group = group
        self.flow_id = flow_id
        self.completed = 0
        self.rtts: list[float] = []
        self._call_started = 0.0

    def start(self, delay: float = 0.0) -> None:
        self.network.engine.schedule(delay, self._issue_call)

    def _issue_call(self) -> None:
        self._call_started = self.network.engine.now
        self.network.send(
            self.client,
            self.server,
            self.request_bytes,
            flow_id=self.flow_id,
            on_delivered=self._request_delivered,
        )

    def _request_delivered(self, _packet: Packet, _when: float) -> None:
        self.network.engine.schedule(self.server_think_time, self._send_response)

    def _send_response(self) -> None:
        self.network.send(
            self.server,
            self.client,
            self.response_bytes,
            flow_id=self.flow_id,
            on_delivered=self._response_delivered,
        )

    def _response_delivered(self, _packet: Packet, when: float) -> None:
        rtt = when - self._call_started
        self.rtts.append(rtt)
        self.network.stats.record(rtt, group=self.group)
        self.completed += 1
        if self.completed < self.num_calls:
            self._issue_call()


def poisson_pair_sources(
    network: Network,
    pairs: list[tuple[str, str]],
    per_pair_bandwidth_bps: float,
    size_bytes: float = DEFAULT_PACKET_BYTES,
    group: str | None = None,
    seed: int = 0,
    make_flow_id: Callable[[int], int] | None = None,
    chunk: int | None = None,
) -> list[PoissonSource]:
    """One Poisson stream per (src, dst) pair — the paper's task model."""
    sources = []
    for index, (src, dst) in enumerate(pairs):
        flow_id = index if make_flow_id is None else make_flow_id(index)
        sources.append(
            PoissonSource.at_bandwidth(
                network,
                src,
                dst,
                per_pair_bandwidth_bps,
                size_bytes=size_bytes,
                group=group,
                flow_id=flow_id,
                seed=seed + index,
                chunk=chunk,
            )
        )
    return sources
