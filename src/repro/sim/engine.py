"""Deterministic discrete-event engine with pluggable schedulers.

A minimal, fast event loop.  Queue entries are plain ``[time, seq,
callback, args]`` records, so the scheduler orders them with C-speed
list comparison — ``time`` first, then the unique sequence number
(the callback is never compared).  The sequence number makes
simultaneous events fire in scheduling order, so runs are exactly
reproducible.

Two schedulers share that entry format:

* the default **heap** (``heapq``) — the reference implementation; its
  pop order defines the engine's contract;
* a **bucket** (calendar) queue — a ring of fixed-width time buckets
  plus an overflow heap, tuned to the simulator's near-future event
  profile (a packet's next event is almost always within a few
  microseconds of ``now``).  Selected with ``Engine(scheduler="bucket")``
  or ``REPRO_SCHEDULER=bucket``; property-tested to pop in exactly the
  heap's order, including FIFO among equal timestamps.

Cancellation is lazy: :meth:`Event.cancel` blanks the entry's callback
slot in place and the run loop discards blanked entries as they surface.
When cancelled entries outnumber live ones the queue is compacted, so a
workload that schedules and cancels many timers (e.g. retransmission
timeouts) does not grow the queue without bound.
"""

from __future__ import annotations

import heapq
import math
import os
import time as _time
from bisect import insort
from typing import Any, Callable, Iterable

from repro import obs as _obs

#: Index of the callback slot in a queue entry; ``None`` marks an entry
#: that was cancelled (or already fired) and must not fire (again).
_CALLBACK = 2

#: Environment variable selecting the default scheduler for new engines.
SCHEDULER_ENV = "REPRO_SCHEDULER"


class SimulationError(RuntimeError):
    """Raised for invalid scheduling operations."""


class Event:
    """Handle to one scheduled callback; cancel with :meth:`cancel`.

    ``time`` and ``seq`` read through to the queue entry (its ``(time,
    seq)`` prefix is never mutated), which keeps the handle three stores
    cheap on the ``schedule`` hot path.
    """

    __slots__ = ("cancelled", "_entry", "_engine")

    def __init__(self, entry: list, engine: "Engine") -> None:
        self.cancelled = False
        self._entry = entry
        self._engine = engine

    @property
    def time(self) -> float:
        return self._entry[0]

    @property
    def seq(self) -> int:
        return self._entry[1]

    def cancel(self) -> bool:
        """Prevent the callback from firing (lazy removal from the queue).

        Returns ``True`` only when this call revoked a still-pending
        callback.  Idempotent: a second cancel — or cancelling an event
        that already fired — is a no-op that returns ``False`` and
        leaves ``cancelled`` untouched, so the flag always tells the
        truth (fired events never read as cancelled) and the engine's
        cancellation count never includes entries that are no longer in
        the queue.
        """
        entry = self._entry
        if entry[_CALLBACK] is None:
            return False
        self.cancelled = True
        entry[_CALLBACK] = None
        entry[3] = None  # free the args references eagerly
        self._engine._note_cancelled()
        return True


class BucketScheduler:
    """Calendar queue: a ring of fixed-width buckets plus an overflow heap.

    Events within the addressable window (``nbuckets × width`` seconds
    from the ring's base time) append to their bucket in O(1); events
    beyond it go to an overflow heap and migrate into the ring as the
    window advances.  A bucket is sorted once when it becomes the active
    (draining) bucket; inserts that land in the active bucket — the
    common case for a simulator whose next event is within one bucket of
    ``now`` — use ``bisect.insort`` past the drain cursor, which
    preserves FIFO order among equal timestamps because sequence numbers
    only grow.

    Pop order is identical to the heap scheduler's: ``(time, seq)``
    ascending.  Entries are the engine's ``[time, seq, callback, args]``
    lists, so lazy cancellation (blanking the callback slot) works
    unchanged.

    Bucket boundaries are exact.  The window base is recomputed from an
    integer epoch (``base0 + epoch * width``) instead of accumulating
    ``base += width``, so the boundary of slot ``k`` is the *same float*
    whether it is evaluated at push time, at migration time, or when the
    window advances past it.  Raw ``int(rel / width)`` indexing is then
    corrected against those boundaries: float division can misplace an
    entry that lands exactly on a bucket edge by one bucket in either
    direction (e.g. ``123e-6 / 1e-6 == 122.99…``), which reorders pops
    around equal-time entries — and, at the overflow horizon, can push a
    far-future entry into the *active* bucket, popping it arbitrarily
    early.  Both divergences are caught by the hypothesis equivalence
    suite in ``tests/sim/test_scheduler.py``.
    """

    __slots__ = (
        "width", "nbuckets", "_buckets", "_cur", "_base", "_base0",
        "_epoch", "_pos", "_ring_count", "_far", "_len",
    )

    def __init__(self, width: float = 1e-6, nbuckets: int = 256) -> None:
        if width <= 0:
            raise SimulationError(f"bucket width must be positive, got {width}")
        if nbuckets < 1:
            raise SimulationError(f"need at least one bucket, got {nbuckets}")
        self.width = width
        self.nbuckets = nbuckets
        self._buckets: list[list[list]] = [[] for _ in range(nbuckets)]
        self._cur = 0  # ring index of the active bucket
        self._base0 = 0.0  # window origin; slot k starts at base0 + (epoch+k)*width
        self._epoch = 0  # how many windows the ring has advanced past base0
        self._base = 0.0  # cached boundary(0): start of the active window
        self._pos = 0  # drain cursor into the active bucket
        self._ring_count = 0  # entries anywhere in the ring
        self._far: list[list] = []  # heap of entries beyond the window
        self._len = 0

    def __len__(self) -> int:
        return self._len

    def _boundary(self, index: int) -> float:
        """Exact start time of the bucket ``index`` slots past the active one."""
        return self._base0 + (self._epoch + index) * self.width

    def _index_for(self, time: float) -> int:
        """Slot offset whose window truly contains ``time``.

        Returns ``nbuckets`` for anything at or past the overflow
        horizon.  The raw division is only a guess; within the ring the
        correction loops walk it to the unique ``k`` with ``boundary(k)
        <= time < boundary(k+1)`` (at most a step or two — never across
        the whole ring, and far-future times take the single horizon
        test instead of walking).  Entries at or before the active
        window report 0 — the caller keeps those sorted in the active
        bucket.
        """
        nbuckets = self.nbuckets
        guess = int((time - self._base) / self.width)
        if guess >= nbuckets:
            if time >= self._boundary(nbuckets):
                return nbuckets
            guess = nbuckets - 1  # division overshot the horizon
        elif guess < 0:
            guess = 0
        while guess > 0 and time < self._boundary(guess):
            guess -= 1
        while guess < nbuckets and time >= self._boundary(guess + 1):
            guess += 1
        return guess

    def push(self, entry: list) -> None:
        """Insert one entry; ``entry[0]`` must be ≥ the last popped time."""
        index = self._index_for(entry[0])
        if index == 0:
            # Active bucket (or a time at/before its window, which can
            # only be ≥ the last pop): keep it sorted past the cursor.
            insort(self._buckets[self._cur], entry, self._pos)
            self._ring_count += 1
        elif index < self.nbuckets:
            self._buckets[(self._cur + index) % self.nbuckets].append(entry)
            self._ring_count += 1
        else:
            heapq.heappush(self._far, entry)
        self._len += 1

    def pop(self) -> list:
        """Remove and return the earliest entry; IndexError when empty."""
        while True:
            bucket = self._buckets[self._cur]
            pos = self._pos
            if pos < len(bucket):
                entry = bucket[pos]
                self._pos = pos + 1
                self._ring_count -= 1
                self._len -= 1
                if self._pos == len(bucket):
                    del bucket[:]
                    self._pos = 0
                return entry
            if self._len == 0:
                raise IndexError("pop from an empty scheduler")
            del bucket[:]
            self._pos = 0
            if self._ring_count:
                self._advance()
            else:
                # Ring drained: jump the window straight to the overflow.
                self._base0 = self._far[0][0]
                self._epoch = 0
                self._base = self._base0
                self._migrate()
                if not self._ring_count:
                    # Degenerate window: the base is so large that one
                    # bucket width rounds away (ulp(base) > width), so
                    # nothing can migrate.  Drain the overflow head
                    # directly — pushes after this pop are ≥ its time
                    # by the scheduler contract, so order holds.
                    self._buckets[self._cur].append(heapq.heappop(self._far))
                    self._ring_count += 1
                self._buckets[self._cur].sort()
            # Loop: the new active bucket may still be empty (sparse ring).

    def peek_time(self) -> float:
        """Lower bound on the earliest queued entry's time (``inf`` if empty).

        Exact when the active bucket has entries left (it is sorted);
        otherwise the next window boundary / overflow head, which can
        only *under*-estimate — safe for lookahead decisions.
        """
        bucket = self._buckets[self._cur]
        if self._pos < len(bucket):
            return bucket[self._pos][0]
        if self._ring_count:
            return self._boundary(1)
        if self._far:
            return self._far[0][0]
        return math.inf

    def _advance(self) -> None:
        """Step the window one bucket forward and activate the next bucket."""
        self._cur = (self._cur + 1) % self.nbuckets
        self._epoch += 1
        self._base = self._base0 + self._epoch * self.width
        if self._far:
            self._migrate()
        self._buckets[self._cur].sort()

    def _migrate(self) -> None:
        """Pull overflow entries that now fall inside the window.

        The stop test is the *corrected* slot index, not a raw
        ``entry[0] < horizon`` comparison: an entry within one float
        rounding of the horizon must stay in the overflow heap rather
        than be wrapped modulo the ring into the active bucket.
        """
        far = self._far
        buckets = self._buckets
        cur, nbuckets = self._cur, self.nbuckets
        heappop = heapq.heappop
        while far:
            index = self._index_for(far[0][0])
            if index >= nbuckets:
                break
            buckets[(cur + index) % nbuckets].append(heappop(far))
            self._ring_count += 1

    def compact(self) -> None:
        """Drop cancelled (blanked) entries; live ordering is unchanged."""
        survivors = []
        for index, bucket in enumerate(self._buckets):
            start = self._pos if index == self._cur else 0
            survivors.extend(e for e in bucket[start:] if e[_CALLBACK] is not None)
            del bucket[:]
        survivors.extend(e for e in self._far if e[_CALLBACK] is not None)
        del self._far[:]
        self._pos = 0
        self._ring_count = 0
        self._len = 0
        for entry in survivors:
            self.push(entry)


def _make_scheduler(spec: "str | BucketScheduler | None") -> "BucketScheduler | None":
    """Resolve a scheduler spec; ``None`` means the default heap."""
    if spec is None:
        spec = os.environ.get(SCHEDULER_ENV, "heap")
    if isinstance(spec, str):
        name = spec.strip().lower()
        if name in ("", "heap"):
            return None
        if name in ("bucket", "calendar"):
            return BucketScheduler()
        raise SimulationError(
            f"unknown scheduler {spec!r}; options: 'heap', 'bucket'"
        )
    return spec  # duck-typed scheduler instance


class Engine:
    """The event loop.  Time starts at 0.0 seconds.

    ``scheduler`` selects the pending-event queue: ``"heap"`` (default,
    the reference implementation), ``"bucket"`` (calendar queue), or a
    pre-built scheduler instance.  When the argument is omitted the
    ``REPRO_SCHEDULER`` environment variable decides.
    """

    __slots__ = (
        "now", "_heap", "_sched", "_seq", "_n_cancelled", "events_processed",
        "run_horizon", "batching_ok",
    )

    def __init__(self, scheduler: "str | BucketScheduler | None" = None) -> None:
        self.now = 0.0
        self._seq = 0
        self._n_cancelled = 0
        self.events_processed = 0
        #: Horizon of the active :meth:`run` call (``None`` = unbounded);
        #: only meaningful while ``batching_ok`` is True.
        self.run_horizon: float | None = None
        #: True while a run loop without ``max_events`` is dispatching —
        #: the only state in which cohort batching may commit work ahead
        #: of the queue (see :meth:`repro.sim.network.Network.send_cohort`).
        self.batching_ok = False
        self._sched = _make_scheduler(scheduler)
        # The heap scheduler is inlined on the hot paths: ``_heap`` is
        # the live list when it is in use, ``None`` otherwise.
        self._heap: list[list] | None = [] if self._sched is None else None

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> Event:
        """Run ``callback(*args)`` after ``delay`` seconds of sim time.

        Specialized like :meth:`call_at`: the entry is built and pushed
        inline (no delegation through :meth:`schedule_at`), so the only
        cost over the fire-and-forget path is the :class:`Event` handle —
        and that handle is built with ``__new__`` plus direct slot
        stores, skipping the ``__init__`` dispatch.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        entry = [self.now + delay, self._seq, callback, args]
        self._seq += 1
        heap = self._heap
        if heap is not None:
            heapq.heappush(heap, entry)
        else:
            self._sched.push(entry)
        event = Event.__new__(Event)
        event.cancelled = False
        event._entry = entry
        event._engine = self
        return event

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> Event:
        """Run ``callback(*args)`` at absolute sim time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self.now}"
            )
        entry = [time, self._seq, callback, args]
        self._seq += 1
        heap = self._heap
        if heap is not None:
            heapq.heappush(heap, entry)
        else:
            self._sched.push(entry)
        event = Event.__new__(Event)
        event.cancelled = False
        event._entry = entry
        event._engine = self
        return event

    def call_at(self, time: float, callback: Callable[..., None], *args: Any) -> None:
        """Fire-and-forget :meth:`schedule_at`: no :class:`Event` handle.

        The per-event hot path — skips the handle allocation, so use it
        whenever the caller never cancels (packet forwarding, traffic
        sources).  Semantics are otherwise identical to
        :meth:`schedule_at`, including the ordering sequence number.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self.now}"
            )
        heap = self._heap
        if heap is not None:
            heapq.heappush(heap, [time, self._seq, callback, args])
        else:
            self._sched.push([time, self._seq, callback, args])
        self._seq += 1

    def call_at_many(
        self, items: "Iterable[tuple[float, Callable[..., None], tuple]]"
    ) -> None:
        """Bulk :meth:`call_at`: push ``(time, callback, args)`` triples.

        One engine call amortizes the per-event attribute lookups over a
        whole batch (fault timelines, cohort fallbacks, benchmark warm
        fills).  Sequence numbers are assigned in iteration order, so
        equal-time items fire in the order given.
        """
        now = self.now
        heap = self._heap
        seq = self._seq
        try:
            if heap is not None:
                heappush = heapq.heappush
                for time, callback, args in items:
                    if time < now:
                        raise SimulationError(
                            f"cannot schedule at {time} before current time {now}"
                        )
                    heappush(heap, [time, seq, callback, args])
                    seq += 1
            else:
                push = self._sched.push
                for time, callback, args in items:
                    if time < now:
                        raise SimulationError(
                            f"cannot schedule at {time} before current time {now}"
                        )
                    push([time, seq, callback, args])
                    seq += 1
        finally:
            self._seq = seq

    def peek_time(self) -> float:
        """Lower bound on the next queued event's time (``inf`` when idle).

        Exact for the heap scheduler up to lazily-cancelled entries (a
        blanked head can only make the bound *earlier*, never later, so
        lookahead decisions stay safe).  Duck-typed schedulers without a
        ``peek_time`` report ``-inf``, which disables batching entirely.
        """
        heap = self._heap
        if heap is not None:
            return heap[0][0] if heap else math.inf
        peek = getattr(self._sched, "peek_time", None)
        return peek() if peek is not None else -math.inf

    def credit_events(self, n: int) -> None:
        """Count ``n`` logical events elided by a batched advancement.

        ``events_processed`` reports *logical* simulation events: a
        cohort committed in one vectorized step credits the per-hop
        arrivals (and per-packet source fires) the scalar loop would
        have dispatched through the queue, so the counter — and any
        events/s rate derived from it — stays comparable across the
        scalar, fastpath, and batched engines.
        """
        self.events_processed += n

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Process events until the queue empties, ``until`` passes, or
        ``max_events`` have fired.

        Advances ``now`` to ``until`` at the end when a horizon is given,
        even if the queue drained earlier (unless ``max_events`` stopped
        the run first).

        When :mod:`repro.obs` is armed, each call additionally records
        one ``engine.run`` span plus aggregate counters (events popped
        per scheduler kind, run wall-clock).  The accounting happens
        once per *run*, not per event, so the inner loops above stay
        untouched and a disarmed run pays one ``None`` test.
        """
        reg = _obs.registry()
        if reg is None:
            self._run(until, max_events)
            return
        before = self.events_processed
        start = _time.perf_counter()
        try:
            self._run(until, max_events)
        finally:
            duration = _time.perf_counter() - start
            delta = self.events_processed - before
            kind = "heap" if self._heap is not None else "bucket"
            reg.incr("engine.runs")
            reg.incr("engine.events." + kind, delta)
            reg.observe("engine.run_seconds", duration)
            tracer = _obs.tracer()
            if tracer is not None:
                tracer.add("engine.run", start, duration,
                           kind=kind, events=delta)

    def _run(self, until: float | None, max_events: int | None) -> None:
        """The dispatch body of :meth:`run` (observation-free)."""
        if self._heap is not None and max_events is None:
            # Specialized heap loops for the two hot call shapes; the
            # shared general loop below covers everything else.
            if until is None:
                self._run_heap_unbounded()
            else:
                self._run_heap_until(until)
            return
        processed = 0
        # ``max_events`` counts real queue pops, which batching would
        # blur — cohort commits stay disabled for bounded-event runs.
        self.run_horizon = until
        self.batching_ok = max_events is None
        try:
            while True:
                entry = self._pop_entry()
                if entry is None:
                    break
                if max_events is not None and processed >= max_events:
                    self._push_entry(entry)
                    return
                if until is not None and entry[0] > until:
                    self._push_entry(entry)
                    break
                callback = entry[_CALLBACK]
                if callback is None:
                    self._n_cancelled -= 1
                    continue
                # Blank the entry before firing so a handle cancelled
                # from inside its own callback stays a no-op.
                entry[_CALLBACK] = None
                self.now = entry[0]
                args = entry[3]
                if args:
                    callback(*args)
                else:
                    callback()
                processed += 1
        finally:
            self.events_processed += processed
            self.batching_ok = False
            self.run_horizon = None
        if until is not None and until > self.now:
            self.now = until

    def _run_heap_unbounded(self) -> None:
        """Drain the heap completely (no horizon, no event bound)."""
        heap = self._heap
        heappop = heapq.heappop
        processed = 0
        self.run_horizon = None
        self.batching_ok = True
        try:
            while True:
                entry = heappop(heap)
                callback = entry[2]
                if callback is None:
                    self._n_cancelled -= 1
                    continue
                entry[2] = None
                self.now = entry[0]
                args = entry[3]
                if args:
                    callback(*args)
                else:
                    callback()
                processed += 1
        except IndexError:
            pass  # heap drained
        finally:
            self.events_processed += processed
            self.batching_ok = False

    def _run_heap_until(self, until: float) -> None:
        """Drain the heap up to (and including) time ``until``."""
        heap = self._heap
        heappop = heapq.heappop
        heappush = heapq.heappush
        processed = 0
        self.run_horizon = until
        self.batching_ok = True
        try:
            while True:
                entry = heappop(heap)
                time = entry[0]
                if time > until:
                    heappush(heap, entry)  # same (time, seq): order kept
                    break
                callback = entry[2]
                if callback is None:
                    self._n_cancelled -= 1
                    continue
                entry[2] = None
                self.now = time
                args = entry[3]
                if args:
                    callback(*args)
                else:
                    callback()
                processed += 1
        except IndexError:
            pass  # heap drained before the horizon
        finally:
            self.events_processed += processed
            self.batching_ok = False
            self.run_horizon = None
        if until > self.now:
            self.now = until

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        queued = len(self._heap) if self._heap is not None else len(self._sched)
        return queued - self._n_cancelled

    # -- internal ----------------------------------------------------------------

    def _pop_entry(self) -> list | None:
        """Earliest queued entry (live or blanked), or ``None`` if empty."""
        try:
            if self._heap is not None:
                return heapq.heappop(self._heap)
            return self._sched.pop()
        except IndexError:
            return None

    def _push_entry(self, entry: list) -> None:
        """Return an entry taken by :meth:`_pop_entry` to the queue."""
        if self._heap is not None:
            heapq.heappush(self._heap, entry)
        else:
            self._sched.push(entry)

    def _note_cancelled(self) -> None:
        """Record one cancellation; compact when the dead outnumber the live."""
        self._n_cancelled += 1
        queued = len(self._heap) if self._heap is not None else len(self._sched)
        if self._n_cancelled > queued // 2:
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries (queue order is re-derived from the
        ``(time, seq)`` prefix, so live ordering is unchanged).

        Compaction is in place — ``run`` holds a reference to the heap
        list while events fire, and cancellations from inside a callback
        must stay visible to that loop.
        """
        if self._heap is not None:
            self._heap[:] = [
                entry for entry in self._heap if entry[_CALLBACK] is not None
            ]
            heapq.heapify(self._heap)
        else:
            self._sched.compact()
        self._n_cancelled = 0
