"""Deterministic discrete-event engine.

A minimal, fast event loop: events are ``(time, sequence, callback)``
triples in a binary heap.  The sequence number makes simultaneous
events fire in scheduling order, so runs are exactly reproducible.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable


class SimulationError(RuntimeError):
    """Raised for invalid scheduling operations."""


class Event:
    """A scheduled callback; cancel with :meth:`cancel`."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(
        self, time: float, seq: int, callback: Callable[..., None], args: tuple
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from firing (lazy removal from the heap)."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class Engine:
    """The event loop.  Time starts at 0.0 seconds."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list[Event] = []
        self._seq = 0
        self.events_processed = 0

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> Event:
        """Run ``callback(*args)`` after ``delay`` seconds of sim time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self.now + delay, callback, *args)

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> Event:
        """Run ``callback(*args)`` at absolute sim time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self.now}"
            )
        event = Event(time, self._seq, callback, args)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Process events until the heap empties, ``until`` passes, or
        ``max_events`` have fired.

        Advances ``now`` to ``until`` at the end when a horizon is given,
        even if the heap drained earlier.
        """
        processed = 0
        while self._heap:
            if max_events is not None and processed >= max_events:
                return
            event = self._heap[0]
            if until is not None and event.time > until:
                break
            heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.now = event.time
            event.callback(*event.args)
            processed += 1
            self.events_processed += 1
        if until is not None and until > self.now:
            self.now = until

    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._heap)
