"""Deterministic discrete-event engine.

A minimal, fast event loop.  Heap entries are plain ``[time, seq,
callback, args]`` records, so ``heapq`` orders them with C-speed
list comparison — ``time`` first, then the unique sequence number
(the callback is never compared).  The sequence number makes
simultaneous events fire in scheduling order, so runs are exactly
reproducible.

Cancellation is lazy: :meth:`Event.cancel` blanks the entry's callback
slot in place and the run loop discards blanked entries as they surface.
When cancelled entries outnumber live ones the heap is compacted, so a
workload that schedules and cancels many timers (e.g. retransmission
timeouts) does not grow the heap without bound.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

#: Index of the callback slot in a heap entry; ``None`` marks an entry
#: that was cancelled (or already fired) and must not fire (again).
_CALLBACK = 2


class SimulationError(RuntimeError):
    """Raised for invalid scheduling operations."""


class Event:
    """Handle to one scheduled callback; cancel with :meth:`cancel`."""

    __slots__ = ("time", "seq", "cancelled", "_entry", "_engine")

    def __init__(self, entry: list, engine: "Engine") -> None:
        self.time: float = entry[0]
        self.seq: int = entry[1]
        self.cancelled = False
        self._entry = entry
        self._engine = engine

    def cancel(self) -> bool:
        """Prevent the callback from firing (lazy removal from the heap).

        Returns ``True`` only when this call revoked a still-pending
        callback.  Idempotent: a second cancel — or cancelling an event
        that already fired — is a no-op that returns ``False`` and
        leaves ``cancelled`` untouched, so the flag always tells the
        truth (fired events never read as cancelled) and the engine's
        cancellation count never includes entries that are no longer in
        the heap.
        """
        entry = self._entry
        if entry[_CALLBACK] is None:
            return False
        self.cancelled = True
        entry[_CALLBACK] = None
        entry[3] = None  # free the args references eagerly
        self._engine._note_cancelled()
        return True


class Engine:
    """The event loop.  Time starts at 0.0 seconds."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list[list] = []
        self._seq = 0
        self._n_cancelled = 0
        self.events_processed = 0

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> Event:
        """Run ``callback(*args)`` after ``delay`` seconds of sim time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self.now + delay, callback, *args)

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> Event:
        """Run ``callback(*args)`` at absolute sim time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self.now}"
            )
        entry = [time, self._seq, callback, args]
        self._seq += 1
        heapq.heappush(self._heap, entry)
        return Event(entry, self)

    def call_at(self, time: float, callback: Callable[..., None], *args: Any) -> None:
        """Fire-and-forget :meth:`schedule_at`: no :class:`Event` handle.

        The per-event hot path — skips the handle allocation, so use it
        whenever the caller never cancels (packet forwarding, traffic
        sources).  Semantics are otherwise identical to
        :meth:`schedule_at`, including the ordering sequence number.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self.now}"
            )
        heapq.heappush(self._heap, [time, self._seq, callback, args])
        self._seq += 1

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Process events until the heap empties, ``until`` passes, or
        ``max_events`` have fired.

        Advances ``now`` to ``until`` at the end when a horizon is given,
        even if the heap drained earlier.
        """
        heap = self._heap
        heappop = heapq.heappop
        processed = 0
        while heap:
            if max_events is not None and processed >= max_events:
                return
            entry = heap[0]
            if until is not None and entry[0] > until:
                break
            heappop(heap)
            callback = entry[_CALLBACK]
            if callback is None:
                self._n_cancelled -= 1
                continue
            # Blank the entry before firing so a handle cancelled from
            # inside its own callback stays a no-op.
            entry[_CALLBACK] = None
            args = entry[3]
            self.now = entry[0]
            callback(*args)
            processed += 1
            self.events_processed += 1
        if until is not None and until > self.now:
            self.now = until

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return len(self._heap) - self._n_cancelled

    # -- internal ----------------------------------------------------------------

    def _note_cancelled(self) -> None:
        """Record one cancellation; compact when the dead outnumber the live."""
        self._n_cancelled += 1
        if self._n_cancelled > len(self._heap) // 2:
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify (heap order is re-derived
        from the ``(time, seq)`` prefix, so live ordering is unchanged).

        Compaction is in place — ``run`` holds a reference to the heap
        list while events fire, and cancellations from inside a callback
        must stay visible to that loop.
        """
        self._heap[:] = [entry for entry in self._heap if entry[_CALLBACK] is not None]
        heapq.heapify(self._heap)
        self._n_cancelled = 0
