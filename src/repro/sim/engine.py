"""Deterministic discrete-event engine with pluggable schedulers.

A minimal, fast event loop.  Queue entries are plain ``[time, seq,
callback, args]`` records, so the scheduler orders them with C-speed
list comparison — ``time`` first, then the unique sequence number
(the callback is never compared).  The sequence number makes
simultaneous events fire in scheduling order, so runs are exactly
reproducible.

Two schedulers share that entry format:

* the default **heap** (``heapq``) — the reference implementation; its
  pop order defines the engine's contract;
* a **bucket** (calendar) queue — a ring of fixed-width time buckets
  plus an overflow heap, tuned to the simulator's near-future event
  profile (a packet's next event is almost always within a few
  microseconds of ``now``).  Selected with ``Engine(scheduler="bucket")``
  or ``REPRO_SCHEDULER=bucket``; property-tested to pop in exactly the
  heap's order, including FIFO among equal timestamps.

Cancellation is lazy: :meth:`Event.cancel` blanks the entry's callback
slot in place and the run loop discards blanked entries as they surface.
When cancelled entries outnumber live ones the queue is compacted, so a
workload that schedules and cancels many timers (e.g. retransmission
timeouts) does not grow the queue without bound.
"""

from __future__ import annotations

import heapq
import os
from bisect import insort
from typing import Any, Callable

#: Index of the callback slot in a queue entry; ``None`` marks an entry
#: that was cancelled (or already fired) and must not fire (again).
_CALLBACK = 2

#: Environment variable selecting the default scheduler for new engines.
SCHEDULER_ENV = "REPRO_SCHEDULER"


class SimulationError(RuntimeError):
    """Raised for invalid scheduling operations."""


class Event:
    """Handle to one scheduled callback; cancel with :meth:`cancel`."""

    __slots__ = ("time", "seq", "cancelled", "_entry", "_engine")

    def __init__(self, entry: list, engine: "Engine") -> None:
        self.time: float = entry[0]
        self.seq: int = entry[1]
        self.cancelled = False
        self._entry = entry
        self._engine = engine

    def cancel(self) -> bool:
        """Prevent the callback from firing (lazy removal from the queue).

        Returns ``True`` only when this call revoked a still-pending
        callback.  Idempotent: a second cancel — or cancelling an event
        that already fired — is a no-op that returns ``False`` and
        leaves ``cancelled`` untouched, so the flag always tells the
        truth (fired events never read as cancelled) and the engine's
        cancellation count never includes entries that are no longer in
        the queue.
        """
        entry = self._entry
        if entry[_CALLBACK] is None:
            return False
        self.cancelled = True
        entry[_CALLBACK] = None
        entry[3] = None  # free the args references eagerly
        self._engine._note_cancelled()
        return True


class BucketScheduler:
    """Calendar queue: a ring of fixed-width buckets plus an overflow heap.

    Events within the addressable window (``nbuckets × width`` seconds
    from the ring's base time) append to their bucket in O(1); events
    beyond it go to an overflow heap and migrate into the ring as the
    window advances.  A bucket is sorted once when it becomes the active
    (draining) bucket; inserts that land in the active bucket — the
    common case for a simulator whose next event is within one bucket of
    ``now`` — use ``bisect.insort`` past the drain cursor, which
    preserves FIFO order among equal timestamps because sequence numbers
    only grow.

    Pop order is identical to the heap scheduler's: ``(time, seq)``
    ascending.  Entries are the engine's ``[time, seq, callback, args]``
    lists, so lazy cancellation (blanking the callback slot) works
    unchanged.
    """

    __slots__ = (
        "width", "nbuckets", "_buckets", "_cur", "_base", "_pos",
        "_ring_count", "_far", "_len",
    )

    def __init__(self, width: float = 1e-6, nbuckets: int = 256) -> None:
        if width <= 0:
            raise SimulationError(f"bucket width must be positive, got {width}")
        if nbuckets < 1:
            raise SimulationError(f"need at least one bucket, got {nbuckets}")
        self.width = width
        self.nbuckets = nbuckets
        self._buckets: list[list[list]] = [[] for _ in range(nbuckets)]
        self._cur = 0  # ring index of the active bucket
        self._base = 0.0  # start time of the active bucket's window
        self._pos = 0  # drain cursor into the active bucket
        self._ring_count = 0  # entries anywhere in the ring
        self._far: list[list] = []  # heap of entries beyond the window
        self._len = 0

    def __len__(self) -> int:
        return self._len

    def push(self, entry: list) -> None:
        """Insert one entry; ``entry[0]`` must be ≥ the last popped time."""
        rel = entry[0] - self._base
        width = self.width
        if rel < width:
            # Active bucket (or a time at/before its window, which can
            # only be ≥ the last pop): keep it sorted past the cursor.
            insort(self._buckets[self._cur], entry, self._pos)
            self._ring_count += 1
        else:
            index = int(rel / width)
            if index < self.nbuckets:
                self._buckets[(self._cur + index) % self.nbuckets].append(entry)
                self._ring_count += 1
            else:
                heapq.heappush(self._far, entry)
        self._len += 1

    def pop(self) -> list:
        """Remove and return the earliest entry; IndexError when empty."""
        while True:
            bucket = self._buckets[self._cur]
            pos = self._pos
            if pos < len(bucket):
                entry = bucket[pos]
                self._pos = pos + 1
                self._ring_count -= 1
                self._len -= 1
                if self._pos == len(bucket):
                    del bucket[:]
                    self._pos = 0
                return entry
            if self._len == 0:
                raise IndexError("pop from an empty scheduler")
            del bucket[:]
            self._pos = 0
            if self._ring_count:
                self._advance()
            else:
                # Ring drained: jump the window straight to the overflow.
                self._base = self._far[0][0]
                self._migrate()
                self._buckets[self._cur].sort()
            # Loop: the new active bucket may still be empty (sparse ring).

    def _advance(self) -> None:
        """Step the window one bucket forward and activate the next bucket."""
        self._cur = (self._cur + 1) % self.nbuckets
        self._base += self.width
        if self._far:
            self._migrate()
        self._buckets[self._cur].sort()

    def _migrate(self) -> None:
        """Pull overflow entries that now fall inside the window."""
        far = self._far
        horizon = self._base + self.nbuckets * self.width
        base, width, cur, nbuckets = self._base, self.width, self._cur, self.nbuckets
        buckets = self._buckets
        heappop = heapq.heappop
        while far and far[0][0] < horizon:
            entry = heappop(far)
            index = int((entry[0] - base) / width)
            buckets[(cur + index) % nbuckets].append(entry)
            self._ring_count += 1

    def compact(self) -> None:
        """Drop cancelled (blanked) entries; live ordering is unchanged."""
        survivors = []
        for index, bucket in enumerate(self._buckets):
            start = self._pos if index == self._cur else 0
            survivors.extend(e for e in bucket[start:] if e[_CALLBACK] is not None)
            del bucket[:]
        survivors.extend(e for e in self._far if e[_CALLBACK] is not None)
        del self._far[:]
        self._pos = 0
        self._ring_count = 0
        self._len = 0
        for entry in survivors:
            self.push(entry)


def _make_scheduler(spec: "str | BucketScheduler | None") -> "BucketScheduler | None":
    """Resolve a scheduler spec; ``None`` means the default heap."""
    if spec is None:
        spec = os.environ.get(SCHEDULER_ENV, "heap")
    if isinstance(spec, str):
        name = spec.strip().lower()
        if name in ("", "heap"):
            return None
        if name in ("bucket", "calendar"):
            return BucketScheduler()
        raise SimulationError(
            f"unknown scheduler {spec!r}; options: 'heap', 'bucket'"
        )
    return spec  # duck-typed scheduler instance


class Engine:
    """The event loop.  Time starts at 0.0 seconds.

    ``scheduler`` selects the pending-event queue: ``"heap"`` (default,
    the reference implementation), ``"bucket"`` (calendar queue), or a
    pre-built scheduler instance.  When the argument is omitted the
    ``REPRO_SCHEDULER`` environment variable decides.
    """

    __slots__ = ("now", "_heap", "_sched", "_seq", "_n_cancelled", "events_processed")

    def __init__(self, scheduler: "str | BucketScheduler | None" = None) -> None:
        self.now = 0.0
        self._seq = 0
        self._n_cancelled = 0
        self.events_processed = 0
        self._sched = _make_scheduler(scheduler)
        # The heap scheduler is inlined on the hot paths: ``_heap`` is
        # the live list when it is in use, ``None`` otherwise.
        self._heap: list[list] | None = [] if self._sched is None else None

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> Event:
        """Run ``callback(*args)`` after ``delay`` seconds of sim time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self.now + delay, callback, *args)

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> Event:
        """Run ``callback(*args)`` at absolute sim time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self.now}"
            )
        entry = [time, self._seq, callback, args]
        self._seq += 1
        heap = self._heap
        if heap is not None:
            heapq.heappush(heap, entry)
        else:
            self._sched.push(entry)
        return Event(entry, self)

    def call_at(self, time: float, callback: Callable[..., None], *args: Any) -> None:
        """Fire-and-forget :meth:`schedule_at`: no :class:`Event` handle.

        The per-event hot path — skips the handle allocation, so use it
        whenever the caller never cancels (packet forwarding, traffic
        sources).  Semantics are otherwise identical to
        :meth:`schedule_at`, including the ordering sequence number.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self.now}"
            )
        heap = self._heap
        if heap is not None:
            heapq.heappush(heap, [time, self._seq, callback, args])
        else:
            self._sched.push([time, self._seq, callback, args])
        self._seq += 1

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Process events until the queue empties, ``until`` passes, or
        ``max_events`` have fired.

        Advances ``now`` to ``until`` at the end when a horizon is given,
        even if the queue drained earlier (unless ``max_events`` stopped
        the run first).
        """
        if self._heap is not None and max_events is None:
            # Specialized heap loops for the two hot call shapes; the
            # shared general loop below covers everything else.
            if until is None:
                self._run_heap_unbounded()
            else:
                self._run_heap_until(until)
            return
        processed = 0
        try:
            while True:
                entry = self._pop_entry()
                if entry is None:
                    break
                if max_events is not None and processed >= max_events:
                    self._push_entry(entry)
                    return
                if until is not None and entry[0] > until:
                    self._push_entry(entry)
                    break
                callback = entry[_CALLBACK]
                if callback is None:
                    self._n_cancelled -= 1
                    continue
                # Blank the entry before firing so a handle cancelled
                # from inside its own callback stays a no-op.
                entry[_CALLBACK] = None
                self.now = entry[0]
                args = entry[3]
                if args:
                    callback(*args)
                else:
                    callback()
                processed += 1
        finally:
            self.events_processed += processed
        if until is not None and until > self.now:
            self.now = until

    def _run_heap_unbounded(self) -> None:
        """Drain the heap completely (no horizon, no event bound)."""
        heap = self._heap
        heappop = heapq.heappop
        processed = 0
        try:
            while True:
                entry = heappop(heap)
                callback = entry[2]
                if callback is None:
                    self._n_cancelled -= 1
                    continue
                entry[2] = None
                self.now = entry[0]
                args = entry[3]
                if args:
                    callback(*args)
                else:
                    callback()
                processed += 1
        except IndexError:
            pass  # heap drained
        finally:
            self.events_processed += processed

    def _run_heap_until(self, until: float) -> None:
        """Drain the heap up to (and including) time ``until``."""
        heap = self._heap
        heappop = heapq.heappop
        heappush = heapq.heappush
        processed = 0
        try:
            while True:
                entry = heappop(heap)
                time = entry[0]
                if time > until:
                    heappush(heap, entry)  # same (time, seq): order kept
                    break
                callback = entry[2]
                if callback is None:
                    self._n_cancelled -= 1
                    continue
                entry[2] = None
                self.now = time
                args = entry[3]
                if args:
                    callback(*args)
                else:
                    callback()
                processed += 1
        except IndexError:
            pass  # heap drained before the horizon
        finally:
            self.events_processed += processed
        if until > self.now:
            self.now = until

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        queued = len(self._heap) if self._heap is not None else len(self._sched)
        return queued - self._n_cancelled

    # -- internal ----------------------------------------------------------------

    def _pop_entry(self) -> list | None:
        """Earliest queued entry (live or blanked), or ``None`` if empty."""
        try:
            if self._heap is not None:
                return heapq.heappop(self._heap)
            return self._sched.pop()
        except IndexError:
            return None

    def _push_entry(self, entry: list) -> None:
        """Return an entry taken by :meth:`_pop_entry` to the queue."""
        if self._heap is not None:
            heapq.heappush(self._heap, entry)
        else:
            self._sched.push(entry)

    def _note_cancelled(self) -> None:
        """Record one cancellation; compact when the dead outnumber the live."""
        self._n_cancelled += 1
        queued = len(self._heap) if self._heap is not None else len(self._sched)
        if self._n_cancelled > queued // 2:
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries (queue order is re-derived from the
        ``(time, seq)`` prefix, so live ordering is unchanged).

        Compaction is in place — ``run`` holds a reference to the heap
        list while events fire, and cancellations from inside a callback
        must stay visible to that loop.
        """
        if self._heap is not None:
            self._heap[:] = [
                entry for entry in self._heap if entry[_CALLBACK] is not None
            ]
            heapq.heapify(self._heap)
        else:
            self._sched.compact()
        self._n_cancelled = 0
