"""Per-packet latency decomposition.

The paper reasons about latency as a sum of components (Table 2:
stack/NIC/switch/congestion).  :class:`TracingNetwork` extends the
packet simulator to attribute every microsecond of a packet's delivery
time to one of four buckets:

* **serialization** — clocking bits onto links;
* **switching** — switch (and server-relay) processing latency;
* **queueing** — waiting for busy output ports;
* **propagation** — time on the fibre.

Used to explain *why* one topology beats another: e.g. the three-tier
tree's budget is dominated by the CCS core's switching latency while a
congested tree shifts toward queueing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.routing.base import Router
from repro.sim.engine import Engine
from repro.sim.network import Network, Packet
from repro.topology.base import Topology
from repro.units import serialization_delay


@dataclass(frozen=True)
class LatencyBreakdown:
    """A packet's (or aggregate) latency split into components."""

    serialization: float
    switching: float
    queueing: float
    propagation: float

    @property
    def total(self) -> float:
        return self.serialization + self.switching + self.queueing + self.propagation

    def __add__(self, other: "LatencyBreakdown") -> "LatencyBreakdown":
        return LatencyBreakdown(
            serialization=self.serialization + other.serialization,
            switching=self.switching + other.switching,
            queueing=self.queueing + other.queueing,
            propagation=self.propagation + other.propagation,
        )

    def scaled(self, factor: float) -> "LatencyBreakdown":
        return LatencyBreakdown(
            serialization=self.serialization * factor,
            switching=self.switching * factor,
            queueing=self.queueing * factor,
            propagation=self.propagation * factor,
        )


ZERO_BREAKDOWN = LatencyBreakdown(0.0, 0.0, 0.0, 0.0)


@dataclass
class _PacketLedger:
    serialization: float = 0.0
    switching: float = 0.0
    queueing: float = 0.0
    propagation: float = 0.0


class TracingNetwork(Network):
    """A :class:`~repro.sim.network.Network` that attributes latency.

    Semantics are identical to the base network (same event timing);
    only bookkeeping is added:

    * each port transmission adds its serialization time, plus any gap
      between the packet's earliest-possible start and its actual start
      as queueing;
    * switch latency (and server-relay latency) is charged as switching;
    * every hop adds one propagation delay.

    For cut-through hops the earliest start precedes the tail arrival,
    overlapping output serialization with input reception — that overlap
    is *credited against* serialization so the components still sum to
    the measured end-to-end latency.
    """

    def __init__(
        self, topo: Topology, router: Router, engine: Engine | None = None, **kwargs
    ) -> None:
        # Tracing hooks into the reference _transmit/_arrive loop; the
        # compiled fast path would skip the bookkeeping, so pin it off
        # (tracing is a diagnostic, not a hot path).
        kwargs.setdefault("fastpath", False)
        super().__init__(topo, router, engine=engine, **kwargs)
        self._ledgers: dict[int, _PacketLedger] = {}
        self._pending_switch: dict[int, float] = {}
        self.breakdowns: dict[int, LatencyBreakdown] = {}
        self.breakdowns_by_group: dict[str, list[LatencyBreakdown]] = {}

    # -- bookkeeping hooks --------------------------------------------------------

    def _transmit(self, packet: Packet, earliest_start: float) -> None:
        ledger = self._ledgers.setdefault(packet.packet_id, _PacketLedger())
        node = packet.path[packet.hop]
        next_node = packet.path[packet.hop + 1]
        capacity = self._capacity[(node, next_node)]
        ser = serialization_delay(packet.size_bytes, capacity)
        port = self._ports.get((node, next_node))
        busy_until = port.busy_until if port is not None else 0.0
        now = self.engine.now
        # Switching latency charged for this hop (0 for the host send).
        switching = self._pending_switch.pop(packet.packet_id, 0.0)
        ledger.switching += switching
        # A store-and-forward hop starts no earlier than now + switching;
        # how far cut-through pulls the start earlier is the overlap of
        # output serialization with input reception — credited against
        # serialization so components sum to the measured latency.
        credit = max(0.0, (now + switching) - earliest_start)
        ledger.queueing += max(0.0, busy_until - earliest_start)
        ledger.serialization += ser - min(credit, ser)
        ledger.propagation += self.propagation_delay
        super()._transmit(packet, earliest_start)

    def _arrive(self, packet: Packet) -> None:
        next_hop = packet.hop + 1
        node = packet.path[next_hop]
        if next_hop < len(packet.path) - 1:
            if self.topo.is_server(node):
                self._pending_switch[packet.packet_id] = self.server_forward_latency
            else:
                self._pending_switch[packet.packet_id] = self._switch_models[
                    node
                ].latency
        was_delivered = self.packets_delivered
        super()._arrive(packet)
        if self.packets_delivered > was_delivered:
            ledger = self._ledgers.pop(packet.packet_id, _PacketLedger())
            breakdown = LatencyBreakdown(
                serialization=ledger.serialization,
                switching=ledger.switching,
                queueing=ledger.queueing,
                propagation=ledger.propagation,
            )
            self.breakdowns[packet.packet_id] = breakdown
            if packet.group is not None:
                self.breakdowns_by_group.setdefault(packet.group, []).append(breakdown)

    # -- aggregation ----------------------------------------------------------------

    def mean_breakdown(self, group: str | None = None) -> LatencyBreakdown:
        """Average component breakdown over delivered packets."""
        if group is None:
            pool = list(self.breakdowns.values())
        else:
            pool = self.breakdowns_by_group.get(group, [])
        if not pool:
            raise ValueError("no delivered packets to aggregate")
        total = ZERO_BREAKDOWN
        for item in pool:
            total = total + item
        return total.scaled(1.0 / len(pool))


def format_breakdown(breakdown: LatencyBreakdown, label: str = "") -> str:
    """One-line human-readable rendering (µs)."""
    return (
        f"{label:<26}total {breakdown.total * 1e6:7.2f} us = "
        f"ser {breakdown.serialization * 1e6:6.2f} + "
        f"switch {breakdown.switching * 1e6:6.2f} + "
        f"queue {breakdown.queueing * 1e6:6.2f} + "
        f"prop {breakdown.propagation * 1e6:5.2f}"
    )
