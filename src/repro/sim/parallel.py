"""Conservative-window parallel DES: shard one simulation across processes.

:mod:`repro.runner` parallelizes *across* independent sweep cells; this
module parallelizes *within* one big simulation.  The fabric graph is
cut into per-rack shards (:func:`partition_racks`), each shard runs its
own :class:`~repro.sim.engine.Engine` + :class:`ShardNetwork` in a
pinned worker process, and a coordinator advances all shards in
conservative time windows bounded by the minimum cross-shard lookahead.

Why this is safe — the lookahead argument
-----------------------------------------
Quartz's physics gives every inter-switch link a nonzero delay.  A
packet transmitted at a boundary node ``u`` at local time ``now``
cannot reach the peer shard before

* ``now + latency(u) + propagation`` when ``u`` is a switch — the
  cut-through credit ``-min(ser_in, ser_out)`` never exceeds the output
  serialization the tail still has to pay, and a store-and-forward
  switch only adds to that;
* ``now + min_size * 8 / capacity + propagation`` when ``u`` is a
  server — injection pays at least the smallest packet's serialization
  (server *relays* additionally pay the OS-stack latency, which is
  larger still).

The **lookahead** ``L`` (:func:`lookahead`) is the minimum of those
bounds over every directed boundary link.  Each window starts from the
global next-event time ``N`` (the minimum over shard ``peek_time`` and
pending boundary arrivals) and runs every shard to ``w = min(N + L,
duration)``.  Any boundary packet *generated* inside the window has
generation time ``>= N``, hence arrival ``>= N + L >= w`` — so
exchanging outboxes only at window barriers never delivers a message
late.  Jumping to ``N`` instead of creeping ``L`` at a time makes the
number of windows proportional to traffic, not to ``duration / L``.

Determinism — the fingerprint contract
--------------------------------------
Within a shard, events replay in exactly the serial order (same engine,
same callbacks, same floats: every per-port ``busy_until`` chain is
owned by exactly one shard, and the boundary branch replays the
reference port arithmetic operation for operation).  Across shards,
inbound boundary messages are sorted by ``(arrival, origin_shard,
emit_seq)`` before scheduling, so tie order is a pure function of the
scenario.  :meth:`RunResult.fingerprint` therefore matches the serial
reference bit for bit — the same discipline the fastpath, batch, and
hybrid layers established, enforced by ``tests/sim/test_parallel.py``.

Fault churn crosses shards too: every shard arms the *full* fault
timeline (cuts and repairs are deterministic plan-derived events, cheap
to replay everywhere), so a :class:`~repro.sim.faults.SegmentCut` on a
boundary link invalidates both shards' plans at the same simulated
instant.  A boundary packet severed after transmission is dropped and
counted by the *sending* shard's ``fail_link`` and skipped at the next
barrier; the fault-event duplication is subtracted exactly from the
merged ``events_processed``.  Per-flow recovery *times* are the one
statistic not merged: a recovery window can open in one shard and close
in another, so they are intentionally outside the fingerprint.

Escape hatch: ``REPRO_PARALLEL_DISABLE=1`` (or
``run_parallel(..., parallel=False)``) routes every scenario through
:func:`run_serial`, the single-process reference execution.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import repro.topology as T
from repro import obs as _obs
from repro.core.multiring import plan_rings
from repro.obs.tracing import Span
from repro.routing import ECMPRouter, KShortestPathsRouter, VLBRouter
from repro.routing.base import Router
from repro.runner.pool import PinnedPool
from repro.sim.engine import Engine
from repro.sim.faults import FaultInjector, SegmentCut
from repro.sim.knobs import PARALLEL_ENV, resolve_flag
from repro.sim.network import (
    DEFAULT_PROPAGATION_DELAY,
    Network,
    NetworkSimError,
    Packet,
)
from repro.sim.sources import DEFAULT_PACKET_BYTES, PoissonSource
from repro.sim.switch import get_model
from repro.topology.base import Topology
from repro.units import BITS_PER_BYTE

#: Multiplier shaving the analytic lookahead by one part in 10^9: the
#: per-hop bound holds in exact arithmetic, and the float evaluation of
#: ``start + ser + propagation`` can round each step by at most a few
#: ulp (parts in 10^16) — a nanoscale margin keeps the inequality safe
#: without measurably shrinking windows.
LOOKAHEAD_SAFETY = 1.0 - 1e-9

#: Fabric builders a picklable :class:`ParallelScenario` may name.
#: Scenarios carry the *name* + args, never the topology object, so a
#: worker process reconstructs its own graph (and the builders'
#: artifact cache makes reconstruction cheap).
FABRICS: dict[str, Callable[..., Topology]] = {
    "quartz-ring": T.quartz_ring,
    "quartz-in-edge": T.quartz_in_edge,
    "quartz-dual-tor": T.quartz_dual_tor,
}

#: Router factories a scenario may name (all deterministic + memoized).
ROUTERS: dict[str, Callable[[Topology], Router]] = {
    "ecmp": ECMPRouter,
    "kshortest": KShortestPathsRouter,
    "vlb": VLBRouter,
}


class ParallelSimError(RuntimeError):
    """Raised for invalid shard configurations or lookahead violations."""


# -- partitioning -----------------------------------------------------------------


def partition_racks(topo: Topology, num_shards: int) -> tuple[frozenset[str], ...]:
    """Cut the fabric into ``num_shards`` contiguous-rack shards.

    Every node carrying an integer ``rack`` attribute goes with its
    rack; racks are split into contiguous, balanced index ranges (the
    Quartz ring numbers ToRs around the physical ring, so contiguous
    ranges minimize boundary channels for near-neighbour wavelength
    assignments).  Rack-less nodes (aggregation/core tiers) ride with
    shard 0.  The partition is a pure function of the topology, so every
    process derives the same cut independently.
    """
    if num_shards < 1:
        raise ParallelSimError(f"need at least one shard, got {num_shards}")
    by_rack: dict[int, list[str]] = {}
    unracked: list[str] = []
    for node in topo.graph:
        rack = topo.graph.nodes[node].get("rack")
        if rack is None:
            unracked.append(node)
        else:
            by_rack.setdefault(rack, []).append(node)
    racks = sorted(by_rack)
    if len(racks) < num_shards:
        raise ParallelSimError(
            f"{num_shards} shards need at least as many racks; "
            f"topology {topo.name!r} has {len(racks)}"
        )
    base, extra = divmod(len(racks), num_shards)
    parts: list[frozenset[str]] = []
    lo = 0
    for shard in range(num_shards):
        hi = lo + base + (1 if shard < extra else 0)
        nodes: list[str] = []
        for rack in racks[lo:hi]:
            nodes.extend(by_rack[rack])
        if shard == 0:
            nodes.extend(unracked)
        parts.append(frozenset(nodes))
        lo = hi
    return tuple(parts)


def _owner_map(parts: Sequence[frozenset[str]]) -> dict[str, int]:
    return {node: index for index, part in enumerate(parts) for node in part}


def boundary_links(
    topo: Topology, parts: Sequence[frozenset[str]]
) -> tuple[tuple[str, str], ...]:
    """Directed links whose endpoints live in different shards, sorted."""
    owner = _owner_map(parts)
    out: list[tuple[str, str]] = []
    for u, v in topo.graph.edges():
        if owner[u] != owner[v]:
            out.append((u, v))
            out.append((v, u))
    return tuple(sorted(out))


def lookahead(
    topo: Topology,
    parts: Sequence[frozenset[str]],
    propagation_delay: float = DEFAULT_PROPAGATION_DELAY,
    min_packet_bytes: float = DEFAULT_PACKET_BYTES,
) -> float:
    """Minimum cross-shard delivery delay (the window width bound).

    Per directed boundary link ``(u, v)``: propagation plus the
    transmitting node's floor — the switch processing latency at ``u``
    (cut-through credit cannot beat it; see module docstring), or the
    smallest packet's serialization when ``u`` is a server injecting
    straight onto a boundary link.  Returns ``inf`` when no link
    crosses shards (a single-shard "partition").
    """
    if propagation_delay <= 0:
        raise ParallelSimError(
            f"conservative windows need positive propagation delay, "
            f"got {propagation_delay}"
        )
    if min_packet_bytes <= 0:
        raise ParallelSimError(
            f"minimum packet size must be positive, got {min_packet_bytes}"
        )
    owner = _owner_map(parts)
    best = math.inf
    for u, v, data in topo.graph.edges(data=True):
        if owner[u] == owner[v]:
            continue
        for sender in (u, v):
            if topo.is_server(sender):
                floor = min_packet_bytes * BITS_PER_BYTE / data["capacity"]
            else:
                floor = get_model(topo.switch_model(sender) or "ULL").latency
            bound = propagation_delay + floor
            if bound < best:
                best = bound
    if best is math.inf:
        return math.inf
    return best * LOOKAHEAD_SAFETY


# -- scenario ----------------------------------------------------------------------


@dataclass(frozen=True)
class SourceSpec:
    """One Poisson traffic source, as picklable plain data.

    Mirrors the :class:`~repro.sim.sources.PoissonSource` constructor
    arguments a sharded scenario supports (single destination, no
    delivery callbacks — those close over process-local state).
    """

    src: str
    dst: str
    rate_pps: float
    size_bytes: float = DEFAULT_PACKET_BYTES
    group: str | None = None
    flow_id: int = 0
    seed: int = 0
    stop_at: float | None = None


@dataclass(frozen=True)
class ParallelScenario:
    """A complete, picklable description of one shardable simulation.

    Workers rebuild the fabric and router from ``fabric``/``router``
    registry names (:data:`FABRICS` / :data:`ROUTERS`) — topologies are
    never shipped across process boundaries.  ``fault_plan`` names the
    ``(ring_size, num_rings)`` of the :func:`repro.core.multiring.plan_rings`
    layout the ``fault_cuts`` index into; every shard replays the whole
    fault timeline so cross-boundary cuts hit both sides at the same
    simulated instant.
    """

    fabric: str
    fabric_args: tuple = ()
    router: str = "ecmp"
    sources: tuple[SourceSpec, ...] = ()
    duration: float = 5e-3
    propagation_delay: float = DEFAULT_PROPAGATION_DELAY
    fault_cuts: tuple[SegmentCut, ...] = ()
    fault_plan: tuple[int, int | None] | None = None

    def __post_init__(self) -> None:
        if self.fabric not in FABRICS:
            raise ParallelSimError(
                f"unknown fabric {self.fabric!r}; known: {sorted(FABRICS)}"
            )
        if self.router not in ROUTERS:
            raise ParallelSimError(
                f"unknown router {self.router!r}; known: {sorted(ROUTERS)}"
            )
        if self.duration <= 0:
            raise ParallelSimError(f"duration must be positive, got {self.duration}")
        if self.fault_cuts and self.fault_plan is None:
            raise ParallelSimError("fault_cuts need a fault_plan to index into")

    def build_topology(self) -> Topology:
        return FABRICS[self.fabric](*self.fabric_args)

    def build_router(self, topo: Topology) -> Router:
        return ROUTERS[self.router](topo)

    def min_packet_bytes(self) -> float:
        if not self.sources:
            return DEFAULT_PACKET_BYTES
        return min(spec.size_bytes for spec in self.sources)


def _make_source(network: Network, spec: SourceSpec) -> PoissonSource:
    return PoissonSource(
        network,
        spec.src,
        spec.dst,
        rate_pps=spec.rate_pps,
        size_bytes=spec.size_bytes,
        group=spec.group,
        flow_id=spec.flow_id,
        seed=spec.seed,
        stop_at=spec.stop_at,
    )


def _attach_faults(network: Network, scenario: ParallelScenario) -> int:
    """Arm the scenario's fault timeline; returns the engine events it adds.

    Only events landing within the scenario duration count — later cuts
    or repairs are scheduled but never popped, in serial and in every
    shard alike, so they must not enter the duplicate-event adjustment.
    """
    if not scenario.fault_cuts:
        return 0
    ring_size, num_rings = scenario.fault_plan
    plan = plan_rings(ring_size, num_rings)
    injector = FaultInjector(network, plan)
    injector.schedule(scenario.fault_cuts)
    count = 0
    for cut in scenario.fault_cuts:
        if cut.start <= scenario.duration:
            count += 1
        if cut.repair_at is not None and cut.repair_at <= scenario.duration:
            count += 1
    return count


# -- boundary channel --------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class BoundaryMessage:
    """One packet crossing a shard boundary, as picklable plain data.

    ``hop`` indexes the boundary link ``(path[hop], path[hop + 1])``
    the packet is traversing; the receiver reconstructs the
    :class:`~repro.sim.network.Packet` (and recompiles its hop plan —
    plans hold process-local port references and never travel) and
    schedules the arrival.  ``(arrival, origin, seq)`` is the
    deterministic merge key at window barriers.
    """

    arrival: float
    origin: int
    seq: int
    packet_id: int
    src: str
    dst: str
    size_bytes: float
    path: tuple
    created_at: float
    group: str | None
    hop: int
    rerouted: bool


class ShardNetwork(Network):
    """A :class:`Network` owning one shard of the fabric.

    Both forwarding loops are overridden at exactly one decision point:
    when a packet's next node belongs to a foreign shard, the transmit
    performs the *same* port arithmetic as the base class (the sending
    port is owned here) but appends a :class:`BoundaryMessage` to the
    outbox instead of scheduling a local arrival.  Everything else —
    queueing, telemetry-free stats, fault severing — is inherited.
    """

    def __init__(
        self,
        topo: Topology,
        router: Router,
        owned: frozenset[str],
        shard_index: int = 0,
        **kwargs: object,
    ) -> None:
        if kwargs.get("buffer_bytes") is not None:
            raise ParallelSimError(
                "sharded runs model unbounded buffers only (the backlog "
                "probe reads engine.now mid-window)"
            )
        kwargs.setdefault("telemetry", False)
        super().__init__(topo, router, **kwargs)  # type: ignore[arg-type]
        if self.telemetry is not None:
            raise ParallelSimError("telemetry cannot arm inside a shard")
        self.owned = frozenset(owned)
        self.shard_index = shard_index
        #: Pending outbound crossings: ``(arrival, emit_seq, packet)``.
        self.outbox: list[tuple[float, int, Packet]] = []
        self._emit_seq = 0
        #: Arrival events the serial schedule would have processed but a
        #: shard never does: a fault severed the packet while it sat in
        #: the outbox, so its (early-returning) arrival event is never
        #: scheduled anywhere.  Folded back into the merged
        #: ``events_processed`` for exact equality with serial.
        self.suppressed_events = 0
        #: route tuple -> whether every node is shard-local (memoized).
        self._local_routes: dict[tuple, bool] = {}

    # -- boundary interception ---------------------------------------------------

    def _emit_boundary(self, packet: Packet, arrival: float) -> None:
        self.outbox.append((arrival, self._emit_seq, packet))
        self._emit_seq += 1

    def _transmit(self, packet: Packet, earliest_start: float) -> None:
        path = packet.path
        hop = packet.hop
        if path[hop + 1] in self.owned:
            super()._transmit(packet, earliest_start)
            return
        key = (path[hop], path[hop + 1])
        if self._dead_links and key in self._dead_links:
            self._reroute_or_drop(packet, earliest_start)
            return
        rec = self._link_rec.get(key)
        if rec is None:
            raise NetworkSimError(
                f"no link {path[hop]!r} → {path[hop + 1]!r} on path"
            )
        ser_factor, port, _capacity = rec
        size = packet.size_bytes
        ser = size * ser_factor
        start = port.busy_until
        if start < earliest_start:
            start = earliest_start
        tail_out = start + ser
        port.busy_until = tail_out
        port.packets_sent += 1
        port.bytes_sent += size
        if self._track_in_flight:
            self._in_flight.setdefault(key, set()).add(packet)
        self._emit_boundary(packet, tail_out + self.propagation_delay)

    def _transmit_fast(self, packet: Packet, earliest_start: float) -> None:
        plan = packet.plan
        hop = packet.hop
        if plan.keys[hop][1] in self.owned:
            super()._transmit_fast(packet, earliest_start)
            return
        if self._dead_links and plan.keys[hop] in self._dead_links:
            self._reroute_or_drop(packet, earliest_start)
            return
        port = plan.ports[hop]
        size = packet.size_bytes
        ser = size * plan.ser[hop]
        start = port.busy_until
        if start < earliest_start:
            start = earliest_start
        tail_out = start + ser
        port.busy_until = tail_out
        port.packets_sent += 1
        port.bytes_sent += size
        if self._track_in_flight:
            self._in_flight.setdefault(plan.keys[hop], set()).add(packet)
        self._emit_boundary(packet, tail_out + self.propagation_delay)

    def send_cohort(self, src, dst, size_bytes, times, flow_id=0, group=None):
        """Cohorts may only batch over fully shard-local routes.

        A stacked flight walks every port on the path in one step; a
        foreign port's ``busy_until`` chain lives in another process.
        Returning ``0`` sends the caller down the scalar fire, whose
        boundary interception handles the crossing.
        """
        if not self.batch_enabled or not self.engine.batching_ok:
            return 0
        route = self.router.route(src, dst, flow_id)
        if type(route) is not tuple:
            route = tuple(route)
        local = self._local_routes.get(route)
        if local is None:
            local = self._local_routes[route] = all(
                node in self.owned for node in route
            )
        if not local:
            return 0
        return super().send_cohort(
            src, dst, size_bytes, times, flow_id=flow_id, group=group
        )

    # -- barrier protocol --------------------------------------------------------

    def drain_outbox(self, cutoff: float) -> list[BoundaryMessage]:
        """Collect this window's boundary crossings as picklable messages.

        Packets severed by a fault after transmission (``dropped``) were
        already counted by this shard's ``fail_link`` and are skipped —
        their never-scheduled arrival events are tallied in
        ``suppressed_events`` when the serial run would have popped them
        (arrival within ``cutoff``, the scenario duration).  Everything
        shipped is deregistered from in-flight tracking so a *later* cut
        on the boundary link cannot double-count a packet that now lives
        in the peer shard.
        """
        messages: list[BoundaryMessage] = []
        for arrival, seq, packet in self.outbox:
            hop = packet.hop
            key = (packet.path[hop], packet.path[hop + 1])
            if self._track_in_flight:
                flight = self._in_flight.get(key)
                if flight is not None:
                    flight.discard(packet)
            if packet.dropped:
                if arrival <= cutoff:
                    self.suppressed_events += 1
                continue
            messages.append(
                BoundaryMessage(
                    arrival=arrival,
                    origin=self.shard_index,
                    seq=seq,
                    packet_id=packet.packet_id,
                    src=packet.src,
                    dst=packet.dst,
                    size_bytes=packet.size_bytes,
                    path=packet.path,
                    created_at=packet.created_at,
                    group=packet.group,
                    hop=hop,
                    rerouted=packet.rerouted,
                )
            )
        self.outbox = []
        return messages

    def receive_boundary(self, messages: Sequence[BoundaryMessage]) -> None:
        """Schedule inbound crossings (already barrier-sorted) as arrivals."""
        now = self.engine.now
        items: list[tuple[float, Callable, tuple]] = []
        for message in messages:
            if message.arrival < now:
                raise ParallelSimError(
                    f"lookahead violation: boundary arrival {message.arrival!r} "
                    f"before shard {self.shard_index} time {now!r}"
                )
            packet = Packet(
                packet_id=message.packet_id,
                src=message.src,
                dst=message.dst,
                size_bytes=message.size_bytes,
                path=message.path,
                created_at=message.created_at,
                group=message.group,
                hop=message.hop,
            )
            packet.rerouted = message.rerouted
            if self.fastpath_enabled:
                packet.plan = (
                    self._plans.get(message.path)
                    or self._compile_plan(message.path)
                )
                callback = self._arrive_fast
            else:
                callback = self._arrive
            if self._track_in_flight:
                key = (message.path[message.hop], message.path[message.hop + 1])
                self._in_flight.setdefault(key, set()).add(packet)
            items.append((message.arrival, callback, (packet,)))
        self.engine.call_at_many(items)


# -- per-shard state ---------------------------------------------------------------


@dataclass
class StepReport:
    """What one shard reports back at a window barrier (picklable)."""

    outbox: list[BoundaryMessage]
    next_event: float
    busy_wall: float
    busy_cpu: float
    #: Observability spans drained from the shard's tracer this window
    #: (empty unless :mod:`repro.obs` is armed in the worker).
    spans: list = field(default_factory=list)


@dataclass
class ShardResult:
    """One shard's (or the serial reference's) final state, as plain data."""

    shard_index: int
    packets_delivered: int
    packets_dropped: int
    packets_dropped_fault: int
    packets_rerouted: int
    packets_unroutable: int
    next_packet_id: int
    events_processed: int
    fault_event_count: int
    suppressed_events: int
    samples: tuple[float, ...]
    by_group: tuple[tuple[str, tuple[float, ...]], ...]
    port_state: tuple[tuple[tuple[str, str], int, float, float], ...]
    source_packets: tuple[tuple[int, int], ...]
    drops_by_flow: tuple[tuple[str | None, int], ...]
    reroutes_by_flow: tuple[tuple[str | None, int], ...]
    now: float
    #: Metrics-registry snapshot drained from the shard's process when
    #: :mod:`repro.obs` is armed (``None`` otherwise); merged into the
    #: coordinator's registry, never fingerprinted.
    obs: dict | None = None


def extract_result(
    network: Network,
    sources: Mapping[int, PoissonSource],
    fault_event_count: int,
    owned: frozenset[str] | None = None,
    shard_index: int = 0,
    obs_snapshot: dict | None = None,
) -> ShardResult:
    """Snapshot a finished network into a :class:`ShardResult`.

    ``owned`` filters the port table to directed links transmitted by
    this shard (each directed port is owned by exactly one shard, so
    the union over shards reconstructs the serial table exactly);
    ``None`` keeps everything — the serial reference.
    """
    ports = [
        (key, port.packets_sent, port.bytes_sent, port.busy_until)
        for key, port in network._ports.items()
        if owned is None or key[0] in owned
    ]
    ports.sort()
    return ShardResult(
        shard_index=shard_index,
        packets_delivered=network.packets_delivered,
        packets_dropped=network.packets_dropped,
        packets_dropped_fault=network.packets_dropped_fault,
        packets_rerouted=network.packets_rerouted,
        packets_unroutable=network.packets_unroutable,
        next_packet_id=network._next_packet_id,
        events_processed=network.engine.events_processed,
        fault_event_count=fault_event_count,
        suppressed_events=getattr(network, "suppressed_events", 0),
        samples=tuple(network.stats.samples),
        by_group=tuple(
            (group, tuple(values))
            for group, values in sorted(network.stats.by_group.items())
        ),
        port_state=tuple(ports),
        source_packets=tuple(
            sorted((index, source.packets_sent) for index, source in sources.items())
        ),
        drops_by_flow=tuple(sorted(network.fault_stats.drops_by_flow.items(),
                                   key=lambda item: (item[0] is None, item[0]))),
        reroutes_by_flow=tuple(sorted(network.fault_stats.reroutes_by_flow.items(),
                                      key=lambda item: (item[0] is None, item[0]))),
        now=network.engine.now,
        obs=obs_snapshot,
    )


class ShardRuntime:
    """One shard's live simulation state, stepped window by window."""

    def __init__(
        self, scenario: ParallelScenario, shard_index: int, num_shards: int
    ) -> None:
        self.scenario = scenario
        self.shard_index = shard_index
        topo = scenario.build_topology()
        parts = partition_racks(topo, num_shards)
        owned = parts[shard_index]
        router = scenario.build_router(topo)
        self.network = ShardNetwork(
            topo,
            router,
            owned=owned,
            shard_index=shard_index,
            propagation_delay=scenario.propagation_delay,
        )
        self.sources: dict[int, PoissonSource] = {
            index: _make_source(self.network, spec)
            for index, spec in enumerate(scenario.sources)
            if spec.src in owned
        }
        self.fault_event_count = _attach_faults(self.network, scenario)
        for source in self.sources.values():
            source.start()

    def step(self, until: float, inbox: Sequence[BoundaryMessage]) -> StepReport:
        network = self.network
        if inbox:
            network.receive_boundary(inbox)
        wall0 = time.perf_counter()
        cpu0 = time.process_time()
        network.engine.run(until=until)
        busy_cpu = time.process_time() - cpu0
        busy_wall = time.perf_counter() - wall0
        # Ship this window's spans home with the report; the spans carry
        # this worker's pid, so the merged trace keeps one lane per
        # shard.  The shard index becomes the Chrome trace tid.
        tracer = _obs.tracer()
        spans = tracer.drain() if tracer is not None else []
        if spans and self.shard_index:
            spans = [
                Span(s.name, s.start, s.duration, s.pid,
                     self.shard_index, s.args)
                for s in spans
            ]
        return StepReport(
            outbox=network.drain_outbox(self.scenario.duration),
            next_event=network.engine.peek_time(),
            busy_wall=busy_wall,
            busy_cpu=busy_cpu,
            spans=spans,
        )

    def finish(self) -> ShardResult:
        registry = _obs.registry()
        return extract_result(
            self.network,
            self.sources,
            self.fault_event_count,
            owned=self.network.owned,
            shard_index=self.shard_index,
            obs_snapshot=registry.drain() if registry is not None else None,
        )


# -- worker-process plumbing -------------------------------------------------------

#: The shard living in this worker process (pinned-pool slot state).
_RUNTIME: ShardRuntime | None = None


def _worker_init_shard(
    scenario: ParallelScenario,
    shard_index: int,
    num_shards: int,
    arm_obs: bool = False,
) -> None:
    global _RUNTIME
    if arm_obs:
        # The coordinator is armed: arm this worker too, so shard-side
        # metrics and spans exist to ship home at barriers/finish.
        _obs.arm()
    _RUNTIME = ShardRuntime(scenario, shard_index, num_shards)


def _worker_ready() -> bool:
    return _RUNTIME is not None


def _worker_step(until: float, inbox: list[BoundaryMessage]) -> StepReport:
    return _RUNTIME.step(until, inbox)


def _worker_finish() -> ShardResult:
    return _RUNTIME.finish()


class _ImmediateFuture:
    """Future-shaped wrapper for inline (in-process) shard stepping."""

    __slots__ = ("_value",)

    def __init__(self, value: object) -> None:
        self._value = value

    def result(self) -> object:
        return self._value


class _InlineShard:
    def __init__(
        self, scenario: ParallelScenario, shard_index: int, num_shards: int
    ) -> None:
        self._runtime = ShardRuntime(scenario, shard_index, num_shards)

    def step(self, until: float, inbox: list) -> _ImmediateFuture:
        return _ImmediateFuture(self._runtime.step(until, inbox))

    def finish(self) -> _ImmediateFuture:
        return _ImmediateFuture(self._runtime.finish())


class _ProcessShard:
    def __init__(self, pool: PinnedPool, slot: int) -> None:
        self._pool = pool
        self._slot = slot

    def step(self, until: float, inbox: list):
        return self._pool.submit(self._slot, _worker_step, until, inbox)

    def finish(self):
        return self._pool.submit(self._slot, _worker_finish)


# -- merged results ----------------------------------------------------------------


@dataclass
class RunResult:
    """A finished scenario — serial or parallel, same shape either way.

    Everything :meth:`fingerprint` returns is deterministic simulation
    state; the timing fields (never fingerprinted) split the run into
    spin-up (pool + shard construction), compute (max over shards of
    in-window CPU seconds — immune to timesharing on small CI
    containers), and barrier coordination.
    """

    mode: str
    num_shards: int
    windows: int
    lookahead: float
    boundary_messages: int
    packets_delivered: int
    packets_dropped: int
    packets_dropped_fault: int
    packets_rerouted: int
    packets_unroutable: int
    next_packet_id: int
    events_processed: int
    samples: tuple[float, ...]
    by_group: tuple[tuple[str, tuple[float, ...]], ...]
    port_state: tuple[tuple[tuple[str, str], int, float, float], ...]
    source_packets: tuple[tuple[int, int], ...]
    drops_by_flow: tuple[tuple[str | None, int], ...]
    reroutes_by_flow: tuple[tuple[str | None, int], ...]
    wall_seconds: float
    spinup_seconds: float
    compute_seconds: float
    barrier_seconds: float

    def fingerprint(self) -> tuple:
        """Deterministic run signature; parallel must equal serial exactly."""
        return (
            self.packets_delivered,
            self.packets_dropped,
            self.packets_dropped_fault,
            self.packets_rerouted,
            self.packets_unroutable,
            self.next_packet_id,
            self.events_processed,
            self.samples,
            self.by_group,
            self.port_state,
            self.source_packets,
            self.drops_by_flow,
            self.reroutes_by_flow,
        )


def _merge_results(
    results: Sequence[ShardResult],
    *,
    mode: str,
    num_shards: int,
    windows: int,
    lookahead_seconds: float,
    boundary_messages: int,
    wall_seconds: float,
    spinup_seconds: float,
    compute_seconds: float,
    barrier_seconds: float,
) -> RunResult:
    """Combine shard snapshots into the canonical merged result.

    Counters sum; latency samples merge by sorted value (the canonical
    order — per-shard insertion order interleaves differently than
    serial, values do not); the port table unions (each directed port
    has exactly one owner); ``events_processed`` subtracts the fault
    timeline every extra shard replayed, which is the only duplicated
    event source.
    """
    fault_events = results[0].fault_event_count if results else 0
    events = sum(r.events_processed + r.suppressed_events for r in results)
    events -= (len(results) - 1) * fault_events
    samples = tuple(sorted(s for r in results for s in r.samples))
    groups: dict[str, list[float]] = {}
    for r in results:
        for group, values in r.by_group:
            groups.setdefault(group, []).extend(values)
    by_group = tuple(
        (group, tuple(sorted(values))) for group, values in sorted(groups.items())
    )
    flow_drops: dict[str | None, int] = {}
    flow_reroutes: dict[str | None, int] = {}
    for r in results:
        for flow, count in r.drops_by_flow:
            flow_drops[flow] = flow_drops.get(flow, 0) + count
        for flow, count in r.reroutes_by_flow:
            flow_reroutes[flow] = flow_reroutes.get(flow, 0) + count
    sort_key = lambda item: (item[0] is None, item[0])  # noqa: E731
    return RunResult(
        mode=mode,
        num_shards=num_shards,
        windows=windows,
        lookahead=lookahead_seconds,
        boundary_messages=boundary_messages,
        packets_delivered=sum(r.packets_delivered for r in results),
        packets_dropped=sum(r.packets_dropped for r in results),
        packets_dropped_fault=sum(r.packets_dropped_fault for r in results),
        packets_rerouted=sum(r.packets_rerouted for r in results),
        packets_unroutable=sum(r.packets_unroutable for r in results),
        next_packet_id=sum(r.next_packet_id for r in results),
        events_processed=events,
        samples=samples,
        by_group=by_group,
        port_state=tuple(sorted(p for r in results for p in r.port_state)),
        source_packets=tuple(
            sorted(pair for r in results for pair in r.source_packets)
        ),
        drops_by_flow=tuple(sorted(flow_drops.items(), key=sort_key)),
        reroutes_by_flow=tuple(sorted(flow_reroutes.items(), key=sort_key)),
        wall_seconds=wall_seconds,
        spinup_seconds=spinup_seconds,
        compute_seconds=compute_seconds,
        barrier_seconds=barrier_seconds,
    )


# -- drivers -----------------------------------------------------------------------


def run_serial(scenario: ParallelScenario) -> RunResult:
    """The single-process reference execution every parallel run must match."""
    wall0 = time.perf_counter()
    topo = scenario.build_topology()
    router = scenario.build_router(topo)
    network = Network(
        topo,
        router,
        propagation_delay=scenario.propagation_delay,
        telemetry=False,
    )
    sources = {
        index: _make_source(network, spec)
        for index, spec in enumerate(scenario.sources)
    }
    fault_events = _attach_faults(network, scenario)
    for source in sources.values():
        source.start()
    spinup = time.perf_counter() - wall0
    cpu0 = time.process_time()
    network.engine.run(until=scenario.duration)
    compute = time.process_time() - cpu0
    wall = time.perf_counter() - wall0
    snapshot = extract_result(network, sources, fault_events)
    return _merge_results(
        [snapshot],
        mode="serial",
        num_shards=1,
        windows=0,
        lookahead_seconds=math.inf,
        boundary_messages=0,
        wall_seconds=wall,
        spinup_seconds=spinup,
        compute_seconds=compute,
        barrier_seconds=0.0,
    )


def _step_all(handles: Sequence, until: float, inboxes: Sequence[list]) -> list[StepReport]:
    futures = [
        handle.step(until, inbox) for handle, inbox in zip(handles, inboxes)
    ]
    return [future.result() for future in futures]


def run_parallel(
    scenario: ParallelScenario,
    num_shards: int = 2,
    mode: str = "process",
    parallel: bool | None = None,
) -> RunResult:
    """Run a scenario sharded across ``num_shards`` conservative windows.

    ``mode`` is ``"process"`` (one pinned worker process per shard — the
    real thing) or ``"inline"`` (shards stepped sequentially in this
    process — same windows, same barriers, no pickling; for tests and
    debugging).  ``parallel``/``REPRO_PARALLEL_DISABLE`` resolve through
    :func:`repro.sim.knobs.resolve_flag`; when disabled (or with a
    single shard) the scenario runs through :func:`run_serial`.
    """
    if mode not in ("process", "inline"):
        raise ParallelSimError(f"mode must be 'process' or 'inline', got {mode!r}")
    if not resolve_flag(parallel, PARALLEL_ENV, env_disables=True) or num_shards <= 1:
        return run_serial(scenario)

    wall0 = time.perf_counter()
    topo = scenario.build_topology()
    parts = partition_racks(topo, num_shards)
    owner = _owner_map(parts)
    window = lookahead(
        topo,
        parts,
        propagation_delay=scenario.propagation_delay,
        min_packet_bytes=scenario.min_packet_bytes(),
    )
    if math.isinf(window):
        raise ParallelSimError(
            "partition has no boundary links — nothing to coordinate"
        )

    reg = _obs.registry()
    tracer = _obs.tracer()
    pool: PinnedPool | None = None
    spin0 = time.perf_counter()
    if mode == "inline":
        handles: list = [
            _InlineShard(scenario, index, num_shards) for index in range(num_shards)
        ]
    else:
        pool = PinnedPool(
            num_shards,
            initializer=_worker_init_shard,
            initargs_per_slot=[
                (scenario, index, num_shards, reg is not None)
                for index in range(num_shards)
            ],
        )
        for future in pool.broadcast(_worker_ready):
            if not future.result():
                raise ParallelSimError("shard worker failed to initialize")
        handles = [_ProcessShard(pool, slot) for slot in range(num_shards)]
    spinup = time.perf_counter() - spin0

    duration = scenario.duration
    busy_wall = [0.0] * num_shards
    busy_cpu = [0.0] * num_shards
    windows = 0
    boundary_messages = 0
    pending: list[BoundaryMessage] = []
    empty: list[list[BoundaryMessage]] = [[] for _ in range(num_shards)]
    try:
        # Prime: process any t<=0 events and learn each shard's horizon.
        reports = _step_all(handles, 0.0, empty)
        peeks = [report.next_event for report in reports]
        for index, report in enumerate(reports):
            busy_wall[index] += report.busy_wall
            busy_cpu[index] += report.busy_cpu
            pending.extend(report.outbox)
            if tracer is not None:
                tracer.ingest(report.spans)

        while True:
            horizon = min(peeks)
            if pending:
                first_arrival = min(m.arrival for m in pending)
                if first_arrival < horizon:
                    horizon = first_arrival
            if horizon > duration:
                break
            until = horizon + window
            if until > duration:
                until = duration
            inboxes: list[list[BoundaryMessage]] = [[] for _ in range(num_shards)]
            for message in pending:
                inboxes[owner[message.path[message.hop + 1]]].append(message)
            for inbox in inboxes:
                inbox.sort(key=lambda m: (m.arrival, m.origin, m.seq))
            boundary_messages += len(pending)
            pending = []
            window_start = time.perf_counter() if reg is not None else 0.0
            reports = _step_all(handles, until, inboxes)
            windows += 1
            for index, report in enumerate(reports):
                busy_wall[index] += report.busy_wall
                busy_cpu[index] += report.busy_cpu
                peeks[index] = report.next_event
                pending.extend(report.outbox)
            if reg is not None:
                # One window = every shard stepped to `until`, then the
                # barrier: the coordinator idled from the slowest
                # shard's in-window work to the window's wall end.
                window_wall = time.perf_counter() - window_start
                slowest = max(report.busy_wall for report in reports)
                stall = max(0.0, window_wall - slowest)
                reg.incr("parallel.windows")
                reg.observe("parallel.window_seconds", window_wall)
                reg.observe("parallel.barrier_seconds", stall)
                if tracer is not None:
                    for report in reports:
                        tracer.ingest(report.spans)
                    tracer.add("parallel.window", window_start, window_wall,
                               window=windows, until=until)
                    tracer.add("parallel.barrier", window_start + slowest,
                               stall, window=windows)

        # Land every shard exactly on the duration mark, mirroring the
        # serial run's final clock (no events remain at or before it).
        reports = _step_all(handles, duration, [[] for _ in range(num_shards)])
        for index, report in enumerate(reports):
            busy_wall[index] += report.busy_wall
            busy_cpu[index] += report.busy_cpu
            if tracer is not None:
                tracer.ingest(report.spans)
        results = [future.result() for future in [h.finish() for h in handles]]
    finally:
        if pool is not None:
            pool.shutdown()
    wall = time.perf_counter() - wall0

    compute = max(busy_cpu) if busy_cpu else 0.0
    barrier = max(0.0, wall - spinup - (max(busy_wall) if busy_wall else 0.0))
    if reg is not None:
        # Shard registries drained at finish() merge here, so a sweep
        # over run_parallel aggregates exactly like run_cells workers.
        for result in results:
            if result.obs:
                reg.merge(result.obs)
        reg.incr("parallel.runs")
        reg.incr("parallel.boundary_messages", boundary_messages)
        reg.gauge("parallel.compute_seconds", compute)
        reg.gauge("parallel.barrier_wall_seconds", barrier)
    return _merge_results(
        results,
        mode=f"parallel-{mode}",
        num_shards=num_shards,
        windows=windows,
        lookahead_seconds=window,
        boundary_messages=boundary_messages,
        wall_seconds=wall,
        spinup_seconds=spinup,
        compute_seconds=compute,
        barrier_seconds=barrier,
    )
