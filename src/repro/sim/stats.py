"""Latency statistics collection for simulation runs."""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass(frozen=True)
class LatencySummary:
    """Summary statistics over a set of packet latencies (seconds)."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    p50: float
    p95: float
    p99: float

    @property
    def ci95_halfwidth(self) -> float:
        """Half-width of the normal-approximation 95 % confidence interval."""
        if self.count < 2:
            return 0.0
        return 1.96 * self.std / math.sqrt(self.count)


def summarize_latencies(samples: list[float]) -> LatencySummary:
    """Compute a :class:`LatencySummary`; raises on an empty sample set."""
    if not samples:
        raise ValueError("no latency samples recorded")
    ordered = sorted(samples)
    n = len(ordered)
    mean = math.fsum(ordered) / n
    variance = math.fsum((x - mean) ** 2 for x in ordered) / (n - 1) if n > 1 else 0.0
    return LatencySummary(
        count=n,
        mean=mean,
        std=math.sqrt(variance),
        minimum=ordered[0],
        maximum=ordered[-1],
        p50=_percentile(ordered, 0.50),
        p95=_percentile(ordered, 0.95),
        p99=_percentile(ordered, 0.99),
    )


def _percentile(ordered: list[float], q: float) -> float:
    """Nearest-rank percentile on a pre-sorted list."""
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    index = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
    return ordered[index]


@dataclass
class LatencyRecorder:
    """Accumulates per-packet delivery latencies, grouped by flow label."""

    samples: list[float] = field(default_factory=list)
    by_group: dict[str, list[float]] = field(default_factory=dict)

    def record(self, latency: float, group: str | None = None) -> None:
        if latency < 0:
            raise ValueError(f"negative latency {latency}")
        self.samples.append(latency)
        if group is not None:
            self.by_group.setdefault(group, []).append(latency)

    @property
    def count(self) -> int:
        return len(self.samples)

    def summary(self, group: str | None = None) -> LatencySummary:
        """Summary over all samples, or one group's samples."""
        if group is None:
            return summarize_latencies(self.samples)
        return summarize_latencies(self.by_group.get(group, []))

    def groups(self) -> list[str]:
        return sorted(self.by_group)

    def clear(self) -> None:
        self.samples.clear()
        self.by_group.clear()
