"""Latency and fault statistics collection for simulation runs."""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass(frozen=True)
class LatencySummary:
    """Summary statistics over a set of packet latencies (seconds)."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    p50: float
    p95: float
    p99: float

    @property
    def ci95_halfwidth(self) -> float:
        """Half-width of the normal-approximation 95 % confidence interval."""
        if self.count < 2:
            return 0.0
        return 1.96 * self.std / math.sqrt(self.count)


def summarize_latencies(samples: list[float]) -> LatencySummary:
    """Compute a :class:`LatencySummary`; raises on an empty sample set."""
    if not samples:
        raise ValueError("no latency samples recorded")
    ordered = sorted(samples)
    n = len(ordered)
    mean = math.fsum(ordered) / n
    variance = math.fsum((x - mean) ** 2 for x in ordered) / (n - 1) if n > 1 else 0.0
    return LatencySummary(
        count=n,
        mean=mean,
        std=math.sqrt(variance),
        minimum=ordered[0],
        maximum=ordered[-1],
        p50=_percentile(ordered, 0.50),
        p95=_percentile(ordered, 0.95),
        p99=_percentile(ordered, 0.99),
    )


def _percentile(ordered: list[float], q: float) -> float:
    """Nearest-rank percentile on a pre-sorted list."""
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    index = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
    return ordered[index]


@dataclass
class HopStampStats:
    """Aggregated INT stamps for one (flow, node) pair.

    Telemetry's per-packet stamping records the queue depth seen and
    the wait time paid at every hop; on delivery the stamps fold into
    these per-flow, per-node aggregates (sum + max, so mean/max are
    O(1) to read and the recorder never stores per-packet lists).
    """

    packets: int = 0
    depth_sum: int = 0
    depth_max: int = 0
    wait_sum: float = 0.0
    wait_max: float = 0.0

    @property
    def mean_depth(self) -> float:
        return self.depth_sum / self.packets if self.packets else 0.0

    @property
    def mean_wait(self) -> float:
        return self.wait_sum / self.packets if self.packets else 0.0


@dataclass
class LatencyRecorder:
    """Accumulates per-packet delivery latencies, grouped by flow label.

    When telemetry stamping is armed, each delivered packet's INT
    stamps additionally fold into ``hop_stamps`` — flow label → node →
    :class:`HopStampStats` — giving every flow a per-hop queueing
    profile alongside its latency samples.
    """

    samples: list[float] = field(default_factory=list)
    by_group: dict[str, list[float]] = field(default_factory=dict)
    hop_stamps: dict[str, dict[str, HopStampStats]] = field(default_factory=dict)

    def record(self, latency: float, group: str | None = None) -> None:
        if latency < 0:
            raise ValueError(f"negative latency {latency}")
        self.samples.append(latency)
        if group is not None:
            self.by_group.setdefault(group, []).append(latency)

    def record_many(self, latencies: list[float], group: str | None = None) -> None:
        """Bulk :meth:`record`: append many samples, preserving order.

        One validation pass and two list extends, so a batched cohort
        commit records its deliveries without a per-packet call.  The
        resulting ``samples`` / ``by_group`` contents are exactly what
        per-packet :meth:`record` calls in the same order would leave.
        """
        if latencies and min(latencies) < 0:
            raise ValueError(f"negative latency {min(latencies)}")
        self.samples.extend(latencies)
        if group is not None:
            self.by_group.setdefault(group, []).extend(latencies)

    def record_stamps(
        self, group: str | None, stamps: list[tuple[str, int, float]]
    ) -> None:
        """Fold one delivered packet's INT stamps into the flow records.

        ``stamps`` is the packet's per-hop ``(node, queue depth seen,
        wait time)`` list, in path order.  Packets without a ``group``
        share the :data:`UNGROUPED` flow record.
        """
        flow = group if group is not None else UNGROUPED
        per_node = self.hop_stamps.get(flow)
        if per_node is None:
            per_node = self.hop_stamps[flow] = {}
        for node, depth, wait in stamps:
            rec = per_node.get(node)
            if rec is None:
                rec = per_node[node] = HopStampStats()
            rec.packets += 1
            rec.depth_sum += depth
            if depth > rec.depth_max:
                rec.depth_max = depth
            rec.wait_sum += wait
            if wait > rec.wait_max:
                rec.wait_max = wait

    @property
    def count(self) -> int:
        return len(self.samples)

    def summary(self, group: str | None = None) -> LatencySummary:
        """Summary over all samples, or one group's samples."""
        if group is None:
            return summarize_latencies(self.samples)
        return summarize_latencies(self.by_group.get(group, []))

    def groups(self) -> list[str]:
        return sorted(self.by_group)

    def clear(self) -> None:
        self.samples.clear()
        self.by_group.clear()
        self.hop_stamps.clear()


# -- fault observability ------------------------------------------------------------

#: Flow label used for packets injected without a ``group``.
UNGROUPED = "<ungrouped>"


@dataclass(frozen=True)
class FaultLogEntry:
    """One entry of the per-run fault log.

    ``kind`` is one of ``"cut"`` / ``"repair"`` (a physical fibre-segment
    event, with ``ring``/``segment`` set) or ``"link_down"`` /
    ``"link_up"`` (one severed/restored mesh channel, with ``link`` set).
    ``detail`` carries free-form context (e.g. the number of in-flight
    packets dropped when a channel died).
    """

    time: float
    kind: str
    ring: int | None = None
    segment: int | None = None
    link: tuple[str, str] | None = None
    detail: str = ""


@dataclass
class FaultRecorder:
    """Fault observability: event log plus per-flow degradation counters.

    Flows are keyed by the packet's ``group`` label (the same label
    :class:`LatencyRecorder` buckets by); packets without a group share
    the :data:`UNGROUPED` bucket.

    A flow's **recovery time** measures how long its traffic was
    disrupted: the clock starts at the flow's first drop or reroute and
    stops at its next successful delivery.  A flow can recover several
    times in one run (e.g. cut → recover → second cut), so recovery
    times accumulate per flow.
    """

    events: list[FaultLogEntry] = field(default_factory=list)
    drops_by_flow: dict[str, int] = field(default_factory=dict)
    reroutes_by_flow: dict[str, int] = field(default_factory=dict)
    recovery_times_by_flow: dict[str, list[float]] = field(default_factory=dict)
    #: Flows currently inside an outage window (first disruption time).
    awaiting_recovery: dict[str, float] = field(default_factory=dict)

    def log(
        self,
        time: float,
        kind: str,
        ring: int | None = None,
        segment: int | None = None,
        link: tuple[str, str] | None = None,
        detail: str = "",
    ) -> None:
        self.events.append(
            FaultLogEntry(
                time=time, kind=kind, ring=ring, segment=segment,
                link=link, detail=detail,
            )
        )

    def record_drop(self, flow: str | None, time: float) -> None:
        key = flow if flow is not None else UNGROUPED
        self.drops_by_flow[key] = self.drops_by_flow.get(key, 0) + 1
        self.awaiting_recovery.setdefault(key, time)

    def record_reroute(self, flow: str | None, time: float) -> None:
        key = flow if flow is not None else UNGROUPED
        self.reroutes_by_flow[key] = self.reroutes_by_flow.get(key, 0) + 1
        self.awaiting_recovery.setdefault(key, time)

    def record_delivery(self, flow: str | None, time: float) -> None:
        """Close the flow's outage window, if one is open."""
        if not self.awaiting_recovery:
            return
        key = flow if flow is not None else UNGROUPED
        started = self.awaiting_recovery.pop(key, None)
        if started is not None:
            self.recovery_times_by_flow.setdefault(key, []).append(time - started)

    # -- aggregates ---------------------------------------------------------------

    @property
    def total_drops(self) -> int:
        return sum(self.drops_by_flow.values())

    @property
    def total_reroutes(self) -> int:
        return sum(self.reroutes_by_flow.values())

    def recovery_times(self) -> list[float]:
        """All completed recovery intervals, in recording order per flow."""
        return [t for times in self.recovery_times_by_flow.values() for t in times]

    def max_recovery_time(self) -> float:
        """Slowest completed recovery, or 0.0 when nothing was disrupted."""
        times = self.recovery_times()
        return max(times) if times else 0.0

    def clear(self) -> None:
        self.events.clear()
        self.drops_by_flow.clear()
        self.reroutes_by_flow.clear()
        self.recovery_times_by_flow.clear()
        self.awaiting_recovery.clear()
