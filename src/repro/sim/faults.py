"""Runtime fault injection for the packet simulator — Section 3.5, live.

The static Monte-Carlo in :mod:`repro.core.fault` evaluates a wavelength
plan's fault tolerance without ever running traffic.  This module is the
dynamic counterpart: fibre-segment cuts and repairs are scheduled as
engine events, so a live :class:`~repro.sim.network.Network` experiences
failures *while packets are in flight* and the run shows how the mesh
degrades and recovers.

The physical-to-logical mapping comes from a
:class:`~repro.core.multiring.MultiRingPlan`: cutting fibre segment
``s`` of ring ``r`` severs every mesh channel whose wavelength path
crosses that segment on that ring
(:meth:`~repro.core.multiring.MultiRingPlan.channels_crossing`).  The
injector tears the corresponding links down via
:meth:`Network.fail_link` — dropping packets queued on them and
invalidating the router's memoized picks — and resurrects a channel on
repair only once *every* segment its path crosses is intact again.

Everything is deterministic given a seed: schedules are materialized
up front (:func:`random_fault_schedule`) and applied as ordinary engine
events, so a seeded run is bit-identical regardless of how the
surrounding sweep is parallelized.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.multiring import MultiRingPlan
from repro.sim.network import Network


class FaultInjectionError(ValueError):
    """Raised for invalid fault schedules or mismatched plans."""


@dataclass(frozen=True)
class SegmentCut:
    """One scheduled fibre-segment failure (and optional repair).

    ``ring``/``segment`` index into the physical multi-ring layout;
    ``start`` is the absolute sim time of the cut and ``repair_at`` the
    absolute time the fibre is spliced back (``None`` = never).
    """

    start: float
    ring: int
    segment: int
    repair_at: float | None = None

    def validate(self, plan: MultiRingPlan) -> None:
        if self.start < 0:
            raise FaultInjectionError(f"cut time must be non-negative, got {self.start}")
        if not 0 <= self.ring < plan.num_rings:
            raise FaultInjectionError(
                f"ring {self.ring} out of range (plan has {plan.num_rings})"
            )
        if not 0 <= self.segment < plan.ring_size:
            raise FaultInjectionError(
                f"segment {self.segment} out of range (ring size {plan.ring_size})"
            )
        if self.repair_at is not None and self.repair_at <= self.start:
            raise FaultInjectionError(
                f"repair at {self.repair_at} must follow the cut at {self.start}"
            )


class FaultInjector:
    """Schedules fibre cuts/repairs against a live packet simulation.

    ``network`` must simulate the logical mesh of the element the
    ``plan`` describes, with switches named ``{tor_prefix}{index}`` (as
    built by :meth:`repro.core.ring.QuartzRing.to_topology`).  Attaching
    the injector arms the network's in-flight packet tracking, so create
    it before starting traffic.
    """

    def __init__(
        self,
        network: Network,
        plan: MultiRingPlan,
        tor_prefix: str = "tor",
    ) -> None:
        self.network = network
        self.plan = plan
        self.tor_prefix = tor_prefix
        missing = [
            f"{tor_prefix}{i}"
            for i in range(plan.ring_size)
            if f"{tor_prefix}{i}" not in network.topo
        ]
        if missing:
            raise FaultInjectionError(
                f"network lacks switches for the plan: {missing[:4]}"
            )
        #: pair -> (ring, segments crossed) for repair bookkeeping.
        self._pair_routes = plan.pair_routes()
        self._failed_segments: set[tuple[int, int]] = set()
        #: Channels currently severed *by this injector*.
        self._down_channels: set[tuple[int, int]] = set()
        self.cuts_applied = 0
        self.repairs_applied = 0
        network.enable_fault_tracking()

    # -- scheduling -----------------------------------------------------------------

    def schedule(self, cuts: Iterable[SegmentCut]) -> None:
        """Register cut (and repair) events with the network's engine.

        The whole timeline is validated first and then pushed through
        one :meth:`~repro.sim.engine.Engine.call_at_many` bulk call, in
        the same order as the per-cut pushes it replaces — equal-time
        events keep their sequence numbers, so runs are unchanged.
        """
        items: list[tuple[float, object, tuple]] = []
        for cut in cuts:
            cut.validate(self.plan)
            items.append((cut.start, self.apply_cut, (cut.ring, cut.segment)))
            if cut.repair_at is not None:
                items.append(
                    (cut.repair_at, self.apply_repair, (cut.ring, cut.segment))
                )
        self.network.engine.call_at_many(items)

    # -- application ----------------------------------------------------------------

    def apply_cut(self, ring: int, segment: int) -> int:
        """Cut one fibre segment now; returns the packets dropped.

        Every channel crossing the segment on that ring that is still up
        is torn down in the network.  Cutting an already-failed segment
        is a no-op.
        """
        if (ring, segment) in self._failed_segments:
            return 0
        self._failed_segments.add((ring, segment))
        self.cuts_applied += 1
        now = self.network.engine.now
        severed = 0
        dropped = 0
        for pair in self.plan.channels_crossing(ring, segment):
            if pair in self._down_channels:
                continue  # already dead via another cut segment
            self._down_channels.add(pair)
            severed += 1
            dropped += self.network.fail_link(*self._channel_link(pair))
        self.network.fault_stats.log(
            now, "cut", ring=ring, segment=segment,
            detail=f"severed {severed} channels, dropped {dropped} packets",
        )
        o = self.network.obs
        if o is not None:
            o.incr("faults.cuts")
            if severed:
                o.incr("faults.channels_severed", severed)
        return dropped

    def apply_repair(self, ring: int, segment: int) -> int:
        """Splice one fibre segment now; returns the channels restored.

        A severed channel comes back only when every segment its
        wavelength path crosses on its ring is intact again.
        """
        if (ring, segment) not in self._failed_segments:
            return 0
        self._failed_segments.discard((ring, segment))
        self.repairs_applied += 1
        now = self.network.engine.now
        restored = 0
        for pair in self.plan.channels_crossing(ring, segment):
            if pair not in self._down_channels:
                continue
            pair_ring, segments = self._pair_routes[pair]
            if any((pair_ring, seg) in self._failed_segments for seg in segments):
                continue  # still severed elsewhere on its path
            self._down_channels.discard(pair)
            restored += 1
            self.network.repair_link(*self._channel_link(pair))
        self.network.fault_stats.log(
            now, "repair", ring=ring, segment=segment,
            detail=f"restored {restored} channels",
        )
        o = self.network.obs
        if o is not None:
            o.incr("faults.repairs")
            if restored:
                o.incr("faults.channels_restored", restored)
        return restored

    # -- introspection ----------------------------------------------------------------

    def down_channels(self) -> list[tuple[int, int]]:
        """Severed switch pairs, sorted (empty once everything healed)."""
        return sorted(self._down_channels)

    def _channel_link(self, pair: tuple[int, int]) -> tuple[str, str]:
        return (f"{self.tor_prefix}{pair[0]}", f"{self.tor_prefix}{pair[1]}")


def random_fault_schedule(
    plan: MultiRingPlan,
    num_cuts: int,
    cut_at: float,
    repair_after: float | None = None,
    seed: int = 0,
) -> list[SegmentCut]:
    """Sample ``num_cuts`` distinct fibre segments to cut simultaneously.

    The sample is uniform over all (ring, segment) fibre segments —
    the same failure model as Figure 6's Monte-Carlo — deterministic
    given ``seed``.  All cuts land at ``cut_at``; each is repaired
    ``repair_after`` seconds later (``None`` = never repaired).
    """
    segments = [
        (ring, segment)
        for ring in range(plan.num_rings)
        for segment in range(plan.ring_size)
    ]
    if num_cuts < 0:
        raise FaultInjectionError(f"cut count must be non-negative, got {num_cuts}")
    if num_cuts > len(segments):
        raise FaultInjectionError(
            f"cannot cut {num_cuts} of {len(segments)} fibre segments"
        )
    rng = random.Random(seed)
    chosen: Sequence[tuple[int, int]] = rng.sample(segments, num_cuts)
    repair_at = None if repair_after is None else cut_at + repair_after
    return [
        SegmentCut(start=cut_at, ring=ring, segment=segment, repair_at=repair_at)
        for ring, segment in chosen
    ]
