"""A window-based reliable transport (TCP Reno-style) over the packet sim.

The paper's testbed traffic is TCP (Thrift RPC, Nuttcp), and its related
work (DCTCP, D²TCP, PDQ) is transport-layer; this module adds the
missing substrate: a simplified Reno-like sender with

* slow start and congestion avoidance (cwnd in segments),
* cumulative ACKs, fast retransmit on three duplicate ACKs,
* retransmission timeouts with exponential backoff,
* an optional application pacing rate (Nuttcp's ``-R``-style limit).

Segments ride the packet simulator, so drops come from real finite
buffers (:class:`~repro.sim.network.Network` with ``buffer_bytes``) and
ACK clocking emerges from actual path delays.  The model is deliberately
compact — no SACK, no delayed ACKs, no Nagle — enough to study
congestion dynamics without re-implementing a kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Callable

from repro.sim.engine import Event
from repro.sim.network import Network
from repro.units import BITS_PER_BYTE, MILLISECONDS


class TransportError(ValueError):
    """Raised for invalid transport configurations."""

#: ACK segment size on the wire (header-only frame).
ACK_BYTES = 64


@dataclass
class TCPFlow:
    """One reliable byte stream from ``src`` to ``dst``.

    Call :meth:`start`; ``on_complete(flow, completion_time)`` fires when
    the last byte is acknowledged.  Progress metrics: ``delivered_bytes``
    (acknowledged), ``retransmissions``, ``timeouts``, ``cwnd``.
    """

    network: Network
    src: str
    dst: str
    size_bytes: float
    mss: int = 1500
    initial_cwnd: float = 10.0
    rto: float = 10 * MILLISECONDS
    max_rto: float = 200 * MILLISECONDS
    pacing_rate_bps: float | None = None
    flow_id: int = 0
    group: str | None = None
    on_complete: Callable[["TCPFlow", float], None] | None = None

    # -- state (not constructor arguments) ---------------------------------------
    cwnd: float = field(init=False)
    ssthresh: float = field(init=False, default=float("inf"))
    next_seq: int = field(init=False, default=0)  # next segment index to send
    highest_acked: int = field(init=False, default=0)  # cumulative ACK point
    dup_acks: int = field(init=False, default=0)
    retransmissions: int = field(init=False, default=0)
    timeouts: int = field(init=False, default=0)
    completed_at: float | None = field(init=False, default=None)
    started_at: float | None = field(init=False, default=None)
    _num_segments: int = field(init=False)
    _received: set = field(init=False, default_factory=set)
    _rcv_next: int = field(init=False, default=0)  # receiver's in-order point
    _rto_event: Event | None = field(init=False, default=None)
    _current_rto: float = field(init=False)
    _pacing_gate: float = field(init=False, default=0.0)
    _pacing_wake: Event | None = field(init=False, default=None)
    _in_recovery_until: int = field(init=False, default=0)
    # Cached routes for the data and ACK directions, revalidated against
    # the network's fault epoch: route() is deterministic per epoch, so
    # passing the cached path skips the router dispatch on every segment
    # and every ACK without changing a single event.
    _fwd_path: tuple | None = field(init=False, default=None, repr=False)
    _rev_path: tuple | None = field(init=False, default=None, repr=False)
    _path_epoch: int = field(init=False, default=-1)

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise TransportError("flow size must be positive")
        if self.mss <= ACK_BYTES:
            raise TransportError(f"mss must exceed {ACK_BYTES} bytes")
        if self.initial_cwnd < 1:
            raise TransportError("initial cwnd must be at least one segment")
        if self.pacing_rate_bps is not None and self.pacing_rate_bps <= 0:
            raise TransportError("pacing rate must be positive")
        self.cwnd = float(self.initial_cwnd)
        self._num_segments = max(1, -(-int(self.size_bytes) // self.mss))
        self._current_rto = self.rto

    # -- public API ---------------------------------------------------------------

    @property
    def delivered_bytes(self) -> float:
        return min(self.size_bytes, self.highest_acked * self.mss)

    @property
    def done(self) -> bool:
        return self.completed_at is not None

    def start(self, delay: float = 0.0) -> None:
        self.network.engine.schedule(delay, self._begin)

    def throughput_bps(self) -> float:
        """Average goodput while the flow has been running."""
        if self.started_at is None:
            return 0.0
        end = (
            self.completed_at
            if self.completed_at is not None
            else self.network.engine.now
        )
        elapsed = end - self.started_at
        if elapsed <= 0:
            return 0.0
        return self.delivered_bytes * BITS_PER_BYTE / elapsed

    # -- sending ---------------------------------------------------------------------

    def _begin(self) -> None:
        self.started_at = self.network.engine.now
        self._pacing_gate = self.started_at
        self._fill_window()
        self._arm_rto()

    def _fill_window(self) -> None:
        """Send while the window (and pacing) allows."""
        if self.done:
            return
        now = self.network.engine.now
        while (
            self.next_seq < self._num_segments
            and self.next_seq - self.highest_acked < int(self.cwnd)
        ):
            if self.pacing_rate_bps is not None and self._pacing_gate > now:
                # One armed wake-up at a time: overlapping ACKs used to
                # each schedule another _fill_window at the gate, piling
                # up duplicate events that all fired into a no-op loop.
                if self._pacing_wake is None:
                    self._pacing_wake = self.network.engine.schedule_at(
                        self._pacing_gate, self._pacing_fire
                    )
                return
            self._send_segment(self.next_seq)
            self.next_seq += 1

    def _pacing_fire(self) -> None:
        self._pacing_wake = None
        self._fill_window()

    def _refresh_paths(self) -> None:
        """(Re)resolve both directions' routes for the current fault epoch."""
        network = self.network
        epoch = network.fault_epoch
        if self._path_epoch != epoch:
            self._fwd_path = network.router.route(self.src, self.dst, self.flow_id)
            self._rev_path = network.router.route(
                self.dst, self.src, self.flow_id + 1_000_000
            )
            self._path_epoch = epoch

    def _send_segment(self, seq: int) -> None:
        if self.pacing_rate_bps is not None:
            now = self.network.engine.now
            gap = self.mss * BITS_PER_BYTE / self.pacing_rate_bps
            self._pacing_gate = max(self._pacing_gate, now) + gap
        self._refresh_paths()
        self.network.send(
            self.src,
            self.dst,
            self.mss,
            flow_id=self.flow_id,
            group=self.group,
            path=self._fwd_path,
            on_delivered=partial(self._data_arrived, seq),
        )

    # -- receiver side ------------------------------------------------------------------

    def _data_arrived(self, seq: int, _packet: object = None, _when: float = 0.0) -> None:
        """Receiver got segment ``seq``; sends a cumulative ACK."""
        self._received.add(seq)
        while self._rcv_next in self._received:
            self._received.discard(self._rcv_next)
            self._rcv_next += 1
        ack = self._rcv_next
        self._refresh_paths()
        self.network.send(
            self.dst,
            self.src,
            ACK_BYTES,
            flow_id=self.flow_id + 1_000_000,
            path=self._rev_path,
            on_delivered=partial(self._ack_arrived, ack),
        )

    # -- sender reactions -----------------------------------------------------------------

    def _ack_arrived(self, ack: int, _packet: object = None, _when: float = 0.0) -> None:
        if self.done:
            return
        if ack > self.highest_acked:
            newly = ack - self.highest_acked
            self.highest_acked = ack
            self.dup_acks = 0
            self._grow_window(newly)
            self._arm_rto()
            if self.highest_acked >= self._num_segments:
                self._complete()
                return
            self._fill_window()
        elif ack == self.highest_acked:
            self.dup_acks += 1
            if self.dup_acks == 3 and self.highest_acked >= self._in_recovery_until:
                self._fast_retransmit()

    def _grow_window(self, newly_acked: int) -> None:
        for _ in range(newly_acked):
            if self.cwnd < self.ssthresh:
                self.cwnd += 1.0  # slow start
            else:
                self.cwnd += 1.0 / self.cwnd  # congestion avoidance

    def _fast_retransmit(self) -> None:
        self.ssthresh = max(2.0, self.cwnd / 2)
        self.cwnd = self.ssthresh
        self.retransmissions += 1
        # Do not re-enter recovery until this loss episode resolves.
        self._in_recovery_until = self.next_seq
        self._send_segment(self.highest_acked)
        self._arm_rto()

    def _timeout(self) -> None:
        if self.done:
            return
        self.timeouts += 1
        self.ssthresh = max(2.0, self.cwnd / 2)
        self.cwnd = 1.0
        self.dup_acks = 0
        self._current_rto = min(self._current_rto * 2, self.max_rto)
        self._in_recovery_until = self.next_seq
        self.retransmissions += 1
        self._send_segment(self.highest_acked)
        self._arm_rto(backoff=True)

    def _arm_rto(self, backoff: bool = False) -> None:
        if self._rto_event is not None:
            self._rto_event.cancel()
        if not backoff:
            self._current_rto = self.rto
        self._rto_event = self.network.engine.schedule(
            self._current_rto, self._timeout
        )

    def _complete(self) -> None:
        self.completed_at = self.network.engine.now
        if self._rto_event is not None:
            self._rto_event.cancel()
        if self.on_complete is not None:
            self.on_complete(self, self.completed_at)


def bulk_tcp_flows(
    network: Network,
    pairs: list[tuple[str, str]],
    size_bytes: float,
    pacing_rate_bps: float | None = None,
    group: str | None = None,
    base_flow_id: int = 0,
) -> list[TCPFlow]:
    """One TCP flow per (src, dst) pair (started by the caller)."""
    return [
        TCPFlow(
            network,
            src,
            dst,
            size_bytes,
            pacing_rate_bps=pacing_rate_bps,
            flow_id=base_flow_id + i * 2_000_000,
            group=group,
        )
        for i, (src, dst) in enumerate(pairs)
    ]
