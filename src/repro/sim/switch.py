"""Switch hardware models — paper Table 16.

Two devices anchor the paper's simulations:

* **CCS** — Cisco Nexus 7000 class core switch: store-and-forward,
  6 µs switching latency, 768 × 10 Gbps or 192 × 40 Gbps ports.
* **ULL** — Arista 7150S-64 class ultra-low-latency switch:
  cut-through, 380 ns switching latency, 64 × 10 Gbps or 16 × 40 Gbps.

A store-and-forward switch must receive the entire frame before
forwarding; a cut-through switch starts transmitting once the header has
arrived, so it does not pay the full serialization delay per hop.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import MICROSECONDS, NANOSECONDS


@dataclass(frozen=True)
class SwitchModel:
    """Forwarding behaviour of one switch type."""

    name: str
    latency: float  # seconds, header-in to header-out processing delay
    cut_through: bool
    ports_10g: int
    ports_40g: int

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ValueError(f"switch latency must be non-negative, got {self.latency}")


#: Arista 7150S-64 (paper Table 16).
ULL = SwitchModel(
    name="ULL", latency=380 * NANOSECONDS, cut_through=True, ports_10g=64, ports_40g=16
)

#: Cisco Nexus 7000 (paper Table 16).
CCS = SwitchModel(
    name="CCS", latency=6 * MICROSECONDS, cut_through=False, ports_10g=768, ports_40g=192
)

#: Cisco Catalyst 4948-class managed 1G store-and-forward switch — the
#: prototype's hardware (Section 6); 6 µs per Table 2's "Switch" row.
SF_1G = SwitchModel(
    name="SF_1G", latency=6 * MICROSECONDS, cut_through=False, ports_10g=48, ports_40g=0
)

#: Registry used by the network builder to resolve node ``switch_model`` names.
MODELS: dict[str, SwitchModel] = {m.name: m for m in (ULL, CCS, SF_1G)}


def get_model(name: str) -> SwitchModel:
    """Look up a registered switch model by name."""
    try:
        return MODELS[name]
    except KeyError:
        raise KeyError(
            f"unknown switch model {name!r}; registered: {sorted(MODELS)}"
        ) from None


def register_model(model: SwitchModel) -> None:
    """Add a custom switch model to the registry (idempotent by name)."""
    MODELS[model.name] = model
