"""Packet-level network simulation over a :class:`~repro.topology.base.Topology`.

The model, per forwarding hop:

* every directed link ``(u, v)`` has one **output port** at ``u`` with an
  unbounded FIFO queue, modelled as a ``busy_until`` timestamp — a packet
  occupies the port for its serialization time;
* a **store-and-forward** switch may begin transmitting a packet
  ``switch.latency`` after the packet's tail arrives;
* a **cut-through** switch may begin ``switch.latency`` after the header
  arrives — modelled as ``tail_arrival − min(ser_in, ser_out) +
  latency``, which both credits the cut-through savings and guarantees
  the output never outruns the input when link rates differ;
* servers relaying packets (BCube/DCell) behave like store-and-forward
  devices with the OS-stack forwarding latency (Table 2: ~15 µs);
* the destination server records the packet's end-to-end latency when
  the tail arrives (plus an optional receive-side host-stack latency).

Buffers are unbounded: congestion shows up as queueing delay, exactly
how the paper reports it (e.g. the "unbounded" latency growth past
saturation in Figure 20).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import networkx as nx
import numpy as np

from repro.routing.base import Path, Router
from repro.sim.engine import Engine
from repro.sim.fastpath import (
    BATCH_ENV,
    FASTPATH_ENV,
    HopPlan,
    StackedPlan,
    compile_plan,
    stack_plan,
)
from repro import obs as _obs_layer
from repro.sim.knobs import HYBRID_ENV, OBS_ENV, PARALLEL_ENV, resolve_flag
from repro.sim.stats import FaultRecorder, LatencyRecorder
from repro.sim.switch import SwitchModel, get_model
from repro.telemetry.windows import TelemetryConfig, TelemetryHub, resolve_config
from repro.topology.base import Topology
from repro.units import BITS_PER_BYTE, MICROSECONDS, NANOSECONDS

#: OS network-stack forwarding latency charged to server relays
#: (paper Table 2, "OS Network Stack": 15 µs standard).
DEFAULT_SERVER_FORWARD_LATENCY = 15 * MICROSECONDS

#: Intra-datacenter propagation delay per hop (~20 m of fibre).
DEFAULT_PROPAGATION_DELAY = 100 * NANOSECONDS


class NetworkSimError(RuntimeError):
    """Raised for invalid send requests or malformed paths."""


@dataclass(slots=True, eq=False)
class Packet:
    """One simulated packet in flight (identity semantics: each injected
    packet is a distinct object, hashable for in-flight tracking)."""

    packet_id: int
    src: str
    dst: str
    size_bytes: float
    path: Path
    created_at: float
    group: str | None = None
    on_delivered: Callable[["Packet", float], None] | None = None
    hop: int = 0  # index into path of the node the packet currently sits at
    delivered_at: float | None = None
    dropped: bool = False  # severed mid-flight by a link failure
    rerouted: bool = False  # detoured around a dead link after injection
    plan: HopPlan | None = field(default=None, repr=False)  # compiled fast path
    #: INT-style per-hop stamps (node, queue depth seen, wait time) when
    #: telemetry stamping is armed; ``None`` otherwise.
    stamps: list[tuple[str, int, float]] | None = field(default=None, repr=False)

    @property
    def latency(self) -> float:
        if self.delivered_at is None:
            raise NetworkSimError(f"packet {self.packet_id} not delivered yet")
        return self.delivered_at - self.created_at


@dataclass(slots=True)
class PortState:
    """Transmission state of one directed link's output port."""

    busy_until: float = 0.0
    packets_sent: int = 0
    bytes_sent: float = field(default=0.0)
    packets_dropped: int = 0


def _contended_tails(e: np.ndarray, busy: float, ser: float) -> np.ndarray:
    """Port tail times when the cohort queues on itself (or a busy port).

    Replays the reference recurrence — ``start = busy; if start <
    earliest: start = earliest; tail = start + ser`` — packet by packet.
    The sequential order is load-bearing: a prefix-max reformulation
    performs the additions in a different association and is *not*
    IEEE 754 bit-identical to the scalar loop.
    """
    out = np.empty_like(e)
    b = busy
    for i, earliest in enumerate(e.tolist()):
        start = earliest if b < earliest else b
        b = start + ser
        out[i] = b
    return out


def _repeated_add(base: float, step: float, count: int) -> float:
    """``base`` after ``count`` sequential ``+= step`` operations.

    Matches the scalar loop's per-packet ``bytes_sent += size`` float
    accumulation bit for bit.  Integer-valued floats below 2**53 sum
    exactly, so the common case (whole-byte sizes and counters) is one
    multiply-add; anything else replays the additions.
    """
    base = float(base)
    step = float(step)
    total = base + step * count
    if base.is_integer() and step.is_integer() and abs(total) < 9007199254740992.0:
        return total
    for _ in range(count):
        base += step
    return base


class Network:
    """Executable network: topology + router + event engine."""

    def __init__(
        self,
        topo: Topology,
        router: Router,
        engine: Engine | None = None,
        propagation_delay: float = DEFAULT_PROPAGATION_DELAY,
        server_forward_latency: float = DEFAULT_SERVER_FORWARD_LATENCY,
        host_receive_latency: float = 0.0,
        buffer_bytes: float | None = None,
        fastpath: bool | None = None,
        batch: bool | None = None,
        telemetry: "TelemetryConfig | bool | None" = None,
        hybrid: bool | None = None,
        parallel: bool | None = None,
        obs: bool | None = None,
    ) -> None:
        """``buffer_bytes`` bounds each output port's queue: a packet
        arriving to a port whose backlog would exceed the buffer is
        tail-dropped (counted in ``packets_dropped``).  ``None`` keeps
        the paper's unbounded-queue model, where congestion appears
        purely as delay.

        ``fastpath`` selects the forwarding loop: ``True`` walks
        compiled per-path :class:`~repro.sim.fastpath.HopPlan` chains,
        ``False`` runs the reference per-hop lookup loop.  The default
        (``None``) enables the fast path unless the
        ``REPRO_FASTPATH_DISABLE`` environment variable is set; both
        loops produce bit-identical results.

        ``batch`` enables cohort batching (:meth:`send_cohort`): whole
        groups of same-path packets advance through stacked numpy hop
        plans in a few vectorized operations when the engine's lookahead
        proves no other event can interleave.  The default (``None``)
        follows the ``REPRO_BATCH_DISABLE`` environment variable.
        Batching additionally requires the compiled fast path and
        unbounded buffers — with either missing, ``batch_enabled`` stays
        ``False`` and every injection takes the scalar loops.  All three
        paths (reference, fastpath, batched) are bit-identical.

        ``telemetry`` arms the in-fabric telemetry layer
        (:mod:`repro.telemetry`): ``True`` or a
        :class:`~repro.telemetry.TelemetryConfig` attaches per-port
        windowed queue monitors (and, by default, INT-style per-packet
        stamping) via hooks in both forwarding loops; the default
        (``None``) follows the ``REPRO_TELEMETRY`` environment
        variable; ``False`` forces it off.  Telemetry is strictly
        observational — packet timings, counters, and stats are
        bit-identical with it on or off — but armed monitors need to
        see every packet at every hop, so cohort batching stands down
        (``batch_enabled`` stays ``False``) exactly as it does for
        bounded buffers; the compiled fast path keeps running.

        ``hybrid`` resolves the hybrid packet/flow knob
        (:mod:`repro.hybrid`): a plain :class:`Network` only records the
        resolved value in ``hybrid_enabled``; a
        :class:`~repro.hybrid.HybridNetwork` consults it to decide
        whether background flows ride the flow-level residual-capacity
        handoff (enabled) or materialize as packet sources — the
        pure-packet oracle (disabled).  The default (``None``) follows
        the ``REPRO_HYBRID_DISABLE`` environment variable; an explicit
        ``False`` wins over the environment, like every other knob.

        ``parallel`` resolves the conservative-window parallel-DES knob
        the same way (``REPRO_PARALLEL_DISABLE``): a plain network only
        records the value in ``parallel_enabled``;
        :func:`repro.sim.parallel.run_parallel` consults it to decide
        whether a scenario shards across worker processes or falls back
        to the serial reference execution.

        ``obs`` resolves the runtime-observability knob
        (:mod:`repro.obs`): ``True`` arms the process-wide metrics
        registry and span tracer and attaches the registry to this
        network's instrumented paths; the default (``None``) follows
        the ``REPRO_OBS`` environment variable (env-*enables*, like
        telemetry); ``False`` detaches this network even when the
        process is armed.  Observation is strictly one-way — armed runs
        stay fingerprint-identical to disarmed runs."""
        if buffer_bytes is not None and buffer_bytes <= 0:
            raise NetworkSimError(f"buffer size must be positive, got {buffer_bytes}")
        self.topo = topo
        self.router = router
        self.engine = engine if engine is not None else Engine()
        self.propagation_delay = propagation_delay
        self.server_forward_latency = server_forward_latency
        self.host_receive_latency = host_receive_latency
        self.buffer_bytes = buffer_bytes
        self.stats = LatencyRecorder()
        self.fault_stats = FaultRecorder()
        #: Armed telemetry hub (:class:`repro.telemetry.TelemetryHub`),
        #: or ``None`` — the disabled state costs one attribute check
        #: per transmit and changes no simulation result either way.
        tele_config = resolve_config(telemetry)
        self.telemetry: TelemetryHub | None = (
            TelemetryHub(tele_config) if tele_config is not None else None
        )
        self.packets_delivered = 0
        self.packets_dropped = 0
        self.packets_dropped_fault = 0
        self.packets_rerouted = 0
        self.packets_unroutable = 0
        # Fault-injection state.  Tracking in-flight packets costs one
        # set add/discard per hop, so it stays off until a FaultInjector
        # (or a direct fail_link caller) arms it.
        self._track_in_flight = False
        self._dead_links: set[tuple[str, str]] = set()
        self._removed_edges: dict[tuple[str, str], dict] = {}
        self._in_flight: dict[tuple[str, str], set[Packet]] = {}
        self._detour_cache: dict[tuple[str, str], Path | None] = {}
        self._next_packet_id = 0
        # Bumped by fail_link/repair_link: anything caching routes
        # against the live topology (e.g. transport flows) revalidates
        # when the epoch moves.
        self._fault_epoch = 0
        self._ports: dict[tuple[str, str], PortState] = {}
        self._capacity: dict[tuple[str, str], float] = {}
        # Per-directed-link record on the forwarding hot path:
        # (serialization factor = 8 / capacity, output port, capacity).
        self._link_rec: dict[tuple[str, str], tuple[float, PortState, float]] = {}
        for link in topo.links():
            for key in ((link.u, link.v), (link.v, link.u)):
                self._capacity[key] = link.capacity
                port = self._ports[key] = PortState()
                self._link_rec[key] = (
                    BITS_PER_BYTE / link.capacity, port, link.capacity
                )
        self._switch_models: dict[str, SwitchModel] = {}
        # Per-node forwarding record: (cut_through, processing latency);
        # server relays behave like store-and-forward OS stacks.
        self._hop_rec: dict[str, tuple[bool, float]] = {}
        for switch in topo.switches():
            model = get_model(topo.switch_model(switch) or "ULL")
            self._switch_models[switch] = model
            self._hop_rec[switch] = (model.cut_through, model.latency)
        for server in topo.servers():
            self._hop_rec[server] = (False, server_forward_latency)
        #: Whether injections walk compiled plans (read-only after init).
        self.fastpath_enabled = resolve_flag(
            fastpath, FASTPATH_ENV, env_disables=True
        )
        # Compiled forwarding plans, one per unique path; cleared by
        # fail_link/repair_link so fault churn cannot grow a stale cache.
        self._plans: dict[Path, HopPlan] = {}
        #: Whether cohort injections may commit vectorized (read-only
        #: after init).  Requires the fast path (the stacked plans are
        #: compiled from HopPlans), unbounded buffers (the backlog
        #: check reads ``engine.now`` mid-flight, which batching
        #: elides), and disarmed telemetry (monitors observe per-packet
        #: queue state the vectorized commit never materializes).
        self.batch_enabled = (
            resolve_flag(batch, BATCH_ENV, env_disables=True)
            and self.fastpath_enabled
            and buffer_bytes is None
            and self.telemetry is None
        )
        #: Resolved ``hybrid=`` knob; consulted by
        #: :class:`repro.hybrid.HybridNetwork` (a plain network never
        #: reads it back).
        self.hybrid_enabled = resolve_flag(hybrid, HYBRID_ENV, env_disables=True)
        #: Resolved ``parallel=`` knob; consulted by
        #: :func:`repro.sim.parallel.run_parallel` (a plain network
        #: never reads it back).
        self.parallel_enabled = resolve_flag(
            parallel, PARALLEL_ENV, env_disables=True
        )
        # Stacked (vectorized) twins of ``_plans``, same invalidation.
        self._stacked: dict[Path, StackedPlan] = {}
        #: Resolved ``obs=`` knob (read-only after init).
        self.obs_enabled = resolve_flag(obs, OBS_ENV, env_disables=False)
        #: The metrics registry this network reports into, or ``None``
        #: — same one-attribute-check dormant contract as telemetry.
        if self.obs_enabled:
            _obs_layer.arm()
            self.obs = _obs_layer.registry()
        elif obs is None:
            # A process armed via obs.arm() (no env, no explicit knob)
            # still observes networks built with the default.
            self.obs = _obs_layer.registry()
        else:
            self.obs = None

    @property
    def fault_epoch(self) -> int:
        """Counts fail/repair events; route caches key their validity on it."""
        return self._fault_epoch

    # -- injection ------------------------------------------------------------------

    def send(
        self,
        src: str,
        dst: str,
        size_bytes: float,
        flow_id: int = 0,
        group: str | None = None,
        path: Path | None = None,
        on_delivered: Callable[[Packet, float], None] | None = None,
    ) -> Packet:
        """Inject one packet at ``src`` addressed to ``dst``, now.

        The path comes from the router (keyed by ``flow_id``) unless an
        explicit ``path`` is supplied (e.g. SPAIN VLAN selection).
        """
        if size_bytes <= 0:
            raise NetworkSimError(f"packet size must be positive, got {size_bytes}")
        route = path if path is not None else self.router.route(src, dst, flow_id)
        if route[0] != src or route[-1] != dst:
            raise NetworkSimError(f"path {route} does not join {src!r} → {dst!r}")
        if type(route) is not tuple:
            route = tuple(route)
        packet_id = self._next_packet_id
        self._next_packet_id = packet_id + 1
        packet = Packet(
            packet_id=packet_id,
            src=src,
            dst=dst,
            size_bytes=size_bytes,
            path=route,
            created_at=self.engine.now,
            group=group,
            on_delivered=on_delivered,
        )
        if self.fastpath_enabled:
            plan = self._plans.get(route)
            if plan is None:
                plan = self._compile_plan(route)
            elif self.obs is not None:
                self.obs.incr("fastpath.plan_hits")
            packet.plan = plan
            self._transmit_fast(packet, earliest_start=self.engine.now)
        else:
            self._transmit(packet, earliest_start=self.engine.now)
        return packet

    def note_unroutable(self, group: str | None = None) -> None:
        """Count one packet the router had no path for (partitioned mesh).

        Traffic sources call this instead of letting a
        :class:`~repro.routing.base.RoutingError` abort the run: under
        enough simultaneous fibre cuts a pair can be genuinely
        disconnected, and its offered load is simply lost until a
        repair reconnects it.
        """
        self.packets_unroutable += 1
        self.packets_dropped += 1
        self.packets_dropped_fault += 1
        if self.telemetry is not None:
            self.telemetry.on_unroutable()
        if self.obs is not None:
            self.obs.incr("drops.unroutable")
        if self._track_in_flight:
            self.fault_stats.record_drop(group, self.engine.now)

    # -- batched flight engine ---------------------------------------------------------

    def send_cohort(
        self,
        src: str,
        dst: str,
        size_bytes: float,
        times: Sequence[float],
        flow_id: int = 0,
        group: str | None = None,
    ) -> int:
        """Inject a cohort of same-size packets at the given times, batched.

        The cohort shares one route (the router's pick for ``flow_id`` —
        all routers here are deterministic and memoized, so one call
        equals the per-packet calls the scalar loop makes).  The whole
        flight — every transmit and arrival on every hop — is computed
        up front over the path's :class:`~repro.sim.fastpath.StackedPlan`
        with vectorized operations, then the longest *safe* prefix is
        committed in one step:

        * safe means every elided event time is strictly earlier than
          the engine's next queued event (``peek_time``) and inside the
          active run horizon, so no other callback could have observed
          or perturbed the elided state in the scalar schedule;
        * per-path FIFO monotonicity makes the per-packet sequential
          order a valid topological order of the scalar event DAG, so
          the committed floats are bit-identical to the scalar loops;
        * queue contention (a packet catching up with its predecessor's
          tail) is resolved per port over the sorted arrival times: a
          contention-free port takes one elementwise add, a contended
          span replays the reference ``max``/add recurrence in scalar
          order, which elementwise IEEE 754 cannot reassociate.

        Returns the number of packets committed; ``0`` means the caller
        must fall back to scalar :meth:`send` (conditions that demand
        the scalar loops: batching disabled, fault tracking armed, dead
        links present, no safe prefix).  Packets beyond the committed
        prefix are *not* sent.  The engine's logical event counter is
        credited with the elided per-hop arrivals.
        """
        engine = self.engine
        if (
            not self.batch_enabled
            or not engine.batching_ok
            or self._dead_links
            or self._track_in_flight
            or self.telemetry is not None
        ):
            if self.obs is not None:
                self.obs.incr(
                    "batch.standdown." + self._batch_standdown_reason()
                )
            return 0
        if size_bytes <= 0:
            raise NetworkSimError(f"packet size must be positive, got {size_bytes}")
        if not len(times):
            raise NetworkSimError("cohort needs at least one injection time")
        t = np.asarray(times, dtype=float)
        if t[0] < engine.now or (t.size > 1 and bool(np.any(np.diff(t) < 0.0))):
            raise NetworkSimError(
                "cohort times must be nondecreasing and not in the past"
            )
        route = self.router.route(src, dst, flow_id)
        if route[0] != src or route[-1] != dst:
            raise NetworkSimError(f"path {route} does not join {src!r} → {dst!r}")
        if type(route) is not tuple:
            route = tuple(route)
        o = self.obs
        stacked = self._stacked.get(route)
        if stacked is None:
            plan = self._plans.get(route) or self._compile_plan(route)
            stacked = self._stacked[route] = stack_plan(plan)
        elif o is not None:
            o.incr("fastpath.stacked_hits")

        peek = engine.peek_time()
        horizon = engine.run_horizon
        ser_s, latf_s, ser_f, latf_f = stacked.for_size(size_bytes)
        lat = stacked.lat
        ports = stacked.ports
        prop = self.propagation_delay
        nhops = stacked.nhops

        # Cheap scalar probe: packet 0's flight (the same operations the
        # vector pass performs) lower-bounds every packet's event
        # ceiling, so a cohort that cannot commit even its first packet
        # bails before any array work.
        arrival = float(t[0])
        probe_max = arrival
        for h in range(nhops):
            earliest = (arrival + latf_f[h]) + lat[h] if h else arrival
            busy = ports[h].busy_until
            start = earliest if busy < earliest else busy
            arrival = (start + ser_f[h]) + prop
            if arrival > probe_max:
                probe_max = arrival
        if probe_max >= peek or (horizon is not None and probe_max > horizon):
            if o is not None:
                o.incr("batch.standdown.lookahead")
            return 0

        tails_per_hop: list[np.ndarray] = []
        arrivals = t  # placeholder; replaced by hop 0's arrivals below
        event_max: np.ndarray | None = None
        for h in range(nhops):
            if h:
                # Two adds, in the scalar loop's order:
                # earliest = (now + size * latf[h]) + lat[h].
                e = (arrivals + latf_s[h]) + lat[h]
            else:
                e = t  # injection: earliest_start is the send time itself
            ser = ser_s[h]
            busy = ports[h].busy_until
            tails = e + ser
            if e[0] < busy or (
                e.size > 1 and bool(np.any(e[1:] < tails[:-1]))
            ):
                tails = _contended_tails(e, busy, float(ser))
            arrivals = tails + prop
            tails_per_hop.append(tails)
            if event_max is None:
                event_max = arrivals
            else:
                event_max = np.maximum(event_max, arrivals)

        # Longest prefix whose every elided event fits the lookahead
        # window; ``event_max`` is nondecreasing (FIFO monotonicity), so
        # the cutoffs are binary searches.
        m = int(np.searchsorted(event_max, peek, side="left"))
        if horizon is not None:
            within = int(np.searchsorted(event_max, horizon, side="right"))
            if within < m:
                m = within
        if m <= 0:
            if o is not None:
                o.incr("batch.standdown.no_safe_prefix")
            return 0
        if o is not None:
            o.incr("batch.cohorts")
            o.incr("batch.packets", m)
            o.observe("batch.cohort_size", m)

        self._next_packet_id += m
        for h in range(nhops):
            port = ports[h]
            tails = tails_per_hop[h]
            port.busy_until = float(tails[m - 1])
            port.packets_sent += m
            port.bytes_sent = _repeated_add(port.bytes_sent, size_bytes, m)
        delivered = arrivals[:m] + self.host_receive_latency
        latencies = delivered - t[:m]
        self.stats.record_many(latencies.tolist(), group)
        self.packets_delivered += m
        engine.credit_events(m * nhops)
        return m

    # -- forwarding ----------------------------------------------------------------

    def _transmit(self, packet: Packet, earliest_start: float) -> None:
        """Clock the packet onto the output port toward its next hop."""
        path = packet.path
        hop = packet.hop
        key = (path[hop], path[hop + 1])
        if self._dead_links and key in self._dead_links:
            self._reroute_or_drop(packet, earliest_start)
            return
        rec = self._link_rec.get(key)
        if rec is None:
            raise NetworkSimError(
                f"no link {path[hop]!r} → {path[hop + 1]!r} on path"
            )
        ser_factor, port, capacity = rec
        size = packet.size_bytes
        ser = size * ser_factor
        tele = self.telemetry
        if self.buffer_bytes is not None:
            # Bytes still queued ahead of this packet when it reaches the
            # port: the time the port stays busy past the packet's
            # arrival, clocked out at link rate.
            backlog_seconds = max(0.0, port.busy_until - max(earliest_start, self.engine.now))
            backlog_bytes = backlog_seconds * capacity / 8.0
            if backlog_bytes + size > self.buffer_bytes:
                port.packets_dropped += 1
                self.packets_dropped += 1
                if tele is not None:
                    tele.on_drop(key, packet.group, self.engine.now)
                return
        start = port.busy_until
        if start < earliest_start:
            start = earliest_start
        tail_out = start + ser
        port.busy_until = tail_out
        port.packets_sent += 1
        port.bytes_sent += size
        if tele is not None:
            depth, wait = tele.on_enqueue(
                key, packet.group, size, earliest_start, start, tail_out
            )
            if tele.stamping:
                stamps = packet.stamps
                if stamps is None:
                    stamps = packet.stamps = []
                stamps.append((path[hop], depth, wait))
        if self._track_in_flight:
            self._in_flight.setdefault(key, set()).add(packet)
        self.engine.call_at(tail_out + self.propagation_delay, self._arrive, packet)

    def _arrive(self, packet: Packet) -> None:
        """Tail of ``packet`` arrived at the next node on its path."""
        if packet.dropped:
            return  # severed by a link failure while in flight
        hop = packet.hop + 1
        path = packet.path
        if self._track_in_flight:
            flight = self._in_flight.get((path[hop - 1], path[hop]))
            if flight is not None:
                flight.discard(packet)
        packet.hop = hop
        node = path[hop]
        now = self.engine.now

        if hop == len(path) - 1:
            packet.delivered_at = now + self.host_receive_latency
            self.packets_delivered += 1
            self.stats.record(packet.latency, group=packet.group)
            if packet.stamps is not None:
                self.stats.record_stamps(packet.group, packet.stamps)
            if self._track_in_flight:
                self.fault_stats.record_delivery(packet.group, now)
            if packet.on_delivered is not None:
                packet.on_delivered(packet, packet.delivered_at)
            return

        # Server relays (BCube/DCell) are store-and-forward with the
        # OS-stack latency, so they share the switch record shape.
        cut_through, latency = self._hop_rec[node]
        if cut_through:
            size = packet.size_bytes
            ser_in = size * self._link_rec[(path[hop - 1], node)][0]
            ser_out = size * self._link_rec[(node, path[hop + 1])][0]
            earliest = now - (ser_in if ser_in < ser_out else ser_out) + latency
        else:
            earliest = now + latency
        self._transmit(packet, earliest_start=earliest)

    def _batch_standdown_reason(self) -> str:
        """Which condition forced :meth:`send_cohort` back to scalar sends.

        Only called with observability armed, after the guard already
        decided to stand down; re-tests the conditions in guard order so
        the counter names the first (highest-priority) cause.
        """
        if not self.batch_enabled:
            return "disabled"
        if not self.engine.batching_ok:
            return "bounded_run"
        if self._dead_links:
            return "dead_links"
        if self._track_in_flight:
            return "fault_tracking"
        return "telemetry"

    # -- compiled fast path -----------------------------------------------------------

    def _compile_plan(self, route: Path) -> HopPlan:
        """Compile and cache the hop plan for one path."""
        if self.obs is not None:
            self.obs.incr("fastpath.plan_compiles")
        plan = compile_plan(self._link_rec, self._hop_rec, route)
        self._plans[route] = plan
        return plan

    def _transmit_fast(self, packet: Packet, earliest_start: float) -> None:
        """Plan-walking twin of :meth:`_transmit`: same arithmetic, same
        event schedule, zero dict lookups."""
        plan = packet.plan
        hop = packet.hop
        if self._dead_links and plan.keys[hop] in self._dead_links:
            self._reroute_or_drop(packet, earliest_start)
            return
        port = plan.ports[hop]
        size = packet.size_bytes
        ser = size * plan.ser[hop]
        tele = self.telemetry
        if self.buffer_bytes is not None:
            backlog_seconds = max(
                0.0, port.busy_until - max(earliest_start, self.engine.now)
            )
            backlog_bytes = backlog_seconds * plan.caps[hop] / 8.0
            if backlog_bytes + size > self.buffer_bytes:
                port.packets_dropped += 1
                self.packets_dropped += 1
                if tele is not None:
                    tele.on_drop(plan.keys[hop], packet.group, self.engine.now)
                return
        start = port.busy_until
        if start < earliest_start:
            start = earliest_start
        tail_out = start + ser
        port.busy_until = tail_out
        port.packets_sent += 1
        port.bytes_sent += size
        if tele is not None:
            depth, wait = tele.on_enqueue(
                plan.keys[hop], packet.group, size, earliest_start, start, tail_out
            )
            if tele.stamping:
                stamps = packet.stamps
                if stamps is None:
                    stamps = packet.stamps = []
                stamps.append((plan.path[hop], depth, wait))
        if self._track_in_flight:
            self._in_flight.setdefault(plan.keys[hop], set()).add(packet)
        self.engine.call_at(
            tail_out + self.propagation_delay, self._arrive_fast, packet
        )

    def _arrive_fast(self, packet: Packet) -> None:
        """Plan-walking twin of :meth:`_arrive`.

        The per-node forwarding delay is the plan's precomputed affine
        form ``now + size * latf + lat``, which is bit-identical to the
        reference cut-through/store-and-forward arithmetic (see
        :mod:`repro.sim.fastpath`).
        """
        if packet.dropped:
            return  # severed by a link failure while in flight
        hop = packet.hop + 1
        plan = packet.plan
        if self._track_in_flight:
            flight = self._in_flight.get(plan.keys[hop - 1])
            if flight is not None:
                flight.discard(packet)
        packet.hop = hop
        now = self.engine.now

        if hop == plan.last:
            packet.delivered_at = now + self.host_receive_latency
            self.packets_delivered += 1
            self.stats.record(packet.latency, group=packet.group)
            if packet.stamps is not None:
                self.stats.record_stamps(packet.group, packet.stamps)
            if self._track_in_flight:
                self.fault_stats.record_delivery(packet.group, now)
            if packet.on_delivered is not None:
                packet.on_delivered(packet, packet.delivered_at)
            return

        earliest = now + packet.size_bytes * plan.latf[hop] + plan.lat[hop]
        self._transmit_fast(packet, earliest_start=earliest)

    # -- runtime faults ---------------------------------------------------------------

    def enable_fault_tracking(self) -> None:
        """Arm in-flight packet tracking so link failures can sever packets.

        Called by :class:`repro.sim.faults.FaultInjector` at attach time;
        call it manually before injecting traffic if driving
        :meth:`fail_link` directly.  Packets transmitted before arming
        are invisible to subsequent cuts.
        """
        self._track_in_flight = True

    def link_is_down(self, u: str, v: str) -> bool:
        """Whether the link ``u`` — ``v`` is currently torn down."""
        return (u, v) in self._dead_links

    def fail_link(self, u: str, v: str) -> int:
        """Tear down the link ``u`` — ``v`` mid-run; returns packets dropped.

        Packets queued on or crossing the link (either direction) are
        dropped and counted; the link disappears from the topology graph
        so recomputed routes avoid it; the router's memoized picks and
        path caches for affected pairs are invalidated.  Idempotent —
        failing a dead link is a no-op returning 0.
        """
        if (u, v) in self._dead_links:
            return 0
        data = self.topo.graph.get_edge_data(u, v)
        if data is None:
            raise NetworkSimError(f"no link {u!r} -- {v!r} to fail")
        self.enable_fault_tracking()
        now = self.engine.now
        self._removed_edges[(u, v)] = dict(data)
        self.topo.graph.remove_edge(u, v)
        self._dead_links.add((u, v))
        self._dead_links.add((v, u))
        dropped = 0
        for key in ((u, v), (v, u)):
            for packet in self._in_flight.pop(key, ()):
                packet.dropped = True
                dropped += 1
                self.fault_stats.record_drop(packet.group, now)
                if self.telemetry is not None:
                    self.telemetry.on_drop(key, packet.group, now)
            # The severed queue drains to nowhere: the port is idle for
            # whatever transmits after a repair.
            self._ports[key].busy_until = now
        self.packets_dropped_fault += dropped
        self.packets_dropped += dropped
        self._detour_cache.clear()
        self._plans.clear()
        self._stacked.clear()
        self._fault_epoch += 1
        self.router.invalidate_links([(u, v)])
        self.fault_stats.log(
            now, "link_down", link=(u, v), detail=f"dropped {dropped} in flight"
        )
        if self.obs is not None:
            self.obs.incr("faults.link_down")
            self.obs.incr("fastpath.plan_invalidations")
            if dropped:
                self.obs.incr("faults.packets_severed", dropped)
        return dropped

    def repair_link(self, u: str, v: str) -> bool:
        """Restore a link previously torn down by :meth:`fail_link`.

        Returns ``False`` (a no-op) if the link is not currently down.
        Route caches are flushed so flows may fall back onto the repaired
        channel.
        """
        if (u, v) not in self._dead_links:
            return False
        data = self._removed_edges.pop((u, v), None)
        if data is None:
            data = self._removed_edges.pop((v, u))
        self.topo.graph.add_edge(u, v, **data)
        self._dead_links.discard((u, v))
        self._dead_links.discard((v, u))
        self._detour_cache.clear()
        self._plans.clear()
        self._stacked.clear()
        self._fault_epoch += 1
        self.router.invalidate_links([(u, v)], repaired=True)
        self.fault_stats.log(self.engine.now, "link_up", link=(u, v))
        if self.obs is not None:
            self.obs.incr("faults.link_up")
            self.obs.incr("fastpath.plan_invalidations")
        return True

    def _reroute_or_drop(self, packet: Packet, earliest_start: float) -> None:
        """A packet's next hop is dead: detour over live links, else drop.

        The detour is the deterministic shortest path from the packet's
        current node to its destination over the surviving topology
        (memoized until the next fault event).  Packets with no
        surviving path are dropped and counted.
        """
        node = packet.path[packet.hop]
        key = (node, packet.dst)
        detour = self._detour_cache.get(key, False)
        if detour is False:
            try:
                detour = tuple(nx.shortest_path(self.topo.graph, node, packet.dst))
            except (nx.NetworkXNoPath, nx.NodeNotFound):
                detour = None
            self._detour_cache[key] = detour
        if detour is None:
            self.packets_dropped_fault += 1
            self.packets_dropped += 1
            self.fault_stats.record_drop(packet.group, self.engine.now)
            if self.telemetry is not None:
                # Charge the drop to the dead link the packet could not
                # cross — the port a diagnosis should point at.
                self.telemetry.on_drop(
                    (node, packet.path[packet.hop + 1]),
                    packet.group,
                    self.engine.now,
                )
            return
        packet.path = detour
        packet.hop = 0
        if not packet.rerouted:
            packet.rerouted = True
            self.packets_rerouted += 1
            self.fault_stats.record_reroute(packet.group, self.engine.now)
        if self.fastpath_enabled:
            packet.plan = self._plans.get(detour) or self._compile_plan(detour)
            self._transmit_fast(packet, earliest_start=earliest_start)
        else:
            self._transmit(packet, earliest_start=earliest_start)

    # -- introspection ---------------------------------------------------------------

    def port_utilization(self, u: str, v: str, horizon: float) -> float:
        """Fraction of ``horizon`` the port ``u → v`` spent transmitting."""
        port = self._ports.get((u, v))
        if port is None or horizon <= 0:
            return 0.0
        capacity = self._capacity[(u, v)]
        return min(1.0, (port.bytes_sent * 8 / capacity) / horizon)

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Convenience: run the underlying engine."""
        self.engine.run(until=until, max_events=max_events)
