"""Packet-level discrete-event network simulator.

The paper evaluates Quartz with "our own packet-level discrete event
network simulator that we tailored to our specific requirements" and
validates it against queueing theory (Section 7).  This package is that
simulator: deterministic event engine, Table 16 switch models
(store-and-forward vs cut-through), output-queued ports, and the traffic
sources used in Sections 6 and 7.
"""

from repro.sim.engine import BucketScheduler, Engine, Event, SimulationError
from repro.sim.fastpath import FASTPATH_ENV, HopPlan, compile_plan
from repro.sim.knobs import HYBRID_ENV, PARALLEL_ENV, env_truthy, resolve_flag
from repro.sim.faults import (
    FaultInjectionError,
    FaultInjector,
    SegmentCut,
    random_fault_schedule,
)
from repro.sim.network import (
    DEFAULT_PROPAGATION_DELAY,
    DEFAULT_SERVER_FORWARD_LATENCY,
    Network,
    NetworkSimError,
    Packet,
)
from repro.sim.parallel import (
    BoundaryMessage,
    ParallelScenario,
    ParallelSimError,
    RunResult,
    ShardNetwork,
    SourceSpec,
    boundary_links,
    lookahead,
    partition_racks,
    run_parallel,
    run_serial,
)
from repro.sim.sources import (
    DEFAULT_PACKET_BYTES,
    BurstSource,
    PoissonSource,
    RPCSource,
    SourceError,
    poisson_pair_sources,
)
from repro.sim.stats import (
    FaultLogEntry,
    FaultRecorder,
    HopStampStats,
    LatencyRecorder,
    LatencySummary,
    summarize_latencies,
)
from repro.sim.switch import CCS, MODELS, SF_1G, SwitchModel, ULL, get_model, register_model
from repro.sim.transport import ACK_BYTES, TCPFlow, TransportError, bulk_tcp_flows
from repro.sim.trace import (
    LatencyBreakdown,
    TracingNetwork,
    format_breakdown,
)

__all__ = [
    "BucketScheduler",
    "BurstSource",
    "CCS",
    "FASTPATH_ENV",
    "HYBRID_ENV",
    "PARALLEL_ENV",
    "env_truthy",
    "resolve_flag",
    "BoundaryMessage",
    "ParallelScenario",
    "ParallelSimError",
    "RunResult",
    "ShardNetwork",
    "SourceSpec",
    "boundary_links",
    "lookahead",
    "partition_racks",
    "run_parallel",
    "run_serial",
    "HopPlan",
    "compile_plan",
    "DEFAULT_PACKET_BYTES",
    "DEFAULT_PROPAGATION_DELAY",
    "DEFAULT_SERVER_FORWARD_LATENCY",
    "Engine",
    "Event",
    "FaultInjectionError",
    "FaultInjector",
    "FaultLogEntry",
    "FaultRecorder",
    "HopStampStats",
    "SegmentCut",
    "random_fault_schedule",
    "LatencyBreakdown",
    "LatencyRecorder",
    "LatencySummary",
    "TracingNetwork",
    "format_breakdown",
    "MODELS",
    "Network",
    "NetworkSimError",
    "Packet",
    "PoissonSource",
    "RPCSource",
    "SF_1G",
    "SimulationError",
    "SourceError",
    "TCPFlow",
    "TransportError",
    "ACK_BYTES",
    "SwitchModel",
    "bulk_tcp_flows",
    "ULL",
    "get_model",
    "poisson_pair_sources",
    "register_model",
    "summarize_latencies",
]
