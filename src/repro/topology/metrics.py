"""Topology metrics — paper Section 5 / Table 9.

The paper compares candidate low-latency design elements on four axes:

* **latency without congestion** — switch hops (and server relay hops
  for server-centric networks) weighted by per-device latency; computed
  in :mod:`repro.analysis.latency` from the hop counts measured here;
* **equipment** — number of switches;
* **wiring complexity** — the number of cross-rack links (links whose
  endpoints are in different racks, or that leave the rack for an
  aggregation/core switch);
* **path diversity** — following Teixeira et al. [39], the number of
  edge-disjoint switch-level paths between a representative pair of
  ToR switches (computed exactly via max-flow).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

import networkx as nx

from repro.topology.base import LinkKind, NodeKind, Topology


def switch_hops(topo: Topology, src: str, dst: str) -> int:
    """Number of switches on a shortest path between two servers."""
    path = nx.shortest_path(topo.graph, src, dst)
    return sum(1 for node in path if topo.is_switch(node))


def server_relay_hops(topo: Topology, src: str, dst: str) -> int:
    """Number of *intermediate* servers on a shortest path (BCube/DCell)."""
    path = nx.shortest_path(topo.graph, src, dst)
    return sum(1 for node in path[1:-1] if topo.is_server(node))


@dataclass(frozen=True)
class HopProfile:
    """Hop counts between a server pair."""

    switch_hops: int
    server_relay_hops: int


def hop_profile(topo: Topology, src: str, dst: str) -> HopProfile:
    path = nx.shortest_path(topo.graph, src, dst)
    return HopProfile(
        switch_hops=sum(1 for n in path if topo.is_switch(n)),
        server_relay_hops=sum(1 for n in path[1:-1] if topo.is_server(n)),
    )


def _sample_servers(topo: Topology, sample: int | None) -> list[str]:
    """A deterministic, rack-spanning subset of servers.

    Taking the *first* N servers would bias toward one pod, so the
    sample strides evenly across the full server list.
    """
    servers = topo.servers()
    if sample is None or sample >= len(servers):
        return servers
    stride = len(servers) / sample
    return [servers[int(i * stride)] for i in range(sample)]


def worst_case_hop_profile(topo: Topology, sample: int | None = None) -> HopProfile:
    """The maximum-hop profile over server pairs.

    For large topologies pass ``sample`` to bound the pair count; the
    sample strides across racks so worst-case cross-pod pairs are seen.
    """
    servers = _sample_servers(topo, sample)
    worst = HopProfile(0, 0)
    for i, src in enumerate(servers):
        lengths = nx.single_source_shortest_path(topo.graph, src)
        for dst in servers[i + 1 :]:
            path = lengths[dst]
            profile = HopProfile(
                switch_hops=sum(1 for n in path if topo.is_switch(n)),
                server_relay_hops=sum(1 for n in path[1:-1] if topo.is_server(n)),
            )
            if (profile.switch_hops + profile.server_relay_hops) > (
                worst.switch_hops + worst.server_relay_hops
            ):
                worst = profile
    return worst


def average_path_length(topo: Topology, sample: int | None = None) -> float:
    """Mean server-to-server shortest-path hop count (switches + relays)."""
    servers = _sample_servers(topo, sample)
    hops = []
    server_set = set(servers)
    for i, src in enumerate(servers):
        paths = nx.single_source_shortest_path(topo.graph, src)
        for dst in servers[i + 1 :]:
            if dst in server_set:
                path = paths[dst]
                hops.append(len(path) - 2)  # devices between the two servers
    if not hops:
        raise ValueError("need at least two servers")
    return statistics.fmean(hops)


def path_diversity(topo: Topology, u: str | None = None, v: str | None = None) -> int:
    """Edge-disjoint path count between two endpoints (max-flow, [39]).

    Defaults to the "most distant" representative pair.  For
    switch-routed topologies this is the ToR pair at maximum
    switch-graph distance — diversity between the racks.  For
    server-centric topologies (BCube, DCell) the communication endpoints
    with multiple paths are the multi-NIC *servers*, so the pair is the
    most distant server pair and the flow runs over the full graph.

    Each physical cable counts one unit of flow, so logical edges that
    fold parallel cables (``physical_links_per_pair``) count accordingly.
    """
    server_centric = bool(topo.graph.graph.get("server_centric"))
    if server_centric:
        graph = topo.graph
        endpoints = sorted(topo.servers())
    else:
        graph = topo.switch_graph()
        endpoints = sorted(topo.switches(NodeKind.TOR))
    if len(endpoints) < 2:
        raise ValueError("need at least two candidate endpoints")
    if u is None or v is None:
        u, v = _most_distant_pair(graph, endpoints)

    multiplier = int(topo.graph.graph.get("physical_links_per_pair", 1))
    flow_graph = nx.Graph()
    flow_graph.add_nodes_from(graph.nodes())
    for a, b, data in graph.edges(data=True):
        cables = multiplier if data["link_kind"] is LinkKind.UPLINK else 1
        flow_graph.add_edge(a, b, capacity=cables)
    return int(nx.maximum_flow_value(flow_graph, u, v))


def _most_distant_pair(graph: nx.Graph, tors: list[str]) -> tuple[str, str]:
    best: tuple[str, str] | None = None
    best_dist = -1
    for src in tors:
        lengths = nx.single_source_shortest_path_length(graph, src)
        for dst in tors:
            if dst <= src:
                continue
            d = lengths.get(dst)
            if d is not None and d > best_dist:
                best, best_dist = (src, dst), d
    assert best is not None
    return best


def wiring_complexity(topo: Topology) -> int:
    """Number of cross-rack links (the paper's deployment-cost proxy).

    A link is cross-rack when its endpoints live in different racks, or
    when one endpoint (an aggregation or core switch) has no rack at all.
    Host links inside a rack do not count.  Parallel physical cables
    folded into one logical edge (``physical_links_per_pair``) are
    counted individually.
    """
    multiplier = int(topo.graph.graph.get("physical_links_per_pair", 1))
    count = 0
    for link in topo.links():
        rack_u = topo.rack(link.u)
        rack_v = topo.rack(link.v)
        if rack_u is None or rack_v is None or rack_u != rack_v:
            count += multiplier if link.link_kind is LinkKind.UPLINK else 1
    return count


def switch_count(topo: Topology) -> int:
    return len(topo.switches())


def bisection_capacity(topo: Topology, trials: int = 0) -> float:
    """Capacity (bps) across the minimum server-balanced cut — approximated
    by the sum of capacities crossing a balanced partition of racks.

    Exact bisection is NP-hard; this uses the canonical "first half of the
    racks vs second half" cut, which is exact for the symmetric topologies
    in this library and a reasonable upper bound elsewhere.
    """
    racks = topo.racks()
    left = set(racks[: len(racks) // 2])
    left_nodes = {
        n
        for n in topo.graph
        if topo.rack(n) in left
    }
    # Rackless (agg/core) switches sit "between" the halves; count only
    # links with one endpoint in each rack half, plus half the capacity
    # of links touching rackless switches (they serve both sides).
    capacity = 0.0
    for link in topo.links():
        u_in = link.u in left_nodes
        v_in = link.v in left_nodes
        u_rackless = topo.rack(link.u) is None
        v_rackless = topo.rack(link.v) is None
        if u_rackless or v_rackless:
            capacity += link.capacity / 2
        elif u_in != v_in:
            capacity += link.capacity
    return capacity


@dataclass(frozen=True)
class TopologySummary:
    """The Table 9 row for one topology."""

    name: str
    switch_hops: int
    server_relay_hops: int
    num_switches: int
    wiring_complexity: int
    path_diversity: int


def summarize(topo: Topology, hop_sample: int | None = 64) -> TopologySummary:
    """Compute the full Table 9 metric row for ``topo``."""
    worst = worst_case_hop_profile(topo, sample=hop_sample)
    return TopologySummary(
        name=topo.name,
        switch_hops=worst.switch_hops,
        server_relay_hops=worst.server_relay_hops,
        num_switches=switch_count(topo),
        wiring_complexity=wiring_complexity(topo),
        path_diversity=path_diversity(topo),
    )
