"""Jellyfish — random-graph DCNs (Singla et al., NSDI 2012).

Switches form a random ``r``-regular graph; the remaining ports face
servers.  Random topologies have short average path lengths and high
path diversity but no locality structure and high wiring complexity —
the properties the paper contrasts Quartz against in Sections 5 and 7.

The paper's Section 7 instance: 16 ULL switches, each dedicating four
10 Gbps links to other switches.
"""

from __future__ import annotations

import networkx as nx

from repro.topology.base import cached_builder, LinkKind, NodeKind, Topology
from repro.units import GBPS


@cached_builder("jellyfish")
def jellyfish(
    num_switches: int = 16,
    network_degree: int = 4,
    servers_per_switch: int = 4,
    link_rate: float = 10 * GBPS,
    switch_model: str = "ULL",
    seed: int = 0,
    name: str | None = None,
) -> Topology:
    """A random ``network_degree``-regular switch graph with servers attached.

    Deterministic for a given ``seed``.  Raises if the sampled random
    regular graph is disconnected (retry with a different seed) or the
    degree is infeasible.
    """
    if num_switches < 2:
        raise ValueError("need at least two switches")
    if network_degree >= num_switches:
        raise ValueError(
            f"degree {network_degree} impossible with {num_switches} switches"
        )
    if (num_switches * network_degree) % 2:
        raise ValueError("num_switches * network_degree must be even")

    random_graph = nx.random_regular_graph(network_degree, num_switches, seed=seed)
    if not nx.is_connected(random_graph):
        raise ValueError(
            f"random graph with seed {seed} is disconnected; try another seed"
        )

    topo = Topology(name or f"jellyfish-{num_switches}d{network_degree}")
    for sw in range(num_switches):
        topo.add_switch(f"sw{sw}", NodeKind.TOR, rack=sw, switch_model=switch_model)
    for u, v in random_graph.edges():
        topo.add_link(f"sw{u}", f"sw{v}", link_rate, LinkKind.RANDOM)
    for sw in range(num_switches):
        for s in range(servers_per_switch):
            server = topo.add_server(f"h{sw}.{s}", rack=sw)
            topo.add_link(server, f"sw{sw}", link_rate, LinkKind.HOST)
    topo.validate()
    return topo
