"""Full-mesh switch topology.

The logical topology a Quartz ring implements: every ToR switch directly
connected to every other.  Provided separately from
:class:`repro.core.ring.QuartzRing` so baselines can be built without
committing to the WDM realization (e.g. for the Table 9 comparison where
the mesh's *electrical* wiring complexity — O(n²) — is contrasted with
the WDM ring's O(n)).
"""

from __future__ import annotations

from repro.topology.base import cached_builder, connect_all, LinkKind, NodeKind, Topology
from repro.units import GBPS


@cached_builder("full-mesh")
def full_mesh(
    num_switches: int = 4,
    servers_per_switch: int = 2,
    link_rate: float = 10 * GBPS,
    switch_model: str = "ULL",
    name: str | None = None,
) -> Topology:
    """A full mesh of ToR switches, one rack per switch."""
    if num_switches < 2:
        raise ValueError("need at least two switches")
    topo = Topology(name or f"mesh-{num_switches}")
    switches = [
        topo.add_switch(f"tor{t}", NodeKind.TOR, rack=t, switch_model=switch_model)
        for t in range(num_switches)
    ]
    connect_all(topo, switches, link_rate, LinkKind.MESH)
    for t in range(num_switches):
        for s in range(servers_per_switch):
            server = topo.add_server(f"h{t}.{s}", rack=t)
            topo.add_link(server, f"tor{t}", link_rate, LinkKind.HOST)
    topo.validate()
    return topo
