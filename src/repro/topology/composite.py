"""Quartz as a design element inside larger DCNs — paper Section 4 / Figure 15.

Builders for the simulated architectures of Section 7:

* :func:`quartz_in_core` — each core switch replaced by a Quartz ring
  (Figure 15(b)); aggregation switches connect to the ring over 40 Gbps.
* :func:`quartz_in_edge` — ToR and aggregation tiers replaced by Quartz
  rings (Figure 15(c)); servers attach at 10 Gbps, rings uplink to the
  cores at 40 Gbps.
* :func:`quartz_in_edge_and_core` — both replacements (Figure 15(d)).
* :func:`quartz_in_jellyfish` — a random graph of Quartz rings instead
  of a random graph of switches (Section 4.3).

Each simulated Quartz ring consists of four switches by default, as in
the paper ("the size of the ring does not affect performance and only
affects the size of the DCN").
"""

from __future__ import annotations

import random

from repro.topology.base import cached_builder, connect_all, LinkKind, NodeKind, Topology
from repro.units import GBPS


def _add_quartz_ring(
    topo: Topology,
    prefix: str,
    ring_size: int,
    mesh_rate: float,
    first_rack: int,
    switch_model: str = "ULL",
) -> list[str]:
    """Add a ``ring_size``-switch Quartz mesh; returns the switch names."""
    switches = [
        topo.add_switch(
            f"{prefix}{i}", NodeKind.TOR, rack=first_rack + i, switch_model=switch_model
        )
        for i in range(ring_size)
    ]
    connect_all(topo, switches, mesh_rate, LinkKind.MESH)
    return switches


@cached_builder("quartz-in-core")
def quartz_in_core(
    num_pods: int = 2,
    tors_per_pod: int = 8,
    aggs_per_pod: int = 2,
    core_ring_size: int = 4,
    servers_per_tor: int = 4,
    host_rate: float = 10 * GBPS,
    uplink_rate: float = 40 * GBPS,
    name: str | None = None,
) -> Topology:
    """Three-tier tree with the core tier replaced by a Quartz ring.

    Mirrors :func:`repro.topology.tree.three_tier_tree` below the core;
    each aggregation switch keeps two core uplinks, landing on distinct
    ring switches (round-robin), so redundancy matches the baseline.
    """
    topo = Topology(name or "quartz-in-core")
    ring = _add_quartz_ring(topo, "qcore", core_ring_size, uplink_rate, first_rack=10_000)
    # Core-ring switches are not rack switches; clear their rack ids and
    # mark them as core-tier for metrics.
    for sw in ring:
        topo.graph.nodes[sw]["rack"] = None
        topo.graph.nodes[sw]["kind"] = NodeKind.CORE

    rack = 0
    agg_counter = 0
    for p in range(num_pods):
        aggs = [
            topo.add_switch(f"agg{p}.{a}", NodeKind.AGG, switch_model="ULL")
            for a in range(aggs_per_pod)
        ]
        for agg in aggs:
            for j in range(2):
                target = ring[(agg_counter + j) % core_ring_size]
                topo.add_link(agg, target, uplink_rate, LinkKind.UPLINK)
            agg_counter += 2
        for t in range(tors_per_pod):
            tor = topo.add_switch(f"tor{p}.{t}", NodeKind.TOR, rack=rack, switch_model="ULL")
            for agg in aggs:
                topo.add_link(tor, agg, uplink_rate, LinkKind.UPLINK)
            for s in range(servers_per_tor):
                server = topo.add_server(f"h{rack}.{s}", rack=rack)
                topo.add_link(server, tor, host_rate, LinkKind.HOST)
            rack += 1
    topo.validate()
    return topo


@cached_builder("quartz-in-edge")
def quartz_in_edge(
    num_rings: int = 4,
    ring_size: int = 4,
    num_cores: int = 2,
    servers_per_switch: int = 4,
    host_rate: float = 10 * GBPS,
    mesh_rate: float = 10 * GBPS,
    uplink_rate: float = 40 * GBPS,
    core_model: str = "CCS",
    name: str | None = None,
) -> Topology:
    """ToR + aggregation tiers replaced by Quartz rings (Figure 15(c)).

    Each ring switch hosts servers at ``host_rate`` and uplinks to every
    core switch at ``uplink_rate``.
    """
    topo = Topology(name or "quartz-in-edge")
    cores = [
        topo.add_switch(f"core{c}", NodeKind.CORE, switch_model=core_model)
        for c in range(num_cores)
    ]
    rack = 0
    for r in range(num_rings):
        ring = _add_quartz_ring(topo, f"q{r}.", ring_size, mesh_rate, first_rack=rack)
        rack += ring_size
        for sw in ring:
            for core in cores:
                topo.add_link(sw, core, uplink_rate, LinkKind.UPLINK)
            for s in range(servers_per_switch):
                server = topo.add_server(f"h{topo.rack(sw)}.{s}", rack=topo.rack(sw))
                topo.add_link(server, sw, host_rate, LinkKind.HOST)
    topo.validate()
    return topo


@cached_builder("quartz-in-edge-and-core")
def quartz_in_edge_and_core(
    num_rings: int = 4,
    ring_size: int = 4,
    core_ring_size: int = 4,
    servers_per_switch: int = 4,
    host_rate: float = 10 * GBPS,
    mesh_rate: float = 10 * GBPS,
    uplink_rate: float = 40 * GBPS,
    name: str | None = None,
) -> Topology:
    """Quartz rings at the edge connected through a Quartz core ring
    (Figure 15(d)).

    Each edge-ring switch takes two uplinks to distinct core-ring
    switches (round-robin), matching the redundancy of the tree baseline.
    """
    topo = Topology(name or "quartz-in-edge-and-core")
    core_ring = _add_quartz_ring(
        topo, "qcore", core_ring_size, uplink_rate, first_rack=10_000
    )
    for sw in core_ring:
        topo.graph.nodes[sw]["rack"] = None
        topo.graph.nodes[sw]["kind"] = NodeKind.CORE

    rack = 0
    uplink_counter = 0
    for r in range(num_rings):
        ring = _add_quartz_ring(topo, f"q{r}.", ring_size, mesh_rate, first_rack=rack)
        rack += ring_size
        for sw in ring:
            for j in range(2):
                target = core_ring[(uplink_counter + j) % core_ring_size]
                topo.add_link(sw, target, uplink_rate, LinkKind.UPLINK)
            uplink_counter += 2
            for s in range(servers_per_switch):
                server = topo.add_server(f"h{topo.rack(sw)}.{s}", rack=topo.rack(sw))
                topo.add_link(server, sw, host_rate, LinkKind.HOST)
    topo.validate()
    return topo


@cached_builder("quartz-in-jellyfish")
def quartz_in_jellyfish(
    num_rings: int = 4,
    ring_size: int = 4,
    inter_ring_links: int = 4,
    servers_per_switch: int = 4,
    host_rate: float = 10 * GBPS,
    mesh_rate: float = 10 * GBPS,
    seed: int = 0,
    name: str | None = None,
) -> Topology:
    """A random graph of Quartz rings (Section 4.3 / Section 7 item 6).

    Each ring dedicates ``inter_ring_links`` 10 Gbps links to switches in
    other rings.  Link endpoints rotate round-robin over ring members, so
    the random cabling spreads across switches.  Deterministic per seed;
    resamples (bounded) until the ring-level graph is connected.
    """
    if num_rings < 2:
        raise ValueError("need at least two rings")
    if (num_rings * inter_ring_links) % 2:
        raise ValueError("num_rings * inter_ring_links must be even")

    rng = random.Random(seed)
    for _attempt in range(100):
        pairing = _random_multigraph(num_rings, inter_ring_links, rng)
        if pairing is not None and _rings_connected(pairing, num_rings):
            break
    else:
        raise ValueError("could not sample a connected inter-ring graph")

    topo = Topology(name or "quartz-in-jellyfish")
    rings: list[list[str]] = []
    rack = 0
    for r in range(num_rings):
        ring = _add_quartz_ring(topo, f"q{r}.", ring_size, mesh_rate, first_rack=rack)
        rack += ring_size
        rings.append(ring)
        for sw in ring:
            for s in range(servers_per_switch):
                server = topo.add_server(f"h{topo.rack(sw)}.{s}", rack=topo.rack(sw))
                topo.add_link(server, sw, host_rate, LinkKind.HOST)

    next_port = [0] * num_rings
    for r1, r2 in pairing:
        u = rings[r1][next_port[r1] % ring_size]
        v = rings[r2][next_port[r2] % ring_size]
        next_port[r1] += 1
        next_port[r2] += 1
        if not topo.graph.has_edge(u, v):
            topo.add_link(u, v, host_rate, LinkKind.RANDOM)
        else:
            # Parallel link between the same switch pair: model as added
            # capacity on the existing edge.
            topo.graph[u][v]["capacity"] += host_rate
    topo.validate()
    return topo


def _random_multigraph(
    num_rings: int, degree: int, rng: random.Random
) -> list[tuple[int, int]] | None:
    """Configuration-model pairing of link stubs; None if a self-loop lands."""
    stubs = [r for r in range(num_rings) for _ in range(degree)]
    rng.shuffle(stubs)
    pairs = []
    for i in range(0, len(stubs), 2):
        a, b = stubs[i], stubs[i + 1]
        if a == b:
            return None
        pairs.append((min(a, b), max(a, b)))
    return pairs


def _rings_connected(pairs: list[tuple[int, int]], num_rings: int) -> bool:
    """Union-find connectivity over the ring-level multigraph."""
    parent = list(range(num_rings))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for a, b in pairs:
        parent[find(a)] = find(b)
    return len({find(r) for r in range(num_rings)}) == 1
