"""BCube — a server-centric modular DCN (Guo et al., SIGCOMM 2009).

``BCube(n, k)`` has ``n^(k+1)`` servers, each with ``k + 1`` NICs, and
``k + 1`` levels of ``n^k`` switches with ``n`` ports each.  Server
``(a_k, …, a_1, a_0)`` (digits base ``n``) connects at level ``l`` to
the switch indexed by its digits with ``a_l`` removed.

Servers forward packets between levels, which is why the paper charges
BCube a ~15 µs OS-stack hop (Table 9: 2 switch hops + 1 server hop →
16 µs for BCube₁).
"""

from __future__ import annotations

from repro.topology.base import cached_builder, LinkKind, NodeKind, Topology
from repro.units import GBPS


@cached_builder("bcube")
def bcube(
    n: int = 4,
    k: int = 1,
    link_rate: float = 10 * GBPS,
    switch_model: str = "ULL",
    name: str | None = None,
) -> Topology:
    """Build ``BCube(n, k)``.

    ``n`` is the switch port count (and module arity), ``k`` the highest
    level (``k = 1`` gives the two-level BCube₁ used in Table 9 sizing).
    Each server is placed in the "rack" of its level-0 switch.
    """
    if n < 2:
        raise ValueError(f"BCube arity n must be ≥ 2, got {n}")
    if k < 0:
        raise ValueError(f"BCube level k must be ≥ 0, got {k}")

    topo = Topology(name or f"bcube-n{n}-k{k}")
    topo.graph.graph["server_centric"] = True
    num_servers = n ** (k + 1)
    switches_per_level = n**k

    def digits(value: int) -> list[int]:
        out = []
        for _ in range(k + 1):
            out.append(value % n)
            value //= n
        return out  # least-significant digit first: index l is digit a_l

    for level in range(k + 1):
        for idx in range(switches_per_level):
            topo.add_switch(
                f"sw{level}.{idx}",
                NodeKind.TOR if level == 0 else NodeKind.AGG,
                rack=idx if level == 0 else None,
                switch_model=switch_model,
            )

    for s in range(num_servers):
        d = digits(s)
        rack = s // n  # index of its level-0 switch
        server = topo.add_server(f"h{s}", rack=rack)
        for level in range(k + 1):
            # Switch index: the server's digits with digit `level` removed,
            # re-interpreted base n.
            rest = [d[i] for i in range(k + 1) if i != level]
            sw_idx = 0
            for digit in reversed(rest):
                sw_idx = sw_idx * n + digit
            topo.add_link(server, f"sw{level}.{sw_idx}", link_rate, LinkKind.HOST)
    topo.validate()
    return topo
