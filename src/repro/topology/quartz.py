"""Quartz topology materialization helpers.

Thin wrappers over :class:`repro.core.ring.QuartzRing` so the topology
package offers every network in one namespace.
"""

from __future__ import annotations

from repro.topology.base import cached_builder, Topology
from repro.units import GBPS


def _quartz_ring_class():
    # Imported lazily: repro.core.ring itself builds on repro.topology,
    # so a module-level import here would be circular.
    from repro.core.ring import QuartzRing

    return QuartzRing


@cached_builder("quartz-ring")
def quartz_ring(
    num_switches: int = 4,
    servers_per_switch: int = 2,
    server_ports: int = 32,
    mesh_ports: int = 32,
    link_rate: float = 10 * GBPS,
    switch_model: str = "ULL",
    name: str | None = None,
) -> Topology:
    """The logical topology of a single Quartz ring (a ToR full mesh).

    ``servers_per_switch`` controls how many of the ``server_ports`` are
    populated — simulations typically use a handful.
    """
    element = _quartz_ring_class()(
        num_switches=num_switches,
        server_ports=server_ports,
        mesh_ports=max(mesh_ports, num_switches - 1),
        link_rate=link_rate,
        switch_model=switch_model,
    )
    return element.to_topology(servers_per_switch=servers_per_switch, name=name)


@cached_builder("quartz-dual-tor")
def quartz_dual_tor(
    port_count: int = 64,
    servers_per_rack: int = 2,
    link_rate: float = 10 * GBPS,
    name: str | None = None,
) -> Topology:
    """The dual-ToR scaled Quartz variant (Section 3.2, 2080 ports)."""
    element = _quartz_ring_class().dual_tor(port_count, link_rate=link_rate)
    return element.to_topology(servers_per_switch=servers_per_rack, name=name)
