"""Fat-tree topologies (Al-Fares et al., SIGCOMM 2008) and folded Clos.

Two variants:

* :func:`fat_tree` — the standard three-level k-ary fat-tree: k pods of
  k/2 edge + k/2 aggregation switches, (k/2)² cores, k³/4 servers.
* :func:`folded_clos` — a two-level leaf/spine Clos.  This is the
  configuration behind the paper's Table 9 "Fat-Tree" row: 32 edge
  switches (32 server ports + 32 uplinks each) over 16 spine switches
  with two parallel links per edge-spine pair gives 1024 server ports,
  48 switches, 1024 cross-rack links and path diversity 32.
"""

from __future__ import annotations

from repro.topology.base import cached_builder, LinkKind, NodeKind, Topology
from repro.units import GBPS


@cached_builder("fat-tree")
def fat_tree(
    k: int = 4,
    servers_per_edge: int | None = None,
    link_rate: float = 10 * GBPS,
    switch_model: str = "ULL",
    name: str | None = None,
) -> Topology:
    """A three-level k-ary fat-tree (k even).

    ``servers_per_edge`` defaults to the full k/2 complement; pass a
    smaller number to build reduced-host instances for simulation.
    """
    if k < 2 or k % 2:
        raise ValueError(f"fat-tree arity k must be even and ≥ 2, got {k}")
    half = k // 2
    n_servers = half if servers_per_edge is None else servers_per_edge
    if n_servers > half:
        raise ValueError(f"at most {half} servers per edge switch for k={k}")

    topo = Topology(name or f"fat-tree-k{k}")
    cores = []
    for c in range(half * half):
        cores.append(topo.add_switch(f"core{c}", NodeKind.CORE, switch_model=switch_model))
    rack = 0
    for p in range(k):
        aggs = [
            topo.add_switch(f"agg{p}.{a}", NodeKind.AGG, switch_model=switch_model)
            for a in range(half)
        ]
        # Aggregation switch a of each pod connects to cores
        # [a*half, (a+1)*half) — the standard fat-tree core striping.
        for a, agg in enumerate(aggs):
            for j in range(half):
                topo.add_link(agg, f"core{a * half + j}", link_rate, LinkKind.UPLINK)
        for e in range(half):
            edge = topo.add_switch(
                f"edge{p}.{e}", NodeKind.TOR, rack=rack, switch_model=switch_model
            )
            for agg in aggs:
                topo.add_link(edge, agg, link_rate, LinkKind.UPLINK)
            for s in range(n_servers):
                server = topo.add_server(f"h{rack}.{s}", rack=rack)
                topo.add_link(server, edge, link_rate, LinkKind.HOST)
            rack += 1
    topo.validate()
    return topo


@cached_builder("folded-clos")
def folded_clos(
    num_edge: int = 32,
    num_spine: int = 16,
    links_per_pair: int = 2,
    servers_per_edge: int = 32,
    host_rate: float = 10 * GBPS,
    fabric_rate: float = 10 * GBPS,
    switch_model: str = "ULL",
    name: str | None = None,
) -> Topology:
    """A two-level folded Clos (leaf/spine) network.

    Every edge switch connects to every spine.  ``links_per_pair``
    parallel links are modelled as one link of aggregate capacity (the
    topology graph is simple); wiring complexity still counts the
    physical cables.
    """
    if min(num_edge, num_spine, links_per_pair, servers_per_edge) < 1:
        raise ValueError("all Clos parameters must be at least 1")
    topo = Topology(name or f"clos-{num_edge}x{num_spine}")
    spines = [
        topo.add_switch(f"spine{s}", NodeKind.AGG, switch_model=switch_model)
        for s in range(num_spine)
    ]
    for e in range(num_edge):
        edge = topo.add_switch(f"edge{e}", NodeKind.TOR, rack=e, switch_model=switch_model)
        for spine in spines:
            topo.add_link(edge, spine, fabric_rate * links_per_pair, LinkKind.UPLINK)
        for s in range(servers_per_edge):
            server = topo.add_server(f"h{e}.{s}", rack=e)
            topo.add_link(server, edge, host_rate, LinkKind.HOST)
    topo.graph.graph["physical_links_per_pair"] = links_per_pair
    topo.validate()
    return topo
