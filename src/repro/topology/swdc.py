"""SWDC — Small-World DataCenters (Shin, Wong, Sirer; SoCC 2011).

Cited by the paper among the randomized designs Quartz is positioned
against (Section 2.1.5) and as a substrate Quartz can replace parts of.
Servers form a ring with regular neighbour links plus Kleinberg-style
random long links (probability ∝ 1/distance), giving short greedy paths
at the cost of server-side forwarding (like BCube/DCell, server-centric).
"""

from __future__ import annotations

import random

from repro.topology.base import cached_builder, LinkKind, NodeKind, Topology
from repro.units import GBPS


@cached_builder("swdc-ring")
def swdc_ring(
    num_servers: int = 32,
    servers_per_rack: int = 4,
    regular_degree: int = 2,
    random_links_per_server: int = 1,
    link_rate: float = 10 * GBPS,
    switch_model: str = "ULL",
    seed: int = 0,
    name: str | None = None,
) -> Topology:
    """An SWDC ring: ToR-attached servers with direct server-to-server
    small-world links.

    Servers sit ``servers_per_rack`` to a rack (each rack keeps a ToR
    for external connectivity, as in SWDC deployments), and additionally
    link directly to ``regular_degree`` ring neighbours on each side...
    precisely: each server links to its ``regular_degree // 2``
    successors (symmetric by undirectedness) plus
    ``random_links_per_server`` long links sampled with
    Kleinberg 1/d weights.  Deterministic per seed.
    """
    if num_servers < 4:
        raise ValueError("need at least four servers")
    if servers_per_rack < 1 or num_servers % servers_per_rack:
        raise ValueError("num_servers must be a multiple of servers_per_rack")
    if regular_degree < 2 or regular_degree % 2:
        raise ValueError("regular degree must be even and ≥ 2")
    if random_links_per_server < 0:
        raise ValueError("random link count must be non-negative")

    rng = random.Random(seed)
    topo = Topology(name or f"swdc-{num_servers}")
    topo.graph.graph["server_centric"] = True

    num_racks = num_servers // servers_per_rack
    for rack in range(num_racks):
        topo.add_switch(f"tor{rack}", NodeKind.TOR, rack=rack, switch_model=switch_model)
    servers = []
    for i in range(num_servers):
        rack = i // servers_per_rack
        server = topo.add_server(f"h{i}", rack=rack)
        topo.add_link(server, f"tor{rack}", link_rate, LinkKind.HOST)
        servers.append(server)

    # Regular ring lattice among servers.
    half = regular_degree // 2
    for i in range(num_servers):
        for step in range(1, half + 1):
            j = (i + step) % num_servers
            if not topo.graph.has_edge(servers[i], servers[j]):
                topo.add_link(servers[i], servers[j], link_rate, LinkKind.MESH)

    # Kleinberg long links: endpoint sampled with probability ∝ 1/d.
    for i in range(num_servers):
        for _ in range(random_links_per_server):
            target = _kleinberg_target(i, num_servers, rng)
            if target != i and not topo.graph.has_edge(servers[i], servers[target]):
                topo.add_link(servers[i], servers[target], link_rate, LinkKind.RANDOM)

    topo.validate()
    return topo


def _kleinberg_target(source: int, n: int, rng: random.Random) -> int:
    """Sample a ring position at distance d with weight 1/d."""
    distances = list(range(1, n // 2 + 1))
    weights = [1.0 / d for d in distances]
    d = rng.choices(distances, weights=weights, k=1)[0]
    direction = rng.choice((-1, 1))
    return (source + direction * d) % n
