"""Datacenter topology substrate: typed graphs, generators, and metrics."""

from repro.topology.base import (
    Link,
    LinkKind,
    NodeKind,
    SWITCH_KINDS,
    Topology,
    TopologyError,
    connect_all,
)
from repro.topology.bcube import bcube
from repro.topology.composite import (
    quartz_in_core,
    quartz_in_edge,
    quartz_in_edge_and_core,
    quartz_in_jellyfish,
)
from repro.topology.dcell import dcell, dcell_server_count
from repro.topology.fattree import fat_tree, folded_clos
from repro.topology.jellyfish import jellyfish
from repro.topology.mesh import full_mesh
from repro.topology.metrics import (
    HopProfile,
    TopologySummary,
    average_path_length,
    bisection_capacity,
    hop_profile,
    path_diversity,
    server_relay_hops,
    summarize,
    switch_count,
    switch_hops,
    wiring_complexity,
    worst_case_hop_profile,
)
from repro.topology.quartz import quartz_dual_tor, quartz_ring
from repro.topology.swdc import swdc_ring
from repro.topology.tree import three_tier_tree, two_tier_tree

__all__ = [
    "HopProfile",
    "Link",
    "LinkKind",
    "NodeKind",
    "SWITCH_KINDS",
    "Topology",
    "TopologyError",
    "TopologySummary",
    "average_path_length",
    "bcube",
    "bisection_capacity",
    "connect_all",
    "dcell",
    "dcell_server_count",
    "fat_tree",
    "folded_clos",
    "full_mesh",
    "hop_profile",
    "jellyfish",
    "path_diversity",
    "quartz_dual_tor",
    "quartz_in_core",
    "quartz_in_edge",
    "quartz_in_edge_and_core",
    "quartz_in_jellyfish",
    "quartz_ring",
    "server_relay_hops",
    "summarize",
    "switch_count",
    "swdc_ring",
    "switch_hops",
    "three_tier_tree",
    "two_tier_tree",
    "wiring_complexity",
    "worst_case_hop_profile",
]
