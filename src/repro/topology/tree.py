"""Tree topologies: two-tier and three-tier multi-root trees.

These are the paper's baselines.  The two-tier tree (Table 9, Section 6)
joins ToR switches through a single high-port-count second tier; the
three-tier multi-root tree (Figure 15(a), Section 7) adds an aggregation
tier: each ToR connects to two aggregation switches over 40 Gbps links
and each aggregation switch connects to two core switches over 40 Gbps
links.
"""

from __future__ import annotations

from repro.topology.base import cached_builder, LinkKind, NodeKind, Topology
from repro.units import GBPS


@cached_builder("two-tier-tree")
def two_tier_tree(
    num_tors: int = 16,
    servers_per_tor: int = 4,
    num_roots: int = 1,
    host_rate: float = 10 * GBPS,
    uplink_rate: float = 40 * GBPS,
    tor_model: str = "ULL",
    root_model: str = "CCS",
    name: str | None = None,
) -> Topology:
    """A two-tier tree: ToRs under ``num_roots`` second-tier switches.

    The canonical Table 9 configuration is 16 ToRs under one large
    store-and-forward switch (17 switches, 16 cross-rack links, path
    diversity 1).
    """
    if num_tors < 1 or num_roots < 1:
        raise ValueError("need at least one ToR and one root switch")
    topo = Topology(name or f"two-tier-{num_tors}x{servers_per_tor}")
    roots = [
        topo.add_switch(f"root{r}", NodeKind.CORE, switch_model=root_model)
        for r in range(num_roots)
    ]
    for t in range(num_tors):
        tor = topo.add_switch(f"tor{t}", NodeKind.TOR, rack=t, switch_model=tor_model)
        for root in roots:
            topo.add_link(tor, root, uplink_rate, LinkKind.UPLINK)
        for s in range(servers_per_tor):
            server = topo.add_server(f"h{t}.{s}", rack=t)
            topo.add_link(server, tor, host_rate, LinkKind.HOST)
    topo.validate()
    return topo


@cached_builder("three-tier-tree")
def three_tier_tree(
    num_pods: int = 2,
    tors_per_pod: int = 8,
    aggs_per_pod: int = 2,
    num_cores: int = 2,
    servers_per_tor: int = 4,
    host_rate: float = 10 * GBPS,
    uplink_rate: float = 40 * GBPS,
    tor_model: str = "ULL",
    agg_model: str = "ULL",
    core_model: str = "CCS",
    name: str | None = None,
) -> Topology:
    """The paper's three-tier multi-root tree (Figure 15(a)).

    Every ToR connects to every aggregation switch in its pod (two, in
    the paper's simulations); every aggregation switch connects to every
    core switch.  Cores are high-latency store-and-forward switches
    (CCS), the lower tiers low-latency cut-through (ULL).
    """
    if min(num_pods, tors_per_pod, aggs_per_pod, num_cores) < 1:
        raise ValueError("all tier sizes must be at least 1")
    topo = Topology(name or f"three-tier-{num_pods}x{tors_per_pod}x{servers_per_tor}")
    cores = [
        topo.add_switch(f"core{c}", NodeKind.CORE, switch_model=core_model)
        for c in range(num_cores)
    ]
    rack = 0
    for p in range(num_pods):
        aggs = [
            topo.add_switch(f"agg{p}.{a}", NodeKind.AGG, switch_model=agg_model)
            for a in range(aggs_per_pod)
        ]
        for agg in aggs:
            for core in cores:
                topo.add_link(agg, core, uplink_rate, LinkKind.UPLINK)
        for t in range(tors_per_pod):
            tor = topo.add_switch(
                f"tor{p}.{t}", NodeKind.TOR, rack=rack, switch_model=tor_model
            )
            for agg in aggs:
                topo.add_link(tor, agg, uplink_rate, LinkKind.UPLINK)
            for s in range(servers_per_tor):
                server = topo.add_server(f"h{rack}.{s}", rack=rack)
                topo.add_link(server, tor, host_rate, LinkKind.HOST)
            rack += 1
    topo.validate()
    return topo
