"""Typed datacenter topology graph.

A :class:`Topology` is a thin, typed wrapper around an undirected
:class:`networkx.Graph`.  Nodes are servers or switches; edges are links
with a capacity and a kind.  All topology generators in
:mod:`repro.topology` produce instances of this class, and both the
packet-level simulator (:mod:`repro.sim`) and the flow-level simulator
(:mod:`repro.flowsim`) consume it.

Node attributes
---------------
``kind``
    One of :class:`NodeKind` — ``SERVER``, ``TOR``, ``AGG``, ``CORE``.
``rack``
    Integer rack id, or ``None`` for nodes that are not rack-local
    (aggregation and core switches).  Used by the wiring-complexity
    metric and by localized workloads.
``switch_model``
    For switches, the name of a :class:`repro.sim.switch.SwitchModel`
    (e.g. ``"ULL"`` or ``"CCS"``).  Ignored for servers.

Edge attributes
---------------
``capacity``
    Link capacity in bits/second.
``link_kind``
    One of :class:`LinkKind` — ``HOST`` (server to ToR), ``MESH``
    (Quartz/mesh switch-to-switch), ``UPLINK`` (edge to aggregation or
    aggregation to core), ``RANDOM`` (Jellyfish inter-switch).
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator

import networkx as nx

from repro.cache import cached


class NodeKind(str, enum.Enum):
    """Role of a node in the datacenter network."""

    SERVER = "server"
    TOR = "tor"
    AGG = "agg"
    CORE = "core"


#: Node kinds that forward packets (everything except servers).
SWITCH_KINDS = frozenset({NodeKind.TOR, NodeKind.AGG, NodeKind.CORE})


class LinkKind(str, enum.Enum):
    """Role of a link in the datacenter network."""

    HOST = "host"
    MESH = "mesh"
    UPLINK = "uplink"
    RANDOM = "random"


@dataclass(frozen=True)
class Link:
    """A resolved view of one edge in a :class:`Topology`."""

    u: str
    v: str
    capacity: float
    link_kind: LinkKind

    def endpoints(self) -> tuple[str, str]:
        return (self.u, self.v)


class TopologyError(ValueError):
    """Raised for structurally invalid topology operations."""


@dataclass
class Topology:
    """A datacenter network: servers and switches joined by capacitated links."""

    name: str
    graph: nx.Graph = field(default_factory=nx.Graph)

    # -- construction --------------------------------------------------------

    def add_server(self, node: str, rack: int | None = None) -> str:
        """Add a server node attached to rack ``rack``."""
        self._add_node(node, NodeKind.SERVER, rack=rack, switch_model=None)
        return node

    def add_switch(
        self,
        node: str,
        kind: NodeKind = NodeKind.TOR,
        rack: int | None = None,
        switch_model: str = "ULL",
    ) -> str:
        """Add a switch node of the given kind and hardware model."""
        if kind not in SWITCH_KINDS:
            raise TopologyError(f"{kind} is not a switch kind")
        self._add_node(node, kind, rack=rack, switch_model=switch_model)
        return node

    def _add_node(
        self,
        node: str,
        kind: NodeKind,
        rack: int | None,
        switch_model: str | None,
    ) -> None:
        if node in self.graph:
            raise TopologyError(f"duplicate node {node!r}")
        self.graph.add_node(node, kind=kind, rack=rack, switch_model=switch_model)

    def add_link(
        self,
        u: str,
        v: str,
        capacity: float,
        link_kind: LinkKind = LinkKind.MESH,
    ) -> None:
        """Join ``u`` and ``v`` with a bidirectional link of ``capacity`` bps."""
        for node in (u, v):
            if node not in self.graph:
                raise TopologyError(f"unknown node {node!r}")
        if u == v:
            raise TopologyError(f"self-loop on {u!r}")
        if self.graph.has_edge(u, v):
            raise TopologyError(f"duplicate link {u!r} -- {v!r}")
        if capacity <= 0:
            raise TopologyError(f"capacity must be positive, got {capacity}")
        self.graph.add_edge(u, v, capacity=capacity, link_kind=link_kind)

    # -- queries --------------------------------------------------------------

    def kind(self, node: str) -> NodeKind:
        return self.graph.nodes[node]["kind"]

    def rack(self, node: str) -> int | None:
        return self.graph.nodes[node]["rack"]

    def switch_model(self, node: str) -> str | None:
        return self.graph.nodes[node]["switch_model"]

    def is_server(self, node: str) -> bool:
        return self.kind(node) is NodeKind.SERVER

    def is_switch(self, node: str) -> bool:
        return self.kind(node) in SWITCH_KINDS

    def servers(self) -> list[str]:
        """All server nodes, in insertion order."""
        return [n for n in self.graph if self.is_server(n)]

    def switches(self, kind: NodeKind | None = None) -> list[str]:
        """All switch nodes, optionally filtered to one kind."""
        if kind is None:
            return [n for n in self.graph if self.is_switch(n)]
        return [n for n in self.graph if self.kind(n) is kind]

    def links(self) -> Iterator[Link]:
        """Iterate over all links as :class:`Link` records."""
        for u, v, data in self.graph.edges(data=True):
            yield Link(u, v, data["capacity"], data["link_kind"])

    def link(self, u: str, v: str) -> Link:
        """The link between ``u`` and ``v`` (either orientation)."""
        data = self.graph.get_edge_data(u, v)
        if data is None:
            raise TopologyError(f"no link {u!r} -- {v!r}")
        return Link(u, v, data["capacity"], data["link_kind"])

    def capacity(self, u: str, v: str) -> float:
        return self.link(u, v).capacity

    def tor_of(self, server: str) -> str:
        """The first ToR switch adjacent to ``server``."""
        if not self.is_server(server):
            raise TopologyError(f"{server!r} is not a server")
        for neighbor in self.graph.neighbors(server):
            if self.kind(neighbor) is NodeKind.TOR:
                return neighbor
        raise TopologyError(f"server {server!r} has no ToR neighbor")

    def servers_in_rack(self, rack: int) -> list[str]:
        return [n for n in self.servers() if self.rack(n) == rack]

    def servers_by_rack(self) -> dict[int, list[str]]:
        """Rack id → its servers (insertion order), built in one pass.

        Equivalent to calling :meth:`servers_in_rack` per rack but
        linear instead of quadratic — workload generators that touch
        every rack should use this.
        """
        by_rack: dict[int, list[str]] = {}
        for server in self.servers():
            rack = self.rack(server)
            if rack is not None:
                by_rack.setdefault(rack, []).append(server)
        return by_rack

    def racks(self) -> list[int]:
        """Sorted list of distinct rack ids that contain servers."""
        seen = {self.rack(n) for n in self.servers()}
        return sorted(r for r in seen if r is not None)

    # -- derived views ---------------------------------------------------------

    def degraded(self, removed_links: Iterable[tuple[str, str]]) -> "Topology":
        """A copy of this topology with the given links removed.

        Used for failure studies: remove the mesh channels killed by a
        fibre cut, then re-route over what survives.  Unknown links
        raise; the degraded copy is *not* validated (it may legitimately
        be disconnected — check with :meth:`validate` if required).
        """
        graph = self.graph.copy()
        for u, v in removed_links:
            if not graph.has_edge(u, v):
                raise TopologyError(f"no link {u!r} -- {v!r} to remove")
            graph.remove_edge(u, v)
        return Topology(name=f"{self.name}+degraded", graph=graph)

    def switch_graph(self) -> nx.Graph:
        """The subgraph induced on switches only (servers removed)."""
        return self.graph.subgraph(self.switches()).copy()

    def copy(self) -> "Topology":
        """An independent structural copy (shared immutable attributes).

        Node/edge attribute values (enums, floats, strings) are
        immutable, so the shallow-copied attribute dicts are safe:
        structural mutation (``fail_link`` etc.) of the copy never
        touches the original.
        """
        return Topology(name=self.name, graph=self.graph.copy())

    def fingerprint(self) -> str:
        """Content hash of the graph *structure* (name excluded).

        Two topologies with equal node sets, link sets, and attributes
        share a fingerprint regardless of how they were constructed or
        in which order nodes were inserted.  Derived pure artifacts
        (route tables) use this as their cache key, so a topology
        degraded by a fibre cut automatically keys differently from the
        intact one — and keys *identically* again after full repair.

        Not memoized: the graph is mutable, and route tables are
        rebuilt exactly when it changes.
        """
        h = hashlib.sha256()
        for key, value in sorted(self.graph.graph.items()):
            h.update(f"g:{key}={value!r}\n".encode())
        for node, data in sorted(self.graph.nodes(data=True)):
            attrs = ",".join(f"{k}={v!r}" for k, v in sorted(data.items()))
            h.update(f"n:{node}|{attrs}\n".encode())
        for u, v, data in sorted(
            (min(u, v), max(u, v), data) for u, v, data in self.graph.edges(data=True)
        ):
            attrs = ",".join(f"{k}={val!r}" for k, val in sorted(data.items()))
            h.update(f"e:{u}--{v}|{attrs}\n".encode())
        return h.hexdigest()

    def __cache_key__(self) -> tuple[str, str]:
        """Key contribution when a topology appears in an artifact spec."""
        return ("topology", self.fingerprint())

    def validate(self) -> None:
        """Check structural invariants; raise :class:`TopologyError` on failure.

        Invariants: the network is connected, every server has at least
        one link, and — unless the topology is marked server-centric
        (``graph.graph["server_centric"]``, e.g. DCell, where servers
        relay for each other) — every server's neighbors are switches.
        """
        if len(self.graph) == 0:
            raise TopologyError("empty topology")
        if not nx.is_connected(self.graph):
            raise TopologyError(f"{self.name}: topology is not connected")
        server_centric = bool(self.graph.graph.get("server_centric"))
        for server in self.servers():
            neighbors = list(self.graph.neighbors(server))
            if not neighbors:
                raise TopologyError(f"server {server!r} has no links")
            if server_centric:
                continue
            for neighbor in neighbors:
                if not self.is_switch(neighbor):
                    raise TopologyError(
                        f"server {server!r} connects to non-switch {neighbor!r}"
                    )

    # -- convenience ----------------------------------------------------------

    def __contains__(self, node: str) -> bool:
        return node in self.graph

    def __len__(self) -> int:
        return len(self.graph)

    def summary(self) -> str:
        """One-line human-readable description."""
        n_srv = len(self.servers())
        n_sw = len(self.switches())
        n_link = self.graph.number_of_edges()
        return f"{self.name}: {n_srv} servers, {n_sw} switches, {n_link} links"


def topologies_equal(a: Topology, b: Topology) -> bool:
    """Value equality: same name, nodes, links, and all attributes.

    ``Topology``'s dataclass ``__eq__`` compares the underlying
    ``nx.Graph`` objects by identity, which is never what artifact
    equivalence tests want — this compares content.
    """
    return a.name == b.name and nx.utils.graphs_equal(a.graph, b.graph)


def cached_builder(
    namespace: str, version: int = 1
) -> Callable[[Callable[..., Topology]], Callable[..., Topology]]:
    """Memoize a pure topology builder through :mod:`repro.cache`.

    Builders are keyed by their fully-bound arguments.  Topologies are
    mutable (the packet simulator's fault injection edits the live
    graph), so every return — hit or miss — is an independent
    :meth:`Topology.copy` of the stored instance.
    """

    def copy_topology(value: Any) -> Topology:
        return value.copy()

    return cached(f"topology/{namespace}", version=version, copy=copy_topology)


def connect_all(
    topo: Topology,
    nodes: Iterable[str],
    capacity: float,
    link_kind: LinkKind = LinkKind.MESH,
) -> None:
    """Add a full mesh of links among ``nodes`` (helper for mesh builders)."""
    nodes = list(nodes)
    for i, u in enumerate(nodes):
        for v in nodes[i + 1 :]:
            topo.add_link(u, v, capacity, link_kind)
