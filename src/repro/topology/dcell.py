"""DCell — a recursively defined server-centric DCN (Guo et al., SIGCOMM 2008).

``DCell_0`` is ``n`` servers on one mini-switch.  ``DCell_k`` combines
``t_{k-1} + 1`` copies of ``DCell_{k-1}`` (where ``t_{k-1}`` is the
server count of a ``DCell_{k-1}``), adding one server-to-server link
between every pair of sub-cells.  Like BCube, servers relay traffic, so
paths through DCell pay OS-stack forwarding latency.

The paper cites DCell as related work (Section 2.1.5); it is included
here to make the topology-comparison substrate complete.
"""

from __future__ import annotations

from repro.topology.base import cached_builder, LinkKind, NodeKind, Topology
from repro.units import GBPS


def _dcell_servers(n: int, k: int) -> int:
    """Number of servers in DCell_k with arity n."""
    t = n
    for _ in range(k):
        t = t * (t + 1)
    return t


@cached_builder("dcell")
def dcell(
    n: int = 4,
    k: int = 1,
    link_rate: float = 10 * GBPS,
    switch_model: str = "ULL",
    name: str | None = None,
) -> Topology:
    """Build ``DCell(n, k)`` for ``k ∈ {0, 1}``.

    ``k = 1`` (the common evaluation size) yields ``n(n+1)`` servers and
    ``n + 1`` switches.  Higher levels grow super-exponentially and are
    out of scope for the paper's comparisons.
    """
    if n < 2:
        raise ValueError(f"DCell arity n must be ≥ 2, got {n}")
    if k not in (0, 1):
        raise ValueError(f"only DCell levels 0 and 1 are supported, got {k}")

    topo = Topology(name or f"dcell-n{n}-k{k}")
    topo.graph.graph["server_centric"] = True
    if k == 0:
        sw = topo.add_switch("sw0", NodeKind.TOR, rack=0, switch_model=switch_model)
        for s in range(n):
            server = topo.add_server(f"h0.{s}", rack=0)
            topo.add_link(server, sw, link_rate, LinkKind.HOST)
        topo.validate()
        return topo

    num_cells = n + 1
    for cell in range(num_cells):
        sw = topo.add_switch(f"sw{cell}", NodeKind.TOR, rack=cell, switch_model=switch_model)
        for s in range(n):
            server = topo.add_server(f"h{cell}.{s}", rack=cell)
            topo.add_link(server, sw, link_rate, LinkKind.HOST)

    # Level-1 links: cell pair (i, j), i < j, joins server j-1 of cell i
    # to server i of cell j (the standard DCell construction).
    for i in range(num_cells):
        for j in range(i + 1, num_cells):
            topo.add_link(f"h{i}.{j - 1}", f"h{j}.{i}", link_rate, LinkKind.MESH)
    topo.validate()
    return topo


def dcell_server_count(n: int, k: int) -> int:
    """Server capacity of ``DCell(n, k)`` (exposed for sizing studies)."""
    return _dcell_servers(n, k)
