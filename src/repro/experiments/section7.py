"""Section 7 simulation study: the Figure 17 and 18 experiments.

Topology roster
---------------
The paper's six simulated architectures (Section 7), built at a common
scale — 16 racks, 4 servers each (64 servers) — so latencies are
comparable across topologies:

1. three-tier multi-root tree (CCS core),
2. Quartz in core,
3. Quartz in edge,
4. Quartz in edge and core,
5. Jellyfish (16 ULL switches, four inter-switch links each),
6. Quartz in Jellyfish (four 4-switch rings).

Fabric links are 10 Gbps end to end; trees keep the paper's 2-uplink
redundancy.  The modest uplink count (2 per ToR/ring switch vs the
mesh's 15 rack-to-rack channels) is exactly the low-path-diversity
property Section 5 blames for tree congestion.

Workload
--------
Tasks per Section 7.1: scatter (hub streams to ``fan`` receivers),
gather (``fan`` senders stream to the hub), scatter/gather (closed-loop
request/reply rounds).  Servers send 400-byte packets via Poisson
processes; participants are drawn uniformly (global) or from a window of
nearby racks (localized, Figure 18).  The reported metric is the mean
per-packet latency, averaged over every task's packets (Figure 17) or
over the one local task's packets (Figure 18).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import repro.topology as T
from repro.routing import ECMPRouter
from repro.runner import ExperimentSpec, run_cells
from repro.sim import Network
from repro.sim.stats import LatencySummary
from repro.units import GBPS
from repro.workloads.tasks import build_task, random_task

#: Topology builders at the common Section 7 scale, keyed by paper name.
TOPOLOGY_BUILDERS: dict[str, Callable[[], T.Topology]] = {
    "three-tier tree": lambda: T.three_tier_tree(
        num_pods=4, tors_per_pod=4, aggs_per_pod=2, num_cores=2,
        servers_per_tor=4, uplink_rate=10 * GBPS,
    ),
    "quartz in core": lambda: T.quartz_in_core(
        num_pods=4, tors_per_pod=4, aggs_per_pod=2, core_ring_size=4,
        servers_per_tor=4, uplink_rate=10 * GBPS,
    ),
    "quartz in edge": lambda: T.quartz_in_edge(
        num_rings=4, ring_size=4, num_cores=2, servers_per_switch=4,
        uplink_rate=10 * GBPS,
    ),
    "quartz in edge and core": lambda: T.quartz_in_edge_and_core(
        num_rings=4, ring_size=4, core_ring_size=4, servers_per_switch=4,
        uplink_rate=10 * GBPS,
    ),
    "jellyfish": lambda: T.jellyfish(
        num_switches=16, network_degree=4, servers_per_switch=4, seed=7,
    ),
    "quartz in jellyfish": lambda: T.quartz_in_jellyfish(
        num_rings=4, ring_size=4, inter_ring_links=4, servers_per_switch=4,
        seed=7,
    ),
}


@dataclass(frozen=True)
class TaskExperimentResult:
    """Outcome of one (topology, task kind, #tasks) cell."""

    topology: str
    kind: str
    num_tasks: int
    summary: LatencySummary
    measured_group: str  # "all tasks" or "local task"

    @property
    def mean_latency(self) -> float:
        return self.summary.mean


def run_task_experiment(
    topology: str,
    kind: str,
    num_tasks: int,
    fan: int | None = None,
    per_stream_bandwidth_bps: float = 100e6,
    duration: float = 0.005,
    rounds: int = 100,
    localized: bool = False,
    rack_window: int = 2,
    seed: int = 0,
) -> TaskExperimentResult:
    """Run ``num_tasks`` concurrent tasks and measure packet latency.

    ``fan`` defaults to the paper's literal task shape: "one host is the
    sender and the others are receivers" — every other server in the
    network (or, for the localized task, every other server in its rack
    window).  Pass an explicit ``fan`` for smaller, faster instances.

    Global mode (Figure 17): all tasks are placed randomly (hubs
    distinct, so no host NIC carries two hub loads) and every task's
    packets count.  Localized mode (Figure 18): task 0 lives within
    ``rack_window`` nearby racks and so has "fewer targets" than the
    global cross-traffic tasks; only the local task's packets are
    measured.
    """
    if topology not in TOPOLOGY_BUILDERS:
        raise ValueError(
            f"unknown topology {topology!r}; options: {sorted(TOPOLOGY_BUILDERS)}"
        )
    if num_tasks < 1:
        raise ValueError("need at least one task")
    topo = TOPOLOGY_BUILDERS[topology]()
    net = Network(topo, ECMPRouter(topo))
    num_servers = len(topo.servers())
    servers_per_rack = len(topo.servers_in_rack(topo.racks()[0]))

    tasks = []
    hubs: set[str] = set()
    for index in range(num_tasks):
        local = localized and index == 0
        if fan is not None:
            task_fan = max(2, fan // 2) if local else fan
        elif local:
            task_fan = rack_window * servers_per_rack - 1
        else:
            task_fan = num_servers - 1 - len(hubs)
        spec = random_task(
            topo,
            kind,
            fan=task_fan,
            seed=seed * 1000 + index,
            rack_window=rack_window if local else None,
            exclude=hubs,
        )
        hubs.add(spec.hub)
        group = "local" if local else f"task{index}"
        tasks.append(
            build_task(
                net,
                spec,
                per_stream_bandwidth_bps,
                rounds=rounds,
                group=group,
                seed=seed * 1000 + index,
                flow_base=index * 100,
            )
        )
    for task in tasks:
        task.start()
    net.run(until=duration)

    if localized:
        summary = net.stats.summary("local")
        measured = "local task"
    else:
        summary = net.stats.summary()
        measured = "all tasks"
    return TaskExperimentResult(
        topology=topology,
        kind=kind,
        num_tasks=num_tasks,
        summary=summary,
        measured_group=measured,
    )


@dataclass(frozen=True)
class SweepPoint:
    """One figure point: mean latency averaged over placement seeds."""

    topology: str
    kind: str
    num_tasks: int
    mean_latency: float
    per_seed: tuple[float, ...]


def _sweep(
    topologies: list[str],
    kind: str,
    task_counts: list[int],
    seeds: tuple[int, ...],
    localized: bool,
    workers: int | None = 1,
    **kwargs: float,
) -> dict[str, list[SweepPoint]]:
    """Run the (topology × task count × seed) grid, optionally in parallel.

    Every cell is an independent :func:`run_task_experiment` call, so the
    grid fans out over :func:`repro.runner.run_cells`; results come back
    in grid order and are bit-identical to a serial sweep regardless of
    ``workers``.
    """
    cells = [
        ExperimentSpec(
            run_task_experiment,
            args=(topology, kind, n),
            kwargs={"localized": localized, "seed": s, **kwargs},
            label=f"{kind}/{topology}/tasks={n}/seed={s}",
        )
        for topology in topologies
        for n in task_counts
        for s in seeds
    ]
    results = iter(run_cells(cells, workers=workers))

    series: dict[str, list[SweepPoint]] = {}
    for topology in topologies:
        points = []
        for n in task_counts:
            means = [next(results).mean_latency for _ in seeds]
            points.append(
                SweepPoint(
                    topology=topology,
                    kind=kind,
                    num_tasks=n,
                    mean_latency=sum(means) / len(means),
                    per_seed=tuple(means),
                )
            )
        series[topology] = points
    return series


def figure17_sweep(
    topologies: list[str] | None = None,
    kind: str = "scatter",
    task_counts: list[int] | None = None,
    seeds: tuple[int, ...] = (0,),
    workers: int | None = 1,
    **kwargs: float,
) -> dict[str, list[SweepPoint]]:
    """One Figure 17 panel: latency vs #tasks per topology (global).

    Task placement is random; pass several ``seeds`` to average over
    placements (the paper averages many runs and shows 95 % CIs).
    ``workers`` fans the grid out over processes (``None`` = all CPUs);
    results are identical for any worker count.
    """
    if topologies is None:
        topologies = [
            "three-tier tree",
            "jellyfish",
            "quartz in core",
            "quartz in edge",
            "quartz in edge and core",
        ]
    if task_counts is None:
        task_counts = [1, 2, 4, 8] if kind != "scatter_gather" else [1, 2, 4]
    return _sweep(
        topologies, kind, task_counts, seeds, localized=False, workers=workers,
        **kwargs,
    )


def figure18_sweep(
    topologies: list[str] | None = None,
    kind: str = "scatter",
    task_counts: list[int] | None = None,
    seeds: tuple[int, ...] = (0, 1, 2),
    workers: int | None = 1,
    **kwargs: float,
) -> dict[str, list[SweepPoint]]:
    """One Figure 18 panel: localized-task latency vs #background tasks.

    Localized placement is highly seed-sensitive on random topologies
    (a "nearby racks" window lands at an arbitrary graph distance in
    Jellyfish — which is precisely the paper's point), so this sweep
    averages several seeds by default.
    """
    if topologies is None:
        topologies = [
            "three-tier tree",
            "jellyfish",
            "quartz in jellyfish",
            "quartz in edge and core",
        ]
    if task_counts is None:
        task_counts = [1, 2, 4, 6] if kind != "scatter_gather" else [1, 2, 4]
    return _sweep(
        topologies, kind, task_counts, seeds, localized=True, workers=workers,
        **kwargs,
    )


def format_sweep(series: dict[str, list[SweepPoint]], title: str) -> str:
    """Render a sweep as an aligned text table (µs per packet)."""
    lines = [title]
    counts = [r.num_tasks for r in next(iter(series.values()))]
    header = f"{'topology':<26}" + "".join(f"{n:>10}" for n in counts)
    lines.append(header + "   (tasks)")
    lines.append("-" * len(header))
    for topology, results in series.items():
        row = f"{topology:<26}" + "".join(
            f"{r.mean_latency * 1e6:>10.2f}" for r in results
        )
        lines.append(row)
    return "\n".join(lines)
