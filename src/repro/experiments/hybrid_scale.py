"""Full-scale hybrid packet/flow experiment (ROADMAP item: hybrid engine).

The scenario the hybrid engine exists for: a full 1056-port Quartz
element (33 ULL switches in a ring full mesh, Section 3) and a
fat-tree-edge composite (Quartz rings at the edge under CCS cores,
Figure 15(c)) carrying *thousands* of flow-level background transfers
while a latency-sensitive foreground incast cohort — the
partition-aggregate pattern — runs at packet fidelity on top of the
residual capacity.

Every cell is runnable in two modes on the same inputs:

* ``hybrid`` — background rides the flow-level residual handoff
  (:class:`repro.hybrid.HybridNetwork` with the knob on);
* ``oracle`` — the same schedule materialized as per-flow Poisson
  packet sources: every packet simulated.  This is the accuracy and
  speed baseline; ``benchmarks/bench_hybrid_scale.py`` gates the
  hybrid engine's foreground-latency error and wall-clock speedup
  against it.

``python -m repro experiment --figure hybrid-scale`` prints the
scorecard committed in EXPERIMENTS.md.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

import repro.topology as T
from repro.hybrid import HybridNetwork, random_background_schedule
from repro.routing import ECMPRouter
from repro.runner import ExperimentSpec, run_cells
from repro.sim.stats import LatencySummary
from repro.workloads.tasks import StreamingTask, random_task

#: Fabrics by scenario name.  The first two are the headline scale
#: scenarios; the small/mid rings are the accuracy and speedup gate
#: fabrics (small enough that the pure-packet oracle finishes quickly).
FABRIC_BUILDERS: dict[str, Callable[[], T.Topology]] = {
    # 33 switches × 32 ports = a full 1056-port Quartz element; four
    # servers per switch populated (132 hosts), as in Section 7 scale.
    "quartz-element-1056": lambda: T.quartz_ring(33, servers_per_switch=4),
    # Quartz rings replacing the edge/aggregation tiers of a tree.
    "quartz-in-edge": lambda: T.quartz_in_edge(
        num_rings=4, ring_size=4, num_cores=2, servers_per_switch=4
    ),
    "quartz-ring-small": lambda: T.quartz_ring(5, 2),
    "quartz-ring-mid": lambda: T.quartz_ring(9, 3),
}

#: Cell defaults, shared by the figure runner and the benchmark gates.
DEFAULT_BG_DEMAND_BPS = 500e6
DEFAULT_FG_BANDWIDTH_BPS = 200e6


@dataclass(frozen=True)
class HybridScaleResult:
    """One (fabric, mode) cell of the hybrid-scale scenario."""

    fabric: str
    mode: str  # "hybrid" | "oracle"
    n_background: int
    duration: float
    foreground: LatencySummary
    wall_clock_s: float
    epochs: int
    residual_epochs: int
    packets_delivered: int
    background_peak: int
    background_unroutable: int

    @property
    def fg_mean(self) -> float:
        return self.foreground.mean

    @property
    def fg_p99(self) -> float:
        return self.foreground.p99


def run_hybrid_scale_cell(
    fabric: str = "quartz-ring-small",
    mode: str = "hybrid",
    n_background: int = 200,
    duration: float = 5e-3,
    fg_fan: int = 8,
    bg_demand_bps: float = DEFAULT_BG_DEMAND_BPS,
    fg_bandwidth_bps: float = DEFAULT_FG_BANDWIDTH_BPS,
    bg_mean_duration: float | None = None,
    seed: int = 0,
) -> HybridScaleResult:
    """Run one cell: background schedule + foreground incast, either mode.

    The background schedule and the foreground task placement depend
    only on (fabric, ``n_background``, ``duration``, ``seed``) — both
    modes consume identical inputs, which is what makes the oracle a
    valid accuracy baseline.  The foreground is a gather (incast) task:
    ``fg_fan`` workers stream 400-byte responses to one aggregator, the
    partition-aggregate shape.

    ``bg_mean_duration`` sets the background flows' mean lifetime
    (default ``duration / 4``).  Longer-lived flows shift work toward
    the pure-packet oracle — more packets per epoch boundary — which is
    the regime the hybrid engine is built for; the benchmark gates use
    it to match the paper-scale ratio of transfers to control churn.
    """
    if fabric not in FABRIC_BUILDERS:
        raise ValueError(
            f"unknown fabric {fabric!r}; options: {sorted(FABRIC_BUILDERS)}"
        )
    if mode not in ("hybrid", "oracle"):
        raise ValueError(f"mode must be 'hybrid' or 'oracle', got {mode!r}")
    topo = FABRIC_BUILDERS[fabric]()
    router = ECMPRouter(topo)
    schedule = random_background_schedule(
        topo.servers(),
        n_background,
        horizon=duration,
        mean_duration=(
            duration / 4 if bg_mean_duration is None else bg_mean_duration
        ),
        demand_bps=bg_demand_bps,
        seed=seed,
    )
    net = HybridNetwork(
        topo,
        router,
        schedule,
        # "hybrid" follows the knob default (so REPRO_HYBRID_DISABLE
        # still works as the escape hatch); "oracle" forces packets.
        hybrid=None if mode == "hybrid" else False,
        record_timeline=False,
    )
    spec = random_task(topo, "gather", fan=fg_fan, seed=seed)
    task = StreamingTask(
        net, spec, fg_bandwidth_bps, group="fg", seed=seed, flow_base=0
    )
    start = time.perf_counter()
    task.start()
    net.run(until=duration)
    wall_clock = time.perf_counter() - start
    return HybridScaleResult(
        fabric=fabric,
        mode=mode,
        n_background=n_background,
        duration=duration,
        foreground=net.stats.summary("fg"),
        wall_clock_s=wall_clock,
        epochs=net.epochs,
        residual_epochs=net.residual_epoch,
        packets_delivered=net.packets_delivered,
        background_peak=schedule.peak_concurrency(),
        background_unroutable=net.background_unroutable,
    )


def hybrid_scale_experiment(
    fabrics: tuple[str, ...] = ("quartz-element-1056", "quartz-in-edge"),
    n_background: int = 2000,
    duration: float = 5e-3,
    fg_fan: int = 16,
    seed: int = 0,
    workers: int | None = 1,
) -> list[HybridScaleResult]:
    """The headline scenario: thousands of background flows per fabric.

    Runs every fabric in hybrid mode (one cell per fabric, fanned over
    :func:`repro.runner.run_cells`).  Metrics are deterministic for a
    given seed; only ``wall_clock_s`` varies run to run.
    """
    cells = [
        ExperimentSpec(
            run_hybrid_scale_cell,
            kwargs={
                "fabric": fabric,
                "mode": "hybrid",
                "n_background": n_background,
                "duration": duration,
                "fg_fan": fg_fan,
                "seed": seed,
            },
            label=f"hybrid-scale/{fabric}/bg={n_background}/seed={seed}",
        )
        for fabric in fabrics
    ]
    return list(run_cells(cells, workers=workers))


def format_hybrid_scale(results: list[HybridScaleResult]) -> str:
    """Scorecard table (µs foreground latency, wall-clock seconds)."""
    lines = ["Hybrid packet/flow engine at scale (foreground incast latency)"]
    header = (
        f"{'fabric':<22}{'mode':>8}{'bg flows':>10}{'peak':>6}"
        f"{'epochs':>8}{'fg mean us':>12}{'fg p99 us':>12}"
        f"{'fg pkts':>9}{'wall s':>8}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for r in results:
        lines.append(
            f"{r.fabric:<22}{r.mode:>8}{r.n_background:>10}"
            f"{r.background_peak:>6}{r.epochs:>8}"
            f"{r.fg_mean * 1e6:>12.2f}{r.fg_p99 * 1e6:>12.2f}"
            f"{r.foreground.count:>9}{r.wall_clock_s:>8.2f}"
        )
    return "\n".join(lines)
