"""Section 7.2: the pathological traffic pattern (Figure 20).

Multiple flows from servers on one Quartz switch to receivers on
another stress the single switch-to-switch channel.  Three fabrics are
compared:

* a **non-blocking core switch** (every server on one CCS switch) —
  unaffected by the concentration but pays the 6 µs store-and-forward
  core each way;
* **Quartz with ECMP** (direct paths only) — lowest latency until the
  offered load saturates the 40 Gbps channel, then unbounded;
* **Quartz with VLB** — spills the excess over two-hop paths, keeping
  latency low through 50 Gbps.
"""

from __future__ import annotations

from dataclasses import dataclass

import repro.topology as T
from repro.routing import AdaptiveVLBRouter, ECMPRouter, Router
from repro.runner import ExperimentSpec, run_cells
from repro.sim import Network, PoissonSource
from repro.sim.stats import LatencySummary
from repro.topology.base import LinkKind, NodeKind, Topology
from repro.units import GBPS

#: Paper setup: four 40 GbE switches in the ring (Figure 19(a)).
MESH_RATE = 40 * GBPS
HOST_RATE = 10 * GBPS
SERVERS_PER_RACK = 8


def quartz_core_testbed() -> Topology:
    """Four-switch 40 G Quartz ring, eight 10 G servers per switch."""
    return T.full_mesh(
        4, SERVERS_PER_RACK, link_rate=MESH_RATE, name="fig20-quartz"
    )


def nonblocking_testbed() -> Topology:
    """The same servers on one non-blocking store-and-forward core."""
    topo = Topology("fig20-core")
    topo.add_switch("core", NodeKind.CORE, switch_model="CCS")
    for rack in range(4):
        for s in range(SERVERS_PER_RACK):
            server = topo.add_server(f"h{rack}.{s}", rack=rack)
            topo.add_link(server, "core", HOST_RATE, LinkKind.HOST)
    topo.validate()
    return topo


@dataclass(frozen=True)
class PathologicalResult:
    """One Figure 20 point."""

    fabric: str
    offered_load_bps: float
    summary: LatencySummary
    saturated: bool

    @property
    def mean_latency(self) -> float:
        return self.summary.mean


def _mesh_capacity_fixup(topo: Topology) -> None:
    """The non-blocking testbed has no mesh links; nothing to fix."""


def run_pathological(
    fabric: str,
    offered_load_bps: float,
    duration: float = 0.004,
    seed: int = 0,
) -> PathologicalResult:
    """Drive rack 0 → rack 1 at ``offered_load_bps`` aggregate.

    ``fabric`` is ``"nonblocking"``, ``"quartz-ecmp"`` or ``"quartz-vlb"``.
    VLB adapts its direct fraction to the offered load (Section 3.4).
    """
    if fabric == "nonblocking":
        topo = nonblocking_testbed()
        router: Router = ECMPRouter(topo)
        channel_capacity = float("inf")
    elif fabric == "quartz-ecmp":
        topo = quartz_core_testbed()
        router = ECMPRouter(topo)
        channel_capacity = MESH_RATE
    elif fabric == "quartz-vlb":
        topo = quartz_core_testbed()
        router = AdaptiveVLBRouter(topo, offered_load_bps=offered_load_bps)
        channel_capacity = 3 * MESH_RATE  # direct + two detours
    else:
        raise ValueError(f"unknown fabric {fabric!r}")

    net = Network(topo, router)
    senders = topo.servers_in_rack(0)
    receivers = topo.servers_in_rack(1)
    per_flow = offered_load_bps / len(senders)
    for i, (src, dst) in enumerate(zip(senders, receivers)):
        PoissonSource.at_bandwidth(
            net, src, dst, per_flow, group="pathological",
            flow_id=i, seed=seed + i, vary_flow_per_packet=True,
        ).start()
    net.run(until=duration)
    return PathologicalResult(
        fabric=fabric,
        offered_load_bps=offered_load_bps,
        summary=net.stats.summary("pathological"),
        saturated=offered_load_bps >= channel_capacity,
    )


def figure20_sweep(
    loads_gbps: list[float] | None = None,
    duration: float = 0.004,
    seed: int = 0,
    workers: int | None = 1,
) -> dict[str, list[PathologicalResult]]:
    """The full Figure 20: latency vs offered load for all three fabrics.

    Every (fabric, load) point is independent, so the grid fans out over
    :func:`repro.runner.run_cells`; any ``workers`` count returns
    bit-identical results.
    """
    if loads_gbps is None:
        loads_gbps = [10, 20, 30, 40, 50]
    fabrics = ("nonblocking", "quartz-ecmp", "quartz-vlb")
    cells = [
        ExperimentSpec(
            run_pathological,
            args=(fabric, g * GBPS),
            kwargs={"duration": duration, "seed": seed},
            label=f"fig20/{fabric}/{g}G",
        )
        for fabric in fabrics
        for g in loads_gbps
    ]
    results = iter(run_cells(cells, workers=workers))
    return {fabric: [next(results) for _ in loads_gbps] for fabric in fabrics}


def format_figure20(results: dict[str, list[PathologicalResult]]) -> str:
    """Render the Figure 20 series as a text table (µs per packet)."""
    loads = [r.offered_load_bps / GBPS for r in next(iter(results.values()))]
    header = f"{'fabric':<18}" + "".join(f"{g:>10.0f}G" for g in loads)
    lines = ["Figure 20: pathological rack-to-rack pattern", header, "-" * len(header)]
    for fabric, series in results.items():
        row = f"{fabric:<18}"
        for point in series:
            label = f"{point.mean_latency * 1e6:.2f}"
            if point.saturated:
                label += "*"
            row += f"{label:>11}"
        lines.append(row)
    lines.append("(* offered load at or above the routing scheme's channel capacity)")
    return "\n".join(lines)
