"""Latency decomposition across the Section 7 architectures.

Explains the Figure 17 results component-by-component: runs a fixed
probe workload on each architecture with the tracing simulator and
attributes the mean packet latency to serialization, switching,
queueing, and propagation (the paper's Table 2 framing).  The headline
mechanism becomes visible: the three-tier tree's budget is dominated by
the CCS core's switching latency, which every Quartz replacement
removes.
"""

from __future__ import annotations

from repro.experiments.section7 import TOPOLOGY_BUILDERS
from repro.routing import ECMPRouter
from repro.sim.sources import PoissonSource
from repro.sim.trace import LatencyBreakdown, TracingNetwork, format_breakdown

def latency_breakdown(
    topology: str,
    num_probes: int = 8,
    bandwidth_bps: float = 500e6,
    duration: float = 0.005,
    seed: int = 0,
) -> LatencyBreakdown:
    """Mean component breakdown of cross-rack probe traffic.

    Probes are Poisson streams between servers in distant racks (rack i
    to rack i + half-way around), so every stream crosses the
    architecture's full fabric.
    """
    if topology not in TOPOLOGY_BUILDERS:
        raise ValueError(f"unknown topology {topology!r}")
    topo = TOPOLOGY_BUILDERS[topology]()
    net = TracingNetwork(topo, ECMPRouter(topo))
    racks = topo.racks()
    half = len(racks) // 2
    for i in range(num_probes):
        src_rack = racks[i % len(racks)]
        dst_rack = racks[(i + half) % len(racks)]
        src = topo.servers_in_rack(src_rack)[0]
        dst = topo.servers_in_rack(dst_rack)[-1]
        PoissonSource.at_bandwidth(
            net, src, dst, bandwidth_bps, group="probe",
            flow_id=i, seed=seed + i,
        ).start()
    net.run(until=duration)
    return net.mean_breakdown("probe")


def breakdown_table(
    topologies: list[str] | None = None, **kwargs: float
) -> dict[str, LatencyBreakdown]:
    """Breakdowns for a roster of architectures."""
    if topologies is None:
        topologies = [
            "three-tier tree",
            "quartz in core",
            "quartz in edge",
            "quartz in edge and core",
            "jellyfish",
        ]
    return {t: latency_breakdown(t, **kwargs) for t in topologies}  # type: ignore[arg-type]


def format_breakdown_table(table: dict[str, LatencyBreakdown]) -> str:
    """Render the decomposition as aligned text."""
    lines = ["Latency decomposition of cross-rack traffic (mean per packet)"]
    for topology, breakdown in table.items():
        lines.append(format_breakdown(breakdown, topology))
    return "\n".join(lines)
