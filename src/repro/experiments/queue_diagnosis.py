"""Queue-diagnosis experiment: can telemetry find the culprit?

The telemetry layer (:mod:`repro.telemetry`) claims it can localize
*where* a queue built and *which flow* built it.  This experiment puts
that claim against ground truth the simulator already knows, because it
injects the trouble itself:

* a single Quartz element carries light all-to-all background traffic;
* mid-run, an **incast burst** converges on one victim server — several
  racks each open a stream at the same instant, one of them (the
  "heavy" sender) at a multiple of the others' rate;
* optionally a **fibre-segment cut** lands mid-burst
  (:class:`~repro.sim.faults.FaultInjector`), so attribution must stay
  correct through reroutes, drops, and route-cache churn.

Ground truth: every incast byte funnels through the victim's last-hop
port (``tor<v> → h<v>.0``), so that port must own the largest occupancy
integral, and the heavy sender's flow must top the attribution at the
culprit port's peak window.  A sweep over seeds moves the victim rack
and the fault location; :func:`score_diagnosis` reduces the sweep to
precision/recall of the telemetry's top-1 port and flow picks against
the per-cell truths.

Every cell is a pure function of its arguments — safe to fan out over
:func:`repro.runner.run_cells` bit-identically at any worker count.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path

from repro.core.multiring import plan_rings
from repro.routing import ECMPRouter, VLBRouter
from repro.runner import ExperimentSpec, run_cells
from repro.sim import Network, PoissonSource
from repro.sim.faults import FaultInjector, random_fault_schedule
from repro.telemetry import TelemetryConfig, diagnose
from repro.topology import quartz_ring
from repro.units import GBPS, MBPS, MICROSECONDS

#: Routers the experiment can exercise, keyed by CLI-friendly name.
ROUTER_BUILDERS = {
    "ecmp": ECMPRouter,
    "vlb": VLBRouter,
}

#: Flow label of the ground-truth dominant incast sender.
HEAVY_FLOW = "incast-heavy"


@dataclass(frozen=True)
class QueueDiagnosisResult:
    """Outcome of one seeded incast(+cut) diagnosis cell."""

    ring_size: int
    seed: int
    router: str
    cut: bool
    #: Ground truth: the port every incast byte funnels through, and
    #: the flow label of the dominant sender.
    true_port: tuple[str, str]
    true_flow: str
    #: The telemetry layer's top-1 picks.
    detected_port: tuple[str, str] | None
    detected_flow: str | None
    #: Detected microburst windows at the culprit port that overlap the
    #: injected burst span (evidence, not part of the top-1 score).
    bursts_at_culprit: int
    peak_depth: int
    packets_delivered: int
    packets_dropped: int
    packets_rerouted: int
    channels_severed: int
    #: Telemetry-integrity fields the invariant tests assert on:
    #: smallest per-flow occupancy slice observed anywhere (must be
    #: ≥ 0), and whether every monitor's windows tile time contiguously.
    min_flow_occupancy: float
    windows_contiguous: bool
    windows_observed: int

    @property
    def port_correct(self) -> bool:
        return self.detected_port == self.true_port

    @property
    def flow_correct(self) -> bool:
        return self.detected_flow == self.true_flow


@dataclass(frozen=True)
class DiagnosisScore:
    """Precision/recall of top-1 port and flow picks over a sweep.

    Each cell contributes one truth and at most one prediction per
    dimension (a cell whose telemetry saw nothing predicts nothing), so
    precision divides by predictions made and recall by truths.
    """

    cells: int
    port_tp: int
    port_predictions: int
    flow_tp: int
    flow_predictions: int

    @property
    def port_precision(self) -> float:
        return self.port_tp / self.port_predictions if self.port_predictions else 0.0

    @property
    def port_recall(self) -> float:
        return self.port_tp / self.cells if self.cells else 0.0

    @property
    def flow_precision(self) -> float:
        return self.flow_tp / self.flow_predictions if self.flow_predictions else 0.0

    @property
    def flow_recall(self) -> float:
        return self.flow_tp / self.cells if self.cells else 0.0


def run_queue_diagnosis_cell(
    ring_size: int = 7,
    servers_per_switch: int = 2,
    seed: int = 0,
    router: str = "ecmp",
    background_bandwidth_bps: float = 40 * MBPS,
    incast_senders: int = 5,
    incast_bandwidth_bps: float = 1.2 * GBPS,
    heavy_multiplier: float = 4.0,
    duration: float = 0.006,
    burst_at: float = 0.002,
    burst_until: float = 0.004,
    cut: bool = False,
    num_rings: int = 2,
    repair_after: float | None = 0.0015,
    window: float = 100 * MICROSECONDS,
    dump_windows_to: str | Path | None = None,
) -> QueueDiagnosisResult:
    """One seeded cell: background + incast (+ optional mid-burst cut).

    The victim rack rotates with the seed; ``incast_senders`` distinct
    racks each open a Poisson stream at ``incast_bandwidth_bps`` toward
    the victim's first server for ``[burst_at, burst_until)``, with the
    first sender boosted by ``heavy_multiplier`` (the ground-truth
    culprit flow).  With ``cut=True`` a fibre segment sampled from the
    seed is severed halfway into the burst and repaired
    ``repair_after`` seconds later (``None`` = never), exercising
    attribution under reroutes and drops.

    ``dump_windows_to`` writes the full per-window telemetry dump
    (:meth:`repro.telemetry.TelemetryHub.window_dump`) to a JSON file —
    the CI smoke job uploads it as a workflow artifact.
    """
    if router not in ROUTER_BUILDERS:
        raise ValueError(f"unknown router {router!r}; options: {sorted(ROUTER_BUILDERS)}")
    if not 0 <= burst_at < burst_until <= duration:
        raise ValueError("need 0 <= burst_at < burst_until <= duration")
    if incast_senders < 2 or incast_senders >= ring_size:
        raise ValueError("need 2 <= incast_senders < ring_size")

    topo = quartz_ring(ring_size, servers_per_switch=servers_per_switch)
    net = Network(
        topo,
        ROUTER_BUILDERS[router](topo),
        telemetry=TelemetryConfig(window=window),
    )

    victim_rack = seed % ring_size
    victim = f"h{victim_rack}.0"
    true_port = (f"tor{victim_rack}", victim)

    if cut:
        plan = plan_rings(ring_size, num_rings=num_rings)
        injector = FaultInjector(net, plan)
        cut_at = (burst_at + burst_until) / 2
        injector.schedule(
            random_fault_schedule(
                plan, 1, cut_at=cut_at, repair_after=repair_after, seed=seed
            )
        )

    # Light all-to-all background so the diagnosis has to pick the
    # incast out of real competing traffic, not a silent fabric.
    stream = 0
    for i in range(ring_size):
        for j in range(ring_size):
            if i == j:
                continue
            PoissonSource.at_bandwidth(
                net,
                f"h{i}.{j % servers_per_switch}",
                f"h{j}.{i % servers_per_switch}",
                background_bandwidth_bps,
                group=f"bg-{i}-{j}",
                flow_id=stream,
                seed=seed * 10_000 + stream,
            ).start()
            stream += 1

    # The incast: ``incast_senders`` racks nearest the victim (skipping
    # it) converge on one server for the burst span; sender 0 is the
    # ground-truth heavy flow.
    for k in range(incast_senders):
        rack = (victim_rack + 1 + k) % ring_size
        rate = incast_bandwidth_bps * (heavy_multiplier if k == 0 else 1.0)
        PoissonSource.at_bandwidth(
            net,
            f"h{rack}.{(k + 1) % servers_per_switch}",
            victim,
            rate,
            group=HEAVY_FLOW if k == 0 else f"incast-{rack}",
            flow_id=1_000_000 + k,
            seed=seed * 10_000 + 5_000 + k,
            stop_at=burst_until,
        ).start(delay=burst_at)

    net.run(until=duration)

    hub = net.telemetry
    if dump_windows_to is not None:
        Path(dump_windows_to).write_text(
            json.dumps(hub.window_dump(), indent=2, sort_keys=True) + "\n"
        )
    report = diagnose(hub)
    bursts_at_culprit = sum(
        1
        for burst in report.bursts
        if burst.port == true_port
        and burst.window.end > burst_at
        and burst.window.start < burst_until
    )
    peak_depth = max((b.peak_depth for b in report.bursts), default=0)

    min_flow_occupancy = math.inf
    windows_contiguous = True
    windows_observed = 0
    for key in hub.ports():
        windows = hub.monitors[key].windows()
        windows_observed += len(windows)
        for prev, cur in zip(windows, windows[1:]):
            if cur.index != prev.index + 1 or cur.start != prev.end:
                windows_contiguous = False
        for win in windows:
            for occupancy in win.occupancy_by_flow.values():
                if occupancy < min_flow_occupancy:
                    min_flow_occupancy = occupancy
    if min_flow_occupancy is math.inf:
        min_flow_occupancy = 0.0

    severed = sum(1 for e in net.fault_stats.events if e.kind == "link_down")
    return QueueDiagnosisResult(
        ring_size=ring_size,
        seed=seed,
        router=router,
        cut=cut,
        true_port=true_port,
        true_flow=HEAVY_FLOW,
        detected_port=report.culprit_port,
        detected_flow=report.culprit_flow,
        bursts_at_culprit=bursts_at_culprit,
        peak_depth=peak_depth,
        packets_delivered=net.packets_delivered,
        packets_dropped=net.packets_dropped,
        packets_rerouted=net.packets_rerouted,
        channels_severed=severed,
        min_flow_occupancy=min_flow_occupancy,
        windows_contiguous=windows_contiguous,
        windows_observed=windows_observed,
    )


def queue_diagnosis_sweep(
    seeds: tuple[int, ...] = (0, 1, 2, 3, 4),
    cuts: tuple[bool, ...] = (False, True),
    workers: int | None = 1,
    **kwargs: float,
) -> list[QueueDiagnosisResult]:
    """The (seed × cut) grid, optionally fanned over processes."""
    cells = [
        ExperimentSpec(
            run_queue_diagnosis_cell,
            kwargs={"seed": s, "cut": c, **kwargs},
            label=f"queue-diagnosis/seed={s}/cut={c}",
        )
        for c in cuts
        for s in seeds
    ]
    return run_cells(cells, workers=workers)


def score_diagnosis(results: list[QueueDiagnosisResult]) -> DiagnosisScore:
    """Micro-averaged precision/recall of the sweep's top-1 picks."""
    port_predictions = sum(1 for r in results if r.detected_port is not None)
    flow_predictions = sum(1 for r in results if r.detected_flow is not None)
    return DiagnosisScore(
        cells=len(results),
        port_tp=sum(1 for r in results if r.port_correct),
        port_predictions=port_predictions,
        flow_tp=sum(1 for r in results if r.flow_correct),
        flow_predictions=flow_predictions,
    )


def format_queue_diagnosis(results: list[QueueDiagnosisResult]) -> str:
    """Render the sweep and its scorecard as an aligned text table."""
    lines = [
        "Queue diagnosis: telemetry vs injected incast ground truth",
        f"{'seed':>4} {'cut':>4} {'true port':>16} {'port?':>6} {'flow?':>6} "
        f"{'bursts':>7} {'depth':>6} {'dropped':>8} {'rerouted':>9}",
    ]
    lines.append("-" * len(lines[1]))
    for r in results:
        lines.append(
            f"{r.seed:>4} {('yes' if r.cut else 'no'):>4} "
            f"{'->'.join(r.true_port):>16} "
            f"{('ok' if r.port_correct else 'MISS'):>6} "
            f"{('ok' if r.flow_correct else 'MISS'):>6} "
            f"{r.bursts_at_culprit:>7} {r.peak_depth:>6} "
            f"{r.packets_dropped:>8} {r.packets_rerouted:>9}"
        )
    score = score_diagnosis(results)
    lines.append("")
    lines.append(
        f"port  precision {score.port_precision:.2f}  recall {score.port_recall:.2f}"
        f"   ({score.port_tp}/{score.cells} cells)"
    )
    lines.append(
        f"flow  precision {score.flow_precision:.2f}  recall {score.flow_recall:.2f}"
        f"   ({score.flow_tp}/{score.cells} cells)"
    )
    return "\n".join(lines)
