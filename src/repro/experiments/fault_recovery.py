"""Fault-recovery experiment: goodput through a live fibre cut.

The paper argues Quartz's dense mesh makes it "robust to failures"
(Section 3.5): a fibre-segment cut kills only the channels routed across
it, the rest of the mesh keeps forwarding, and multi-hop detours absorb
the severed pairs' traffic.  Figure 6 quantifies that statically
(fraction of bandwidth lost vs number of cuts).  This experiment is the
dynamic companion: it runs all-to-all rack traffic through a single
Quartz element, cuts fibre segments *mid-run* with
:class:`~repro.sim.faults.FaultInjector`, repairs them later, and
reports what live traffic experienced — packets dropped on the severed
channels, packets rerouted around them, the goodput dip during the
outage, and how quickly goodput returns once the fibre is spliced.

The sweep axes mirror Figure 6: number of parallel physical rings
(more rings → each cut severs fewer channels) × number of simultaneous
cuts.  Every cell is a pure function of its arguments, so the sweep
fans out over :func:`repro.runner.run_cells` bit-identically for any
worker count.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.multiring import plan_rings
from repro.routing import ECMPRouter, VLBRouter
from repro.runner import ExperimentSpec, run_cells
from repro.sim import Network, Packet, PoissonSource
from repro.sim.faults import FaultInjector, random_fault_schedule
from repro.topology import quartz_ring
from repro.units import BITS_PER_BYTE, GBPS

#: Routers the experiment can exercise, keyed by CLI-friendly name.
ROUTER_BUILDERS = {
    "ecmp": ECMPRouter,
    "vlb": VLBRouter,
}


@dataclass(frozen=True)
class FaultRecoveryResult:
    """Outcome of one (rings × cuts × seed) fault-recovery cell."""

    ring_size: int
    num_rings: int
    num_cuts: int
    seed: int
    router: str
    channels_severed: int
    packets_delivered: int
    packets_dropped: int
    packets_rerouted: int
    baseline_goodput_bps: float
    outage_goodput_bps: float
    recovered_goodput_bps: float
    recovery_latency: float | None
    max_flow_recovery: float | None
    goodput_bins_bps: tuple[float, ...]
    bin_width: float

    @property
    def goodput_loss(self) -> float:
        """Fractional goodput lost during the outage window."""
        if self.baseline_goodput_bps <= 0:
            return 0.0
        dip = 1.0 - self.outage_goodput_bps / self.baseline_goodput_bps
        return max(0.0, dip)


def _bins_between(
    bins: tuple[float, ...], bin_width: float, start: float, end: float
) -> list[float]:
    """Bins lying entirely within ``[start, end)``."""
    return [
        value
        for index, value in enumerate(bins)
        if index * bin_width >= start and (index + 1) * bin_width <= end
    ]


def _mean(values: list[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def run_fault_recovery_cell(
    ring_size: int = 9,
    num_rings: int = 2,
    num_cuts: int = 1,
    seed: int = 0,
    servers_per_switch: int = 2,
    per_pair_bandwidth_bps: float = 1.5 * GBPS,
    duration: float = 0.012,
    cut_at: float = 0.004,
    repair_after: float | None = 0.004,
    bin_width: float = 0.0005,
    warmup: float = 0.001,
    router: str = "ecmp",
) -> FaultRecoveryResult:
    """One cell: all-to-all traffic through ``num_cuts`` simultaneous cuts.

    A ``ring_size``-switch Quartz element carries one Poisson stream per
    ordered rack pair at ``per_pair_bandwidth_bps``.  At ``cut_at``,
    ``num_cuts`` distinct fibre segments (sampled uniformly from the
    ``num_rings``-ring layout, Figure 6's failure model) are cut at
    once; each is spliced back ``repair_after`` seconds later (``None``
    = never).  Goodput is binned at ``bin_width``; the baseline window
    is ``[warmup, cut_at)``, the outage window ``[cut_at, repair)``, and
    recovery is the first post-repair bin back at ≥ 90 % of baseline.

    Pure function of its arguments — safe to fan out over
    :func:`repro.runner.run_cells` (bit-identical for any worker count).
    """
    if router not in ROUTER_BUILDERS:
        raise ValueError(f"unknown router {router!r}; options: {sorted(ROUTER_BUILDERS)}")
    if not 0 < warmup < cut_at:
        raise ValueError("need 0 < warmup < cut_at")
    repair_at = duration if repair_after is None else cut_at + repair_after
    if not cut_at < repair_at <= duration:
        raise ValueError("need cut_at < cut_at + repair_after <= duration")

    topo = quartz_ring(ring_size, servers_per_switch=servers_per_switch)
    net = Network(topo, ROUTER_BUILDERS[router](topo))
    plan = plan_rings(ring_size, num_rings=num_rings)
    injector = FaultInjector(net, plan)
    injector.schedule(
        random_fault_schedule(
            plan, num_cuts, cut_at=cut_at, repair_after=repair_after, seed=seed
        )
    )

    num_bins = max(1, round(duration / bin_width))
    bins = [0.0] * num_bins

    def record_delivery(packet: Packet, when: float) -> None:
        index = min(int(when / bin_width), num_bins - 1)
        bins[index] += packet.size_bytes * BITS_PER_BYTE

    # One stream per ordered rack pair; the server indices rotate so the
    # load spreads evenly over every rack's servers.
    stream = 0
    for i in range(ring_size):
        for j in range(ring_size):
            if i == j:
                continue
            src = f"h{i}.{j % servers_per_switch}"
            dst = f"h{j}.{i % servers_per_switch}"
            PoissonSource.at_bandwidth(
                net,
                src,
                dst,
                per_pair_bandwidth_bps,
                group=f"p{i}-{j}",
                flow_id=stream,
                seed=seed * 10_000 + stream,
                on_delivered=record_delivery,
            ).start()
            stream += 1

    net.run(until=duration)

    goodput = tuple(value / bin_width for value in bins)
    baseline = _mean(_bins_between(goodput, bin_width, warmup, cut_at))
    outage = _mean(_bins_between(goodput, bin_width, cut_at, repair_at))
    recovered = _mean(_bins_between(goodput, bin_width, repair_at, duration))

    recovery_latency = None
    if repair_after is not None and baseline > 0:
        for index, value in enumerate(goodput):
            if index * bin_width >= repair_at and value >= 0.9 * baseline:
                recovery_latency = (index + 1) * bin_width - repair_at
                break

    severed = sum(1 for e in net.fault_stats.events if e.kind == "link_down")
    return FaultRecoveryResult(
        ring_size=ring_size,
        num_rings=num_rings,
        num_cuts=num_cuts,
        seed=seed,
        router=router,
        channels_severed=severed,
        packets_delivered=net.packets_delivered,
        packets_dropped=net.packets_dropped_fault,
        packets_rerouted=net.packets_rerouted,
        baseline_goodput_bps=baseline,
        outage_goodput_bps=outage,
        recovered_goodput_bps=recovered,
        recovery_latency=recovery_latency,
        max_flow_recovery=net.fault_stats.max_recovery_time(),
        goodput_bins_bps=goodput,
        bin_width=bin_width,
    )


def fault_recovery_sweep(
    ring_counts: list[int] | None = None,
    cut_counts: list[int] | None = None,
    seeds: tuple[int, ...] = (0,),
    workers: int | None = 1,
    **kwargs: float,
) -> list[FaultRecoveryResult]:
    """The (rings × cuts × seed) grid, optionally fanned over processes.

    Results come back in grid order and are bit-identical for any
    ``workers`` (each cell is pure; see :mod:`repro.runner`).
    """
    if ring_counts is None:
        ring_counts = [1, 2, 3]
    if cut_counts is None:
        cut_counts = [1, 2]
    cells = [
        ExperimentSpec(
            run_fault_recovery_cell,
            kwargs={"num_rings": r, "num_cuts": c, "seed": s, **kwargs},
            label=f"fault-recovery/rings={r}/cuts={c}/seed={s}",
        )
        for r in ring_counts
        for c in cut_counts
        for s in seeds
    ]
    return run_cells(cells, workers=workers)


def format_fault_recovery(results: list[FaultRecoveryResult]) -> str:
    """Render the sweep as an aligned text table."""
    lines = [
        "Fault recovery: goodput through simultaneous fibre cuts",
        f"{'rings':>5} {'cuts':>5} {'severed':>8} {'dropped':>8} {'rerouted':>9} "
        f"{'loss':>7} {'recovery':>9}",
    ]
    lines.append("-" * len(lines[1]))
    for r in results:
        recovery = "-" if r.recovery_latency is None else f"{r.recovery_latency * 1e3:.2f}ms"
        lines.append(
            f"{r.num_rings:>5} {r.num_cuts:>5} {r.channels_severed:>8} "
            f"{r.packets_dropped:>8} {r.packets_rerouted:>9} "
            f"{r.goodput_loss:>6.1%} {recovery:>9}"
        )
    return "\n".join(lines)
