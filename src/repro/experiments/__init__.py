"""Experiment runners that regenerate the paper's evaluation figures.

Each module wraps one evaluation section end-to-end (topology + workload
+ measurement), so benchmarks, examples, and downstream users reproduce
a figure with one call:

* :mod:`~repro.experiments.section7` — Figures 17 and 18 (task latency
  under global and localized traffic).
* :mod:`~repro.experiments.pathological` — Figure 20 (Section 7.2).
* :mod:`~repro.experiments.bisection` — Figure 10 (Section 5.1).
* :mod:`~repro.experiments.fault_recovery` — live fibre-cut recovery
  (the dynamic companion to Figure 6, Section 3.5).
* :mod:`~repro.experiments.queue_diagnosis` — telemetry localization of
  injected incast bursts (ROADMAP item 3 validation).
"""

from repro.experiments.breakdown import (
    breakdown_table,
    format_breakdown_table,
    latency_breakdown,
)
from repro.experiments.bisection import (
    FABRIC_BUILDERS,
    BisectionResult,
    figure10_sweep,
    format_figure10,
    run_bisection_cell,
)
from repro.experiments.fault_recovery import (
    ROUTER_BUILDERS,
    FaultRecoveryResult,
    fault_recovery_sweep,
    format_fault_recovery,
    run_fault_recovery_cell,
)
from repro.experiments.hybrid_scale import (
    FABRIC_BUILDERS as HYBRID_FABRIC_BUILDERS,
    HybridScaleResult,
    format_hybrid_scale,
    hybrid_scale_experiment,
    run_hybrid_scale_cell,
)
from repro.experiments.pathological import (
    PathologicalResult,
    figure20_sweep,
    format_figure20,
    nonblocking_testbed,
    quartz_core_testbed,
    run_pathological,
)
from repro.experiments.queue_diagnosis import (
    HEAVY_FLOW,
    DiagnosisScore,
    QueueDiagnosisResult,
    format_queue_diagnosis,
    queue_diagnosis_sweep,
    run_queue_diagnosis_cell,
    score_diagnosis,
)
from repro.experiments.section7 import (
    TOPOLOGY_BUILDERS,
    SweepPoint,
    TaskExperimentResult,
    figure17_sweep,
    figure18_sweep,
    format_sweep,
    run_task_experiment,
)

__all__ = [
    "BisectionResult",
    "FABRIC_BUILDERS",
    "DiagnosisScore",
    "FaultRecoveryResult",
    "HEAVY_FLOW",
    "HYBRID_FABRIC_BUILDERS",
    "HybridScaleResult",
    "format_hybrid_scale",
    "hybrid_scale_experiment",
    "run_hybrid_scale_cell",
    "PathologicalResult",
    "QueueDiagnosisResult",
    "format_queue_diagnosis",
    "queue_diagnosis_sweep",
    "run_queue_diagnosis_cell",
    "score_diagnosis",
    "ROUTER_BUILDERS",
    "fault_recovery_sweep",
    "format_fault_recovery",
    "run_fault_recovery_cell",
    "TOPOLOGY_BUILDERS",
    "run_bisection_cell",
    "SweepPoint",
    "TaskExperimentResult",
    "breakdown_table",
    "figure10_sweep",
    "format_breakdown_table",
    "latency_breakdown",
    "figure17_sweep",
    "figure18_sweep",
    "figure20_sweep",
    "format_figure10",
    "format_figure20",
    "format_sweep",
    "nonblocking_testbed",
    "quartz_core_testbed",
    "run_pathological",
    "run_task_experiment",
]
