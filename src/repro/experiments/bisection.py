"""Section 5.1: the bisection-bandwidth study (Figure 10).

Normalized throughput of a Quartz mesh (one- and two-hop VLB paths)
against full-, half- and quarter-bisection reference fabrics, under the
paper's three traffic patterns: random permutation, incast, and
rack-level shuffle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import repro.topology as T
from repro.flowsim import evaluate, oversubscribed_fabric
from repro.routing import DemandAwareVLBRouter, ECMPRouter, KShortestPathsRouter
from repro.runner import ExperimentSpec, run_cells
from repro.topology.base import Topology
from repro.units import GBPS
from repro.workloads.patterns import (
    TrafficMatrix,
    incast,
    rack_level_shuffle,
    random_permutation,
)

LINE_RATE = 10 * GBPS

#: Pattern name → generator(topology, demand, seed).
PATTERNS: dict[str, Callable[[Topology, float, int], TrafficMatrix]] = {
    "random permutation": lambda topo, demand, seed: random_permutation(
        topo, demand, seed=seed
    ),
    "incast": lambda topo, demand, seed: incast(topo, demand, fan_in=10, seed=seed),
    "rack level shuffle": lambda topo, demand, seed: rack_level_shuffle(
        topo, demand, target_racks=4, seed=seed
    ),
}


@dataclass(frozen=True)
class BisectionResult:
    """One Figure 10 bar."""

    fabric: str
    pattern: str
    normalized_throughput: float


#: Fabric name → builder(num_racks, servers_per_rack).
FABRIC_BUILDERS: dict[str, Callable[[int, int], Topology]] = {
    "full bisection": lambda r, s: oversubscribed_fabric(r, s, 1.0),
    "quartz": lambda r, s: T.quartz_ring(r, s),
    "jellyfish": lambda r, s: T.jellyfish(r, 4, s, seed=0),
    "1/2 bisection": lambda r, s: oversubscribed_fabric(r, s, 0.5),
    "1/4 bisection": lambda r, s: oversubscribed_fabric(r, s, 0.25),
}

#: Paths per pair for the Jellyfish reference bar (Singla et al.'s
#: k-shortest-paths routing; Table 9's comparison point).
JELLYFISH_K = 8


def run_bisection_cell(
    fabric: str,
    pattern: str,
    num_racks: int = 9,
    servers_per_rack: int = 8,
    seed: int = 0,
) -> BisectionResult:
    """One Figure 10 bar: build the fabric, offer the pattern, evaluate.

    Self-contained (rebuilds topology and matrix from the arguments), so
    it can run in a pool worker.
    """
    if fabric not in FABRIC_BUILDERS:
        raise ValueError(f"unknown fabric {fabric!r}; options: {sorted(FABRIC_BUILDERS)}")
    if pattern not in PATTERNS:
        raise ValueError(f"unknown pattern {pattern!r}; options: {sorted(PATTERNS)}")
    topo = FABRIC_BUILDERS[fabric](num_racks, servers_per_rack)
    matrix = PATTERNS[pattern](topo, LINE_RATE, seed)
    router: ECMPRouter | DemandAwareVLBRouter | KShortestPathsRouter
    if fabric == "quartz":
        router = DemandAwareVLBRouter(topo, matrix)
        outcome = evaluate(topo, router, matrix, LINE_RATE, multipath=True)
    elif fabric == "jellyfish":
        # Random graphs need k-shortest-paths to realize their path
        # diversity (Singla et al.); plain ECMP undersells them.
        router = KShortestPathsRouter(topo, k=JELLYFISH_K)
        outcome = evaluate(topo, router, matrix, LINE_RATE, multipath=True)
    else:
        router = ECMPRouter(topo)
        outcome = evaluate(topo, router, matrix, LINE_RATE)
    return BisectionResult(
        fabric=fabric,
        pattern=pattern,
        normalized_throughput=outcome.normalized,
    )


def figure10_sweep(
    num_racks: int = 9,
    servers_per_rack: int = 8,
    seed: int = 0,
    workers: int | None = 1,
) -> list[BisectionResult]:
    """All Figure 10 bars: 4 fabrics × 3 patterns.

    The Quartz mesh is balanced like the paper's canonical 33 × 32
    element — rack NIC capacity equals the rack's aggregate channel
    capacity (``servers_per_rack = num_racks − 1``) — and routes with
    demand-aware VLB over one- and two-hop paths.  The reference fabrics
    route through their (scaled) non-blocking root.

    Each bar is an independent :func:`run_bisection_cell`, fanned out
    over :func:`repro.runner.run_cells`; results are bit-identical for
    any ``workers`` count.
    """
    cells = [
        ExperimentSpec(
            run_bisection_cell,
            args=(fabric, pattern),
            kwargs={
                "num_racks": num_racks,
                "servers_per_rack": servers_per_rack,
                "seed": seed,
            },
            label=f"fig10/{fabric}/{pattern}",
        )
        for pattern in PATTERNS
        for fabric in FABRIC_BUILDERS
    ]
    return run_cells(cells, workers=workers)


def format_figure10(results: list[BisectionResult]) -> str:
    """Render the Figure 10 grid as a text table."""
    fabrics = list(dict.fromkeys(r.fabric for r in results))
    patterns = list(dict.fromkeys(r.pattern for r in results))
    by_key = {(r.fabric, r.pattern): r.normalized_throughput for r in results}
    header = f"{'fabric':<16}" + "".join(f"{p:>20}" for p in patterns)
    lines = ["Figure 10: normalized throughput", header, "-" * len(header)]
    for fabric in fabrics:
        row = f"{fabric:<16}" + "".join(
            f"{by_key[(fabric, p)]:>20.3f}" for p in patterns
        )
        lines.append(row)
    return "\n".join(lines)
