"""Analytical models: component latencies (Table 2/9) and queueing theory."""

from repro.analysis.latency import (
    ComponentLatencies,
    SERVER_RELAY_LATENCY,
    STANDARD,
    STATE_OF_THE_ART,
    end_to_end_latency,
    path_latency,
    table9_latency,
)
from repro.analysis.scaling import (
    ElementScale,
    ScalingError,
    element_scale,
    format_scaling_table,
    scaling_table,
)
from repro.analysis.queueing import (
    QueueingError,
    erlang_c,
    md1_mean_sojourn,
    md1_mean_wait,
    mg1_mean_wait,
    mm1_mean_queue_length,
    mm1_mean_sojourn,
    mm1_mean_wait,
)

__all__ = [
    "ComponentLatencies",
    "ElementScale",
    "ScalingError",
    "element_scale",
    "format_scaling_table",
    "scaling_table",
    "QueueingError",
    "SERVER_RELAY_LATENCY",
    "STANDARD",
    "STATE_OF_THE_ART",
    "end_to_end_latency",
    "erlang_c",
    "md1_mean_sojourn",
    "md1_mean_wait",
    "mg1_mean_wait",
    "mm1_mean_queue_length",
    "mm1_mean_sojourn",
    "mm1_mean_wait",
    "path_latency",
    "table9_latency",
]
