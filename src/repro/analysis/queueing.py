"""Queueing-theory references used to validate the packet simulator.

The paper: "We have performed extensive validation testing of our
simulator to ensure that it produces correct results that match queuing
theory."  We do the same: Poisson arrivals into a fixed-rate output port
with fixed-size packets form an M/D/1 queue; with exponentially sized
packets, M/M/1.  The test suite drives the simulator with both and
checks the measured mean waiting times against these formulas.
"""

from __future__ import annotations

import math


class QueueingError(ValueError):
    """Raised for invalid (unstable or degenerate) queue parameters."""


def _check(arrival_rate: float, service_rate: float) -> float:
    if arrival_rate <= 0 or service_rate <= 0:
        raise QueueingError("rates must be positive")
    rho = arrival_rate / service_rate
    if rho >= 1:
        raise QueueingError(f"unstable queue: utilization {rho:.3f} ≥ 1")
    return rho


def mm1_mean_wait(arrival_rate: float, service_rate: float) -> float:
    """Mean time in queue (excluding service) for M/M/1."""
    rho = _check(arrival_rate, service_rate)
    return rho / (service_rate - arrival_rate)


def mm1_mean_sojourn(arrival_rate: float, service_rate: float) -> float:
    """Mean time in system (queue + service) for M/M/1."""
    _check(arrival_rate, service_rate)
    return 1.0 / (service_rate - arrival_rate)


def mm1_mean_queue_length(arrival_rate: float, service_rate: float) -> float:
    """Mean number in system for M/M/1 (Little's law on the sojourn)."""
    rho = _check(arrival_rate, service_rate)
    return rho / (1 - rho)


def md1_mean_wait(arrival_rate: float, service_time: float) -> float:
    """Mean time in queue for M/D/1 (Pollaczek–Khinchine, deterministic
    service): ``W = ρ · S / (2 (1 − ρ))``."""
    if service_time <= 0:
        raise QueueingError("service time must be positive")
    rho = _check(arrival_rate, 1.0 / service_time)
    return rho * service_time / (2 * (1 - rho))


def md1_mean_sojourn(arrival_rate: float, service_time: float) -> float:
    """Mean time in system for M/D/1."""
    return md1_mean_wait(arrival_rate, service_time) + service_time


def mg1_mean_wait(
    arrival_rate: float, mean_service: float, service_variance: float
) -> float:
    """Mean time in queue for M/G/1 (general Pollaczek–Khinchine)."""
    if mean_service <= 0:
        raise QueueingError("mean service time must be positive")
    if service_variance < 0:
        raise QueueingError("variance must be non-negative")
    rho = _check(arrival_rate, 1.0 / mean_service)
    second_moment = service_variance + mean_service**2
    return arrival_rate * second_moment / (2 * (1 - rho))


def erlang_c(servers: int, offered_load: float) -> float:
    """Erlang-C probability of queueing for M/M/c (c parallel channels).

    Used by capacity studies of multi-channel rack-to-rack links (a
    Quartz pair that spreads over ``c`` parallel wavelengths behaves as
    M/M/c at the flow level).
    """
    if servers < 1:
        raise QueueingError("need at least one server")
    if offered_load <= 0:
        raise QueueingError("offered load must be positive")
    if offered_load >= servers:
        raise QueueingError("offered load must be below the server count")
    total = sum(offered_load**k / math.factorial(k) for k in range(servers))
    tail = offered_load**servers / (
        math.factorial(servers) * (1 - offered_load / servers)
    )
    return tail / (total + tail)
