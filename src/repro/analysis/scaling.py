"""Quartz scalability analysis — paper Sections 3.2 and 8.

How big can one Quartz element get?  Two constraints interact:

* **ports**: a switch with ``p`` ports split ``n``/``k`` serves ``n``
  servers and ``k = p − n`` mesh peers → ring size ``k + 1`` (single
  ToR) and ``n (k + 1)`` total server ports;
* **wavelengths**: a ring of ``M`` racks needs ≈ ``M²/8`` channels, and
  fibre carries at most 160 — capping a *single-fibre* ring at 35
  racks; parallel fibre rings lift the cap at extra optics cost.

The paper's observation ("if port count of low-latency cut-through
switches increase, Quartz becomes more scalable") is quantified here:
sweep the switch port count and report the largest element, its port
total, and the optics bill.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil

from repro.core.channels import (
    FIBER_CHANNEL_LIMIT,
    WDM_CHANNEL_LIMIT,
    lower_bound,
    max_ring_size,
    wavelengths_required,
)


class ScalingError(ValueError):
    """Raised for invalid scaling queries."""


@dataclass(frozen=True)
class ElementScale:
    """The largest single element for one switch port count."""

    switch_ports: int
    ring_size: int
    server_ports_per_switch: int
    total_server_ports: int
    wavelengths: int
    fibre_rings: int
    wdms: int
    #: Whether the ring size was capped by wavelengths rather than ports.
    wavelength_limited: bool


def element_scale(
    switch_ports: int,
    switches_per_rack: int = 1,
    wdm_channels: int = WDM_CHANNEL_LIMIT,
    fibre_channels: int = FIBER_CHANNEL_LIMIT,
    allow_parallel_rings: bool = True,
    method: str = "estimate",
) -> ElementScale:
    """The largest element buildable from ``switch_ports``-port switches.

    Uses the paper's half/half port split.  With ``allow_parallel_rings``
    the wavelength cap applies per fibre (WDM channel limit per ring);
    without it, the whole plan must fit one fibre (the 35-rack limit).

    ``method`` picks the wavelength count: ``"estimate"`` (the link-load
    lower bound — fast, within a few channels at paper scales) or
    ``"greedy"`` (run the paper's Section 3.1 assignment — exact for the
    heuristic, expensive at large ring sizes but memoized through
    :mod:`repro.cache`).
    """
    if switch_ports < 4 or switch_ports % 2:
        raise ScalingError(f"port count must be even and ≥ 4, got {switch_ports}")
    if method not in ("estimate", "greedy"):
        raise ScalingError(f"unknown wavelength method {method!r}")
    half = switch_ports // 2
    port_limited_racks = half * switches_per_rack + 1

    if allow_parallel_rings:
        racks = port_limited_racks
        wavelength_limited = False
    else:
        fibre_cap = max_ring_size(fibre_channels)
        racks = min(port_limited_racks, fibre_cap)
        wavelength_limited = racks < port_limited_racks

    if method == "greedy":
        wavelengths = wavelengths_required(racks, method="greedy")
    else:
        wavelengths = _wavelength_estimate(racks)
    rings = max(1, ceil(wavelengths / wdm_channels)) * switches_per_rack
    num_switches = racks * switches_per_rack
    return ElementScale(
        switch_ports=switch_ports,
        ring_size=num_switches,
        server_ports_per_switch=half,
        total_server_ports=half * racks,
        wavelengths=wavelengths,
        fibre_rings=rings,
        wdms=num_switches * max(1, ceil(wavelengths / wdm_channels)),
        wavelength_limited=wavelength_limited,
    )


def _wavelength_estimate(racks: int) -> int:
    """Fast wavelength estimate: the link-load bound (greedy meets it or
    lands within a few channels at paper scales)."""
    return lower_bound(racks)


def scaling_table(
    port_counts: tuple[int, ...] = (16, 32, 64, 128, 256),
    switches_per_rack: int = 1,
    method: str = "estimate",
) -> list[ElementScale]:
    """The Section 8 sweep: element size vs switch port count."""
    return [element_scale(p, switches_per_rack, method=method) for p in port_counts]


def format_scaling_table(rows: list[ElementScale]) -> str:
    """Render the sweep as aligned text."""
    header = (
        f"{'ports':>6}{'racks':>7}{'element ports':>15}{'wavelengths':>13}"
        f"{'fibre rings':>13}{'WDMs':>7}"
    )
    lines = ["Quartz element scale vs switch port count", header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.switch_ports:>6}{row.ring_size:>7}{row.total_server_ports:>15}"
            f"{row.wavelengths:>13}{row.fibre_rings:>13}{row.wdms:>7}"
        )
    return "\n".join(lines)
