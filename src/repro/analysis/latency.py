"""Analytical (no-congestion) latency model — paper Tables 2, 9, 16.

Table 2's component latencies (standard vs state-of-the-art):

======================  ============  ===============
Component               Standard      State of the art
======================  ============  ===============
OS network stack        15 µs         1–4 µs
NIC                     2.5–32 µs     0.5 µs
Switch                  6 µs          0.5 µs
Congestion              50 µs         —
======================  ============  ===============

The Table 9 "latency without congestion" column is hop count weighted by
per-device latency: switch hops cost the switch latency, and server
relay hops (BCube, DCell) cost an OS-stack traversal.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.sim.switch import get_model
from repro.topology.base import Topology
from repro.topology.metrics import HopProfile
from repro.units import MICROSECONDS


@dataclass(frozen=True)
class ComponentLatencies:
    """Per-component one-way latency contributions (seconds)."""

    os_stack: float
    nic: float
    switch: float
    congestion: float = 0.0


#: Table 2, "Standard" column (midpoint for the NIC range).
STANDARD = ComponentLatencies(
    os_stack=15 * MICROSECONDS,
    nic=17 * MICROSECONDS,
    switch=6 * MICROSECONDS,
    congestion=50 * MICROSECONDS,
)

#: Table 2, "State of the Art" column.
STATE_OF_THE_ART = ComponentLatencies(
    os_stack=2.5 * MICROSECONDS,
    nic=0.5 * MICROSECONDS,
    switch=0.5 * MICROSECONDS,
    congestion=0.0,
)

#: OS-stack latency charged per server relay hop (Table 2 standard).
SERVER_RELAY_LATENCY = 15 * MICROSECONDS


def table9_latency(
    profile: HopProfile,
    switch_latency: float = 0.5 * MICROSECONDS,
    server_latency: float = SERVER_RELAY_LATENCY,
) -> float:
    """Table 9's formula: hops × per-device latency.

    The paper uses 0.5 µs per (cut-through) switch hop and ~15 µs per
    server relay hop — e.g. BCube's "2 switch hops & 1 server hop" →
    16 µs.
    """
    return (
        profile.switch_hops * switch_latency
        + profile.server_relay_hops * server_latency
    )


def path_latency(
    topo: Topology,
    src: str,
    dst: str,
    server_latency: float = SERVER_RELAY_LATENCY,
) -> float:
    """No-congestion latency of the shortest path using each switch's
    actual hardware model latency (Table 16), rather than Table 9's
    uniform 0.5 µs.
    """
    path = nx.shortest_path(topo.graph, src, dst)
    total = 0.0
    for node in path:
        if topo.is_switch(node):
            total += get_model(topo.switch_model(node) or "ULL").latency
    for node in path[1:-1]:
        if topo.is_server(node):
            total += server_latency
    return total


def end_to_end_latency(
    network_latency: float,
    components: ComponentLatencies = STANDARD,
) -> float:
    """Full server-to-server latency: host stacks + NICs + the fabric.

    Adds one OS-stack and one NIC traversal at each end of the fabric
    path (Table 2's framing), plus the congestion allowance.
    """
    return (
        network_latency
        + 2 * components.os_stack
        + 2 * components.nic
        + components.congestion
    )
