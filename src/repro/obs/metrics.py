"""Process-local metrics registry for the simulator runtime.

The registry is the counting half of :mod:`repro.obs`: named counters,
gauges, and timers that the engine, network fastpath/batch layers,
hybrid epoch loop, parallel-DES coordinator, fault injector, and sweep
runner report into while armed.  It observes — it never feeds back into
simulation state, so an armed run stays fingerprint-identical to a
disarmed one.

Design constraints, in order:

* **Zero overhead when disarmed.**  Hot paths hold a local reference
  (``o = self.obs`` / ``reg = obs.registry()``) and pay one ``None``
  test when observation is off; no registry object is ever consulted.
* **Mergeable.**  ``run_cells`` workers and parallel-DES shards each
  accumulate into their own process-local registry, :meth:`drain` it
  into a plain-dict snapshot at the end, and ship the snapshot back for
  :meth:`merge` in the coordinator — counters add, timers combine
  count/total/max, gauges take the last writer.
* **JSON-able.**  :meth:`snapshot` returns only dicts of primitives so
  it can ride in a run manifest or cross a process boundary unpickled.

Three instrument kinds:

``incr(name, n=1)``
    Monotonic counter (events popped, cohorts flushed, cache hits).
``gauge(name, value)``
    Last-value-wins sample (compute seconds of a finished run).
``observe(name, value)`` / ``timed(name)``
    Distribution summary keeping ``count`` / ``total`` / ``max`` —
    used for durations (seconds) and for sizes (cohort packets), so
    the fields are unit-agnostic.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator, Mapping

__all__ = ["MetricsRegistry"]


class MetricsRegistry:
    """Named counters, gauges, and count/total/max summaries."""

    __slots__ = ("counters", "gauges", "_summaries")

    def __init__(self) -> None:
        #: name -> running total (int or float, whatever was added).
        self.counters: dict[str, float] = {}
        #: name -> last observed value.
        self.gauges: dict[str, float] = {}
        # name -> [count, total, max]; exposed via snapshot() as dicts.
        self._summaries: dict[str, list[float]] = {}

    # -- recording -----------------------------------------------------

    def incr(self, name: str, n: float = 1) -> None:
        """Add ``n`` to counter ``name`` (creating it at zero)."""
        counters = self.counters
        counters[name] = counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last writer wins)."""
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Fold ``value`` into the count/total/max summary ``name``."""
        cell = self._summaries.get(name)
        if cell is None:
            self._summaries[name] = [1, value, value]
        else:
            cell[0] += 1
            cell[1] += value
            if value > cell[2]:
                cell[2] = value

    @contextmanager
    def timed(self, name: str) -> Iterator[None]:
        """Time the enclosed block into summary ``name`` (seconds)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - start)

    # -- export / merge ------------------------------------------------

    def snapshot(self) -> dict:
        """Plain-dict copy of everything recorded so far.

        Shape: ``{"counters": {...}, "gauges": {...}, "timers":
        {name: {"count", "total", "max"}}}`` — JSON-able and accepted
        verbatim by :meth:`merge` in another process.
        """
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "timers": {
                name: {"count": cell[0], "total": cell[1], "max": cell[2]}
                for name, cell in self._summaries.items()
            },
        }

    def drain(self) -> dict:
        """Snapshot then :meth:`clear` — for shipping out of a worker."""
        snap = self.snapshot()
        self.clear()
        return snap

    def clear(self) -> None:
        """Drop every recorded value (the registry stays armed)."""
        self.counters.clear()
        self.gauges.clear()
        self._summaries.clear()

    def merge(self, other: "MetricsRegistry | Mapping") -> None:
        """Fold another registry or :meth:`snapshot` dict into this one.

        Counters and summary count/total add (max takes the larger);
        gauges take the incoming value.  Merging is commutative over
        counters and summaries, so worker snapshots may arrive in any
        order.
        """
        if isinstance(other, MetricsRegistry):
            other = other.snapshot()
        for name, value in other.get("counters", {}).items():
            self.incr(name, value)
        self.gauges.update(other.get("gauges", {}))
        for name, timer in other.get("timers", {}).items():
            cell = self._summaries.get(name)
            if cell is None:
                self._summaries[name] = [
                    timer["count"], timer["total"], timer["max"],
                ]
            else:
                cell[0] += timer["count"]
                cell[1] += timer["total"]
                if timer["max"] > cell[2]:
                    cell[2] = timer["max"]

    def __len__(self) -> int:
        return len(self.counters) + len(self.gauges) + len(self._summaries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MetricsRegistry(counters={len(self.counters)}, "
            f"gauges={len(self.gauges)}, timers={len(self._summaries)})"
        )
