"""Runtime observability for the simulator itself.

The simulated fabric already has PrintQueue-style telemetry
(:mod:`repro.telemetry`); this package watches the *simulator* — where
the engine's time and events go across the fastpath, cohort batching,
hybrid epochs, and sharded windows.  Three parts:

:mod:`repro.obs.metrics`
    Process-local counters/gauges/timers the instrumented layers report
    into, mergeable across pool workers and parallel shards.
:mod:`repro.obs.tracing`
    Wall-clock spans (engine runs, hybrid epochs, parallel
    windows/barriers, sweep cells) exported as Chrome ``trace_event``
    JSON for Perfetto via ``repro trace``.
:mod:`repro.obs.report`
    Run manifests — knobs, seeds, scheduler, cache stats, fault digest,
    metrics snapshot, package/git version — rendered by ``repro
    report``.

Arming
------
Observability follows the package's standard knob contract
(:mod:`repro.sim.knobs`): the ``REPRO_OBS`` environment variable
env-*enables* it process-wide (resolved once at import, like
``REPRO_TELEMETRY``), ``Network(obs=True)`` arms it from code, and
``Network(obs=False)`` detaches that network even when the process is
armed.  :func:`arm`/:func:`disarm` are the programmatic switches; both
are idempotent.

The armed state is a pair of module-level singletons (the active
:class:`~repro.obs.metrics.MetricsRegistry` and
:class:`~repro.obs.tracing.Tracer`).  Disarmed, :func:`registry` and
:func:`tracer` return ``None`` and every instrumented hot path pays a
single ``None`` test.  Armed, observation only *records* — an armed run
is required (and bench-gated) to stay fingerprint-identical to a
disarmed one.
"""

from __future__ import annotations

import os

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Span, Tracer, export_chrome

#: Environment variable that arms observability process-wide.  Owned
#: here (not :mod:`repro.sim.knobs`, which re-exports it) so this
#: package stays importable from anywhere — including
#: :mod:`repro.runner.pool`, which :mod:`repro.sim` itself imports —
#: without touching the sim package and completing an import cycle.
OBS_ENV = "REPRO_OBS"

__all__ = [
    "MetricsRegistry",
    "OBS_ENV",
    "Span",
    "Tracer",
    "arm",
    "armed",
    "disarm",
    "export_chrome",
    "registry",
    "tracer",
]

_registry: "MetricsRegistry | None" = None
_tracer: "Tracer | None" = None


def arm(
    registry: "MetricsRegistry | None" = None,
    tracer: "Tracer | None" = None,
) -> None:
    """Arm process-wide observation (idempotent).

    Already-armed calls keep the existing singletons — and their
    recorded data — unless a replacement ``registry``/``tracer`` is
    passed explicitly.
    """
    global _registry, _tracer
    if registry is not None or _registry is None:
        _registry = registry if registry is not None else MetricsRegistry()
    if tracer is not None or _tracer is None:
        _tracer = tracer if tracer is not None else Tracer()


def disarm() -> None:
    """Disarm observation and drop the recorded data."""
    global _registry, _tracer
    _registry = None
    _tracer = None


def armed() -> bool:
    """Whether observation is currently armed in this process."""
    return _registry is not None


def registry() -> "MetricsRegistry | None":
    """The active metrics registry, or ``None`` when disarmed."""
    return _registry


def tracer() -> "Tracer | None":
    """The active span tracer, or ``None`` when disarmed."""
    return _tracer


# REPRO_OBS arms the whole process at import, mirroring how
# REPRO_TELEMETRY arms every Network built with telemetry=None.  The
# check inlines knobs.env_truthy (same _FALSY contract) — importing
# repro.sim here would create the cycle described above.
if os.environ.get(OBS_ENV, "") not in ("", "0"):
    arm()
