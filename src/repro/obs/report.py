"""Run provenance manifests: what ran, with which knobs, on what tree.

A *run manifest* is a small JSON document answering the questions a
perf-regression hunt always starts with: which package version and git
commit produced these numbers, which feature knobs were armed (fastpath,
batching, telemetry, hybrid, parallel, observability), which scheduler
the engine used, what the artifact cache did, which seeds went in, and
— when observability was armed — the full metrics snapshot of the run.

``repro smoke --manifest out.json`` and ``repro experiment --manifest``
write one per run; ``repro report out.json`` validates and renders it;
CI uploads it next to the trace artifact so every benchmark-smoke run
is reconstructible.

Everything here is lazy about package imports (:mod:`repro.cache`,
:mod:`repro.telemetry`, the sim modules) so that importing
:mod:`repro.obs` stays cheap and cycle-free.
"""

from __future__ import annotations

import datetime
import hashlib
import json
import os
import subprocess
from pathlib import Path
from typing import Any, Iterable, Mapping

__all__ = [
    "MANIFEST_SCHEMA",
    "build_manifest",
    "fault_digest",
    "render_manifest",
    "resolved_knobs",
    "validate_manifest",
    "write_manifest",
]

#: Schema tag stamped into (and required of) every manifest.
MANIFEST_SCHEMA = "repro.obs.manifest/v1"

#: Boolean feature knobs every manifest must resolve.
_KNOB_NAMES = ("fastpath", "batch", "telemetry", "hybrid", "parallel", "obs")

#: Top-level keys every manifest must carry.
_REQUIRED_KEYS = (
    "schema", "created_at", "package", "git_commit", "knobs", "seeds",
    "cache", "metrics", "faults", "extra",
)


def resolved_knobs(environ: "Mapping[str, str] | None" = None) -> dict:
    """Resolve every feature knob the way ``Network(...)`` would.

    Returns the booleans for the six optional layers plus the engine's
    ``scheduler`` spec string — the environment-derived defaults, i.e.
    what a network built with all-``None`` knobs gets.
    """
    from repro.sim.engine import SCHEDULER_ENV
    from repro.sim.fastpath import BATCH_ENV, FASTPATH_ENV
    from repro.sim.knobs import HYBRID_ENV, OBS_ENV, PARALLEL_ENV, resolve_flag
    from repro.telemetry import TELEMETRY_ENV

    source = os.environ if environ is None else environ
    return {
        "fastpath": resolve_flag(None, FASTPATH_ENV, env_disables=True,
                                 environ=source),
        "batch": resolve_flag(None, BATCH_ENV, env_disables=True,
                              environ=source),
        "telemetry": resolve_flag(None, TELEMETRY_ENV, env_disables=False,
                                  environ=source),
        "hybrid": resolve_flag(None, HYBRID_ENV, env_disables=True,
                               environ=source),
        "parallel": resolve_flag(None, PARALLEL_ENV, env_disables=True,
                                 environ=source),
        "obs": resolve_flag(None, OBS_ENV, env_disables=False,
                            environ=source),
        "scheduler": source.get(SCHEDULER_ENV) or "heap",
    }


def fault_digest(recorder: Any) -> "dict | None":
    """Digest of a :class:`~repro.sim.stats.FaultRecorder`'s event log.

    Returns event count, a per-kind tally, and a SHA-256 over the
    ordered entries — enough to assert two runs saw the same fault
    timeline without embedding the whole log.  ``None`` in, ``None``
    out, so callers can pass ``network.fault_stats`` unconditionally.
    """
    if recorder is None:
        return None
    entries = [
        (e.time, e.kind, e.ring, e.segment,
         list(e.link) if e.link else None, e.detail)
        for e in recorder.events
    ]
    kinds: dict[str, int] = {}
    for entry in entries:
        kinds[entry[1]] = kinds.get(entry[1], 0) + 1
    blob = json.dumps(entries, sort_keys=True).encode()
    return {
        "events": len(entries),
        "kinds": kinds,
        "sha256": hashlib.sha256(blob).hexdigest(),
    }


def _git_commit() -> "str | None":
    """Best-effort commit id: ``GITHUB_SHA`` in CI, else ``git rev-parse``."""
    sha = os.environ.get("GITHUB_SHA")
    if sha:
        return sha
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, check=True,
            cwd=Path(__file__).parent,
        )
    except (OSError, subprocess.CalledProcessError):
        return None
    return proc.stdout.strip() or None


def build_manifest(
    *,
    seeds: "Iterable[int] | None" = None,
    metrics: "dict | None" = None,
    faults: "Any | None" = None,
    extra: "Mapping[str, Any] | None" = None,
    environ: "Mapping[str, str] | None" = None,
) -> dict:
    """Assemble a run manifest for the current process state.

    ``metrics`` defaults to the armed registry's snapshot (empty shape
    when disarmed); ``faults`` may be a ``FaultRecorder`` (digested) or
    an already-built digest dict; ``extra`` carries caller context such
    as the smoke golden path or experiment figure.
    """
    from repro import __version__, obs
    from repro.cache import artifact_cache

    if metrics is None:
        registry = obs.registry()
        metrics = (
            registry.snapshot() if registry is not None
            else {"counters": {}, "gauges": {}, "timers": {}}
        )
    if faults is not None and not isinstance(faults, dict):
        faults = fault_digest(faults)
    cache = artifact_cache()
    knobs = resolved_knobs(environ)
    # The live armed state beats the env resolution: `obs.arm()` without
    # REPRO_OBS set is still an armed run and must say so.
    knobs["obs"] = knobs["obs"] or obs.armed()
    return {
        "schema": MANIFEST_SCHEMA,
        "created_at": datetime.datetime.now(datetime.timezone.utc)
        .isoformat(timespec="seconds"),
        "package": {"name": "repro", "version": __version__},
        "git_commit": _git_commit(),
        "knobs": knobs,
        "seeds": sorted(set(seeds)) if seeds else [],
        "cache": {
            "enabled": cache.config.enabled,
            "directory": cache.config.directory,
            "memory_items": cache.config.memory_items,
            **cache.stats.as_dict(),
        },
        "metrics": metrics,
        "faults": faults,
        "extra": dict(extra or {}),
    }


def write_manifest(path: "str | Path", **kwargs: Any) -> dict:
    """:func:`build_manifest` and write it to ``path`` as JSON."""
    doc = build_manifest(**kwargs)
    Path(path).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return doc


def validate_manifest(doc: Any) -> list[str]:
    """Problems that make ``doc`` not a valid v1 manifest (empty = valid)."""
    problems: list[str] = []
    if not isinstance(doc, dict):
        return [f"manifest must be a JSON object, got {type(doc).__name__}"]
    if doc.get("schema") != MANIFEST_SCHEMA:
        problems.append(
            f"schema must be {MANIFEST_SCHEMA!r}, got {doc.get('schema')!r}"
        )
    for key in _REQUIRED_KEYS:
        if key not in doc:
            problems.append(f"missing key {key!r}")
    package = doc.get("package")
    if not (isinstance(package, dict)
            and isinstance(package.get("name"), str)
            and isinstance(package.get("version"), str)):
        problems.append("package must carry string name and version")
    knobs = doc.get("knobs")
    if isinstance(knobs, dict):
        for name in _KNOB_NAMES:
            if not isinstance(knobs.get(name), bool):
                problems.append(f"knobs.{name} must be a boolean")
        if not isinstance(knobs.get("scheduler"), str):
            problems.append("knobs.scheduler must be a string")
    elif "knobs" in doc:
        problems.append("knobs must be an object")
    metrics = doc.get("metrics")
    if isinstance(metrics, dict):
        for section in ("counters", "gauges", "timers"):
            if not isinstance(metrics.get(section), dict):
                problems.append(f"metrics.{section} must be an object")
    elif "metrics" in doc:
        problems.append("metrics must be an object")
    if "cache" in doc and not isinstance(doc.get("cache"), dict):
        problems.append("cache must be an object")
    if "seeds" in doc and not isinstance(doc.get("seeds"), list):
        problems.append("seeds must be a list")
    faults = doc.get("faults")
    if faults is not None and not isinstance(faults, dict):
        problems.append("faults must be an object or null")
    return problems


def render_manifest(doc: dict) -> str:
    """Human-readable rendering of a manifest (``repro report``)."""
    package = doc.get("package", {})
    knobs = doc.get("knobs", {})
    cache = doc.get("cache", {})
    metrics = doc.get("metrics", {})
    lines = [
        f"run manifest ({doc.get('schema', '?')})",
        f"  created   {doc.get('created_at', '?')}",
        f"  package   {package.get('name', '?')} {package.get('version', '?')}"
        f" @ {(doc.get('git_commit') or 'unknown')[:12]}",
        "  knobs     "
        + ", ".join(
            f"{name}={'on' if knobs.get(name) else 'off'}"
            for name in _KNOB_NAMES
        )
        + f", scheduler={knobs.get('scheduler', '?')}",
        f"  seeds     {doc.get('seeds') or '-'}",
        f"  cache     enabled={cache.get('enabled')}"
        f" hit_rate={cache.get('hit_rate', 0.0):.1%}"
        f" (dir={cache.get('directory') or 'memory-only'})",
    ]
    faults = doc.get("faults")
    if faults:
        kinds = ", ".join(
            f"{kind}={count}" for kind, count in sorted(faults["kinds"].items())
        )
        lines.append(
            f"  faults    {faults['events']} events ({kinds})"
            f" digest {faults['sha256'][:12]}"
        )
    counters = metrics.get("counters", {})
    timers = metrics.get("timers", {})
    lines.append(
        f"  metrics   {len(counters)} counters,"
        f" {len(metrics.get('gauges', {}))} gauges, {len(timers)} timers"
    )
    for name in sorted(counters):
        lines.append(f"    {name} = {counters[name]}")
    for name in sorted(timers):
        timer = timers[name]
        lines.append(
            f"    {name}: count={timer['count']}"
            f" total={timer['total']:.6g} max={timer['max']:.6g}"
        )
    extra = doc.get("extra") or {}
    for key in sorted(extra):
        lines.append(f"  extra     {key} = {extra[key]!r}")
    return "\n".join(lines)
