"""Wall-clock span tracing with Chrome ``trace_event`` export.

The tracing half of :mod:`repro.obs` records *spans* — named wall-clock
intervals around engine runs, hybrid residual epochs, parallel-DES
windows and barriers, and sweep cells — and exports them as Chrome
``trace_event`` JSON that https://ui.perfetto.dev opens directly.

Spans are plain picklable records stamped with the recording process's
pid, and timestamps come from :func:`time.perf_counter`, which on Linux
is ``CLOCK_MONOTONIC`` and therefore consistent across forked and
spawned workers: a worker can :meth:`Tracer.drain` its spans, ship them
through a pool result, and the coordinator's :meth:`Tracer.ingest`
places them on the same timeline.  The Chrome export maps pid -> trace
process and the caller-chosen ``tid`` -> trace thread (parallel shards
use their shard index), so Perfetto shows one swimlane per worker.

Like the metrics registry, the tracer only observes: simulation results
are identical with tracing armed or disarmed.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

__all__ = ["MAX_SPANS", "Span", "Tracer", "export_chrome"]

#: Soft cap on retained spans; further spans are counted, not stored.
#: Generous for any run this repo performs (the biggest bench records a
#: few thousand), but bounds memory if a pathological loop arms tracing.
MAX_SPANS = 500_000


@dataclass(frozen=True)
class Span:
    """One completed wall-clock interval.

    ``start`` and ``duration`` are :func:`time.perf_counter` seconds;
    the Chrome exporter converts to microseconds.  ``args`` carries
    small JSON-able details (event counts, window index) shown in the
    Perfetto side panel.
    """

    name: str
    start: float
    duration: float
    pid: int
    tid: int = 0
    args: dict = field(default_factory=dict)


class Tracer:
    """Accumulates :class:`Span` records for one process."""

    __slots__ = ("spans", "dropped", "max_spans")

    def __init__(self, max_spans: int = MAX_SPANS) -> None:
        self.spans: list[Span] = []
        #: Spans discarded after hitting ``max_spans``.
        self.dropped = 0
        self.max_spans = max_spans

    def add(
        self,
        name: str,
        start: float,
        duration: float,
        *,
        tid: int = 0,
        **args: object,
    ) -> None:
        """Record a completed interval (``perf_counter`` seconds)."""
        if len(self.spans) >= self.max_spans:
            self.dropped += 1
            return
        self.spans.append(
            Span(name, start, duration, os.getpid(), tid, dict(args))
        )

    @contextmanager
    def span(self, name: str, *, tid: int = 0, **args: object) -> Iterator[None]:
        """Record the enclosed block as a span named ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, start, time.perf_counter() - start, tid=tid, **args)

    def ingest(self, spans: Iterable[Span]) -> None:
        """Adopt spans drained from another tracer (worker -> parent)."""
        for span in spans:
            if len(self.spans) >= self.max_spans:
                self.dropped += 1
            else:
                self.spans.append(span)

    def drain(self) -> list[Span]:
        """Return and forget every recorded span."""
        spans = self.spans
        self.spans = []
        return spans

    def __len__(self) -> int:
        return len(self.spans)


def export_chrome(
    spans: Iterable[Span],
    process_labels: "Mapping[int, str] | None" = None,
) -> dict:
    """Render spans as a Chrome ``trace_event`` JSON document.

    Each span becomes a complete event (``"ph": "X"``) with microsecond
    ``ts``/``dur``; every distinct pid additionally gets a
    ``process_name`` metadata event so Perfetto labels the swimlane.
    ``process_labels`` overrides the default ``worker-<pid>`` label —
    the ``repro trace`` CLI marks its own pid ``coordinator``.

    The returned dict is the JSON Object Format (``{"traceEvents":
    [...]}``), the variant Perfetto and ``chrome://tracing`` both read.
    """
    spans = list(spans)
    labels = dict(process_labels or {})
    events: list[dict] = []
    for pid in sorted({span.pid for span in spans}):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": labels.get(pid, f"worker-{pid}")},
            }
        )
    for span in spans:
        events.append(
            {
                "name": span.name,
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": span.duration * 1e6,
                "pid": span.pid,
                "tid": span.tid,
                "args": span.args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}
