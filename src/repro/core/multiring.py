"""Multi-ring wavelength planning — paper Section 3.5.

A Quartz element whose wavelength demand exceeds one WDM's channel count
(e.g. 33 switches → 136 channels > 80) must spread its channels over
parallel physical fibre rings, one WDM mux per switch per ring.  Beyond
sheer capacity, the *placement* of channels onto rings determines fault
tolerance: losing one fibre segment kills every channel routed across it
on that ring, so a good plan balances each segment's load across rings
and splits each switch's channels so no single ring failure isolates a
switch.

:func:`plan_rings` produces a :class:`MultiRingPlan`:

* rings are filled respecting the per-WDM channel limit;
* for every fibre segment, channels crossing it are balanced across
  rings (greedy: each path goes to the ring where its heaviest-loaded
  segment is lightest);
* the wavelength index of a channel *within its ring* is recomputed
  first-fit, so each ring independently satisfies the no-clash
  constraint with a compact wavelength range.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache import cached
from repro.core.channels import (
    ChannelPlan,
    PathAssignment,
    WDM_CHANNEL_LIMIT,
    greedy_assignment,
)


class MultiRingPlanError(ValueError):
    """Raised when channels cannot be packed onto the requested rings."""


@dataclass(frozen=True)
class RingAssignment:
    """One pair's channel in a multi-ring deployment."""

    pair: tuple[int, int]
    ring: int
    wavelength: int
    links: tuple[int, ...]


@dataclass(frozen=True)
class MultiRingPlan:
    """A wavelength plan spread over parallel physical fibre rings."""

    ring_size: int
    num_rings: int
    wdm_channels: int
    assignments: tuple[RingAssignment, ...]

    def ring_of(self, s: int, t: int) -> int:
        """Which physical ring carries the channel of pair ``{s, t}``."""
        want = (min(s, t), max(s, t))
        for a in self.assignments:
            if a.pair == want:
                return a.ring
        raise MultiRingPlanError(f"no assignment for pair {want}")

    def wavelengths_on_ring(self, ring: int) -> int:
        """Distinct wavelengths used on one physical ring."""
        return len({a.wavelength for a in self.assignments if a.ring == ring})

    def channels_crossing(self, ring: int, segment: int) -> tuple[tuple[int, int], ...]:
        """Switch pairs whose channel a fibre-segment cut would sever.

        A cut of physical segment ``segment`` on ring ``ring`` kills
        exactly these pairs' direct mesh channels — the runtime mapping
        the packet simulator's fault injector applies
        (:class:`repro.sim.faults.FaultInjector`).
        """
        return tuple(
            sorted(
                a.pair
                for a in self.assignments
                if a.ring == ring and segment in a.links
            )
        )

    def pair_routes(self) -> dict[tuple[int, int], tuple[int, tuple[int, ...]]]:
        """Every pair's physical route: ``pair -> (ring, fibre segments)``.

        The inverse view of :meth:`channels_crossing`, used to decide
        when a severed channel is whole again (every segment its path
        crosses must be intact before a repair can resurrect it).
        """
        return {a.pair: (a.ring, a.links) for a in self.assignments}

    def segment_load(self, ring: int, segment: int) -> int:
        """Channels crossing one fibre segment of one ring."""
        return sum(
            1
            for a in self.assignments
            if a.ring == ring and segment in a.links
        )

    def max_segment_imbalance(self) -> int:
        """Worst over segments of (max − min) per-ring channel load.

        Zero means every segment's channels are perfectly spread across
        rings; small values mean one fibre cut never takes a
        disproportionate share of any segment's channels.
        """
        worst = 0
        for segment in range(self.ring_size):
            loads = [self.segment_load(r, segment) for r in range(self.num_rings)]
            worst = max(worst, max(loads) - min(loads))
        return worst

    def validate(self) -> None:
        """Check capacity, coverage, and per-ring wavelength feasibility."""
        m = self.ring_size
        expected = {(s, t) for s in range(m) for t in range(s + 1, m)}
        got = [a.pair for a in self.assignments]
        if len(got) != len(set(got)) or set(got) != expected:
            raise MultiRingPlanError("pair coverage is wrong")
        for ring in range(self.num_rings):
            if self.wavelengths_on_ring(ring) > self.wdm_channels:
                raise MultiRingPlanError(
                    f"ring {ring} uses {self.wavelengths_on_ring(ring)} wavelengths, "
                    f"WDM supports {self.wdm_channels}"
                )
        # No wavelength clash on any (ring, segment).
        for ring in range(self.num_rings):
            for segment in range(m):
                seen: set[int] = set()
                for a in self.assignments:
                    if a.ring == ring and segment in a.links:
                        if a.wavelength in seen:
                            raise MultiRingPlanError(
                                f"wavelength {a.wavelength} clashes on ring "
                                f"{ring} segment {segment}"
                            )
                        seen.add(a.wavelength)


@cached("multi-ring-plan")
def plan_rings(
    ring_size: int,
    num_rings: int | None = None,
    wdm_channels: int = WDM_CHANNEL_LIMIT,
    base_plan: ChannelPlan | None = None,
) -> MultiRingPlan:
    """Spread a ring's wavelength plan over parallel physical rings.

    ``num_rings`` defaults to the minimum needed for the WDM channel
    budget.  Raises :class:`MultiRingPlanError` if the channels cannot
    be packed (the packing is greedy, balancing per-segment load, so a
    feasible instance can in principle be rejected — in practice the
    paper-scale instances pack with ≥ 30 % headroom).
    """
    if ring_size < 2:
        raise MultiRingPlanError("need at least two switches")
    plan = base_plan if base_plan is not None else greedy_assignment(ring_size)
    if plan.ring_size != ring_size:
        raise MultiRingPlanError(
            f"base plan is for ring size {plan.ring_size}, not {ring_size}"
        )

    if num_rings is None:
        num_rings = max(1, -(-plan.num_channels // wdm_channels))
    if num_rings < 1:
        raise MultiRingPlanError("need at least one physical ring")

    # Longest paths first: they cross the most segments and are the
    # hardest to place without wavelength clashes.
    ordered = sorted(plan.assignments, key=lambda a: -a.length)

    # wavelengths_used[ring][segment] -> set of wavelengths occupied
    wavelengths_used: list[list[set[int]]] = [
        [set() for _ in range(ring_size)] for _ in range(num_rings)
    ]
    segment_channels: list[list[int]] = [
        [0] * ring_size for _ in range(num_rings)
    ]
    ring_wavelengths: list[set[int]] = [set() for _ in range(num_rings)]

    assignments: list[RingAssignment] = []
    for path in ordered:
        placed = _place(
            path,
            num_rings,
            wdm_channels,
            wavelengths_used,
            segment_channels,
            ring_wavelengths,
        )
        if placed is None:
            raise MultiRingPlanError(
                f"cannot place channel for pair {path.pair} on {num_rings} "
                f"rings of {wdm_channels} wavelengths"
            )
        assignments.append(placed)

    result = MultiRingPlan(
        ring_size=ring_size,
        num_rings=num_rings,
        wdm_channels=wdm_channels,
        assignments=tuple(assignments),
    )
    result.validate()
    return result


def _place(
    path: PathAssignment,
    num_rings: int,
    wdm_channels: int,
    wavelengths_used: list[list[set[int]]],
    segment_channels: list[list[int]],
    ring_wavelengths: list[set[int]],
) -> RingAssignment | None:
    """Place one path: pick the ring whose touched segments are least
    loaded, then the first-fit wavelength there."""
    candidates = sorted(
        range(num_rings),
        key=lambda r: (
            max(segment_channels[r][e] for e in path.links),
            sum(segment_channels[r][e] for e in path.links),
            r,
        ),
    )
    for ring in candidates:
        wavelength = 0
        while wavelength < wdm_channels and any(
            wavelength in wavelengths_used[ring][e] for e in path.links
        ):
            wavelength += 1
        if wavelength >= wdm_channels:
            continue
        if wavelength not in ring_wavelengths[ring] and (
            len(ring_wavelengths[ring]) >= wdm_channels
        ):
            continue
        for e in path.links:
            wavelengths_used[ring][e].add(wavelength)
            segment_channels[ring][e] += 1
        ring_wavelengths[ring].add(wavelength)
        return RingAssignment(
            pair=path.pair, ring=ring, wavelength=wavelength, links=path.links
        )
    return None
