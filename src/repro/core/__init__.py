"""The paper's primary contribution: the Quartz WDM-ring mesh element.

Public surface:

* :class:`~repro.core.ring.QuartzRing` — the design element itself.
* :mod:`~repro.core.channels` — wavelength assignment (greedy + ILP).
* :mod:`~repro.core.optical` — insertion-loss / amplifier budget.
* :mod:`~repro.core.fault` — multi-ring failure analysis.
"""

from repro.core.channels import (
    ChannelAssignmentError,
    ChannelPlan,
    PathAssignment,
    FIBER_CHANNEL_LIMIT,
    WDM_CHANNEL_LIMIT,
    greedy_assignment,
    ilp_assignment,
    lower_bound,
    max_ring_size,
    rings_needed,
    wavelengths_required,
)
from repro.core.expansion import ExpansionError, ExpansionResult, expand_plan
from repro.core.fault import FaultStats, RingFaultModel, figure6_sweep
from repro.core.multiring import (
    MultiRingPlan,
    MultiRingPlanError,
    RingAssignment,
    plan_rings,
)
from repro.core.serialization import (
    SerializationError,
    multiring_from_json,
    multiring_to_json,
    plan_from_json,
    plan_to_json,
)
from repro.core.optical import (
    Amplifier,
    OpticalBudgetError,
    SignalTrace,
    Transceiver,
    WDMMux,
    amplifiers_required,
    amplifier_spacing_switches,
    max_unamplified_wdm_hops,
    trace_channel,
    validate_ring_budget,
)
from repro.core.ring import QuartzConfigError, QuartzRing

__all__ = [
    "Amplifier",
    "ChannelAssignmentError",
    "ChannelPlan",
    "ExpansionError",
    "ExpansionResult",
    "FIBER_CHANNEL_LIMIT",
    "FaultStats",
    "MultiRingPlan",
    "MultiRingPlanError",
    "RingAssignment",
    "SerializationError",
    "OpticalBudgetError",
    "PathAssignment",
    "QuartzConfigError",
    "QuartzRing",
    "RingFaultModel",
    "SignalTrace",
    "Transceiver",
    "WDM_CHANNEL_LIMIT",
    "WDMMux",
    "amplifier_spacing_switches",
    "amplifiers_required",
    "expand_plan",
    "figure6_sweep",
    "greedy_assignment",
    "ilp_assignment",
    "lower_bound",
    "max_ring_size",
    "max_unamplified_wdm_hops",
    "multiring_from_json",
    "multiring_to_json",
    "plan_from_json",
    "plan_rings",
    "plan_to_json",
    "rings_needed",
    "trace_channel",
    "validate_ring_budget",
    "wavelengths_required",
]
