"""Channel-plan serialization.

The paper notes that "wavelength planning is a one-time event that is
done at design time … wavelength planning and switch to DWDM cabling can
be performed by the device manufacturer at the factory."  That implies
plans are artifacts that get written down, shipped, and loaded — so the
library supports a stable JSON representation for both single-ring
(:class:`~repro.core.channels.ChannelPlan`) and multi-ring
(:class:`~repro.core.multiring.MultiRingPlan`) plans.
"""

from __future__ import annotations

import json

from repro.core.channels import ChannelPlan, PathAssignment
from repro.core.multiring import MultiRingPlan, RingAssignment

_FORMAT = "quartz-channel-plan"
_MULTI_FORMAT = "quartz-multiring-plan"
_VERSION = 1


class SerializationError(ValueError):
    """Raised for malformed plan documents."""


def plan_to_json(plan: ChannelPlan, indent: int | None = None) -> str:
    """Serialize a single-ring wavelength plan to JSON."""
    doc = {
        "format": _FORMAT,
        "version": _VERSION,
        "ring_size": plan.ring_size,
        "assignments": [
            {
                "src": a.src,
                "dst": a.dst,
                "channel": a.channel,
                "clockwise": a.clockwise,
            }
            for a in plan.assignments
        ],
    }
    return json.dumps(doc, indent=indent)


def plan_from_json(text: str) -> ChannelPlan:
    """Parse and validate a single-ring plan document."""
    doc = _load(text, _FORMAT)
    ring_size = doc["ring_size"]
    try:
        assignments = tuple(
            PathAssignment(
                src=entry["src"],
                dst=entry["dst"],
                channel=entry["channel"],
                clockwise=entry["clockwise"],
                links=_arc(entry, ring_size),
            )
            for entry in doc["assignments"]
        )
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"malformed assignment entry: {exc}") from exc
    plan = ChannelPlan(ring_size=ring_size, assignments=assignments)
    plan.validate()
    return plan


def multiring_to_json(plan: MultiRingPlan, indent: int | None = None) -> str:
    """Serialize a multi-ring plan to JSON."""
    doc = {
        "format": _MULTI_FORMAT,
        "version": _VERSION,
        "ring_size": plan.ring_size,
        "num_rings": plan.num_rings,
        "wdm_channels": plan.wdm_channels,
        "assignments": [
            {
                "pair": list(a.pair),
                "ring": a.ring,
                "wavelength": a.wavelength,
                "links": list(a.links),
            }
            for a in plan.assignments
        ],
    }
    return json.dumps(doc, indent=indent)


def multiring_from_json(text: str) -> MultiRingPlan:
    """Parse and validate a multi-ring plan document."""
    doc = _load(text, _MULTI_FORMAT)
    try:
        assignments = tuple(
            RingAssignment(
                pair=tuple(entry["pair"]),  # type: ignore[arg-type]
                ring=entry["ring"],
                wavelength=entry["wavelength"],
                links=tuple(entry["links"]),
            )
            for entry in doc["assignments"]
        )
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"malformed assignment entry: {exc}") from exc
    plan = MultiRingPlan(
        ring_size=doc["ring_size"],
        num_rings=doc["num_rings"],
        wdm_channels=doc["wdm_channels"],
        assignments=assignments,
    )
    plan.validate()
    return plan


def _load(text: str, expected_format: str) -> dict:
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"not valid JSON: {exc}") from exc
    if not isinstance(doc, dict):
        raise SerializationError("plan document must be a JSON object")
    if doc.get("format") != expected_format:
        raise SerializationError(
            f"expected format {expected_format!r}, got {doc.get('format')!r}"
        )
    if doc.get("version") != _VERSION:
        raise SerializationError(f"unsupported version {doc.get('version')!r}")
    for key in ("ring_size", "assignments"):
        if key not in doc:
            raise SerializationError(f"missing key {key!r}")
    return doc


def _arc(entry: dict, ring_size: int) -> tuple[int, ...]:
    from repro.core.channels import arc_links

    return arc_links(entry["src"], entry["dst"], ring_size, entry["clockwise"])
