"""Wavelength (channel) assignment for Quartz rings — paper Section 3.1.

A Quartz ring of ``M`` switches implements a full logical mesh: every
unordered switch pair ``{s, t}`` owns a dedicated wavelength channel
``λst`` that is optically routed around the physical ring, either
clockwise or counter-clockwise.  Two constraints govern the assignment
(paper Eq. 1–6):

1. every pair gets exactly one channel on one direction, and
2. on any physical fibre segment, a given wavelength is used by at most
   one pair's path.

The objective is to minimize the number of distinct wavelengths, since
commodity DWDM gear supports ~80 channels per mux and fibre supports
~160 channels at 10 Gbps (paper Section 3.1).

This module provides:

* :func:`greedy_assignment` — the paper's greedy heuristic: assign the
  longest paths first (they are the most constrained and fragment the
  channel space the most), first-fit on wavelength index.
* :func:`ilp_assignment` — the exact ILP of Eq. 1–6, solved with HiGHS
  via :func:`scipy.optimize.milp`.  Practical for small rings, exactly
  as in the paper ("for a small ring, we can still find the optimal
  solution by ILP").
* :func:`lower_bound` — the link-load lower bound (total shortest-path
  length divided by ring segments), used as a fast cross-check.
* :func:`max_ring_size` — the largest ring buildable within a channel
  budget (the paper derives 35 switches at 160 channels).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import lru_cache
from math import ceil

import numpy as np
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.cache import cached

#: Channels multiplexable on one fibre at 10 Gbps (paper Section 3.1).
FIBER_CHANNEL_LIMIT = 160

#: Channels supported by one commodity DWDM mux/demux (paper Section 3.1).
WDM_CHANNEL_LIMIT = 80


class ChannelAssignmentError(ValueError):
    """Raised when an assignment cannot be constructed or is invalid."""


@dataclass(frozen=True)
class PathAssignment:
    """One pair's channel: wavelength index plus the fibre segments used.

    ``links`` are segment indices: segment ``m`` joins switch ``m`` and
    switch ``(m + 1) % ring_size``.  ``clockwise`` records the direction
    (from the lower-numbered endpoint of the pair).
    """

    src: int
    dst: int
    channel: int
    clockwise: bool
    links: tuple[int, ...]

    @property
    def pair(self) -> tuple[int, int]:
        return (min(self.src, self.dst), max(self.src, self.dst))

    @property
    def length(self) -> int:
        return len(self.links)


@dataclass(frozen=True)
class ChannelPlan:
    """A complete wavelength plan for a ring of ``ring_size`` switches."""

    ring_size: int
    assignments: tuple[PathAssignment, ...]

    @property
    def num_channels(self) -> int:
        """Number of distinct wavelengths the plan uses (paper's objective)."""
        if not self.assignments:
            return 0
        return len({a.channel for a in self.assignments})

    @property
    def max_channel_index(self) -> int:
        """Highest wavelength index used (1-based count)."""
        if not self.assignments:
            return 0
        return max(a.channel for a in self.assignments) + 1

    def assignment_for(self, s: int, t: int) -> PathAssignment:
        """The assignment covering pair ``{s, t}``."""
        want = (min(s, t), max(s, t))
        for a in self.assignments:
            if a.pair == want:
                return a
        raise ChannelAssignmentError(f"no assignment for pair {want}")

    def channels_on_link(self, link: int) -> set[int]:
        """Wavelengths occupying fibre segment ``link``."""
        return {a.channel for a in self.assignments if link in a.links}

    def link_load(self, link: int) -> int:
        """Number of pair-paths crossing fibre segment ``link``."""
        return sum(1 for a in self.assignments if link in a.links)

    def validate(self) -> None:
        """Check plan invariants; raise :class:`ChannelAssignmentError` if bad.

        Invariants: every unordered pair is assigned exactly once, every
        path is a contiguous ring arc between its endpoints, and no
        wavelength is reused on a fibre segment.
        """
        m = self.ring_size
        expected = {(s, t) for s in range(m) for t in range(s + 1, m)}
        got = [a.pair for a in self.assignments]
        if len(got) != len(set(got)):
            raise ChannelAssignmentError("pair assigned more than once")
        if set(got) != expected:
            missing = expected - set(got)
            raise ChannelAssignmentError(f"pairs missing assignments: {sorted(missing)[:5]}")
        for a in self.assignments:
            if a.links != arc_links(a.src, a.dst, m, a.clockwise):
                raise ChannelAssignmentError(f"path of {a.pair} is not a ring arc")
        for link in range(m):
            used: set[int] = set()
            for a in self.assignments:
                if link in a.links:
                    if a.channel in used:
                        raise ChannelAssignmentError(
                            f"wavelength {a.channel} reused on segment {link}"
                        )
                    used.add(a.channel)


# -- ring geometry -------------------------------------------------------------


def clockwise_distance(s: int, t: int, ring_size: int) -> int:
    """Number of fibre segments on the clockwise arc from ``s`` to ``t``."""
    return (t - s) % ring_size


def ring_distance(s: int, t: int, ring_size: int) -> int:
    """Shortest arc length between ``s`` and ``t``."""
    d = clockwise_distance(s, t, ring_size)
    return min(d, ring_size - d)


def arc_links(s: int, t: int, ring_size: int, clockwise: bool) -> tuple[int, ...]:
    """Fibre segments traversed going from ``s`` to ``t`` in one direction.

    Segment ``m`` joins switches ``m`` and ``(m + 1) % ring_size``.
    """
    if s == t:
        return ()
    if clockwise:
        d = clockwise_distance(s, t, ring_size)
        return tuple((s + j) % ring_size for j in range(d))
    d = clockwise_distance(t, s, ring_size)
    return tuple((t + j) % ring_size for j in range(d))


def all_pairs(ring_size: int) -> list[tuple[int, int]]:
    """All unordered switch pairs of the ring."""
    return [(s, t) for s in range(ring_size) for t in range(s + 1, ring_size)]


# -- lower bound ----------------------------------------------------------------


def lower_bound(ring_size: int) -> int:
    """Link-load lower bound on the number of wavelengths.

    Each pair's path crosses at least ``ring_distance`` segments, and a
    segment carries each wavelength at most once, so the busiest segment
    needs at least ``ceil(total_path_length / ring_size)`` wavelengths.
    """
    if ring_size < 2:
        return 0
    total = sum(ring_distance(s, t, ring_size) for s, t in all_pairs(ring_size))
    return ceil(total / ring_size)


# -- greedy heuristic (paper Section 3.1.1) ---------------------------------------


@cached("channel-plan/greedy")
def greedy_assignment(
    ring_size: int,
    max_channels: int | None = None,
    seed: int | None = None,
    order: str = "longest-first",
) -> ChannelPlan:
    """The paper's greedy channel assignment.

    Paths are processed in decreasing length order (``⌊M/2⌋`` iterations):
    long paths are the most constrained, so assigning them first avoids
    fragmenting the channel space.  Within an iteration the starting pair
    is rotated (optionally randomized with ``seed``, matching the paper's
    "starting from a random location").  Each path takes the lowest
    wavelength index free on every segment of its shorter arc; ties in
    arc length (even rings, antipodal pairs) pick the direction whose
    segments are currently less loaded.

    ``order`` exists for ablation of the paper's heuristic:
    ``"longest-first"`` (the paper's choice), ``"shortest-first"``, or
    ``"random"`` (shuffled pair order, seeded by ``seed``).

    Raises :class:`ChannelAssignmentError` if the plan would exceed
    ``max_channels``.
    """
    if ring_size < 0:
        raise ChannelAssignmentError(f"ring size must be non-negative, got {ring_size}")
    if order not in ("longest-first", "shortest-first", "random"):
        raise ChannelAssignmentError(f"unknown ordering {order!r}")
    if ring_size < 2:
        return ChannelPlan(ring_size=ring_size, assignments=())

    rng = random.Random(seed)
    m = ring_size
    # channel_used[link] = set of wavelength indices occupied on that segment
    channel_used: list[set[int]] = [set() for _ in range(m)]
    link_paths = [0] * m
    assignments: list[PathAssignment] = []

    if order == "random":
        shuffled = all_pairs(m)
        rng.shuffle(shuffled)
        batches = [shuffled]
    else:
        by_length: dict[int, list[tuple[int, int]]] = {}
        for s, t in all_pairs(m):
            by_length.setdefault(ring_distance(s, t, m), []).append((s, t))
        reverse = order == "longest-first"
        batches = [by_length[k] for k in sorted(by_length, reverse=reverse)]

    for pairs in batches:
        start = rng.randrange(len(pairs)) if seed is not None and order != "random" else 0
        ordered = pairs[start:] + pairs[:start]
        for s, t in ordered:
            length = ring_distance(s, t, m)
            cw_links = arc_links(s, t, m, clockwise=True)
            ccw_links = arc_links(s, t, m, clockwise=False)
            candidates: list[tuple[int, ...]] = []
            if len(cw_links) == length:
                candidates.append(cw_links)
            if len(ccw_links) == length and ccw_links != cw_links:
                candidates.append(ccw_links)
            # On even rings the antipodal pairs have two equal-length arcs:
            # prefer the arc whose segments currently carry fewer paths.
            if len(candidates) == 2:
                loads = [sum(link_paths[e] for e in links) for links in candidates]
                if loads[1] < loads[0]:
                    candidates.reverse()

            best: tuple[int, tuple[int, ...]] | None = None
            for links in candidates:
                channel = _first_fit(links, channel_used)
                if best is None or channel < best[0]:
                    best = (channel, links)
            assert best is not None
            channel, links = best
            clockwise = links == cw_links
            for e in links:
                channel_used[e].add(channel)
                link_paths[e] += 1
            assignments.append(
                PathAssignment(src=s, dst=t, channel=channel, clockwise=clockwise, links=links)
            )

    plan = ChannelPlan(ring_size=m, assignments=tuple(assignments))
    if max_channels is not None and plan.num_channels > max_channels:
        raise ChannelAssignmentError(
            f"ring of {m} needs {plan.num_channels} channels, budget is {max_channels}"
        )
    return plan


def _first_fit(links: tuple[int, ...], channel_used: list[set[int]]) -> int:
    """Lowest wavelength index free on every segment in ``links``."""
    channel = 0
    while any(channel in channel_used[e] for e in links):
        channel += 1
    return channel


# -- exact ILP (paper Eq. 1-6) -----------------------------------------------------


@cached("channel-plan/ilp")
def ilp_assignment(
    ring_size: int,
    max_channels: int | None = None,
    time_limit: float = 60.0,
) -> ChannelPlan:
    """Exact minimum-wavelength assignment via the paper's ILP.

    Variables: ``C[p, i] = 1`` if directed pair ``p`` (a clockwise path)
    uses wavelength ``i``; ``λ[i] = 1`` if wavelength ``i`` is used at
    all.  Constraints: one channel+direction per unordered pair (Eq. 2),
    and per segment/wavelength, at most one path — folded together with
    Eq. 5 as ``sum_{p ∋ segment} C[p, i] ≤ λ[i]``.  Objective: minimize
    ``Σ λ[i]`` (Eq. 1).  Symmetry is broken with ``λ[i] ≥ λ[i+1]``.

    The wavelength pool defaults to the greedy solution size (a valid
    upper bound), keeping the model small.
    """
    if ring_size < 2:
        return ChannelPlan(ring_size=ring_size, assignments=())

    m = ring_size
    greedy = greedy_assignment(m)
    pool = greedy.num_channels if max_channels is None else max_channels

    directed = [(s, t) for s in range(m) for t in range(m) if s != t]
    pair_index = {p: j for j, p in enumerate(directed)}
    paths = {p: arc_links(p[0], p[1], m, clockwise=True) for p in directed}

    n_pairs = len(directed)
    n_c = n_pairs * pool  # C variables
    n_vars = n_c + pool  # plus λ variables

    def c_var(p: tuple[int, int], i: int) -> int:
        return pair_index[p] * pool + i

    def lam_var(i: int) -> int:
        return n_c + i

    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    lbs: list[float] = []
    ubs: list[float] = []
    row = 0

    # Eq. 2: each unordered pair picks exactly one (channel, direction).
    for s, t in all_pairs(m):
        for i in range(pool):
            for p in ((s, t), (t, s)):
                rows.append(row)
                cols.append(c_var(p, i))
                vals.append(1.0)
        lbs.append(1.0)
        ubs.append(1.0)
        row += 1

    # Segment capacity + channel-usage coupling:
    #   for every segment e and wavelength i: Σ_{p: e ∈ path(p)} C[p,i] − λ[i] ≤ 0
    pairs_on_segment: dict[int, list[tuple[int, int]]] = {e: [] for e in range(m)}
    for p, links in paths.items():
        for e in links:
            pairs_on_segment[e].append(p)
    for e in range(m):
        for i in range(pool):
            for p in pairs_on_segment[e]:
                rows.append(row)
                cols.append(c_var(p, i))
                vals.append(1.0)
            rows.append(row)
            cols.append(lam_var(i))
            vals.append(-1.0)
            lbs.append(-np.inf)
            ubs.append(0.0)
            row += 1

    # Symmetry breaking: λ[i] ≥ λ[i+1].
    for i in range(pool - 1):
        rows.append(row)
        cols.append(lam_var(i))
        vals.append(1.0)
        rows.append(row)
        cols.append(lam_var(i + 1))
        vals.append(-1.0)
        lbs.append(0.0)
        ubs.append(np.inf)
        row += 1

    a = sparse.csc_matrix((vals, (rows, cols)), shape=(row, n_vars))
    objective = np.zeros(n_vars)
    objective[n_c:] = 1.0

    result = milp(
        c=objective,
        constraints=LinearConstraint(a, np.array(lbs), np.array(ubs)),
        integrality=np.ones(n_vars),
        bounds=Bounds(0, 1),
        options={"time_limit": time_limit},
    )
    if not result.success:
        raise ChannelAssignmentError(
            f"ILP failed for ring size {m} with {pool} channels: {result.message}"
        )

    x = np.round(result.x).astype(int)
    assignments: list[PathAssignment] = []
    for s, t in all_pairs(m):
        chosen: PathAssignment | None = None
        for i in range(pool):
            for p in ((s, t), (t, s)):
                if x[c_var(p, i)] == 1:
                    links = paths[p]
                    chosen = PathAssignment(
                        src=p[0], dst=p[1], channel=i,
                        clockwise=True, links=links,
                    )
        if chosen is None:
            raise ChannelAssignmentError(f"ILP solution covers no channel for {(s, t)}")
        assignments.append(chosen)
    plan = ChannelPlan(ring_size=m, assignments=tuple(assignments))
    plan.validate()
    return plan


# -- derived quantities ------------------------------------------------------------


@lru_cache(maxsize=256)
def wavelengths_required(ring_size: int, method: str = "greedy") -> int:
    """Number of wavelengths a ring of ``ring_size`` needs (Figure 5 series)."""
    if method == "greedy":
        return greedy_assignment(ring_size).num_channels
    if method == "ilp":
        return ilp_assignment(ring_size).num_channels
    if method == "lower-bound":
        return lower_bound(ring_size)
    raise ChannelAssignmentError(f"unknown method {method!r}")


def max_ring_size(
    channel_budget: int = FIBER_CHANNEL_LIMIT,
    method: str = "greedy",
) -> int:
    """Largest ring size whose wavelength demand fits ``channel_budget``.

    With the paper's 160-channel fibre budget this is 35 switches.
    """
    size = 2
    while wavelengths_required(size + 1, method) <= channel_budget:
        size += 1
    return size


def rings_needed(ring_size: int, wdm_channels: int = WDM_CHANNEL_LIMIT) -> int:
    """Parallel physical rings needed when one WDM supports ``wdm_channels``.

    Paper Section 3.5: a 33-switch ring needs 137 channels, hence two
    80-channel WDM muxes — i.e. two parallel fibre rings.
    """
    needed = wavelengths_required(ring_size)
    if needed == 0:
        return 1
    return ceil(needed / wdm_channels)
