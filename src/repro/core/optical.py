"""Optical power budget for Quartz rings — paper Section 3.3.

An optical hop between adjacent switches does not add discernible
latency, but every add/drop DWDM a channel passes through attenuates it
(insertion loss).  Quartz compensates with pump-laser (EDFA) amplifiers
inserted between optical hops, and protects receivers from overload with
passive attenuators.

The paper's worked example: 10 Gbps DWDM transceivers with +4 dBm output
power and −15 dBm receiver sensitivity, and 80-channel DWDMs with 6 dB
insertion loss, give a budget of ``(4 − (−15)) / 6 = 3.17`` → a channel
crosses at most **3** DWDMs unamplified.  Each ring hop traverses two
DWDMs (the drop side of one mux and the add side of the next), so an
amplifier is needed for every two switches; on a 24-node ring this adds
only ~3 % to cost.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.channels import WDM_CHANNEL_LIMIT


class OpticalBudgetError(ValueError):
    """Raised when a channel cannot close its optical link budget."""


@dataclass(frozen=True)
class Transceiver:
    """A DWDM optical transceiver (paper ref [7])."""

    name: str = "10G DWDM SFP+"
    rate_bps: float = 10e9
    output_power_dbm: float = 4.0
    receiver_sensitivity_dbm: float = -15.0
    #: Maximum input power before receiver overload; above this an
    #: attenuator must be inserted (paper ref [10]).
    receiver_overload_dbm: float = 0.0

    @property
    def power_budget_db(self) -> float:
        """Loss the link can absorb between transmitter and receiver."""
        return self.output_power_dbm - self.receiver_sensitivity_dbm


@dataclass(frozen=True)
class WDMMux:
    """An add/drop DWDM multiplexer (paper ref [8])."""

    name: str = "80ch athermal AWG DWDM"
    channels: int = WDM_CHANNEL_LIMIT
    insertion_loss_db: float = 6.0


@dataclass(frozen=True)
class Amplifier:
    """An EDFA line amplifier (paper ref [12])."""

    name: str = "80ch EDFA"
    gain_db: float = 17.0
    #: Maximum safe total output power; kept simple — one gain figure.
    max_output_dbm: float = 20.0


def max_unamplified_wdm_hops(
    transceiver: Transceiver = Transceiver(),
    wdm: WDMMux = WDMMux(),
) -> int:
    """How many DWDMs a channel can traverse without amplification.

    Paper Section 3.3: ``(4 dBm − (−15 dBm)) / 6 dB = 3.17`` → 3.
    """
    if wdm.insertion_loss_db <= 0:
        raise OpticalBudgetError("insertion loss must be positive")
    return int(transceiver.power_budget_db / wdm.insertion_loss_db)


def amplifier_spacing_switches(
    transceiver: Transceiver = Transceiver(),
    wdm: WDMMux = WDMMux(),
) -> int:
    """Amplifier spacing in switches along the ring, per the paper's sizing.

    Each ring hop crosses two DWDMs, so a budget of ``b = 19 / 6 = 3.17``
    DWDMs spans ``b / 2 = 1.58`` hops; the paper rounds this to "one
    amplifier for every two switches".  We reproduce that arithmetic:
    ``round(b / 2)``, floored at one.
    """
    if wdm.insertion_loss_db <= 0:
        raise OpticalBudgetError("insertion loss must be positive")
    budget_hops = transceiver.power_budget_db / wdm.insertion_loss_db
    spacing = round(budget_hops / 2)
    if budget_hops < 2:
        raise OpticalBudgetError(
            "power budget too small: a single ring hop exceeds the budget"
        )
    return max(1, spacing)


def amplifiers_required(
    ring_size: int,
    transceiver: Transceiver = Transceiver(),
    wdm: WDMMux = WDMMux(),
) -> int:
    """Amplifiers needed on a ring of ``ring_size`` switches.

    One amplifier per :func:`amplifier_spacing_switches` switches; the
    paper's 24-node example needs one for every two switches → 12.
    """
    if ring_size < 2:
        return 0
    return math.ceil(ring_size / amplifier_spacing_switches(transceiver, wdm))


@dataclass(frozen=True)
class SignalTrace:
    """Power levels of one channel as it propagates around the ring."""

    levels_dbm: tuple[float, ...]
    feasible: bool
    attenuation_needed_db: float

    @property
    def min_power_dbm(self) -> float:
        return min(self.levels_dbm)

    @property
    def final_power_dbm(self) -> float:
        return self.levels_dbm[-1]


def trace_channel(
    num_ring_hops: int,
    transceiver: Transceiver = Transceiver(),
    wdm: WDMMux = WDMMux(),
    amplifier: Amplifier = Amplifier(),
) -> SignalTrace:
    """Propagate one channel across ``num_ring_hops`` optical hops.

    Each hop applies two DWDM insertion losses.  Amplifiers are placed
    greedily: whenever the power entering the next hop would land below
    receiver sensitivity, an inline amplifier restores the signal first,
    clamped at the transmitter launch power (the real system pads with
    attenuators to avoid amplifier overload — ``attenuation_needed_db``
    reports the total attenuation inserted, including the receiver-side
    pad the paper mentions).

    The trace is ``feasible`` if the amplifier gain is sufficient to keep
    every received level above sensitivity.
    """
    if num_ring_hops < 0:
        raise OpticalBudgetError("hop count must be non-negative")

    hop_loss = 2 * wdm.insertion_loss_db
    power = transceiver.output_power_dbm
    levels = [power]
    feasible = True
    attenuation = 0.0
    for _hop in range(num_ring_hops):
        if power - hop_loss < transceiver.receiver_sensitivity_dbm:
            boosted = power + amplifier.gain_db
            ceiling = min(transceiver.output_power_dbm, amplifier.max_output_dbm)
            if boosted > ceiling:
                attenuation += boosted - ceiling
                boosted = ceiling
            power = boosted
            levels.append(power)
        power -= hop_loss
        if power < transceiver.receiver_sensitivity_dbm:
            feasible = False
        levels.append(power)
    if levels[-1] > transceiver.receiver_overload_dbm:
        # Receiver-side attenuator pad (paper: "we actually need to use
        # attenuators to protect the receivers from overloading").
        attenuation += levels[-1] - transceiver.receiver_overload_dbm
    return SignalTrace(
        levels_dbm=tuple(levels),
        feasible=feasible,
        attenuation_needed_db=attenuation,
    )


@dataclass(frozen=True)
class PowerReport:
    """Per-pair optical feasibility of a concrete wavelength plan."""

    ring_size: int
    worst_pair: tuple[int, int]
    worst_min_power_dbm: float
    total_attenuation_db: float
    amplifiers: int
    all_feasible: bool
    hops_histogram: dict[int, int]


def ring_power_report(
    plan,
    transceiver: Transceiver = Transceiver(),
    wdm: WDMMux = WDMMux(),
    amplifier: Amplifier = Amplifier(),
) -> PowerReport:
    """Evaluate the optical budget of every channel in a wavelength plan.

    Walks each pair's actual fibre arc (from a
    :class:`~repro.core.channels.ChannelPlan`), traces its power, and
    aggregates: the worst received power, the total attenuator padding
    the deployment needs, and a histogram of optical path lengths.
    """
    worst_pair: tuple[int, int] | None = None
    worst_power = float("inf")
    total_attenuation = 0.0
    feasible = True
    histogram: dict[int, int] = {}
    for assignment in plan.assignments:
        hops = assignment.length
        histogram[hops] = histogram.get(hops, 0) + 1
        trace = trace_channel(hops, transceiver, wdm, amplifier)
        total_attenuation += trace.attenuation_needed_db
        if not trace.feasible:
            feasible = False
        if trace.min_power_dbm < worst_power:
            worst_power = trace.min_power_dbm
            worst_pair = assignment.pair
    if worst_pair is None:
        raise OpticalBudgetError("plan has no assignments")
    return PowerReport(
        ring_size=plan.ring_size,
        worst_pair=worst_pair,
        worst_min_power_dbm=worst_power,
        total_attenuation_db=total_attenuation,
        amplifiers=amplifiers_required(plan.ring_size, transceiver, wdm),
        all_feasible=feasible,
        hops_histogram=dict(sorted(histogram.items())),
    )


def validate_ring_budget(
    ring_size: int,
    transceiver: Transceiver = Transceiver(),
    wdm: WDMMux = WDMMux(),
    amplifier: Amplifier = Amplifier(),
) -> None:
    """Check every possible channel path on the ring closes its budget.

    The longest channel path spans ``⌊ring_size / 2⌋`` optical hops.
    Raises :class:`OpticalBudgetError` if any path is infeasible.
    """
    longest = ring_size // 2
    for hops in range(1, longest + 1):
        trace = trace_channel(hops, transceiver, wdm, amplifier)
        if not trace.feasible:
            raise OpticalBudgetError(
                f"channel spanning {hops} hops on a {ring_size}-ring drops to "
                f"{trace.min_power_dbm:.1f} dBm, below sensitivity "
                f"{transceiver.receiver_sensitivity_dbm:.1f} dBm"
            )
