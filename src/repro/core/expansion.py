"""Incremental ring expansion — paper Section 8.

"Quartz … can be incrementally deployed as needed to cut latency in
portions of DCNs, or to allow incremental deployment of a core switch.
… switches and WDMs can be added as needed."

Growing a live ring from ``M`` to ``M′`` switches inserts the new
switches into the physical ring (we model insertion at the seam, between
switch ``M − 1`` and switch 0).  Existing transceivers are tuned to
fixed wavelengths, so a good expansion *preserves* as many existing
channel assignments as possible and reports exactly which pairs must be
re-tuned:

* every surviving pair keeps its ring direction; its fibre arc is
  recomputed for the larger ring (arcs across the seam lengthen);
* pairs whose kept wavelength now clashes on the new segments are
  re-assigned (counted as re-tunes);
* pairs involving the new switches are assigned greedily afterwards.

:func:`expand_plan` returns the new plan plus the re-tune report.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.channels import (
    ChannelAssignmentError,
    ChannelPlan,
    PathAssignment,
    arc_links,
    ring_distance,
)


class ExpansionError(ValueError):
    """Raised for invalid expansion requests."""


@dataclass(frozen=True)
class ExpansionResult:
    """Outcome of growing a ring."""

    plan: ChannelPlan
    #: Pairs that kept their original wavelength (no re-tuning needed).
    preserved: tuple[tuple[int, int], ...]
    #: Existing pairs whose wavelength had to change.
    retuned: tuple[tuple[int, int], ...]
    #: Pairs that are new (involve an added switch).
    added: tuple[tuple[int, int], ...]

    @property
    def retune_fraction(self) -> float:
        """Share of pre-existing channels that had to be re-tuned."""
        existing = len(self.preserved) + len(self.retuned)
        return len(self.retuned) / existing if existing else 0.0


def expand_plan(
    old: ChannelPlan,
    new_ring_size: int,
    max_channels: int | None = None,
) -> ExpansionResult:
    """Grow ``old`` to ``new_ring_size`` switches, minimizing re-tunes."""
    m_old = old.ring_size
    m_new = new_ring_size
    if m_new < m_old:
        raise ExpansionError(f"cannot shrink a ring ({m_old} → {m_new})")
    if m_new == m_old:
        return ExpansionResult(
            plan=old,
            preserved=tuple(a.pair for a in old.assignments),
            retuned=(),
            added=(),
        )

    channel_used: list[set[int]] = [set() for _ in range(m_new)]
    link_paths = [0] * m_new
    assignments: list[PathAssignment] = []
    preserved: list[tuple[int, int]] = []
    retuned: list[tuple[int, int]] = []

    def commit(a: PathAssignment) -> None:
        for e in a.links:
            channel_used[e].add(a.channel)
            link_paths[e] += 1
        assignments.append(a)

    def first_fit(links: tuple[int, ...]) -> int:
        channel = 0
        while any(channel in channel_used[e] for e in links):
            channel += 1
        return channel

    # Phase 1: re-route existing pairs on the larger ring, keeping their
    # direction; longest new arcs first (most constrained).
    rerouted = []
    for a in old.assignments:
        links = arc_links(a.src, a.dst, m_new, a.clockwise)
        rerouted.append((a, links))
    rerouted.sort(key=lambda pair: -len(pair[1]))

    deferred: list[tuple[PathAssignment, tuple[int, ...]]] = []
    for a, links in rerouted:
        if any(a.channel in channel_used[e] for e in links):
            deferred.append((a, links))
            continue
        commit(
            PathAssignment(
                src=a.src, dst=a.dst, channel=a.channel,
                clockwise=a.clockwise, links=links,
            )
        )
        preserved.append(a.pair)

    # Phase 2: clashing pairs get a fresh first-fit wavelength; the
    # shorter arc direction may now be the other way, so pick the less
    # constrained of the two.
    for a, links in deferred:
        other = arc_links(a.src, a.dst, m_new, not a.clockwise)
        best_links, clockwise = links, a.clockwise
        if first_fit(other) < first_fit(links):
            best_links, clockwise = other, not a.clockwise
        channel = first_fit(best_links)
        commit(
            PathAssignment(
                src=a.src, dst=a.dst, channel=channel,
                clockwise=clockwise, links=best_links,
            )
        )
        retuned.append(a.pair)

    # Phase 3: pairs involving the new switches, longest arcs first.
    new_pairs = [
        (s, t)
        for s in range(m_new)
        for t in range(s + 1, m_new)
        if s >= m_old or t >= m_old
    ]
    new_pairs.sort(key=lambda p: -ring_distance(p[0], p[1], m_new))
    for s, t in new_pairs:
        cw = arc_links(s, t, m_new, clockwise=True)
        ccw = arc_links(s, t, m_new, clockwise=False)
        short, long_ = (cw, ccw) if len(cw) <= len(ccw) else (ccw, cw)
        candidates = [short] if len(short) < len(long_) else [short, long_]
        best = min(candidates, key=first_fit)
        channel = first_fit(best)
        commit(
            PathAssignment(
                src=s, dst=t, channel=channel,
                clockwise=best == cw, links=best,
            )
        )

    plan = ChannelPlan(ring_size=m_new, assignments=tuple(assignments))
    plan.validate()
    if max_channels is not None and plan.num_channels > max_channels:
        raise ChannelAssignmentError(
            f"expanded ring of {m_new} needs {plan.num_channels} channels, "
            f"budget is {max_channels}"
        )
    added = tuple(
        p for p in (a.pair for a in assignments)
        if p[0] >= m_old or p[1] >= m_old
    )
    return ExpansionResult(
        plan=plan,
        preserved=tuple(preserved),
        retuned=tuple(retuned),
        added=added,
    )
