"""Fault tolerance of Quartz rings — paper Section 3.5 and Figure 6.

A single physical ring is fragile: two fibre cuts partition it.  Quartz
mitigates this by spreading the wavelength plan over multiple parallel
fibre rings (a 33-switch ring needs 137 channels anyway — more than one
80-channel WDM supports — so at least two rings are required).

This module Monte-Carlo simulates random fibre-segment failures and
reports the two quantities plotted in Figure 6:

* **bandwidth loss** — the fraction of direct switch-pair channels
  severed (each pair's channel rides exactly one ring; it survives iff
  every fibre segment its path crosses on that ring is intact);
* **partition probability** — whether the logical mesh formed by the
  surviving direct channels is disconnected (multi-hop paths over
  surviving channels keep the network whole).

Paper reference points (33-switch ring): one failure on one ring loses
~20 % of aggregate bandwidth (ours: the mean segment load, ~26 %); with
four rings the loss per failure drops to ~6 %; with two rings even four
simultaneous fibre cuts partition the network with probability only
~0.0024.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass

import networkx as nx

from repro.core.channels import ChannelPlan, greedy_assignment


class FaultModelError(ValueError):
    """Raised for invalid failure-model configurations."""


#: A physical fibre segment: (ring index, segment index).
PhysicalLink = tuple[int, int]


@dataclass(frozen=True)
class FaultStats:
    """Aggregate outcome of a failure Monte-Carlo."""

    num_rings: int
    num_failures: int
    trials: int
    bandwidth_loss: float
    partition_probability: float


class RingFaultModel:
    """Failure simulator for a Quartz element with parallel fibre rings.

    Channel-to-ring placement defaults to striping by wavelength index
    (``channel % num_rings``); pass a
    :class:`repro.core.multiring.MultiRingPlan` as ``multi_plan`` to
    evaluate a load-balanced placement instead.
    """

    def __init__(
        self,
        ring_size: int,
        num_rings: int = 1,
        plan: ChannelPlan | None = None,
        multi_plan: "object | None" = None,
    ) -> None:
        if num_rings < 1:
            raise FaultModelError("need at least one physical ring")
        self.ring_size = ring_size
        #: pair -> (ring it rides on, fibre segments it crosses)
        self.pair_routes: dict[tuple[int, int], tuple[int, tuple[int, ...]]] = {}
        if multi_plan is not None:
            if multi_plan.ring_size != ring_size:
                raise FaultModelError(
                    f"plan is for ring size {multi_plan.ring_size}, not {ring_size}"
                )
            self.num_rings = multi_plan.num_rings
            self.plan = plan if plan is not None else greedy_assignment(ring_size)
            for assignment in multi_plan.assignments:
                self.pair_routes[assignment.pair] = (
                    assignment.ring,
                    assignment.links,
                )
            return
        self.num_rings = num_rings
        self.plan = plan if plan is not None else greedy_assignment(ring_size)
        if self.plan.ring_size != ring_size:
            raise FaultModelError(
                f"plan is for ring size {self.plan.ring_size}, not {ring_size}"
            )
        for assignment in self.plan.assignments:
            ring = assignment.channel % num_rings
            self.pair_routes[assignment.pair] = (ring, assignment.links)

    # -- single-scenario evaluation ------------------------------------------------

    def physical_links(self) -> list[PhysicalLink]:
        """All fibre segments across all rings."""
        return [
            (ring, segment)
            for ring in range(self.num_rings)
            for segment in range(self.ring_size)
        ]

    def surviving_pairs(
        self, failed: set[PhysicalLink]
    ) -> list[tuple[int, int]]:
        """Switch pairs whose direct channel survives the failures."""
        alive = []
        for pair, (ring, segments) in self.pair_routes.items():
            if all((ring, seg) not in failed for seg in segments):
                alive.append(pair)
        return alive

    def bandwidth_loss(self, failed: set[PhysicalLink]) -> float:
        """Fraction of direct channels lost under ``failed`` segments."""
        total = len(self.pair_routes)
        if total == 0:
            return 0.0
        return 1.0 - len(self.surviving_pairs(failed)) / total

    def is_partitioned(self, failed: set[PhysicalLink]) -> bool:
        """Whether the logical graph of surviving channels is disconnected."""
        graph = nx.Graph()
        graph.add_nodes_from(range(self.ring_size))
        graph.add_edges_from(self.surviving_pairs(failed))
        return not nx.is_connected(graph)

    # -- Monte-Carlo -----------------------------------------------------------------

    def simulate(
        self,
        num_failures: int,
        trials: int = 2000,
        seed: int = 0,
    ) -> FaultStats:
        """Sample ``trials`` uniform failure sets of ``num_failures`` segments."""
        links = self.physical_links()
        if num_failures > len(links):
            raise FaultModelError(
                f"cannot fail {num_failures} of {len(links)} fibre segments"
            )
        rng = random.Random(seed)
        loss_total = 0.0
        partitions = 0
        for _ in range(trials):
            failed = set(rng.sample(links, num_failures))
            loss_total += self.bandwidth_loss(failed)
            if self.is_partitioned(failed):
                partitions += 1
        return FaultStats(
            num_rings=self.num_rings,
            num_failures=num_failures,
            trials=trials,
            bandwidth_loss=loss_total / trials,
            partition_probability=partitions / trials,
        )

    def exact_partition_probability(self, num_failures: int) -> float:
        """Exhaustive partition probability (small cases only).

        Enumerates every failure combination; use for validating the
        Monte-Carlo on small rings.
        """
        links = self.physical_links()
        combos = list(itertools.combinations(links, num_failures))
        if not combos:
            return 0.0
        hits = sum(1 for combo in combos if self.is_partitioned(set(combo)))
        return hits / len(combos)


def degraded_mesh_topology(
    topo,
    model: RingFaultModel,
    failed: set[PhysicalLink],
    tor_prefix: str = "tor",
):
    """The logical mesh topology surviving a set of fibre failures.

    ``topo`` must be a single-ToR Quartz mesh whose switches are named
    ``{tor_prefix}{index}`` (as built by
    :meth:`repro.core.ring.QuartzRing.to_topology`).  Every rack pair
    whose channel died loses its mesh link; traffic re-routes over
    surviving channels via multi-hop paths (paper Section 3.5).
    """
    alive = set(model.surviving_pairs(failed))
    dead = [
        (f"{tor_prefix}{s}", f"{tor_prefix}{t}")
        for (s, t) in model.pair_routes
        if (s, t) not in alive
    ]
    return topo.degraded(dead)


def figure6_sweep(
    ring_size: int = 33,
    max_rings: int = 4,
    max_failures: int = 4,
    trials: int = 2000,
    seed: int = 0,
) -> list[FaultStats]:
    """The full Figure 6 grid: rings × failures → (bandwidth loss, partition)."""
    results = []
    plan = greedy_assignment(ring_size)
    for num_rings in range(1, max_rings + 1):
        model = RingFaultModel(ring_size, num_rings, plan)
        for failures in range(1, max_failures + 1):
            results.append(model.simulate(failures, trials=trials, seed=seed))
    return results
