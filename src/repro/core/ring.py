"""The Quartz design element — paper Section 3.

A :class:`QuartzRing` is a full logical mesh of ``M`` low-latency
cut-through switches, physically cabled as a WDM ring: each switch has
``n`` server-facing electrical ports and ``k`` optical transceivers, and
is physically connected only to its two ring neighbours.  Wavelength
routing (see :mod:`repro.core.channels`) gives every switch pair a
dedicated point-to-point channel, so the logical topology is a mesh.

Key numbers from the paper, all reproduced by this module:

* 64-port switches split 32/32 give a ring of 33 switches that mimics a
  **1056-port** (32 × 33) switch (Section 3.2).
* The dual-ToR variant (two switches per rack, each server dual-homed)
  reaches **2080 ports** (32 × 65) with a two-switch worst-case path.
* A 33-switch ring needs 137 wavelengths → two 80-channel WDMs, i.e.
  two parallel fibre rings (Section 3.5).
* Rack-to-rack oversubscription under direct (ECMP) routing is ``n : 1``
  (32:1 in the reference configuration, Section 3.4); VLB over the
  ``M − 2`` two-hop paths trades latency for bandwidth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core import channels as _channels
from repro.core import optical as _optical
from repro.core.channels import ChannelPlan, FIBER_CHANNEL_LIMIT
from repro.topology.base import LinkKind, NodeKind, Topology
from repro.units import GBPS


class QuartzConfigError(ValueError):
    """Raised for inconsistent Quartz ring configurations."""


@dataclass(frozen=True)
class QuartzRing:
    """A Quartz design element: ``num_switches`` switches in a WDM-ring mesh.

    Parameters mirror the paper's: ``server_ports`` (n) and
    ``mesh_ports`` (k) per switch, with ``n + k`` bounded by the switch
    port density.  ``mesh_ports`` must cover the ``num_switches − 1``
    peers (one transceiver each in the base design).
    """

    num_switches: int
    server_ports: int = 32
    mesh_ports: int = 32
    link_rate: float = 10 * GBPS
    switch_model: str = "ULL"
    switches_per_rack: int = 1
    transceiver: _optical.Transceiver = field(default=_optical.Transceiver())
    wdm: _optical.WDMMux = field(default=_optical.WDMMux())

    def __post_init__(self) -> None:
        if self.num_switches < 2:
            raise QuartzConfigError("a Quartz ring needs at least 2 switches")
        if self.server_ports < 1 or self.mesh_ports < 1:
            raise QuartzConfigError("port counts must be positive")
        if self.switches_per_rack not in (1, 2):
            raise QuartzConfigError("only 1 or 2 switches per rack supported")
        if self.mesh_ports < self.peers_per_switch:
            raise QuartzConfigError(
                f"{self.num_switches} switches ({self.num_racks} racks) need "
                f"≥ {self.peers_per_switch} mesh ports per switch, got "
                f"{self.mesh_ports}"
            )

    @property
    def peers_per_switch(self) -> int:
        """Foreign racks each switch holds a direct channel to.

        Every rack pair owns one channel; a rack's switches split its
        ``num_racks − 1`` peers between them (all of them for single-ToR,
        half each for dual-ToR).
        """
        racks = self.num_switches // self.switches_per_rack
        return math.ceil((racks - 1) / self.switches_per_rack)

    # -- constructors ----------------------------------------------------------

    @classmethod
    def from_switch_ports(
        cls,
        port_count: int = 64,
        num_switches: int | None = None,
        link_rate: float = 10 * GBPS,
        switch_model: str = "ULL",
    ) -> "QuartzRing":
        """The paper's canonical split: half server ports, half mesh ports.

        With 64-port switches this builds the 33-switch, 1056-port element.
        """
        if port_count < 4 or port_count % 2:
            raise QuartzConfigError(f"port count must be even and ≥ 4, got {port_count}")
        half = port_count // 2
        size = half + 1 if num_switches is None else num_switches
        return cls(
            num_switches=size,
            server_ports=half,
            mesh_ports=half,
            link_rate=link_rate,
            switch_model=switch_model,
        )

    @classmethod
    def dual_tor(
        cls,
        port_count: int = 64,
        link_rate: float = 10 * GBPS,
        switch_model: str = "ULL",
    ) -> "QuartzRing":
        """The scaled variant of Section 3.2: two ToR switches per rack.

        Each server dual-homes to both rack switches; each rack still has
        a direct channel to every other rack, so the longest server path
        is two switches.  64-port switches give 32 × 65 = 2080 ports.
        """
        half = port_count // 2
        # Each switch reserves one "mesh" port budget entry per foreign
        # rack; with 2 switches per rack the ring has 2 * (half + 1)
        # switches across half + 1 racks... the paper quotes 65 racks.
        racks = half * 2 + 1
        return cls(
            num_switches=racks * 2,
            server_ports=half,
            mesh_ports=half,
            link_rate=link_rate,
            switch_model=switch_model,
            switches_per_rack=2,
        )

    # -- headline quantities ---------------------------------------------------

    @property
    def num_racks(self) -> int:
        return self.num_switches // self.switches_per_rack

    @property
    def total_server_ports(self) -> int:
        """Usable server ports — the port count of the switch this mimics.

        Single-ToR: ``n × M`` (1056 for the canonical element).  Dual-ToR:
        servers are dual-homed, so each rack contributes ``n`` servers.
        """
        if self.switches_per_rack == 1:
            return self.server_ports * self.num_switches
        return self.server_ports * self.num_racks

    @property
    def port_density(self) -> int:
        """Ports needed per switch (n + k)."""
        return self.server_ports + self.mesh_ports

    @property
    def oversubscription(self) -> float:
        """Rack-to-rack oversubscription under direct routing (n : 1)."""
        return float(self.server_ports)

    @property
    def max_switch_hops(self) -> int:
        """Worst-case switch hops between servers — always 2 in a mesh."""
        return 2

    # -- optics -----------------------------------------------------------------

    def channel_plan(self, method: str = "greedy") -> ChannelPlan:
        """The wavelength plan interconnecting the ring's racks.

        Channels connect racks (dual-ToR racks share their rack's channel
        set across two parallel rings, one per switch), so the plan is
        computed over ``num_racks`` ring positions.
        """
        if method == "greedy":
            return _channels.greedy_assignment(self.num_racks)
        if method == "ilp":
            return _channels.ilp_assignment(self.num_racks)
        raise QuartzConfigError(f"unknown channel plan method {method!r}")

    @property
    def wavelengths_required(self) -> int:
        return _channels.wavelengths_required(self.num_racks)

    @property
    def physical_rings(self) -> int:
        """Parallel fibre rings needed (⌈wavelengths / WDM channels⌉)."""
        base = _channels.rings_needed(self.num_racks, self.wdm.channels)
        return base * self.switches_per_rack

    @property
    def wdms_required(self) -> int:
        """Total add/drop WDM muxes: one per switch per fibre ring."""
        rings_per_switch = math.ceil(
            max(self.wavelengths_required, 1) / self.wdm.channels
        )
        return self.num_switches * rings_per_switch

    @property
    def transceivers_required(self) -> int:
        """Total optical transceivers: two per rack-pair channel."""
        return self.num_racks * (self.num_racks - 1)

    @property
    def amplifiers_required(self) -> int:
        per_ring = _optical.amplifiers_required(
            self.num_racks, self.transceiver, self.wdm
        )
        return per_ring * self.physical_rings

    def validate(self) -> None:
        """Check the configuration is physically buildable.

        The wavelength plan is split across parallel fibre rings of at
        most ``wdm.channels`` wavelengths each, so each fibre must stay
        within :data:`FIBER_CHANNEL_LIMIT`; the optical power budget must
        also close on the longest channel path.
        """
        per_ring = min(self.wavelengths_required, self.wdm.channels)
        if per_ring > FIBER_CHANNEL_LIMIT:
            raise QuartzConfigError(
                f"{per_ring} wavelengths per fibre exceeds the "
                f"{FIBER_CHANNEL_LIMIT}-channel fibre limit"
            )
        _optical.validate_ring_budget(self.num_racks, self.transceiver, self.wdm)

    # -- topology materialization -----------------------------------------------

    def to_topology(
        self,
        servers_per_switch: int | None = None,
        name: str | None = None,
    ) -> Topology:
        """Materialize the *logical* topology: a full mesh of ToR switches.

        ``servers_per_switch`` defaults to the full ``server_ports``
        complement; simulations typically attach fewer servers to keep
        event counts manageable.
        """
        n_servers = self.server_ports if servers_per_switch is None else servers_per_switch
        if n_servers > self.server_ports:
            raise QuartzConfigError(
                f"{n_servers} servers per switch exceeds {self.server_ports} ports"
            )
        topo = Topology(name or f"quartz-{self.num_switches}")
        switches: list[str] = []
        for rack in range(self.num_racks):
            for j in range(self.switches_per_rack):
                sw = f"tor{rack}" if self.switches_per_rack == 1 else f"tor{rack}.{j}"
                topo.add_switch(sw, NodeKind.TOR, rack=rack, switch_model=self.switch_model)
                switches.append(sw)
        # Mesh channels join racks: every rack-pair gets one direct channel.
        # Dual-ToR racks alternate which local switch terminates it, so
        # each switch serves half the peer racks.
        for r1 in range(self.num_racks):
            for r2 in range(r1 + 1, self.num_racks):
                if self.switches_per_rack == 1:
                    topo.add_link(f"tor{r1}", f"tor{r2}", self.link_rate, LinkKind.MESH)
                else:
                    j = (r1 + r2) % 2
                    topo.add_link(
                        f"tor{r1}.{j}", f"tor{r2}.{j}", self.link_rate, LinkKind.MESH
                    )
        for rack in range(self.num_racks):
            for s in range(n_servers):
                server = topo.add_server(f"h{rack}.{s}", rack=rack)
                if self.switches_per_rack == 1:
                    topo.add_link(server, f"tor{rack}", self.link_rate, LinkKind.HOST)
                else:
                    topo.add_link(server, f"tor{rack}.0", self.link_rate, LinkKind.HOST)
                    topo.add_link(server, f"tor{rack}.1", self.link_rate, LinkKind.HOST)
        topo.validate()
        return topo

    def summary(self) -> str:
        """Human-readable capsule description of the element."""
        return (
            f"QuartzRing(M={self.num_switches}, n={self.server_ports}, "
            f"k={self.mesh_ports}): mimics a {self.total_server_ports}-port "
            f"switch, {self.wavelengths_required} wavelengths over "
            f"{self.physical_rings} fibre ring(s), {self.wdms_required} WDMs, "
            f"{self.amplifiers_required} amplifiers"
        )
