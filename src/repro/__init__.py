"""repro — a reproduction of "Quartz: A New Design Element for
Low-Latency DCNs" (Liu, Gao, Wong, Keshav; SIGCOMM 2014).

Quartz interconnects top-of-rack switches in a full logical mesh,
physically cabled as a WDM optical ring, to cut datacenter switching and
congestion latency.  This package implements the design element, every
substrate the paper evaluates it on, and the harnesses that regenerate
every table and figure of the paper's evaluation.

Subpackages
-----------
``repro.core``
    The Quartz element: ring configuration, wavelength assignment
    (greedy + exact ILP), optical power budget, multi-ring fault model.
``repro.topology``
    Topology generators (trees, fat-tree/Clos, BCube, DCell, Jellyfish,
    mesh, Quartz composites) and Table 9 metrics.
``repro.routing``
    ECMP, Valiant load balancing, spanning-tree, k-shortest-paths, and
    SPAIN multi-VLAN routing.
``repro.sim``
    Packet-level discrete-event simulator with the paper's Table 16
    switch models.
``repro.flowsim``
    Flow-level max-min fair throughput evaluation (Figure 10).
``repro.workloads``
    Traffic matrices, scatter/gather tasks, and the prototype
    cross-traffic experiment.
``repro.cost``
    Price list, bills of materials, and the Table 8 configurator.
``repro.analysis``
    Component latency model (Tables 2/9) and queueing-theory validation.

Quickstart
----------
>>> from repro.core import QuartzRing
>>> ring = QuartzRing.from_switch_ports(64)   # the paper's 1056-port element
>>> ring.total_server_ports
1056
>>> ring.wavelengths_required <= 160          # fits one fibre's channel budget
True
"""

from repro.core import QuartzRing

__version__ = "1.0.0"

__all__ = ["QuartzRing", "__version__"]
