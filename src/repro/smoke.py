"""Benchmark smoke harness: tiny deterministic cells vs golden metrics.

CI needs an early warning when a change shifts simulation results —
tier-1 tests check invariants, but a silent change to packet timing,
routing picks, or fault handling can pass every invariant while
producing different numbers.  This module runs three small, seeded
cells (one Figure 17 latency cell, one fault-recovery cell, one hybrid
packet/flow cell), extracts their key metrics, and diffs them against
a golden JSON checked into
``tests/golden/``.  Any drift fails ``python -m repro smoke --check``
— and with it the CI benchmark-smoke job.

When a change *intentionally* shifts results (a new router default, a
bug fix in the engine), regenerate the golden with ``python -m repro
smoke --update`` and commit the diff alongside the change.

Every metric derives from seeded cells, so the file is identical across
machines and Python versions; floats are still compared with a relative
tolerance to stay robust to harmless serialization quirks.

The golden also records ``runtime.*`` keys (wall-clock, artifact-cache
hit rate) so the performance trajectory shows up in golden-file diffs;
those keys are machine-dependent and are **excluded** from the
``--check`` comparison.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any

from repro import obs as _obs
from repro.obs.metrics import MetricsRegistry

#: Default golden location, relative to the repository root.
GOLDEN_PATH = Path(__file__).resolve().parents[2] / "tests" / "golden" / "benchmark_smoke.json"

#: Golden for the telemetry-enabled smoke variant (``--telemetry``):
#: the same cells with monitors armed (asserting telemetry changes no
#: compared metric) plus the ``telemetry.*`` diagnosis metrics.
GOLDEN_TELEMETRY_PATH = GOLDEN_PATH.with_name("benchmark_smoke_telemetry.json")

#: Relative tolerance for float comparisons (exact for ints/strings).
REL_TOL = 1e-9

#: Keys carrying perf-trajectory data: recorded in the golden for diff
#: visibility, never compared (they vary by machine and cache state).
RUNTIME_PREFIX = "runtime."


def compute_smoke_metrics() -> dict[str, Any]:
    """Run the three smoke cells and flatten their key metrics.

    Deliberately small: one Figure 17 scatter cell, one fault-recovery
    cell, and one hybrid packet/flow cell, a few seconds end to end.
    """
    from repro.experiments import (
        run_fault_recovery_cell,
        run_hybrid_scale_cell,
        run_task_experiment,
    )

    fig17 = run_task_experiment(
        "quartz in edge and core", "scatter", 1, fan=4, duration=0.002, seed=0
    )
    fault = run_fault_recovery_cell(
        ring_size=5,
        num_rings=1,
        num_cuts=1,
        seed=0,
        servers_per_switch=1,
        per_pair_bandwidth_bps=2e9,
        duration=0.002,
        cut_at=0.0008,
        repair_after=0.0006,
        warmup=0.0003,
        bin_width=0.0001,
    )
    # The hybrid cell pins the residual handoff itself, so the knob is
    # forced on for its duration: unlike the fastpath/batch loops, the
    # hybrid and oracle modes are *not* bit-identical (that difference
    # is the accuracy gate's whole subject), and the golden must not
    # depend on which CI matrix leg runs the smoke check.
    import os

    from repro.sim.knobs import HYBRID_ENV

    saved_hybrid = os.environ.pop(HYBRID_ENV, None)
    try:
        hybrid = run_hybrid_scale_cell(
            fabric="quartz-ring-small",
            mode="hybrid",
            n_background=20,
            fg_fan=4,
            duration=0.002,
            seed=0,
        )
    finally:
        if saved_hybrid is not None:
            os.environ[HYBRID_ENV] = saved_hybrid
    return {
        "fig17.mean_latency_us": fig17.mean_latency * 1e6,
        "fig17.packets": fig17.summary.count,
        "hybrid.fg_mean_latency_us": hybrid.fg_mean * 1e6,
        "hybrid.fg_packets": hybrid.foreground.count,
        "hybrid.epochs": hybrid.epochs,
        "hybrid.residual_epochs": hybrid.residual_epochs,
        "hybrid.packets_delivered": hybrid.packets_delivered,
        "hybrid.background_peak": hybrid.background_peak,
        "fault.channels_severed": fault.channels_severed,
        "fault.packets_delivered": fault.packets_delivered,
        "fault.packets_dropped": fault.packets_dropped,
        "fault.packets_rerouted": fault.packets_rerouted,
        "fault.baseline_goodput_bps": fault.baseline_goodput_bps,
        "fault.goodput_loss": fault.goodput_loss,
        "fault.recovery_latency_ms": (
            None if fault.recovery_latency is None else fault.recovery_latency * 1e3
        ),
    }


def compute_telemetry_smoke_metrics(
    dump_windows_to: Path | str | None = None,
) -> dict[str, Any]:
    """The telemetry-enabled smoke variant.

    Two parts, one golden:

    * the **same** three smoke cells re-run with ``REPRO_TELEMETRY=1``
      armed for the duration — because telemetry is strictly
      observational, every base metric must match the telemetry-off
      golden bit for bit (drift here means telemetry perturbed packet
      timing, the one thing it must never do);
    * one seeded queue-diagnosis cell (incast + mid-burst fibre cut),
      contributing ``telemetry.*`` metrics: localization picks, window
      counts, and microburst evidence.

    ``dump_windows_to`` additionally writes that cell's full per-window
    telemetry JSON — CI uploads it as a workflow artifact.
    """
    import os

    from repro.experiments import run_queue_diagnosis_cell
    from repro.telemetry import TELEMETRY_ENV

    saved = os.environ.get(TELEMETRY_ENV)
    os.environ[TELEMETRY_ENV] = "1"
    try:
        metrics = compute_smoke_metrics()
    finally:
        if saved is None:
            del os.environ[TELEMETRY_ENV]
        else:
            os.environ[TELEMETRY_ENV] = saved

    cell = run_queue_diagnosis_cell(seed=0, cut=True, dump_windows_to=dump_windows_to)
    metrics.update(
        {
            "telemetry.port_correct": cell.port_correct,
            "telemetry.flow_correct": cell.flow_correct,
            "telemetry.detected_port": (
                None if cell.detected_port is None else "->".join(cell.detected_port)
            ),
            "telemetry.detected_flow": cell.detected_flow,
            "telemetry.bursts_at_culprit": cell.bursts_at_culprit,
            "telemetry.peak_depth": cell.peak_depth,
            "telemetry.windows_observed": cell.windows_observed,
            "telemetry.windows_contiguous": cell.windows_contiguous,
            "telemetry.packets_delivered": cell.packets_delivered,
            "telemetry.packets_dropped": cell.packets_dropped,
            "telemetry.packets_rerouted": cell.packets_rerouted,
            "telemetry.channels_severed": cell.channels_severed,
        }
    )
    return metrics


def timed_run(
    telemetry: bool = False,
    dump_windows_to: Path | str | None = None,
) -> tuple[dict[str, Any], dict[str, Any]]:
    """Run the smoke cells under the metrics registry's clock.

    Returns ``(metrics, runtime)``: the compared smoke metrics plus the
    ``runtime.*`` trajectory keys (wall-clock from the registry's
    ``smoke.run`` timer, cache hit rate/lookups from the artifact
    cache).  This is the single timing source for both ``--check`` and
    ``--update`` — there is no bespoke wall-clock plumbing elsewhere.

    With :mod:`repro.obs` armed, the run's summary also folds into the
    process-wide registry (and so into any run manifest written after).
    """
    from repro.cache import artifact_cache

    local = MetricsRegistry()
    with local.timed("smoke.run"):
        if telemetry:
            metrics = compute_telemetry_smoke_metrics(
                dump_windows_to=dump_windows_to
            )
        else:
            metrics = compute_smoke_metrics()
    stats = artifact_cache().stats
    local.gauge("smoke.cache_hit_rate", stats.hit_rate)
    local.gauge("smoke.cache_lookups", stats.lookups)
    snapshot = local.snapshot()
    active = _obs.registry()
    if active is not None:
        active.merge(snapshot)
    runtime = {
        "runtime.wall_clock_s": snapshot["timers"]["smoke.run"]["total"],
        "runtime.cache_hit_rate": snapshot["gauges"]["smoke.cache_hit_rate"],
        "runtime.cache_lookups": snapshot["gauges"]["smoke.cache_lookups"],
    }
    return metrics, runtime


def compare_metrics(
    golden: dict[str, Any], current: dict[str, Any], rel_tol: float = REL_TOL
) -> list[str]:
    """Human-readable drift list; empty means the metrics match.

    ``runtime.*`` keys are skipped on both sides: they track the perf
    trajectory in golden diffs but are machine- and cache-dependent.
    """
    problems = []
    for key in sorted(set(golden) | set(current)):
        if key.startswith(RUNTIME_PREFIX):
            continue
        if key not in golden:
            problems.append(f"{key}: new metric (got {current[key]!r}); regenerate the golden")
            continue
        if key not in current:
            problems.append(f"{key}: missing (golden has {golden[key]!r})")
            continue
        want, got = golden[key], current[key]
        if isinstance(want, float) and isinstance(got, float):
            if not math.isclose(want, got, rel_tol=rel_tol, abs_tol=0.0):
                problems.append(f"{key}: golden {want!r} != current {got!r}")
        elif want != got:
            problems.append(f"{key}: golden {want!r} != current {got!r}")
    return problems


def check(
    path: Path = GOLDEN_PATH,
    telemetry: bool = False,
    dump_windows_to: Path | str | None = None,
) -> list[str]:
    """Compare a fresh run against the golden; returns the drift list."""
    problems, _ = check_with_runtime(
        path, telemetry=telemetry, dump_windows_to=dump_windows_to
    )
    return problems


def check_with_runtime(
    path: Path = GOLDEN_PATH,
    telemetry: bool = False,
    dump_windows_to: Path | str | None = None,
) -> tuple[list[str], dict[str, Any]]:
    """:func:`check` plus the run's ``runtime.*`` keys for reporting."""
    if not path.exists():
        flag = " --telemetry" if telemetry else ""
        return (
            [
                f"golden file {path} missing; run "
                f"`python -m repro smoke --update{flag}`"
            ],
            {},
        )
    golden = json.loads(path.read_text())
    current, runtime = timed_run(
        telemetry=telemetry, dump_windows_to=dump_windows_to
    )
    return compare_metrics(golden, current), runtime


def update(
    path: Path = GOLDEN_PATH,
    telemetry: bool = False,
    dump_windows_to: Path | str | None = None,
) -> dict[str, Any]:
    """Regenerate the golden file from a fresh run.

    The written file includes the ``runtime.*`` trajectory keys; the
    compared metrics stay exactly :func:`compute_smoke_metrics` (or its
    telemetry variant).
    """
    metrics, runtime = timed_run(
        telemetry=telemetry, dump_windows_to=dump_windows_to
    )
    metrics = {**metrics, **runtime}
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(metrics, indent=2, sort_keys=True) + "\n")
    return metrics
