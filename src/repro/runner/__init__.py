"""Parallel experiment runner.

The evaluation sweeps (Figures 10, 17, 18, 20) are embarrassingly
parallel: every ``(topology, kind, num_tasks, seed)`` cell builds its
own topology, router and event engine, so cells share no state.  This
package fans independent cells out over a process pool while keeping
results **bit-identical** to a serial run — see :func:`run_cells`.

Usage::

    from repro.runner import ExperimentSpec, run_cells

    cells = [ExperimentSpec(run_task_experiment, args=("jellyfish", "scatter", n),
                            kwargs={"seed": s}) for n in counts for s in seeds]
    results = run_cells(cells, workers=8)   # same order as ``cells``
"""

from repro.runner.pool import (
    SHORT_SWEEP_CELLS_PER_WORKER,
    ExperimentSpec,
    PinnedPool,
    RunnerError,
    default_workers,
    run_cells,
)

__all__ = [
    "SHORT_SWEEP_CELLS_PER_WORKER",
    "ExperimentSpec",
    "PinnedPool",
    "RunnerError",
    "default_workers",
    "run_cells",
]
