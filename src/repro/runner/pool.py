"""Process-pool fan-out for independent experiment cells.

Determinism contract
--------------------
``run_cells`` returns results **in the order the cells were given**, and
every cell function must be a pure function of its spec (build its own
topology, router, engine and RNGs from the spec's arguments).  Under
those rules the parallel schedule cannot influence any result, so
``run_cells(cells, workers=n)`` is bit-identical to
``run_cells(cells, workers=1)`` for every ``n`` — verified by
``tests/runner/test_parallel.py``.

Workers are separate processes (``concurrent.futures``), so cell
functions and their arguments/results must be picklable: module-level
functions with plain-data arguments.  ``workers=1`` runs everything in
the calling process with no pool (and no pickling), which is also the
fallback when only one cell is given.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro import obs as _obs
from repro.cache import CacheConfig, artifact_cache, configure


class RunnerError(ValueError):
    """Raised for invalid runner configurations."""


@dataclass(frozen=True)
class ExperimentSpec:
    """One independent experiment cell: ``fn(*args, **kwargs)``.

    ``fn`` must be picklable (a module-level callable) and pure —
    everything the cell computes must derive from ``args``/``kwargs``.
    ``label`` is carried along for progress reporting and error
    messages; it does not affect execution.
    """

    fn: Callable[..., Any]
    args: tuple = ()
    kwargs: dict[str, Any] = field(default_factory=dict)
    label: str = ""

    def run(self) -> Any:
        return self.fn(*self.args, **self.kwargs)


def default_workers() -> int:
    """Worker count used when callers pass ``workers=None``.

    The ``REPRO_WORKERS`` environment variable wins when set (so CI and
    benchmarks can pin parallelism); otherwise all visible CPUs.
    """
    env = os.environ.get("REPRO_WORKERS")
    if env is not None:
        try:
            workers = int(env)
        except ValueError:
            raise RunnerError(f"REPRO_WORKERS must be an integer, got {env!r}")
        if workers < 1:
            raise RunnerError(f"REPRO_WORKERS must be at least 1, got {workers}")
        return workers
    return os.cpu_count() or 1


#: Below this many cells *per worker* a sweep counts as short: IPC and
#: per-worker cache warm-up dominate, so cells are dealt out as one
#: contiguous chunk per worker instead of four.
SHORT_SWEEP_CELLS_PER_WORKER = 8


def run_cells(
    cells: Sequence[ExperimentSpec],
    workers: int | None = 1,
    chunksize: int | None = None,
    warmup: Callable[[], Any] | None = None,
) -> list[Any]:
    """Run every cell and return their results in input order.

    ``workers=1`` (the default) runs serially in-process;
    ``workers=None`` uses :func:`default_workers`; anything larger fans
    out over a process pool.  Results are ordered by input position
    regardless of completion order, so output is bit-identical to the
    serial run (see the module docstring for the purity contract).

    ``chunksize`` batches cells per pickling round-trip so large sweeps
    do not pay per-cell IPC overhead.  ``None`` picks roughly four
    chunks per worker, except for short sweeps (fewer than
    ``SHORT_SWEEP_CELLS_PER_WORKER`` cells per worker), which get one
    contiguous chunk per worker: callers lay out grids major-axis first
    (topology, then parameters), so contiguous chunks keep cells that
    share expensive construction on the same worker's in-process caches,
    and a short sweep pays one pickling round-trip per worker instead of
    four.  The trade is load balancing, which only pays off when there
    are enough cells to rebalance — exactly what a short sweep lacks.
    Batching only changes scheduling granularity — ``map`` still yields
    results in submission order.

    ``warmup`` (picklable, zero-arg) runs once in each worker as it
    starts, before any cell: use it to pre-build state every cell needs
    (imports, topology construction) so spin-up cost lands in the pool
    initializer instead of inflating the first cell of every worker.
    Its return value is discarded; it must not affect cell results.

    Workers inherit the parent's cache configuration through the pool
    initializer, so with ``REPRO_CACHE_DIR`` set every worker reads and
    writes the same on-disk artifact store (cells sharing a topology or
    channel plan stop duplicating work).

    A worker exception cancels the remaining cells and re-raises in the
    caller.
    """
    if workers is not None and workers < 1:
        raise RunnerError(f"workers must be at least 1, got {workers}")
    if chunksize is not None and chunksize < 1:
        raise RunnerError(f"chunksize must be at least 1, got {chunksize}")
    cells = list(cells)
    if workers is None:
        workers = default_workers()
    if workers == 1 or len(cells) <= 1:
        if warmup is not None:
            warmup()
        if _obs.registry() is None:
            return [cell.run() for cell in cells]
        results = []
        for cell in cells:
            results.append(_observed_run(cell))
        return results
    workers = min(workers, len(cells))
    if chunksize is None:
        if len(cells) < workers * SHORT_SWEEP_CELLS_PER_WORKER:
            chunksize = -(-len(cells) // workers)  # ceil: one chunk/worker
        else:
            chunksize = max(1, len(cells) // (workers * 4))
    obs_armed = _obs.registry() is not None
    with ProcessPoolExecutor(
        max_workers=workers,
        initializer=_worker_init,
        initargs=(artifact_cache().config, warmup, obs_armed),
    ) as pool:
        # ``map`` yields results in submission order — completion order
        # never leaks into the output.
        if not obs_armed:
            return list(pool.map(_run_spec, cells, chunksize=chunksize))
        # Armed: workers bundle (result, spans, metrics snapshot); the
        # parent re-ingests spans (per-worker pids intact) and merges
        # the registries — snapshot merge is commutative, and results
        # stay in submission order exactly as above.
        registry = _obs.registry()
        tracer = _obs.tracer()
        results = []
        for result, spans, snapshot in pool.map(
            _run_spec_observed, cells, chunksize=chunksize
        ):
            if tracer is not None:
                tracer.ingest(spans)
            if snapshot:
                registry.merge(snapshot)
            results.append(result)
        return results


def _worker_init(
    cache_config: CacheConfig,
    warmup: Callable[[], Any] | None = None,
    obs_armed: bool = False,
) -> None:
    """Adopt the parent's cache settings (shared disk store) in a worker."""
    configure(cache_config)
    if obs_armed:
        # The parent is observing: arm this worker so sweep-cell spans
        # and metrics exist to ship home with each result.
        _obs.arm()
    if warmup is not None:
        warmup()


def _observed_run(spec: ExperimentSpec) -> Any:
    """Run one cell under an armed registry, recording a sweep.cell span."""
    registry = _obs.registry()
    start = time.perf_counter()
    result = spec.run()
    duration = time.perf_counter() - start
    label = spec.label or getattr(spec.fn, "__name__", "cell")
    registry.incr("sweep.cells")
    registry.observe("sweep.cell_seconds", duration)
    tracer = _obs.tracer()
    if tracer is not None:
        tracer.add("sweep.cell", start, duration, label=label)
    return result


def _run_spec_observed(spec: ExperimentSpec) -> tuple:
    """Worker-side twin of :func:`_observed_run`: runs the cell, then
    drains this worker's spans and registry for the parent to merge."""
    result = _observed_run(spec)
    tracer = _obs.tracer()
    registry = _obs.registry()
    return (
        result,
        tracer.drain() if tracer is not None else [],
        registry.drain() if registry is not None else None,
    )


class PinnedPool:
    """A row of single-worker executors with slot-to-process affinity.

    Work submitted to slot ``i`` always runs in the same OS process, so
    state installed by that slot's initializer — or left behind by
    earlier submissions — persists across calls.  :func:`run_cells`
    deliberately offers no such affinity (a shared pool hands cells to
    whichever worker frees up first), which is exactly wrong for
    stateful shard loops: the conservative-window coordinator in
    :mod:`repro.sim.parallel` must step the *same* live simulation at
    every window barrier.

    Each slot's worker adopts the parent's cache configuration first
    (the same contract as ``run_cells`` workers — with
    ``REPRO_CACHE_DIR`` set, every shard shares the on-disk artifact
    store), then runs ``initializer(*initargs_per_slot[slot])`` once.
    """

    def __init__(
        self,
        slots: int,
        initializer: Callable[..., Any] | None = None,
        initargs_per_slot: Sequence[tuple] | None = None,
    ) -> None:
        if slots < 1:
            raise RunnerError(f"need at least one slot, got {slots}")
        if initargs_per_slot is not None and len(initargs_per_slot) != slots:
            raise RunnerError(
                f"initargs_per_slot has {len(initargs_per_slot)} entries "
                f"for {slots} slots"
            )
        cache_config = artifact_cache().config
        self._pools = [
            ProcessPoolExecutor(
                max_workers=1,
                initializer=_pinned_worker_init,
                initargs=(
                    cache_config,
                    initializer,
                    tuple(initargs_per_slot[slot]) if initargs_per_slot else (),
                ),
            )
            for slot in range(slots)
        ]

    @property
    def slots(self) -> int:
        return len(self._pools)

    def submit(self, slot: int, fn: Callable[..., Any], *args: Any):
        """Submit ``fn(*args)`` to slot ``slot``'s pinned worker."""
        return self._pools[slot].submit(fn, *args)

    def broadcast(self, fn: Callable[..., Any], *args: Any) -> list:
        """Submit the same call to every slot; returns one future per slot."""
        return [pool.submit(fn, *args) for pool in self._pools]

    def shutdown(self, wait: bool = True) -> None:
        for pool in self._pools:
            pool.shutdown(wait=wait)

    def __enter__(self) -> "PinnedPool":
        return self

    def __exit__(self, *exc: object) -> bool:
        self.shutdown()
        return False


def _pinned_worker_init(
    cache_config: CacheConfig,
    initializer: Callable[..., Any] | None,
    initargs: tuple,
) -> None:
    """Cache adoption + per-slot initializer for :class:`PinnedPool` workers."""
    configure(cache_config)
    if initializer is not None:
        initializer(*initargs)


def _run_spec(spec: ExperimentSpec) -> Any:
    """Module-level trampoline so specs pickle cleanly into workers."""
    return spec.run()
