"""Command-line interface: ``python -m repro <command>``.

The main entry points:

* ``plan`` — wavelength assignment for a ring (greedy or exact ILP),
  optionally as a factory-shippable JSON document;
* ``design`` — the Table 8 cost configurator;
* ``topology`` — build a named topology and print its Table 9 metrics;
* ``experiment`` — regenerate an evaluation figure (10, 17, 18 or 20);
* ``trace`` / ``report`` / ``trajectory`` — the observability trio:
  a Chrome-trace profile of a representative workload, the run
  manifest renderer, and the benchmark perf-trajectory sparkline.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.core import channels as _channels
from repro.core import optical as _optical
from repro.core.serialization import plan_to_json
from repro.cost import format_table8, table8
from repro.units import usec


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Quartz (SIGCOMM 2014) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    plan = sub.add_parser("plan", help="wavelength assignment for a Quartz ring")
    plan.add_argument("--ring-size", type=int, required=True, metavar="N")
    plan.add_argument(
        "--method", choices=("greedy", "ilp"), default="greedy",
        help="greedy heuristic (default) or exact ILP (small rings)",
    )
    plan.add_argument(
        "--json", action="store_true", help="emit the plan as JSON instead of a summary"
    )

    sub.add_parser("design", help="Table 8 cost/latency configurator")

    topo = sub.add_parser("topology", help="build a topology and print its metrics")
    topo.add_argument(
        "--name",
        choices=sorted(_TOPOLOGY_CHOICES),
        required=True,
    )

    exp = sub.add_parser("experiment", help="regenerate an evaluation figure")
    exp.add_argument(
        "--figure",
        choices=(
            "10", "17", "18", "20", "fault-recovery", "queue-diagnosis",
            "hybrid-scale",
        ),
        required=True,
        help="paper figure number, the live fault-recovery experiment, "
        "the telemetry queue-diagnosis sweep, or the hybrid packet/flow "
        "engine scale scenario",
    )
    exp.add_argument(
        "--kind", choices=("scatter", "gather", "scatter_gather"),
        default="scatter", help="task kind for figures 17/18",
    )
    exp.add_argument(
        "--router", choices=("ecmp", "vlb"), default="ecmp",
        help="routing engine for the fault-recovery and queue-diagnosis "
        "experiments",
    )
    exp.add_argument(
        "--seed", type=int, default=0,
        help="seed for the fault-recovery and queue-diagnosis experiments",
    )
    exp.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="processes to fan the sweep over (0 = all CPUs / REPRO_WORKERS); "
        "results are identical for any worker count",
    )
    exp.add_argument(
        "--background-flows", type=int, default=2000, metavar="N",
        help="background flow count for the hybrid-scale scenario",
    )
    exp.add_argument(
        "--manifest", type=str, default=None, metavar="PATH",
        help="write a run-provenance manifest (repro.obs.report) to PATH "
        "after the experiment completes",
    )

    scale = sub.add_parser(
        "scaling", help="largest element per switch port count (Section 8)"
    )
    scale.add_argument(
        "--ports", type=int, nargs="*", default=[16, 32, 64, 128, 256],
        help="switch port counts to sweep",
    )
    scale.add_argument(
        "--method", choices=("estimate", "greedy"), default="estimate",
        help="wavelength count: link-load estimate (default) or the exact "
        "greedy assignment (slow at large sizes, memoized via the cache)",
    )

    cache = sub.add_parser(
        "cache", help="inspect or clear the content-addressed artifact cache"
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    cache_stats = cache_sub.add_parser(
        "stats", help="configuration, hit/miss counters, and disk usage"
    )
    cache_stats.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    cache_sub.add_parser(
        "clear", help="drop every cached artifact (memory and disk)"
    )

    expand = sub.add_parser(
        "expand", help="incremental ring expansion plan (Section 8)"
    )
    expand.add_argument("--from-size", type=int, required=True, metavar="M")
    expand.add_argument("--to-size", type=int, required=True, metavar="N")

    smoke = sub.add_parser(
        "smoke", help="benchmark smoke: seeded cells vs golden metrics"
    )
    mode = smoke.add_mutually_exclusive_group()
    mode.add_argument(
        "--check", action="store_true",
        help="fail if metrics drifted from the golden (default)",
    )
    mode.add_argument(
        "--update", action="store_true",
        help="regenerate the golden file from a fresh run",
    )
    smoke.add_argument(
        "--golden", type=str, default=None, metavar="PATH",
        help="golden JSON location (default: tests/golden/benchmark_smoke.json, "
        "or the _telemetry variant with --telemetry)",
    )
    smoke.add_argument(
        "--telemetry", action="store_true",
        help="run the telemetry-enabled smoke variant (windowed monitors + "
        "INT stamping armed) against its own golden file",
    )
    smoke.add_argument(
        "--dump-windows", type=str, default=None, metavar="PATH",
        help="with --telemetry: also write the per-window telemetry JSON "
        "dump to PATH (CI uploads it as a workflow artifact)",
    )
    smoke.add_argument(
        "--manifest", type=str, default=None, metavar="PATH",
        help="write a run-provenance manifest (repro.obs.report) to PATH "
        "after the smoke run",
    )

    trace = sub.add_parser(
        "trace", help="profile a representative workload into Chrome trace JSON"
    )
    trace.add_argument(
        "--out", type=str, default="repro-trace.json", metavar="PATH",
        help="trace output path (open in Perfetto / chrome://tracing)",
    )
    trace.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="sweep worker processes for the per-worker span lanes",
    )

    report = sub.add_parser(
        "report", help="render (or freshly build) a run-provenance manifest"
    )
    report.add_argument(
        "path", nargs="?", default=None,
        help="manifest JSON to validate and render; omitted = build one "
        "from the current process state",
    )
    report.add_argument(
        "--json", action="store_true", help="emit the manifest as JSON"
    )

    traj = sub.add_parser(
        "trajectory", help="sparkline of the benchmark perf trajectory"
    )
    traj.add_argument(
        "--file", type=str, default=None, metavar="PATH",
        help="trajectory JSONL (default: benchmarks/results/BENCH_trajectory.jsonl)",
    )
    traj.add_argument(
        "--metric", type=str, default="engine_events_per_sec_batched",
        help="which metric column to plot",
    )
    return parser


_TOPOLOGY_CHOICES = {
    "two-tier-tree": lambda: _topology_module().two_tier_tree(16, 2),
    "three-tier-tree": lambda: _topology_module().three_tier_tree(),
    "fat-tree": lambda: _topology_module().fat_tree(4),
    "folded-clos": lambda: _topology_module().folded_clos(32, 16, 2, 1),
    "bcube": lambda: _topology_module().bcube(8, 1),
    "dcell": lambda: _topology_module().dcell(4, 1),
    "jellyfish": lambda: _topology_module().jellyfish(),
    "mesh": lambda: _topology_module().full_mesh(33, 1),
    "quartz-ring": lambda: _topology_module().quartz_ring(33, 2),
    "quartz-in-core": lambda: _topology_module().quartz_in_core(),
    "quartz-in-edge": lambda: _topology_module().quartz_in_edge(),
    "quartz-in-edge-and-core": lambda: _topology_module().quartz_in_edge_and_core(),
    "quartz-in-jellyfish": lambda: _topology_module().quartz_in_jellyfish(),
}


def _topology_module():
    import repro.topology as T

    return T


def _cmd_plan(args: argparse.Namespace) -> int:
    if args.ring_size < 2:
        print("ring size must be at least 2", file=sys.stderr)
        return 2
    if args.method == "ilp" and args.ring_size > 12:
        print(
            "the exact ILP is practical only for small rings (≤ 12); "
            "use --method greedy",
            file=sys.stderr,
        )
        return 2
    if args.method == "greedy":
        plan = _channels.greedy_assignment(args.ring_size)
    else:
        plan = _channels.ilp_assignment(args.ring_size)
    if args.json:
        print(plan_to_json(plan, indent=2))
        return 0
    rings = _channels.rings_needed(args.ring_size)
    amps = _optical.amplifiers_required(args.ring_size) * rings
    print(f"ring size:            {args.ring_size}")
    print(f"wavelengths ({args.method}):  {plan.num_channels}")
    print(f"lower bound:          {_channels.lower_bound(args.ring_size)}")
    print(f"physical fibre rings: {rings}")
    print(f"amplifiers:           {amps}")
    feasible = plan.num_channels <= _channels.FIBER_CHANNEL_LIMIT
    print(f"fits one fibre (160 ch): {'yes' if feasible else 'NO'}")
    return 0


def _cmd_design(_args: argparse.Namespace) -> int:
    print(format_table8(table8()))
    return 0


def _cmd_topology(args: argparse.Namespace) -> int:
    import repro.topology as T

    topo = _TOPOLOGY_CHOICES[args.name]()
    summary = T.summarize(topo, hop_sample=32)
    from repro.analysis.latency import table9_latency
    from repro.topology.metrics import worst_case_hop_profile

    profile = worst_case_hop_profile(topo, sample=32)
    print(topo.summary())
    print(f"worst-case switch hops:  {summary.switch_hops}")
    print(f"server relay hops:       {summary.server_relay_hops}")
    print(f"no-congestion latency:   {usec(table9_latency(profile)):.1f} us")
    print(f"wiring complexity:       {summary.wiring_complexity} cross-rack links")
    print(f"path diversity:          {summary.path_diversity}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    import repro.experiments as E
    from repro.runner import RunnerError

    if args.workers < 0:
        print("--workers must be non-negative", file=sys.stderr)
        return 2
    workers = args.workers if args.workers > 0 else None  # None = auto
    try:
        status = _run_experiment(args, E, workers)
    except RunnerError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if status == 0 and args.manifest:
        _write_manifest(
            args.manifest,
            seeds=[args.seed],
            extra={"command": "experiment", "figure": args.figure},
        )
    return status


def _run_experiment(args: argparse.Namespace, E, workers: int | None) -> int:
    if args.figure == "fault-recovery":
        results = E.fault_recovery_sweep(
            seeds=(args.seed,), workers=workers, router=args.router
        )
        print(E.format_fault_recovery(results))
    elif args.figure == "queue-diagnosis":
        results = E.queue_diagnosis_sweep(
            seeds=(args.seed,), workers=workers, router=args.router
        )
        print(E.format_queue_diagnosis(results))
    elif args.figure == "hybrid-scale":
        results = E.hybrid_scale_experiment(
            n_background=args.background_flows, seed=args.seed, workers=workers
        )
        print(E.format_hybrid_scale(results))
    elif args.figure == "10":
        print(E.format_figure10(E.figure10_sweep(workers=workers)))
    elif args.figure == "20":
        print(E.format_figure20(E.figure20_sweep(workers=workers)))
    elif args.figure == "17":
        series = E.figure17_sweep(
            kind=args.kind, task_counts=[1, 2, 4], workers=workers
        )
        print(E.format_sweep(series, f"Figure 17 ({args.kind}), us per packet"))
    else:
        series = E.figure18_sweep(
            kind=args.kind, task_counts=[1, 2, 4], workers=workers
        )
        print(E.format_sweep(series, f"Figure 18 ({args.kind}), us per packet"))
    return 0


def _cmd_scaling(args: argparse.Namespace) -> int:
    from repro.analysis.scaling import format_scaling_table, scaling_table

    try:
        rows = scaling_table(tuple(args.ports), method=args.method)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(format_scaling_table(rows))
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    import json

    from repro.cache import artifact_cache, describe

    cache = artifact_cache()
    if args.cache_command == "clear":
        removed = cache.clear(disk=True)
        where = cache.config.directory or "(memory only)"
        print(f"cache cleared: {removed} disk entries removed from {where}")
        return 0
    info: dict = describe()
    if args.json:
        print(json.dumps(info, indent=2, sort_keys=True))
        return 0
    width = max(len(k) for k in info)
    for key, value in info.items():
        print(f"{key:<{width}}  {value}")
    return 0


def _cmd_expand(args: argparse.Namespace) -> int:
    from repro.core.expansion import ExpansionError, expand_plan

    if args.from_size < 2:
        print("initial ring needs at least 2 switches", file=sys.stderr)
        return 2
    try:
        result = expand_plan(
            _channels.greedy_assignment(args.from_size), args.to_size
        )
    except ExpansionError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(f"expansion:     {args.from_size} → {args.to_size} switches")
    print(f"wavelengths:   {result.plan.num_channels}")
    print(f"preserved:     {len(result.preserved)} channels")
    print(f"re-tuned:      {len(result.retuned)} channels "
          f"({result.retune_fraction:.0%} of deployed)")
    print(f"new channels:  {len(result.added)}")
    feasible = result.plan.num_channels <= _channels.FIBER_CHANNEL_LIMIT
    print(f"fits one fibre (160 ch): {'yes' if feasible else 'NO — re-plan required'}")
    return 0


def _cmd_smoke(args: argparse.Namespace) -> int:
    from repro import smoke as S

    if args.dump_windows and not args.telemetry:
        print("--dump-windows requires --telemetry", file=sys.stderr)
        return 2
    default = S.GOLDEN_TELEMETRY_PATH if args.telemetry else S.GOLDEN_PATH
    path = Path(args.golden) if args.golden else default
    if args.update:
        metrics = S.update(
            path, telemetry=args.telemetry, dump_windows_to=args.dump_windows
        )
        print(f"golden updated: {path}")
        for key in sorted(metrics):
            print(f"  {key} = {metrics[key]!r}")
        _print_smoke_runtime(metrics["runtime.wall_clock_s"])
        _smoke_manifest(args, metrics)
        return 0
    problems, runtime = S.check_with_runtime(
        path, telemetry=args.telemetry, dump_windows_to=args.dump_windows
    )
    _print_smoke_runtime(runtime.get("runtime.wall_clock_s", 0.0))
    _smoke_manifest(args, runtime)
    if problems:
        print("benchmark smoke drift detected:", file=sys.stderr)
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        print(
            "intentional change?  re-run `python -m repro smoke --update` "
            "and commit the new golden",
            file=sys.stderr,
        )
        return 1
    print(f"benchmark smoke OK ({path.name})")
    return 0


def _smoke_manifest(args: argparse.Namespace, runtime: dict) -> None:
    if not args.manifest:
        return
    extra = {
        "command": "smoke",
        "telemetry": bool(args.telemetry),
        **{k: v for k, v in runtime.items() if k.startswith("runtime.")},
    }
    _write_manifest(args.manifest, seeds=[0], extra=extra)


def _write_manifest(path: str, seeds=None, extra=None) -> None:
    from repro.obs import report as _report

    doc = _report.write_manifest(path, seeds=seeds, extra=extra)
    print(f"run manifest written: {path} ({doc['schema']})")


def _print_smoke_runtime(elapsed_s: float) -> None:
    """Perf-trajectory line: wall-clock plus artifact-cache hit rate.

    Informational only — never part of the golden comparison.
    """
    from repro.cache import artifact_cache

    stats = artifact_cache().stats
    print(
        f"wall-clock {elapsed_s:.2f}s, cache hit-rate {stats.hit_rate:.1%} "
        f"({stats.hits}/{stats.lookups} lookups)"
    )


def _cmd_trace(args: argparse.Namespace) -> int:
    import json
    import os

    from repro import obs
    from repro.obs.tracing import export_chrome

    if args.workers < 1:
        print("--workers must be at least 1", file=sys.stderr)
        return 2
    was_armed = obs.armed()
    obs.arm()
    # The export should contain exactly the profile below — discard
    # whatever an already-armed process accumulated beforehand (a long
    # session can fill the bounded buffer, which would drop the
    # profile's own spans).
    obs.tracer().drain()
    try:
        _trace_profile(args.workers)
        spans = obs.tracer().drain()
    finally:
        if not was_armed:
            obs.disarm()
    doc = export_chrome(spans, process_labels={os.getpid(): "coordinator"})
    with open(args.out, "w") as fh:
        json.dump(doc, fh)
    names = sorted({span.name for span in spans})
    print(f"trace written: {args.out} ({len(spans)} spans)")
    print(f"span kinds: {', '.join(names)}")
    print("open it at https://ui.perfetto.dev or chrome://tracing")
    return 0


def _trace_profile(workers: int) -> None:
    """A representative workload touching every traced layer.

    Three phases: a small sweep fanned over ``workers`` processes
    (per-worker ``sweep.cell`` lanes), one hybrid packet/flow cell
    (``hybrid.epoch`` spans), and one inline conservative-window
    parallel run (``parallel.window`` / ``parallel.barrier`` spans).
    Engine runs inside all three contribute ``engine.run`` spans.
    """
    import os

    from repro.experiments import run_hybrid_scale_cell, run_task_experiment
    from repro.runner import ExperimentSpec, run_cells
    from repro.sim.knobs import HYBRID_ENV
    from repro.sim.parallel import ParallelScenario, SourceSpec, run_parallel

    cells = [
        ExperimentSpec(
            run_task_experiment,
            ("quartz in edge and core", "scatter", 1),
            {"fan": 4, "duration": 0.001, "seed": seed},
            label=f"fig17-seed{seed}",
        )
        for seed in range(max(2, workers))
    ]
    run_cells(cells, workers=workers)

    saved_hybrid = os.environ.pop(HYBRID_ENV, None)
    try:
        run_hybrid_scale_cell(
            fabric="quartz-ring-small", mode="hybrid", n_background=10,
            fg_fan=2, duration=0.001, seed=0,
        )
    finally:
        if saved_hybrid is not None:
            os.environ[HYBRID_ENV] = saved_hybrid

    scenario = ParallelScenario(
        fabric="quartz-ring",
        fabric_args=(6, 1),
        sources=tuple(
            SourceSpec(
                src=f"h{rack}.0", dst=f"h{(rack + 2) % 6}.0",
                rate_pps=50_000.0, flow_id=rack, seed=rack,
            )
            for rack in range(6)
        ),
        duration=5e-4,
    )
    run_parallel(scenario, num_shards=2, mode="inline", parallel=True)


def _cmd_report(args: argparse.Namespace) -> int:
    import json

    from repro.obs import report as R

    if args.path is not None:
        try:
            doc = json.loads(Path(args.path).read_text())
        except (OSError, ValueError) as exc:
            print(f"cannot read manifest {args.path}: {exc}", file=sys.stderr)
            return 2
        problems = R.validate_manifest(doc)
        if problems:
            print(f"invalid manifest {args.path}:", file=sys.stderr)
            for problem in problems:
                print(f"  {problem}", file=sys.stderr)
            return 1
    else:
        doc = R.build_manifest()
    if args.json:
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        print(R.render_manifest(doc))
    return 0


def _cmd_trajectory(args: argparse.Namespace) -> int:
    import json

    from repro.textplot import ChartError, sparkline

    default = (
        Path(__file__).resolve().parents[2]
        / "benchmarks" / "results" / "BENCH_trajectory.jsonl"
    )
    path = Path(args.file) if args.file else default
    if not path.exists():
        print(
            f"no trajectory file at {path}; run `make bench-trajectory`",
            file=sys.stderr,
        )
        return 2
    rows = [
        json.loads(line)
        for line in path.read_text().splitlines()
        if line.strip()
    ]
    points = [
        (row.get("commit", "?")[:7], float(row["metrics"][args.metric]))
        for row in rows
        if isinstance(row.get("metrics", {}).get(args.metric), (int, float))
    ]
    if not points:
        known = sorted({k for row in rows for k in row.get("metrics", {})})
        print(
            f"metric {args.metric!r} not found in {path.name}; "
            f"known keys: {', '.join(known) or '(none)'}",
            file=sys.stderr,
        )
        return 2
    values = [value for _, value in points]
    try:
        chart = sparkline(values)
    except ChartError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    first, last = values[0], values[-1]
    change = (last / first - 1.0) if first else 0.0
    print(f"{args.metric} over {len(values)} runs")
    print(f"  {chart}")
    print(
        f"  first {first:,.0f} ({points[0][0]})  "
        f"last {last:,.0f} ({points[-1][0]})  change {change:+.1%}"
    )
    return 0


_COMMANDS = {
    "plan": _cmd_plan,
    "design": _cmd_design,
    "topology": _cmd_topology,
    "experiment": _cmd_experiment,
    "scaling": _cmd_scaling,
    "cache": _cmd_cache,
    "expand": _cmd_expand,
    "smoke": _cmd_smoke,
    "trace": _cmd_trace,
    "report": _cmd_report,
    "trajectory": _cmd_trajectory,
}


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
