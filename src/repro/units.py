"""Unit constants and small helpers used throughout the library.

All quantities in the library are plain floats in SI base units:

* time in **seconds**
* data rates in **bits per second**
* data sizes in **bytes** (packet and flow sizes follow networking
  convention), converted to bits only where serialization is computed
* optical power in **dBm**, losses and gains in **dB**

The constants below exist so that call sites read like the paper
(``40 * GBPS``, ``6 * MICROSECONDS``) rather than as raw exponents.
"""

from __future__ import annotations

# --- time ------------------------------------------------------------------
SECONDS = 1.0
MILLISECONDS = 1e-3
MICROSECONDS = 1e-6
NANOSECONDS = 1e-9

# --- data rate -------------------------------------------------------------
BPS = 1.0
KBPS = 1e3
MBPS = 1e6
GBPS = 1e9

# --- data size -------------------------------------------------------------
BYTES = 1
KILOBYTES = 1000
BITS_PER_BYTE = 8


def serialization_delay(size_bytes: float, rate_bps: float) -> float:
    """Time to clock ``size_bytes`` onto a link of ``rate_bps``.

    >>> serialization_delay(400, 10 * GBPS)  # 400 B at 10 Gbps
    3.2e-07
    """
    if rate_bps <= 0:
        raise ValueError(f"link rate must be positive, got {rate_bps}")
    return (size_bytes * BITS_PER_BYTE) / rate_bps


def mbps(rate_bps: float) -> float:
    """Express a bps rate in Mbps (for reporting)."""
    return rate_bps / MBPS


def usec(seconds: float) -> float:
    """Express a time in microseconds (for reporting)."""
    return seconds / MICROSECONDS
