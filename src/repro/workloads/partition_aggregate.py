"""Partition/aggregate query workload — the paper's motivating pattern.

"In realtime or interactive applications such as search engines …
a wide-area request may trigger hundreds of message exchanges inside a
datacenter" (Section 1, citing Facebook's 392 backend RPCs per HTTP
request).  The canonical structure is partition/aggregate: a front-end
fans a query out to aggregators, each aggregator fans out to its
workers, and responses flow back up; the query completes when the last
response lands.

:class:`PartitionAggregateQuery` runs this closed-loop on the packet
simulator and records per-query completion times — the tail of which is
the latency-sensitive quantity DCN designs are judged on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.network import Network, Packet


class QueryError(ValueError):
    """Raised for malformed query trees."""


@dataclass(frozen=True)
class QueryTree:
    """The fan-out structure: front-end → aggregators → workers."""

    frontend: str
    workers_by_aggregator: dict[str, tuple[str, ...]]

    def __post_init__(self) -> None:
        if not self.workers_by_aggregator:
            raise QueryError("need at least one aggregator")
        participants = [self.frontend]
        for aggregator, workers in self.workers_by_aggregator.items():
            if not workers:
                raise QueryError(f"aggregator {aggregator!r} has no workers")
            participants.append(aggregator)
            participants.extend(workers)
        if len(participants) != len(set(participants)):
            raise QueryError("participants must be distinct")

    @property
    def num_exchanges(self) -> int:
        """Messages per query: 2 per edge of the tree."""
        edges = len(self.workers_by_aggregator) + sum(
            len(w) for w in self.workers_by_aggregator.values()
        )
        return 2 * edges


@dataclass
class PartitionAggregateQuery:
    """Closed-loop partition/aggregate queries over a packet network.

    Each query: the front-end sends a request to every aggregator; an
    aggregator forwards sub-requests to its workers; workers respond;
    when an aggregator has all worker responses it replies to the
    front-end; the query completes when every aggregator has replied.
    Query completion times are recorded in ``completion_times`` and in
    the network stats under ``group``.
    """

    network: Network
    tree: QueryTree
    num_queries: int = 100
    request_bytes: float = 300
    response_bytes: float = 800
    group: str = "query"
    completion_times: list[float] = field(default_factory=list)
    _pending_aggregators: int = 0
    _pending_workers: dict[str, int] = field(default_factory=dict)
    _query_started: float = 0.0

    def __post_init__(self) -> None:
        if self.num_queries < 1:
            raise QueryError("need at least one query")

    def start(self, delay: float = 0.0) -> None:
        self.network.engine.schedule(delay, self._issue_query)

    @property
    def completed(self) -> int:
        return len(self.completion_times)

    # -- query state machine -----------------------------------------------------

    def _issue_query(self) -> None:
        self._query_started = self.network.engine.now
        self._pending_aggregators = len(self.tree.workers_by_aggregator)
        for aggregator in self.tree.workers_by_aggregator:
            self.network.send(
                self.tree.frontend,
                aggregator,
                self.request_bytes,
                on_delivered=self._aggregator_got_request,
            )

    def _aggregator_got_request(self, packet: Packet, _when: float) -> None:
        aggregator = packet.dst
        workers = self.tree.workers_by_aggregator[aggregator]
        self._pending_workers[aggregator] = len(workers)
        for worker in workers:
            self.network.send(
                aggregator,
                worker,
                self.request_bytes,
                on_delivered=self._worker_got_request,
            )

    def _worker_got_request(self, packet: Packet, _when: float) -> None:
        self.network.send(
            packet.dst,
            packet.src,
            self.response_bytes,
            on_delivered=self._aggregator_got_response,
        )

    def _aggregator_got_response(self, packet: Packet, _when: float) -> None:
        aggregator = packet.dst
        self._pending_workers[aggregator] -= 1
        if self._pending_workers[aggregator] == 0:
            self.network.send(
                aggregator,
                self.tree.frontend,
                self.response_bytes,
                on_delivered=self._frontend_got_response,
            )

    def _frontend_got_response(self, _packet: Packet, when: float) -> None:
        self._pending_aggregators -= 1
        if self._pending_aggregators == 0:
            elapsed = when - self._query_started
            self.completion_times.append(elapsed)
            self.network.stats.record(elapsed, group=self.group)
            if self.completed < self.num_queries:
                self._issue_query()


def spread_query_tree(
    topo,
    aggregators: int = 2,
    workers_per_aggregator: int = 4,
    seed: int = 0,
) -> QueryTree:
    """Place a query tree on distinct servers, spread across racks."""
    import random

    rng = random.Random(seed)
    servers = topo.servers()
    need = 1 + aggregators * (1 + workers_per_aggregator)
    if len(servers) < need:
        raise QueryError(f"need {need} servers, topology has {len(servers)}")
    chosen = rng.sample(servers, need)
    frontend = chosen[0]
    rest = chosen[1:]
    tree: dict[str, tuple[str, ...]] = {}
    for a in range(aggregators):
        base = a * (1 + workers_per_aggregator)
        aggregator = rest[base]
        workers = tuple(rest[base + 1 : base + 1 + workers_per_aggregator])
        tree[aggregator] = workers
    return QueryTree(frontend=frontend, workers_by_aggregator=tree)
