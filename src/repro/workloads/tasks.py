"""Scatter / gather / scatter-gather tasks — paper Section 7.1.

The simulation study measures per-packet latency of three operation
types, "representative of latency sensitive traffic found in social
networks and web search" (and of MPI's scatter/gather collectives):

* **scatter** — one sender streams packets to every receiver;
* **gather** — every sender streams packets to one receiver;
* **scatter/gather** — the sender sends one packet to every receiver,
  each receiver replies, and the next round begins when all replies
  have landed (a closed loop, like a search fan-out).

Tasks place their participants uniformly at random across the network
("global"), or within a window of nearby racks ("localized", Figure 18).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.sim.network import Network, Packet
from repro.sim.sources import DEFAULT_PACKET_BYTES, PoissonSource
from repro.topology.base import Topology


class TaskError(ValueError):
    """Raised for invalid task specifications."""


@dataclass(frozen=True)
class TaskSpec:
    """Participants of one task."""

    kind: str  # "scatter" | "gather" | "scatter_gather"
    hub: str  # the sender (scatter, scatter_gather) or receiver (gather)
    peers: tuple[str, ...]

    def __post_init__(self) -> None:
        if self.kind not in ("scatter", "gather", "scatter_gather"):
            raise TaskError(f"unknown task kind {self.kind!r}")
        if not self.peers:
            raise TaskError("task needs at least one peer")
        if self.hub in self.peers:
            raise TaskError("hub cannot be its own peer")


def random_task(
    topo: Topology,
    kind: str,
    fan: int,
    seed: int = 0,
    rack_window: int | None = None,
    exclude: set[str] | None = None,
) -> TaskSpec:
    """Sample a task's participants.

    Global tasks draw hub and peers uniformly from all servers.
    Localized tasks (``rack_window`` racks) draw everyone from a
    contiguous window of nearby racks, reproducing Figure 18's "servers
    in nearby racks".

    ``exclude`` removes servers already claimed by other tasks — the
    paper's experiments keep each server in at most one flow, so that
    measured congestion comes from the *fabric*, not from oversubscribed
    host NICs.
    """
    rng = random.Random(seed)
    if rack_window is None:
        pool = topo.servers()
    else:
        racks = topo.racks()
        if rack_window > len(racks):
            raise TaskError(f"window of {rack_window} exceeds {len(racks)} racks")
        start = rng.randrange(len(racks) - rack_window + 1)
        window = racks[start : start + rack_window]
        pool = [s for r in window for s in topo.servers_in_rack(r)]
    if exclude:
        pool = [s for s in pool if s not in exclude]
    if len(pool) <= fan:
        raise TaskError(f"need more than {fan} servers in the placement pool")
    chosen = rng.sample(pool, fan + 1)
    return TaskSpec(kind=kind, hub=chosen[0], peers=tuple(chosen[1:]))


class StreamingTask:
    """A scatter or gather task: Poisson streams between hub and peers."""

    def __init__(
        self,
        network: Network,
        spec: TaskSpec,
        per_stream_bandwidth_bps: float,
        size_bytes: float = DEFAULT_PACKET_BYTES,
        group: str = "task",
        seed: int = 0,
        flow_base: int = 0,
        chunk: int | None = None,
    ) -> None:
        if spec.kind not in ("scatter", "gather"):
            raise TaskError(f"StreamingTask cannot run a {spec.kind!r} task")
        self.spec = spec
        self.group = group
        if spec.kind == "scatter":
            pairs = [(spec.hub, peer) for peer in spec.peers]
        else:
            pairs = [(peer, spec.hub) for peer in spec.peers]
        self.sources = [
            PoissonSource.at_bandwidth(
                network,
                src,
                dst,
                per_stream_bandwidth_bps,
                size_bytes=size_bytes,
                group=group,
                flow_id=flow_base + i,
                seed=seed + i,
                chunk=chunk,
            )
            for i, (src, dst) in enumerate(pairs)
        ]

    def start(self, delay: float = 0.0) -> None:
        for source in self.sources:
            source.start(delay)

    def stop(self) -> None:
        for source in self.sources:
            source.stop()

    @property
    def packets_sent(self) -> int:
        return sum(s.packets_sent for s in self.sources)


class ScatterGatherTask:
    """Closed-loop fan-out/fan-in rounds.

    Each round: the hub sends one packet to every peer; a peer replies
    the moment the request lands; the next round starts when every reply
    has arrived.  Every packet's one-way latency is recorded under
    ``group`` (the paper plots average latency per packet).
    """

    def __init__(
        self,
        network: Network,
        spec: TaskSpec,
        rounds: int = 100,
        size_bytes: float = DEFAULT_PACKET_BYTES,
        group: str = "task",
        flow_base: int = 0,
    ) -> None:
        if spec.kind != "scatter_gather":
            raise TaskError(f"ScatterGatherTask cannot run a {spec.kind!r} task")
        if rounds < 1:
            raise TaskError("need at least one round")
        self.network = network
        self.spec = spec
        self.rounds = rounds
        self.size_bytes = size_bytes
        self.group = group
        self.flow_base = flow_base
        self.completed_rounds = 0
        self._pending_replies = 0

    def start(self, delay: float = 0.0) -> None:
        self.network.engine.schedule(delay, self._begin_round)

    def _begin_round(self) -> None:
        self._pending_replies = len(self.spec.peers)
        for i, peer in enumerate(self.spec.peers):
            self.network.send(
                self.spec.hub,
                peer,
                self.size_bytes,
                flow_id=self.flow_base + i,
                group=self.group,
                on_delivered=self._request_landed,
            )

    def _request_landed(self, packet: Packet, _when: float) -> None:
        self.network.send(
            packet.dst,
            packet.src,
            self.size_bytes,
            flow_id=self.flow_base + 10_000,
            group=self.group,
            on_delivered=self._reply_landed,
        )

    def _reply_landed(self, _packet: Packet, _when: float) -> None:
        self._pending_replies -= 1
        if self._pending_replies == 0:
            self.completed_rounds += 1
            if self.completed_rounds < self.rounds:
                self._begin_round()


def build_task(
    network: Network,
    spec: TaskSpec,
    per_stream_bandwidth_bps: float,
    rounds: int = 100,
    size_bytes: float = DEFAULT_PACKET_BYTES,
    group: str = "task",
    seed: int = 0,
    flow_base: int = 0,
) -> StreamingTask | ScatterGatherTask:
    """Construct the right runnable task for ``spec``."""
    if spec.kind == "scatter_gather":
        return ScatterGatherTask(
            network, spec, rounds=rounds, size_bytes=size_bytes,
            group=group, flow_base=flow_base,
        )
    return StreamingTask(
        network,
        spec,
        per_stream_bandwidth_bps,
        size_bytes=size_bytes,
        group=group,
        seed=seed,
        flow_base=flow_base,
    )
