"""Workload generators: traffic matrices, tasks, and the prototype experiment."""

from repro.workloads.crosstraffic import (
    CrossTrafficResult,
    normalized_latency_curve,
    prototype_quartz,
    prototype_tree,
    run_cross_traffic_experiment,
)
from repro.workloads.partition_aggregate import (
    PartitionAggregateQuery,
    QueryError,
    QueryTree,
    spread_query_tree,
)
from repro.workloads.patterns import (
    TrafficMatrix,
    incast,
    pathological_concentration,
    rack_level_shuffle,
    random_permutation,
)
from repro.workloads.traces import (
    SIZE_DISTRIBUTIONS,
    TraceError,
    mean_flow_size,
    sample_flow_size,
    synthetic_flow_trace,
)
from repro.workloads.tasks import (
    ScatterGatherTask,
    StreamingTask,
    TaskError,
    TaskSpec,
    build_task,
    random_task,
)

__all__ = [
    "CrossTrafficResult",
    "PartitionAggregateQuery",
    "QueryError",
    "QueryTree",
    "ScatterGatherTask",
    "StreamingTask",
    "TaskError",
    "TaskSpec",
    "TrafficMatrix",
    "build_task",
    "incast",
    "normalized_latency_curve",
    "pathological_concentration",
    "prototype_quartz",
    "prototype_tree",
    "rack_level_shuffle",
    "random_permutation",
    "random_task",
    "SIZE_DISTRIBUTIONS",
    "TraceError",
    "mean_flow_size",
    "sample_flow_size",
    "spread_query_tree",
    "synthetic_flow_trace",
]
