"""Traffic-matrix generators — the paper's communication patterns.

Section 5.1's three patterns for the bisection-bandwidth study:

* **random permutation** — each server sends to one randomly selected
  server and receives from exactly one other;
* **incast** — each server receives from 10 servers at random locations
  (the MapReduce shuffle stage);
* **rack-level shuffle** — the servers of each rack send to servers in
  several other racks (VM-migration style load balancing).

All generators are seeded and deterministic.
"""

from __future__ import annotations

import random

from repro.topology.base import Topology

#: A traffic matrix: (source server, destination server, demand bps).
TrafficMatrix = list[tuple[str, str, float]]


def random_permutation(
    topo: Topology, demand: float, seed: int = 0
) -> TrafficMatrix:
    """Each server sends to one other server; each receives from one.

    A random derangement of the server list, so no server sends to
    itself.
    """
    servers = topo.servers()
    if len(servers) < 2:
        raise ValueError("need at least two servers")
    rng = random.Random(seed)
    receivers = _derangement(servers, rng)
    return [(s, r, demand) for s, r in zip(servers, receivers)]


def _derangement(items: list[str], rng: random.Random) -> list[str]:
    """A uniformly sampled derangement (retry sampling)."""
    while True:
        shuffled = items[:]
        rng.shuffle(shuffled)
        if all(a != b for a, b in zip(items, shuffled)):
            return shuffled


def incast(
    topo: Topology, demand: float, fan_in: int = 10, seed: int = 0
) -> TrafficMatrix:
    """Each server receives from ``fan_in`` random other servers."""
    servers = topo.servers()
    if len(servers) <= fan_in:
        raise ValueError(f"need more than {fan_in} servers for fan-in {fan_in}")
    rng = random.Random(seed)
    matrix: TrafficMatrix = []
    for receiver in servers:
        candidates = [s for s in servers if s != receiver]
        for sender in rng.sample(candidates, fan_in):
            matrix.append((sender, receiver, demand))
    return matrix


def rack_level_shuffle(
    topo: Topology, demand: float, target_racks: int = 4, seed: int = 0
) -> TrafficMatrix:
    """Each rack's servers send to servers spread over other racks.

    Every server sends ``target_racks`` flows, one to a random server in
    each of ``target_racks`` distinct foreign racks.
    """
    racks = topo.racks()
    if len(racks) <= target_racks:
        raise ValueError(
            f"need more than {target_racks} racks, topology has {len(racks)}"
        )
    rng = random.Random(seed)
    # One linear pass instead of a servers_in_rack scan per draw; the
    # per-rack lists are identical, so the RNG stream (and thus the
    # matrix) is unchanged.
    by_rack = topo.servers_by_rack()
    matrix: TrafficMatrix = []
    for rack in racks:
        foreign = [r for r in racks if r != rack]
        for server in by_rack.get(rack, []):
            for target in rng.sample(foreign, target_racks):
                receiver = rng.choice(by_rack[target])
                matrix.append((server, receiver, demand))
    return matrix


def pathological_concentration(
    topo: Topology,
    demand_total: float,
    src_rack: int = 0,
    dst_rack: int = 1,
    num_flows: int | None = None,
) -> TrafficMatrix:
    """Section 7.2's pathological pattern: many flows from the ports of
    one switch to receivers on another, stressing switch-to-switch
    bandwidth.

    ``demand_total`` is the aggregate offered load, split evenly over
    the rack's server pairs.
    """
    senders = topo.servers_in_rack(src_rack)
    receivers = topo.servers_in_rack(dst_rack)
    if not senders or not receivers:
        raise ValueError(f"racks {src_rack} and {dst_rack} must both have servers")
    count = min(len(senders), len(receivers)) if num_flows is None else num_flows
    per_flow = demand_total / count
    return [
        (senders[i % len(senders)], receivers[i % len(receivers)], per_flow)
        for i in range(count)
    ]
