"""The prototype's cross-traffic experiment — paper Section 6.1 / Figure 14.

The hardware experiment: four 48-port 1 Gbps switches wired either as a
Quartz ring (full mesh via CWDM) or as a two-tier tree (one aggregation
+ three ToR switches).  A "Hello World" RPC runs between two servers on
different ToR switches (S2 → S3); three other servers on S1 and S2 blast
bursty Nuttcp traffic at a server on S3.  As the cross-traffic grows
from 0 to 200 Mb/s, tree RPC latency rises more than 70 % while Quartz
is unaffected.

This module builds both testbed topologies and runs the measurement at
one cross-traffic level; the Figure 14 benchmark sweeps it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.routing.ecmp import ECMPRouter
from repro.sim.network import Network
from repro.sim.sources import BurstSource, RPCSource
from repro.topology.base import LinkKind, NodeKind, Topology, connect_all
from repro.units import GBPS, MBPS


def prototype_quartz(servers_per_switch: int = 2) -> Topology:
    """The 4-switch Quartz prototype (Figure 12): a 1 Gbps full mesh."""
    topo = Topology("prototype-quartz")
    switches = [
        topo.add_switch(f"s{i}", NodeKind.TOR, rack=i - 1, switch_model="SF_1G")
        for i in range(1, 5)
    ]
    connect_all(topo, switches, 1 * GBPS, LinkKind.MESH)
    for i in range(1, 5):
        for j in range(servers_per_switch):
            server = topo.add_server(f"h{i}.{j}", rack=i - 1)
            topo.add_link(server, f"s{i}", 1 * GBPS, LinkKind.HOST)
    topo.validate()
    return topo


def prototype_tree(servers_per_switch: int = 2) -> Topology:
    """The same switches rewired as a two-tier tree (Figure 13(a)).

    S1 becomes the aggregation switch; S2–S4 are ToR switches, each
    connected to S1 (the experiment uses the servers on S2 and S3).
    """
    topo = Topology("prototype-tree")
    agg = topo.add_switch("s1", NodeKind.AGG, switch_model="SF_1G")
    for i in range(2, 5):
        tor = topo.add_switch(f"s{i}", NodeKind.TOR, rack=i - 2, switch_model="SF_1G")
        topo.add_link(tor, agg, 1 * GBPS, LinkKind.UPLINK)
        for j in range(servers_per_switch):
            server = topo.add_server(f"h{i}.{j}", rack=i - 2)
            topo.add_link(server, tor, 1 * GBPS, LinkKind.HOST)
    topo.validate()
    return topo


@dataclass(frozen=True)
class CrossTrafficResult:
    """One point of the Figure 14 curve."""

    topology: str
    cross_traffic_bps: float
    mean_rpc_latency: float
    rpc_count: int


def run_cross_traffic_experiment(
    topology: str,
    cross_traffic_bps: float,
    num_calls: int = 1000,
    seed: int = 0,
) -> CrossTrafficResult:
    """Measure RPC latency under bursty cross-traffic.

    ``topology`` is ``"quartz"`` or ``"tree"``.  The RPC runs between a
    server on S2 and a server on S3; three cross-traffic senders (two on
    S1, one on S2) target a server on S3, exactly as in Figure 13.
    Cross-traffic of 0 runs the RPC alone (the baseline the paper
    normalizes against).
    """
    if topology == "quartz":
        topo = prototype_quartz()
        rpc_src, rpc_dst = "h2.0", "h3.0"
        cross = [("h1.0", "h3.1"), ("h1.1", "h3.1"), ("h2.1", "h3.1")]
    elif topology == "tree":
        topo = prototype_tree()
        # In the rewired tree S2..S4 hold the servers; the RPC crosses
        # S2 → agg → S3 and so does all the cross-traffic.
        rpc_src, rpc_dst = "h2.0", "h3.0"
        cross = [("h4.0", "h3.1"), ("h4.1", "h3.1"), ("h2.1", "h3.1")]
    else:
        raise ValueError(f"unknown topology {topology!r}")

    network = Network(topo, ECMPRouter(topo))
    rpc = RPCSource(network, rpc_src, rpc_dst, num_calls=num_calls, group="rpc")
    rpc.start()
    if cross_traffic_bps > 0:
        per_sender = cross_traffic_bps / len(cross)
        for i, (src, dst) in enumerate(cross):
            BurstSource(
                network,
                src,
                dst,
                target_bandwidth_bps=per_sender,
                group="cross",
                flow_id=100 + i,
                seed=seed + i,
            ).start()
    # Run until the RPC loop finishes (closed loop: bounded event count).
    network.run(until=30.0, max_events=20_000_000)
    if rpc.completed < num_calls:
        raise RuntimeError(
            f"RPC loop incomplete: {rpc.completed}/{num_calls} calls "
            f"(cross traffic {cross_traffic_bps / MBPS:.0f} Mb/s saturated the path)"
        )
    summary = network.stats.summary(group="rpc")
    return CrossTrafficResult(
        topology=topology,
        cross_traffic_bps=cross_traffic_bps,
        mean_rpc_latency=summary.mean,
        rpc_count=summary.count,
    )


def normalized_latency_curve(
    topology: str,
    cross_traffic_levels_bps: list[float],
    num_calls: int = 1000,
    seed: int = 0,
) -> list[tuple[float, float]]:
    """Figure 14 series: (cross-traffic bps, latency / no-load latency)."""
    baseline = run_cross_traffic_experiment(topology, 0.0, num_calls, seed)
    curve = [(0.0, 1.0)]
    for level in cross_traffic_levels_bps:
        if level == 0.0:
            continue
        point = run_cross_traffic_experiment(topology, level, num_calls, seed)
        curve.append((level, point.mean_rpc_latency / baseline.mean_rpc_latency))
    return curve
