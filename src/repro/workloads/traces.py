"""Synthetic datacenter flow traces.

The paper's Section 4.1 argues from measured datacenter traffic ("most
datacenter traffic patterns show strong locality", citing Kandula et
al.); the congestion-control work it compares against (DCTCP and
successors) evaluates on empirical flow-size distributions from
production clusters.  This module generates :class:`TimedFlow` traces
against those standard distributions for use with the FCT simulator:

* ``"websearch"`` — the partition/aggregate search cluster of the DCTCP
  paper: mostly small request/response flows with a heavy tail of
  multi-MB background flows (mean ≈ 1.6 MB);
* ``"datamining"`` — the data-mining cluster of VL2/pFabric: extremely
  heavy-tailed, >80 % of flows under 10 KB but most bytes in 100 MB+
  flows (mean ≈ 7.4 MB);
* ``"uniform"`` — a fixed-size control.

Arrivals are Poisson with rate set by a target offered load on the
hosts' aggregate NIC capacity; endpoints are uniform random distinct
server pairs (optionally rack-local with a given probability, to model
the measured locality).
"""

from __future__ import annotations

import bisect
import random

from repro.flowsim.fct import TimedFlow
from repro.topology.base import Topology
from repro.units import BITS_PER_BYTE

#: Piecewise empirical CDFs: (cumulative probability, flow size in bytes).
#: Points follow the published curves at the fidelity FCT studies use.
SIZE_DISTRIBUTIONS: dict[str, tuple[tuple[float, float], ...]] = {
    "websearch": (
        (0.0, 6e3),
        (0.15, 13e3),
        (0.2, 19e3),
        (0.3, 33e3),
        (0.4, 53e3),
        (0.53, 133e3),
        (0.6, 667e3),
        (0.7, 1.3e6),
        (0.8, 3.3e6),
        (0.9, 6.7e6),
        (0.97, 20e6),
        (1.0, 30e6),
    ),
    "datamining": (
        (0.0, 100.0),
        (0.5, 1e3),
        (0.6, 2e3),
        (0.7, 10e3),
        (0.8, 100e3),
        (0.9, 1e6),
        (0.95, 10e6),
        (0.99, 100e6),
        (1.0, 1e9),
    ),
}


class TraceError(ValueError):
    """Raised for invalid trace requests."""


def sample_flow_size(
    distribution: str, rng: random.Random, uniform_bytes: float = 100e3
) -> float:
    """One flow size drawn from a named distribution (log-interpolated)."""
    if distribution == "uniform":
        return uniform_bytes
    points = SIZE_DISTRIBUTIONS.get(distribution)
    if points is None:
        raise TraceError(
            f"unknown distribution {distribution!r}; "
            f"options: {sorted(SIZE_DISTRIBUTIONS)} or 'uniform'"
        )
    u = rng.random()
    probs = [p for p, _ in points]
    index = bisect.bisect_right(probs, u)
    if index == 0:
        return points[0][1]
    if index >= len(points):
        return points[-1][1]
    (p0, s0), (p1, s1) = points[index - 1], points[index]
    if p1 == p0:
        return s1
    # Interpolate in log-size space: heavy tails span decades.
    import math

    frac = (u - p0) / (p1 - p0)
    return math.exp(math.log(s0) + frac * (math.log(s1) - math.log(s0)))


def mean_flow_size(distribution: str, samples: int = 20_000, seed: int = 0) -> float:
    """Monte-Carlo mean of a distribution (for load calibration)."""
    rng = random.Random(seed)
    total = sum(sample_flow_size(distribution, rng) for _ in range(samples))
    return total / samples


def synthetic_flow_trace(
    topo: Topology,
    duration: float,
    load_fraction: float,
    line_rate_bps: float,
    distribution: str = "websearch",
    rack_locality: float = 0.0,
    seed: int = 0,
) -> list[TimedFlow]:
    """Generate a Poisson flow trace at a target offered load.

    ``load_fraction`` is the fraction of the servers' aggregate NIC
    capacity offered (0.1–0.8 are typical study points).  With
    ``rack_locality`` > 0, that fraction of flows picks a destination in
    the source's own rack (the measured locality the paper leans on).
    Deterministic per seed.
    """
    if duration <= 0:
        raise TraceError("duration must be positive")
    if not 0.0 < load_fraction < 1.0:
        raise TraceError("load fraction must be in (0, 1)")
    if not 0.0 <= rack_locality <= 1.0:
        raise TraceError("rack locality must be in [0, 1]")
    servers = topo.servers()
    if len(servers) < 2:
        raise TraceError("need at least two servers")

    rng = random.Random(seed)
    mean_size = mean_flow_size(distribution, samples=5_000, seed=seed)
    aggregate_bps = load_fraction * line_rate_bps * len(servers)
    arrival_rate = aggregate_bps / (mean_size * BITS_PER_BYTE)  # flows/s

    flows: list[TimedFlow] = []
    t = 0.0
    flow_id = 0
    while True:
        t += rng.expovariate(arrival_rate)
        if t >= duration:
            break
        src = rng.choice(servers)
        if rack_locality > 0 and rng.random() < rack_locality:
            local = [s for s in topo.servers_in_rack(topo.rack(src)) if s != src]
            dst = rng.choice(local) if local else None
        else:
            dst = None
        if dst is None:
            dst = rng.choice(servers)
            while dst == src:
                dst = rng.choice(servers)
        flows.append(
            TimedFlow(
                flow_id=flow_id,
                src=src,
                dst=dst,
                size_bytes=sample_flow_size(distribution, rng),
                arrival=t,
            )
        )
        flow_id += 1
    if not flows:
        raise TraceError(
            "no flows generated; increase duration or load fraction"
        )
    return flows
