"""Terminal-friendly ASCII charts.

The benchmark harness regenerates the paper's figures; these helpers
render the series as plots a terminal (or a ``bench_output.txt``) can
show, so a regenerated figure *looks like* a figure:

* :func:`line_chart` — multi-series X/Y chart with per-series markers
  (Figures 14, 17, 18, 20 shapes);
* :func:`bar_chart` — grouped horizontal bars (Figure 10);
* :func:`sparkline` — one-line trend strip (``repro trajectory``).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Marker characters assigned to series in order.
MARKERS = "ox+*#@%&"


class ChartError(ValueError):
    """Raised for unrenderable chart inputs."""


@dataclass(frozen=True)
class Series:
    """One plotted line: a label and its (x, y) points."""

    label: str
    points: tuple[tuple[float, float], ...]


def line_chart(
    series: list[Series],
    width: int = 60,
    height: int = 16,
    title: str = "",
    y_label: str = "",
    x_label: str = "",
) -> str:
    """Render series as an ASCII scatter/line chart.

    Values are mapped linearly onto a ``width × height`` grid; each
    series draws with its own marker, and a legend maps markers to
    labels.  Overlapping points keep the earliest series' marker.
    """
    if not series:
        raise ChartError("need at least one series")
    if width < 10 or height < 4:
        raise ChartError("chart must be at least 10 × 4")
    points = [(x, y) for s in series for (x, y) in s.points]
    if not points:
        raise ChartError("series contain no points")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    if x_max == x_min:
        x_max = x_min + 1.0
    if y_max == y_min:
        y_max = y_min + 1.0

    grid = [[" "] * width for _ in range(height)]

    def cell(x: float, y: float) -> tuple[int, int]:
        col = round((x - x_min) / (x_max - x_min) * (width - 1))
        row = round((y - y_min) / (y_max - y_min) * (height - 1))
        return (height - 1 - row, col)

    for index, s in enumerate(series):
        marker = MARKERS[index % len(MARKERS)]
        for x, y in s.points:
            row, col = cell(x, y)
            if grid[row][col] == " ":
                grid[row][col] = marker

    lines: list[str] = []
    if title:
        lines.append(title)
    top_label = f"{y_max:.3g}"
    bottom_label = f"{y_min:.3g}"
    gutter = max(len(top_label), len(bottom_label)) + 1
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = top_label.rjust(gutter)
        elif row_index == height - 1:
            prefix = bottom_label.rjust(gutter)
        else:
            prefix = " " * gutter
        lines.append(f"{prefix}|{''.join(row)}")
    lines.append(" " * gutter + "+" + "-" * width)
    x_axis = f"{x_min:.3g}".ljust(width - 8) + f"{x_max:.3g}".rjust(8)
    lines.append(" " * (gutter + 1) + x_axis)
    if x_label or y_label:
        lines.append(" " * (gutter + 1) + f"x: {x_label}   y: {y_label}".rstrip())
    legend = "   ".join(
        f"{MARKERS[i % len(MARKERS)]} {s.label}" for i, s in enumerate(series)
    )
    lines.append(" " * (gutter + 1) + legend)
    return "\n".join(lines)


def bar_chart(
    values: dict[str, float],
    width: int = 50,
    title: str = "",
    fmt: str = "{:.3f}",
) -> str:
    """Horizontal bars scaled to the maximum value."""
    if not values:
        raise ChartError("need at least one bar")
    peak = max(values.values())
    if peak <= 0:
        raise ChartError("bar values must include a positive maximum")
    label_width = max(len(k) for k in values)
    lines = [title] if title else []
    for label, value in values.items():
        bar = "#" * max(0, round(value / peak * width))
        lines.append(f"{label.ljust(label_width)} |{bar} {fmt.format(value)}")
    return "\n".join(lines)


#: ASCII-only intensity ramp for :func:`sparkline`, low to high.
SPARK_LEVELS = "_.:-=+*#%@"


def sparkline(values: list[float], levels: str = SPARK_LEVELS) -> str:
    """One character per value, mapped onto the ``levels`` ramp.

    A constant series renders as the middle level repeated — visibly
    flat rather than pinned to either extreme.
    """
    if not values:
        raise ChartError("need at least one value")
    if len(levels) < 2:
        raise ChartError("need at least two ramp levels")
    lo, hi = min(values), max(values)
    span = hi - lo
    if span == 0:
        return levels[len(levels) // 2] * len(values)
    top = len(levels) - 1
    return "".join(levels[int((v - lo) / span * top)] for v in values)


def sweep_to_series(sweep: dict[str, list], y_scale: float = 1e6) -> list[Series]:
    """Adapt an experiment sweep (topology → SweepPoints) for plotting.

    ``y_scale`` converts seconds to the plotted unit (default µs).
    """
    return [
        Series(
            label=topology,
            points=tuple((p.num_tasks, p.mean_latency * y_scale) for p in points),
        )
        for topology, points in sweep.items()
    ]
