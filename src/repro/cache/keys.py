"""Canonical content-addressed cache keys.

A cache key must be a pure function of the *build spec* — the arguments
that determine an artifact's value — and identical across processes and
Python invocations (no ``id()``, no salted ``hash()``, no dict iteration
order).  :func:`digest` encodes a spec into a canonical byte string and
hashes it with SHA-256; two specs collide only if their canonical
encodings are byte-identical, which for the supported types means they
are equal values.

Supported spec types: ``None``, ``bool``, ``int``, ``float``, ``str``,
``bytes``, enums, tuples/lists, sets/frozensets, dicts, dataclasses
(encoded as their qualified name plus field values), and any object
exposing ``__cache_key__()`` (e.g. :class:`~repro.topology.base.Topology`
returns its structural fingerprint so derived artifacts like route
tables key on graph *content*, not object identity).  Anything else
raises :class:`CacheKeyError` — silently falling back to ``repr`` would
admit process-dependent keys.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
from typing import Any


class CacheKeyError(TypeError):
    """Raised when a value cannot be canonically encoded into a key."""


def canonical(value: Any) -> str:
    """Deterministic textual encoding of ``value`` (see module docstring).

    Floats are encoded with ``repr`` (shortest round-trip form, exact),
    dict and set members are sorted by their encoded form, and every
    type is tagged so e.g. ``1``, ``1.0``, ``True`` and ``"1"`` encode
    differently.
    """
    if value is None:
        return "N"
    # bool before int: bool is an int subclass.
    if isinstance(value, bool):
        return f"b{int(value)}"
    if isinstance(value, int):
        return f"i{value}"
    if isinstance(value, float):
        return f"f{value!r}"
    if isinstance(value, str):
        return f"s{len(value)}:{value}"
    if isinstance(value, bytes):
        return f"y{len(value)}:{value.hex()}"
    if isinstance(value, enum.Enum):
        return f"e{type(value).__qualname__}:{canonical(value.value)}"
    if hasattr(value, "__cache_key__"):
        return f"k({canonical(value.__cache_key__())})"
    if isinstance(value, (tuple, list)):
        body = ",".join(canonical(v) for v in value)
        return f"t({body})"
    if isinstance(value, (set, frozenset)):
        body = ",".join(sorted(canonical(v) for v in value))
        return f"S({body})"
    if isinstance(value, dict):
        items = sorted(
            (canonical(k), canonical(v)) for k, v in value.items()
        )
        body = ",".join(f"{k}={v}" for k, v in items)
        return f"d({body})"
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = ",".join(
            f"{f.name}={canonical(getattr(value, f.name))}"
            for f in dataclasses.fields(value)
        )
        return f"D{type(value).__qualname__}({fields})"
    raise CacheKeyError(
        f"cannot build a canonical cache key from {type(value).__qualname__}: "
        f"{value!r}"
    )


def digest(*parts: Any) -> str:
    """SHA-256 hex digest of the canonical encoding of ``parts``."""
    text = canonical(tuple(parts))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()
