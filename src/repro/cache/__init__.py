"""Content-addressed artifact cache for pure expensive constructors.

The paper's comparative sweeps (Figure 10, Table 9, the Section 3.2
scaling study) evaluate many cells that share identical expensive
substructure: channel plans (Section 3.1), topology graphs, and
per-pair route tables.  Every cell is a pure function of its spec (the
:mod:`repro.runner` contract), so those artifacts are pure functions of
*their* specs too — and can be memoized content-addressed without
changing any result.

Layers:

* an in-memory LRU (per process, always on), and
* an optional on-disk store under ``$REPRO_CACHE_DIR``, shared between
  processes — sweep workers and repeated runs reuse each other's work.

Usage::

    from repro.cache import cached

    @cached("channel-plan/greedy")
    def greedy_assignment(ring_size, ...): ...

Keys are canonical hashes of the fully-bound call arguments
(:mod:`repro.cache.keys`), salted with a namespace and version — bump
``version`` whenever a constructor's output format changes so stale
disk entries can never be returned.  Set ``REPRO_CACHE_DISABLE=1`` to
turn the whole subsystem off (the cold baseline), and see
``python -m repro cache stats|clear`` for inspection and maintenance.
"""

from __future__ import annotations

import functools
import inspect
from typing import Any, Callable

from repro.cache.keys import CacheKeyError, canonical, digest
from repro.cache.store import (
    CACHE_DIR_ENV,
    CACHE_DISABLE_ENV,
    CACHE_ITEMS_ENV,
    DEFAULT_MEMORY_ITEMS,
    ArtifactCache,
    CacheConfig,
    CacheConfigError,
    CacheStats,
    artifact_cache,
    configure,
    reset,
)

__all__ = [
    "ArtifactCache",
    "CACHE_DIR_ENV",
    "CACHE_DISABLE_ENV",
    "CACHE_ITEMS_ENV",
    "CacheConfig",
    "CacheConfigError",
    "CacheKeyError",
    "CacheStats",
    "DEFAULT_MEMORY_ITEMS",
    "artifact_cache",
    "cached",
    "canonical",
    "configure",
    "describe",
    "digest",
    "reset",
]


def describe() -> dict:
    """One-call cache introspection: config, hit counters, disk usage.

    The flat dict behind ``python -m repro cache stats`` — also handy
    for dropping into a run manifest's ``extra`` section.  Walks the
    disk store to count entries, so it is a diagnostics call, not a
    hot-path one.
    """
    cache = artifact_cache()
    entries, disk_bytes = cache.disk_usage()
    return {
        "enabled": cache.enabled,
        "directory": cache.config.directory,
        "memory_items": cache.config.memory_items,
        "disk_entries": entries,
        "disk_bytes": disk_bytes,
        **cache.stats.as_dict(),
    }


def cached(
    namespace: str,
    version: int = 1,
    copy: Callable[[Any], Any] | None = None,
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Memoize a pure constructor through the process-wide artifact cache.

    The cache key is the canonical encoding of the call's fully-bound
    arguments (defaults applied), so ``f(9)`` and ``f(ring_size=9)``
    share an entry.  ``copy`` is applied to every returned value when
    the artifact is mutable (e.g. topologies) so callers can never
    mutate the stored instance.  The undecorated constructor stays
    reachable as ``fn.__wrapped__`` — the property tests use it to
    compare cached artifacts against fresh builds.
    """

    def decorate(fn: Callable[..., Any]) -> Callable[..., Any]:
        signature = inspect.signature(fn)

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            cache = artifact_cache()
            if not cache.enabled:
                return fn(*args, **kwargs)
            bound = signature.bind(*args, **kwargs)
            bound.apply_defaults()
            key_parts = tuple(sorted(bound.arguments.items()))
            return cache.get_or_build(
                namespace,
                version,
                key_parts,
                lambda: fn(*args, **kwargs),
                copy=copy,
            )

        return wrapper

    return decorate
