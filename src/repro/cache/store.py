"""Content-addressed artifact store: in-memory LRU plus optional disk.

The store maps a :func:`repro.cache.keys.digest` of a build spec to the
built artifact.  Lookups go memory → disk → build; every build result
is written back to both layers.  The disk layer lives under
``REPRO_CACHE_DIR`` (unset = memory only) and is shared between
processes: sweep workers warmed by :func:`repro.runner.run_cells` read
artifacts their siblings (or previous runs) already built.

Correctness contract
--------------------
Every cached artifact must be **value-equal** to a fresh build — the
wrapped constructors are pure, the pickle round-trip is exact (floats
included), and mutable artifacts are copied on *every* return (hit or
miss) so no caller can mutate the stored instance.  Under that contract
caching can change only wall-clock time, never results, which is what
keeps parallel sweeps bit-identical to serial ones with caching enabled
(property-tested in ``tests/cache/``).

Disk writes are atomic (temp file + ``os.replace``) so concurrent
workers never observe a torn entry; a corrupt or unreadable entry is
treated as a miss and rebuilt.
"""

from __future__ import annotations

import os
import pickle
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

from repro.cache.keys import digest

#: Environment variable naming the shared on-disk store (unset = memory only).
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Environment variable capping the in-memory LRU entry count.
CACHE_ITEMS_ENV = "REPRO_CACHE_MEMORY_ITEMS"

#: Set to a non-empty value to disable artifact caching entirely
#: (every build runs fresh — the "cold" baseline for benchmarks).
CACHE_DISABLE_ENV = "REPRO_CACHE_DISABLE"

DEFAULT_MEMORY_ITEMS = 512


class CacheConfigError(ValueError):
    """Raised for invalid cache configuration."""


@dataclass
class CacheStats:
    """Counters for one :class:`ArtifactCache` instance."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: Total pickled size of the entries currently held in memory.
    memory_bytes: int = 0
    disk_bytes_written: int = 0
    disk_bytes_read: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when untouched)."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "memory_bytes": self.memory_bytes,
            "disk_bytes_written": self.disk_bytes_written,
            "disk_bytes_read": self.disk_bytes_read,
            "hit_rate": self.hit_rate,
        }


@dataclass(frozen=True)
class CacheConfig:
    """Picklable cache settings, shipped to pool workers at fork/spawn."""

    directory: str | None = None
    memory_items: int = DEFAULT_MEMORY_ITEMS
    enabled: bool = True

    @classmethod
    def from_env(cls) -> "CacheConfig":
        directory = os.environ.get(CACHE_DIR_ENV) or None
        items_env = os.environ.get(CACHE_ITEMS_ENV)
        memory_items = DEFAULT_MEMORY_ITEMS
        if items_env:
            try:
                memory_items = int(items_env)
            except ValueError:
                raise CacheConfigError(
                    f"{CACHE_ITEMS_ENV} must be an integer, got {items_env!r}"
                )
            if memory_items < 0:
                raise CacheConfigError(
                    f"{CACHE_ITEMS_ENV} must be non-negative, got {memory_items}"
                )
        enabled = not os.environ.get(CACHE_DISABLE_ENV)
        return cls(directory=directory, memory_items=memory_items, enabled=enabled)


class ArtifactCache:
    """Two-layer content-addressed cache (see module docstring)."""

    def __init__(self, config: CacheConfig | None = None) -> None:
        self.config = config or CacheConfig.from_env()
        self.stats = CacheStats()
        self._lock = threading.Lock()
        #: digest -> (value, pickled size); insertion order = LRU order.
        self._memory: OrderedDict[str, tuple[Any, int]] = OrderedDict()
        if self.config.directory:
            Path(self.config.directory).mkdir(parents=True, exist_ok=True)

    # -- lookup ----------------------------------------------------------------

    def get_or_build(
        self,
        namespace: str,
        version: int,
        key_parts: Any,
        build: Callable[[], Any],
        copy: Callable[[Any], Any] | None = None,
    ) -> Any:
        """The artifact for ``(namespace, version, key_parts)``.

        ``build`` runs on a miss; its result is stored in both layers
        and returned.  ``copy`` (when given) is applied to every
        returned value — hit *and* miss — so mutable artifacts never
        leak the stored instance to callers.
        """
        if not self.config.enabled:
            return build()
        key = digest(namespace, version, key_parts)
        with self._lock:
            entry = self._memory.get(key)
            if entry is not None:
                self._memory.move_to_end(key)
                self.stats.memory_hits += 1
                value = entry[0]
                return copy(value) if copy else value
        value = self._disk_read(namespace, key)
        if value is not _MISSING:
            with self._lock:
                self.stats.disk_hits += 1
                self._memory_put(key, value, _pickled_size(value))
            return copy(value) if copy else value
        value = build()
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        with self._lock:
            self.stats.misses += 1
            self._memory_put(key, value, len(payload))
        self._disk_write(namespace, key, payload)
        return copy(value) if copy else value

    # -- memory layer ----------------------------------------------------------

    def _memory_put(self, key: str, value: Any, size: int) -> None:
        """Insert under the LRU cap (caller holds the lock)."""
        if self.config.memory_items <= 0:
            return
        if key in self._memory:
            self.stats.memory_bytes -= self._memory[key][1]
            del self._memory[key]
        self._memory[key] = (value, size)
        self.stats.memory_bytes += size
        while len(self._memory) > self.config.memory_items:
            _, (_, evicted_size) = self._memory.popitem(last=False)
            self.stats.evictions += 1
            self.stats.memory_bytes -= evicted_size

    # -- disk layer ------------------------------------------------------------

    def _disk_path(self, namespace: str, key: str) -> Path | None:
        if not self.config.directory:
            return None
        safe_namespace = namespace.replace("/", "_")
        return Path(self.config.directory) / safe_namespace / f"{key}.pkl"

    def _disk_read(self, namespace: str, key: str) -> Any:
        path = self._disk_path(namespace, key)
        if path is None:
            return _MISSING
        try:
            payload = path.read_bytes()
            value = pickle.loads(payload)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            return _MISSING  # absent or torn/stale entry: rebuild
        with self._lock:
            self.stats.disk_bytes_read += len(payload)
        return value

    def _disk_write(self, namespace: str, key: str, payload: bytes) -> None:
        path = self._disk_path(namespace, key)
        if path is None:
            return
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(f".tmp.{os.getpid()}")
            tmp.write_bytes(payload)
            os.replace(tmp, path)
        except OSError:
            return  # a read-only or full store degrades to memory-only
        with self._lock:
            self.stats.disk_bytes_written += len(payload)

    # -- maintenance -----------------------------------------------------------

    def clear(self, disk: bool = True) -> int:
        """Drop every entry; returns the number of disk entries removed."""
        with self._lock:
            self._memory.clear()
            self.stats.memory_bytes = 0
        removed = 0
        if disk and self.config.directory:
            root = Path(self.config.directory)
            for entry in sorted(root.glob("*/*.pkl")):
                try:
                    entry.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def disk_usage(self) -> tuple[int, int]:
        """``(entries, bytes)`` currently in the on-disk store."""
        if not self.config.directory:
            return (0, 0)
        entries = 0
        total = 0
        for path in Path(self.config.directory).glob("*/*.pkl"):
            try:
                total += path.stat().st_size
                entries += 1
            except OSError:
                pass
        return (entries, total)

    @property
    def enabled(self) -> bool:
        return self.config.enabled


class _Missing:
    """Sentinel distinguishing 'no entry' from a cached ``None``."""


_MISSING = _Missing()


def _pickled_size(value: Any) -> int:
    try:
        return len(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        return 0


# -- process-wide cache ---------------------------------------------------------

_active: ArtifactCache | None = None
_active_lock = threading.Lock()


def artifact_cache() -> ArtifactCache:
    """The process-wide cache, created from the environment on first use."""
    global _active
    with _active_lock:
        if _active is None:
            _active = ArtifactCache()
        return _active


def configure(config: CacheConfig | None = None, **kwargs: Any) -> ArtifactCache:
    """Replace the process-wide cache.

    Either pass a full :class:`CacheConfig`, or keyword overrides on top
    of the environment config (``directory=``, ``memory_items=``,
    ``enabled=``).  Returns the new cache.  Pool workers call this from
    their initializer so every worker shares the parent's disk store.
    """
    global _active
    if config is None:
        base = CacheConfig.from_env()
        config = CacheConfig(
            directory=kwargs.get("directory", base.directory),
            memory_items=kwargs.get("memory_items", base.memory_items),
            enabled=kwargs.get("enabled", base.enabled),
        )
    elif kwargs:
        raise CacheConfigError("pass either a CacheConfig or keyword overrides")
    with _active_lock:
        _active = ArtifactCache(config)
        return _active


def reset() -> None:
    """Forget the process-wide cache (next use re-reads the environment)."""
    global _active
    with _active_lock:
        _active = None
