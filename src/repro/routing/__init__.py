"""Routing engines: ECMP, VLB, spanning tree, k-shortest-paths, SPAIN."""

from repro.routing.base import (
    Path,
    Router,
    RoutingError,
    WeightedPath,
    stable_hash,
)
from repro.routing.ecmp import ECMPRouter
from repro.routing.forwarding import (
    ForwardingTable,
    TableDrivenRouter,
    compile_tables,
    total_state,
)
from repro.routing.kshortest import KShortestPathsRouter
from repro.routing.spain import SPAINRouter
from repro.routing.spanning_tree import SpanningTreeRouter
from repro.routing.tables import (
    RouteTable,
    ecmp_segment_table,
    kshortest_table,
    vlb_table,
)
from repro.routing.vlb import AdaptiveVLBRouter, DemandAwareVLBRouter, VLBRouter

__all__ = [
    "AdaptiveVLBRouter",
    "DemandAwareVLBRouter",
    "ECMPRouter",
    "ForwardingTable",
    "TableDrivenRouter",
    "compile_tables",
    "total_state",
    "KShortestPathsRouter",
    "Path",
    "Router",
    "RouteTable",
    "RoutingError",
    "SPAINRouter",
    "SpanningTreeRouter",
    "VLBRouter",
    "WeightedPath",
    "ecmp_segment_table",
    "kshortest_table",
    "stable_hash",
    "vlb_table",
]
