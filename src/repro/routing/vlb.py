"""Valiant Load Balancing over Quartz meshes — paper Section 3.4.

Direct (one-hop) routing between two mesh switches offers the lowest
latency but only one channel of bandwidth (n : 1 oversubscription for
rack-concentrated traffic).  VLB sends a configurable fraction of the
traffic over the ``M − 2`` two-hop detour paths through the other mesh
switches, trading a small latency increase for up to full switch-to-
switch bandwidth (Figure 20).

``direct_fraction`` is the paper's ``k``: the share of traffic kept on
the direct channel.  The remainder is spread evenly over the two-hop
paths.  :class:`AdaptiveVLBRouter` picks ``k`` from the offered load the
way the paper suggests ("the parameter k can be adaptive depending on
the traffic characteristics").
"""

from __future__ import annotations

from repro.cache import artifact_cache
from repro.routing.base import Path, Router, RoutingError, WeightedPath, stable_hash
from repro.routing.tables import vlb_table
from repro.topology.base import LinkKind, Topology


class VLBRouter(Router):
    """Direct + two-hop Valiant routing on a full-mesh ToR fabric."""

    def __init__(self, topo: Topology, direct_fraction: float = 0.5) -> None:
        super().__init__(topo)
        if not 0.0 <= direct_fraction <= 1.0:
            raise ValueError(f"direct_fraction must be in [0, 1], got {direct_fraction}")
        self.direct_fraction = direct_fraction
        self._mesh_peers = self._build_mesh_peers()
        self._warm_paths()

    def _build_mesh_peers(self) -> dict[str, set[str]]:
        peers: dict[str, set[str]] = {}
        for link in self.topo.links():
            if link.link_kind is LinkKind.MESH:
                peers.setdefault(link.u, set()).add(link.v)
                peers.setdefault(link.v, set()).add(link.u)
        if not peers:
            raise RoutingError("VLB requires a topology with mesh links")
        return peers

    def _warm_paths(self) -> None:
        """Prefill the per-pair path cache from the batched VLB table.

        The table is content-addressed on the topology fingerprint and
        replicates :meth:`paths` exactly.  Unroutable pairs (stored
        empty) are *not* prefilled, so they still reach :meth:`paths`
        and raise :class:`RoutingError` as before.
        """
        if not artifact_cache().enabled:
            return
        for pair, entry in vlb_table(self.topo).items():
            if entry:
                self._cache.setdefault(pair, list(entry))

    def _on_topology_change(self, repaired: bool) -> None:
        # The peer table mirrors the live mesh links: a cut removes the
        # direct channel between two switches, a repair restores it.
        try:
            self._mesh_peers = self._build_mesh_peers()
        except RoutingError:
            # Every mesh channel is dead; all pairs become unroutable
            # until a repair (paths() raises per pair).
            self._mesh_peers = {}
            return
        if repaired:
            # The base class flushed the path cache; the restored
            # fingerprint makes re-warming a cache hit.
            self._warm_paths()

    @staticmethod
    def _split(options: list[Path]) -> tuple[Path | None, list[Path]]:
        """Separate the direct path (if it survives) from the detours.

        A direct rack-to-rack path is ``(src, tor_s, tor_d, dst)``; when
        the direct channel is dead the option list holds only five-node
        two-hop detours.
        """
        if len(options[0]) == 4:
            return options[0], options[1:]
        return None, options

    def paths(self, src: str, dst: str) -> list[Path]:
        """Direct path first (when its channel is alive), then the
        two-hop detours in stable order.

        When a fibre cut has severed the direct channel the direct path
        is omitted and all traffic falls back to the surviving two-hop
        VLB detours; a pair with no surviving detour either is
        unroutable and raises :class:`RoutingError`.
        """
        tor_src = self.topo.tor_of(src)
        tor_dst = self.topo.tor_of(dst)
        if tor_src == tor_dst:
            return [(src, tor_src, dst)]
        direct_alive = tor_dst in self._mesh_peers.get(tor_src, ())
        detours = [
            (src, tor_src, mid, tor_dst, dst)
            for mid in sorted(
                self._mesh_peers.get(tor_src, set())
                & self._mesh_peers.get(tor_dst, set())
            )
            if mid not in (tor_src, tor_dst)
        ]
        if direct_alive:
            return [(src, tor_src, tor_dst, dst), *detours]
        if not detours:
            raise RoutingError(
                f"{tor_src!r} and {tor_dst!r} share no surviving VLB path; "
                "the mesh channel is dead and no two-hop detour remains"
            )
        return detours

    def weighted_paths(self, src: str, dst: str) -> list[WeightedPath]:
        options = self._cached_paths(src, dst)
        direct, detours = self._split(options)
        if direct is None:
            share = 1.0 / len(detours)
            return [WeightedPath(p, share) for p in detours]
        if not detours or self.direct_fraction >= 1.0:
            return [WeightedPath(direct, 1.0)]
        detour_share = (1.0 - self.direct_fraction) / len(detours)
        weighted = [WeightedPath(direct, self.direct_fraction)]
        weighted.extend(WeightedPath(p, detour_share) for p in detours)
        return weighted

    def route(self, src: str, dst: str, flow_id: int = 0) -> Path:
        """Pick the direct path with probability ``direct_fraction``.

        The pick is a deterministic hash of the flow key, so a given
        flow is pinned to one path (no in-flow reordering).  Picks are
        memoized per flow key, like :meth:`Router.route`.  Flows whose
        direct channel died hash over the surviving detours only.
        """
        key = (src, dst, flow_id)
        pick = self._route_cache.get(key)
        if pick is not None:
            return pick
        options = self._cached_paths(src, dst)
        direct, detours = self._split(options)
        if not detours:
            pick = direct if direct is not None else options[0]
        elif direct is not None and (
            stable_hash(src, dst, flow_id, "vlb") % 10_000 < self.direct_fraction * 10_000
        ):
            pick = direct
        else:
            pick = detours[stable_hash(src, dst, flow_id, "detour") % len(detours)]
        if len(self._route_cache) < self.ROUTE_CACHE_LIMIT:
            self._route_cache[key] = pick
        return pick


class AdaptiveVLBRouter(VLBRouter):
    """VLB with ``k`` chosen from the offered switch-pair load.

    Keeps everything on the direct channel while it has headroom, then
    spills the excess over the detours, targeting ``utilization_target``
    on the direct channel: ``k = min(1, target × channel / demand)``.
    Running the direct channel *at* capacity would leave no headroom and
    queue without bound, so the target defaults to 90 %.

    ``offered_load_bps`` is the anticipated aggregate rate between the
    ToR pair (e.g. from a traffic matrix or measurement).
    """

    def __init__(
        self,
        topo: Topology,
        offered_load_bps: float,
        utilization_target: float = 0.9,
    ) -> None:
        if offered_load_bps < 0:
            raise ValueError("offered load must be non-negative")
        if not 0 < utilization_target <= 1:
            raise ValueError("utilization target must be in (0, 1]")
        self._offered = offered_load_bps
        # Channel rate: capacity of any mesh link (uniform in Quartz).
        mesh_caps = [
            link.capacity for link in topo.links() if link.link_kind is LinkKind.MESH
        ]
        if not mesh_caps:
            raise RoutingError("VLB requires a topology with mesh links")
        channel = mesh_caps[0]
        usable = utilization_target * channel
        direct = 1.0 if offered_load_bps <= usable else usable / offered_load_bps
        super().__init__(topo, direct_fraction=direct)


class DemandAwareVLBRouter(VLBRouter):
    """VLB with a per-rack-pair ``k`` derived from a traffic matrix.

    Real adaptive VLB tunes the direct fraction per switch pair from the
    observed demand between them; this router does the same from a
    nominal traffic matrix ``[(src, dst, demand_bps), …]``: pairs whose
    aggregate demand fits within ``utilization_target`` of their channel
    stay fully direct, heavier pairs spill proportionally onto the
    two-hop detours.  Used by the Figure 10 throughput study.
    """

    def __init__(
        self,
        topo: Topology,
        matrix: list[tuple[str, str, float]],
        utilization_target: float = 0.9,
    ) -> None:
        super().__init__(topo, direct_fraction=1.0)
        if not 0 < utilization_target <= 1:
            raise ValueError("utilization target must be in (0, 1]")
        # Channels are full duplex, so demand is tracked per *direction*.
        demand: dict[tuple[str, str], float] = {}
        for src, dst, rate in matrix:
            tor_s = topo.tor_of(src)
            tor_d = topo.tor_of(dst)
            if tor_s != tor_d:
                demand[(tor_s, tor_d)] = demand.get((tor_s, tor_d), 0.0) + rate
        self._pair_direct: dict[tuple[str, str], float] = {}
        for pair, load in demand.items():
            usable = utilization_target * topo.capacity(*pair)
            self._pair_direct[pair] = 1.0 if load <= usable else usable / load

    def _direct_fraction_for(self, path: Path) -> float:
        tor_s, tor_d = path[1], path[-2]
        return self._pair_direct.get((tor_s, tor_d), 1.0)

    def weighted_paths(self, src: str, dst: str) -> list[WeightedPath]:
        options = self._cached_paths(src, dst)
        direct, detours = self._split(options)
        if direct is None:
            if len(options[0]) == 3:  # same-rack: the lone host path
                return [WeightedPath(options[0], 1.0)]
            share = 1.0 / len(detours)
            return [WeightedPath(p, share) for p in detours]
        k = self._direct_fraction_for(direct)
        if not detours or k >= 1.0:
            return [WeightedPath(direct, 1.0)]
        detour_share = (1.0 - k) / len(detours)
        return [
            WeightedPath(direct, k),
            *(WeightedPath(p, detour_share) for p in detours),
        ]
