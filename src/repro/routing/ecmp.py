"""Equal-cost multi-path routing.

The paper's default for Quartz meshes (Section 3.4): since a full mesh
has a single shortest switch path between any ToR pair, ECMP always
selects the direct one-hop channel, minimizing hop count and isolation
from cross-traffic.  In multi-rooted trees ECMP spreads flows over the
equal-cost up/down paths.

Path computation is two-level.  Server-to-server shortest paths are
derived from **switch-to-switch** shortest paths computed once per
switch pair and stitched onto the server endpoints: every server pair
behind the same two switches shares the same fabric segment, so a
network with ``n`` switches and ``n·s`` servers solves ``n²`` switch
pairs instead of ``(n·s)²`` server pairs.  Server-centric topologies
(BCube/DCell), where servers relay traffic and the decomposition does
not hold, fall back to whole-graph search.
"""

from __future__ import annotations

from itertools import islice

import networkx as nx

from repro.cache import artifact_cache
from repro.routing.base import Path, Router, _path_crosses
from repro.routing.tables import ecmp_segment_table
from repro.topology.base import Topology


class ECMPRouter(Router):
    """All-shortest-paths routing with per-flow hashing.

    ``max_paths`` bounds the equal-cost set (hardware ECMP tables are
    finite).  Enumeration is bounded too: only the first ``max_paths``
    paths of ``networkx``'s deterministic shortest-path generator are
    materialized (then sorted for a stable order), so dense meshes never
    pay for paths that would be truncated away.
    """

    def __init__(self, topo: Topology, max_paths: int = 64) -> None:
        super().__init__(topo)
        if max_paths < 1:
            raise ValueError("max_paths must be at least 1")
        self.max_paths = max_paths
        #: Whether server paths decompose into switch paths: servers
        #: must be leaves (no server relaying, i.e. not server-centric).
        self._stitchable = not bool(topo.graph.graph.get("server_centric"))
        self._switch_graph: nx.Graph | None = None
        self._switch_paths: dict[tuple[str, str], list[Path]] = {}
        #: Whether the segment cache was warmed from the batched table.
        self._segments_warmed = False

    # -- path enumeration -----------------------------------------------------

    def paths(self, src: str, dst: str) -> list[Path]:
        if (
            self._stitchable
            and src != dst
            and self.topo.is_server(src)
            and self.topo.is_server(dst)
        ):
            stitched = self._stitched_paths(src, dst)
            if stitched is not None:
                return stitched
        return self._graph_paths(src, dst)

    def _graph_paths(self, src: str, dst: str) -> list[Path]:
        """Bounded whole-graph enumeration (the pre-stitching behaviour)."""
        found = nx.all_shortest_paths(self.topo.graph, src, dst)
        paths = [tuple(p) for p in islice(found, self.max_paths)]
        paths.sort()
        return paths

    def _stitched_paths(self, src: str, dst: str) -> list[Path] | None:
        """Server paths via precomputed switch segments, or ``None`` when
        the endpoints are not cleanly attached to switches."""
        src_switches = self._attachments(src)
        dst_switches = self._attachments(dst)
        if not src_switches or not dst_switches:
            return None

        # Keep only the attachment pairs whose switch segment achieves
        # the globally shortest server-to-server length (multi-homed
        # servers may reach several switch pairs at different distances).
        best: list[list[Path]] = []
        best_len: int | None = None
        for sw_s in src_switches:
            for sw_d in dst_switches:
                segment = self._switch_segment(sw_s, sw_d)
                if not segment:
                    continue
                length = len(segment[0])
                if best_len is None or length < best_len:
                    best, best_len = [segment], length
                elif length == best_len:
                    best.append(segment)
        if best_len is None:
            return []

        stitched = [
            (src, *segment, dst) for group in best for segment in group
        ]
        stitched.sort()
        return stitched[: self.max_paths]

    # -- runtime topology changes ----------------------------------------------

    def invalidate_links(self, links, repaired: bool = False) -> None:
        """Also invalidate the switch-to-switch segment cache.

        Cuts drop only the segments crossing an affected link (plus the
        stitched caches handled by the base class); repairs flush the
        segment cache wholesale, since a restored channel can shorten
        segments that never crossed it.
        """
        if not repaired:
            affected = set()
            for u, v in links:
                affected.add((u, v))
                affected.add((v, u))
            crosses = _path_crosses(affected)
            self._switch_paths = {
                key: segments
                for key, segments in self._switch_paths.items()
                if not any(crosses(s) for s in segments)
            }
        super().invalidate_links(links, repaired=repaired)

    def _on_topology_change(self, repaired: bool) -> None:
        # The switch graph is a copy of the live topology: rebuild lazily.
        self._switch_graph = None
        if repaired:
            # A repair restores the original fingerprint, so re-warming
            # from the batched table is a cache hit, not a rebuild.
            self._switch_paths.clear()
            self._segments_warmed = False

    # -- shared switch-level computation --------------------------------------

    def _attachments(self, server: str) -> list[str]:
        """The switches a server hangs off, in stable order."""
        graph = self.topo.graph
        switches = [n for n in graph.neighbors(server) if self.topo.is_switch(n)]
        if len(switches) != graph.degree(server):
            return []  # attached to a non-switch: not stitchable
        switches.sort()
        return switches

    def _switch_segment(self, sw_s: str, sw_d: str) -> list[Path]:
        """All (bounded) shortest switch-to-switch paths, computed once
        per ordered switch pair and shared by every server pair behind
        them.

        With the artifact cache enabled the whole segment table is
        warmed in one batch (content-addressed on the topology
        fingerprint, shared across processes); pairs severed by a
        mid-run cut still recompute lazily over the degraded graph.
        """
        if not self._segments_warmed and artifact_cache().enabled:
            table = ecmp_segment_table(self.topo, self.max_paths)
            for pair, segment in table.items():
                self._switch_paths.setdefault(pair, list(segment))
            self._segments_warmed = True
        key = (sw_s, sw_d)
        cached = self._switch_paths.get(key)
        if cached is None:
            if sw_s == sw_d:
                cached = [(sw_s,)]
            else:
                if self._switch_graph is None:
                    self._switch_graph = self.topo.switch_graph()
                try:
                    found = nx.all_shortest_paths(self._switch_graph, sw_s, sw_d)
                    cached = [tuple(p) for p in islice(found, self.max_paths)]
                    cached.sort()
                except nx.NetworkXNoPath:
                    cached = []
            self._switch_paths[key] = cached
        return cached
