"""Equal-cost multi-path routing.

The paper's default for Quartz meshes (Section 3.4): since a full mesh
has a single shortest switch path between any ToR pair, ECMP always
selects the direct one-hop channel, minimizing hop count and isolation
from cross-traffic.  In multi-rooted trees ECMP spreads flows over the
equal-cost up/down paths.
"""

from __future__ import annotations

import networkx as nx

from repro.routing.base import Path, Router
from repro.topology.base import Topology


class ECMPRouter(Router):
    """All-shortest-paths routing with per-flow hashing.

    ``max_paths`` bounds the equal-cost set (hardware ECMP tables are
    finite); paths are kept in deterministic (lexicographic) order.
    """

    def __init__(self, topo: Topology, max_paths: int = 64) -> None:
        super().__init__(topo)
        if max_paths < 1:
            raise ValueError("max_paths must be at least 1")
        self.max_paths = max_paths

    def paths(self, src: str, dst: str) -> list[Path]:
        found = nx.all_shortest_paths(self.topo.graph, src, dst)
        paths = sorted(tuple(p) for p in found)
        return paths[: self.max_paths]
