"""Batched, content-addressed all-pairs route tables.

``KShortestPathsRouter`` historically re-ran Yen's enumeration
(``nx.shortest_simple_paths``) on every ``paths()`` call, and the ECMP
switch-segment and VLB detour sets were recomputed lazily per pair in
every process.  For the sweep workloads (Figure 10, Table 9) the same
topology is routed over and over, so this module computes each router's
*entire* per-pair table in one pass and memoizes it through
:mod:`repro.cache`, keyed on the topology's structural fingerprint
(:meth:`~repro.topology.base.Topology.fingerprint`).

Fingerprint keying is what keeps fault injection correct: a fibre cut
changes the graph, hence the fingerprint, hence the key — the degraded
topology gets its own (cached) table — and a full repair restores the
original fingerprint, so the pre-cut table is reused instead of rebuilt.

Equivalence contract: every table entry is **exactly** what the lazy
per-pair computation would have produced (same generator, same
truncation, same sort), so cached and uncached routing are
value-identical — property-tested in ``tests/routing/``.

Disconnected or unroutable pairs are stored as empty tuples; routers
translate those back into the usual :class:`~repro.routing.base.RoutingError`.
"""

from __future__ import annotations

from itertools import islice

import networkx as nx

from repro.cache import cached
from repro.routing.base import Path
from repro.topology.base import LinkKind, Topology, TopologyError

#: pair -> paths, in the router's stable order.  Empty tuple = unroutable.
RouteTable = dict[tuple[str, str], tuple[Path, ...]]


@cached("route-table/kshortest", copy=dict)
def kshortest_table(topo: Topology, k: int) -> RouteTable:
    """The ``k`` shortest simple paths for every ordered server pair.

    Replicates ``KShortestPathsRouter.paths`` exactly: the same
    deterministic ``nx.shortest_simple_paths`` enumeration truncated to
    ``k`` entries, per pair.
    """
    table: RouteTable = {}
    servers = topo.servers()
    graph = topo.graph
    for src in servers:
        for dst in servers:
            if src == dst:
                continue
            try:
                found = nx.shortest_simple_paths(graph, src, dst)
                table[(src, dst)] = tuple(tuple(p) for p in islice(found, k))
            except nx.NetworkXNoPath:
                table[(src, dst)] = ()
    return table


@cached("route-table/ecmp-segments", copy=dict)
def ecmp_segment_table(topo: Topology, max_paths: int) -> RouteTable:
    """Bounded all-shortest switch-to-switch segments, all ordered pairs.

    Replicates ``ECMPRouter._switch_segment`` exactly: the identity pair
    maps to the one-node path, distinct pairs to the first ``max_paths``
    entries of ``nx.all_shortest_paths`` over the switch subgraph,
    sorted for a stable order.
    """
    table: RouteTable = {}
    switches = topo.switches()
    switch_graph = topo.switch_graph()
    for sw_s in switches:
        table[(sw_s, sw_s)] = ((sw_s,),)
        for sw_d in switches:
            if sw_s == sw_d:
                continue
            try:
                found = nx.all_shortest_paths(switch_graph, sw_s, sw_d)
                segment = sorted(tuple(p) for p in islice(found, max_paths))
            except nx.NetworkXNoPath:
                segment = []
            table[(sw_s, sw_d)] = tuple(segment)
    return table


@cached("route-table/vlb", copy=dict)
def vlb_table(topo: Topology) -> RouteTable:
    """Direct-plus-detour VLB path sets for every ordered server pair.

    Replicates ``VLBRouter.paths`` exactly: same-rack pairs get the
    lone host path, cross-rack pairs the direct channel (when alive)
    followed by the sorted two-hop detours.  Pairs ``VLBRouter.paths``
    would refuse to route (no ToR, or no surviving path) are stored
    empty.
    """
    peers: dict[str, set[str]] = {}
    for link in topo.links():
        if link.link_kind is LinkKind.MESH:
            peers.setdefault(link.u, set()).add(link.v)
            peers.setdefault(link.v, set()).add(link.u)

    table: RouteTable = {}
    servers = topo.servers()
    tors: dict[str, str | None] = {}
    for server in servers:
        try:
            tors[server] = topo.tor_of(server)
        except TopologyError:
            tors[server] = None

    for src in servers:
        for dst in servers:
            if src == dst:
                continue
            tor_src = tors[src]
            tor_dst = tors[dst]
            if tor_src is None or tor_dst is None:
                table[(src, dst)] = ()
                continue
            if tor_src == tor_dst:
                table[(src, dst)] = ((src, tor_src, dst),)
                continue
            detours = tuple(
                (src, tor_src, mid, tor_dst, dst)
                for mid in sorted(peers.get(tor_src, set()) & peers.get(tor_dst, set()))
                if mid not in (tor_src, tor_dst)
            )
            if tor_dst in peers.get(tor_src, ()):
                table[(src, dst)] = ((src, tor_src, tor_dst, dst), *detours)
            else:
                table[(src, dst)] = detours
    return table
