"""Per-switch forwarding state — paper Section 3.4.

The paper integrates Quartz into "link layer addressing and routing":
real switches forward hop-by-hop from local tables, not from source
routes.  This module compiles any :class:`~repro.routing.base.Router`'s
path set into per-switch tables (aggregated by destination *rack*, the
way L2/ECMP hardware aggregates by prefix), reports the resulting state
size, and provides a :class:`TableDrivenRouter` that forwards from the
compiled tables — letting tests assert that distributed forwarding
reproduces the centrally computed paths and that a Quartz mesh needs
only ``M − 1`` entries per switch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.routing.base import Path, Router, RoutingError, stable_hash
from repro.topology.base import Topology


@dataclass
class ForwardingTable:
    """One switch's next-hop entries, keyed by destination rack."""

    switch: str
    #: destination rack → next-hop nodes (ECMP set, deterministic order)
    entries: dict[int, tuple[str, ...]] = field(default_factory=dict)

    @property
    def size(self) -> int:
        """Number of (rack, next-hop) entries — the TCAM footprint."""
        return sum(len(hops) for hops in self.entries.values())

    def next_hops(self, rack: int) -> tuple[str, ...]:
        hops = self.entries.get(rack)
        if not hops:
            raise RoutingError(f"{self.switch!r} has no route to rack {rack}")
        return hops


def compile_tables(topo: Topology, router: Router) -> dict[str, ForwardingTable]:
    """Compile a router's path set into per-switch forwarding tables.

    Walks every server-pair path the router exposes and records, at each
    intermediate switch, the next hop toward the destination's rack.
    Paths that relay through servers (BCube/DCell) are rejected — table
    compilation models switch-forwarded fabrics.
    """
    tables: dict[str, ForwardingTable] = {
        switch: ForwardingTable(switch) for switch in topo.switches()
    }
    staging: dict[str, dict[int, set[str]]] = {s: {} for s in topo.switches()}
    servers = topo.servers()
    for src in servers:
        for dst in servers:
            if src == dst or topo.rack(dst) is None:
                continue
            dst_rack = topo.rack(dst)
            for path in router.paths(src, dst):
                for i, node in enumerate(path[1:-1], start=1):
                    if topo.is_server(node):
                        raise RoutingError(
                            "cannot compile tables for server-relayed paths"
                        )
                    next_hop = path[i + 1]
                    if next_hop == dst:
                        continue  # local delivery at the destination ToR
                    staging[node].setdefault(dst_rack, set()).add(next_hop)
    for switch, racks in staging.items():
        tables[switch].entries = {
            rack: tuple(sorted(hops)) for rack, hops in sorted(racks.items())
        }
    return tables


def total_state(tables: dict[str, ForwardingTable]) -> int:
    """Aggregate entry count across all switches."""
    return sum(t.size for t in tables.values())


class TableDrivenRouter(Router):
    """Forwards hop-by-hop from compiled tables.

    Each hop picks among the table's ECMP set by a stable hash of the
    flow key, mimicking hardware ECMP.  A hop-count guard catches
    forwarding loops (a miscompiled table raises instead of spinning).
    """

    def __init__(
        self,
        topo: Topology,
        tables: dict[str, ForwardingTable],
        max_hops: int = 16,
    ) -> None:
        super().__init__(topo)
        self.tables = tables
        self.max_hops = max_hops

    def paths(self, src: str, dst: str) -> list[Path]:
        # The table walk is per-flow; expose the flow-0 path as the
        # canonical single path (route() overrides per-flow anyway).
        return [self._walk(src, dst, flow_id=0)]

    def route(self, src: str, dst: str, flow_id: int = 0) -> Path:
        return self._walk(src, dst, flow_id)

    def _walk(self, src: str, dst: str, flow_id: int) -> Path:
        dst_rack = self.topo.rack(dst)
        if dst_rack is None:
            raise RoutingError(f"destination {dst!r} has no rack")
        path = [src]
        current = self.topo.tor_of(src)
        path.append(current)
        hops = 0
        while self.topo.rack(current) != dst_rack:
            table = self.tables.get(current)
            if table is None:
                raise RoutingError(f"no table for switch {current!r}")
            options = table.next_hops(dst_rack)
            current = options[stable_hash(src, dst, flow_id, hops) % len(options)]
            path.append(current)
            hops += 1
            if hops > self.max_hops:
                raise RoutingError(
                    f"forwarding loop: {src!r} → {dst!r} exceeded "
                    f"{self.max_hops} hops"
                )
        path.append(dst)
        return tuple(path)
