"""Routing abstractions shared by the packet- and flow-level simulators.

A :class:`Router` maps a (source server, destination server) pair to one
or more node paths through a :class:`~repro.topology.base.Topology`.
The packet simulator asks for a single path per flow (:meth:`route`);
the flow-level simulator asks for the full weighted path set
(:meth:`weighted_paths`) so it can split a flow's rate the way the
routing protocol would.

Path selection is deterministic: flows are spread across equal-cost
paths by a stable hash of the flow key, so simulations are reproducible.
"""

from __future__ import annotations

import abc
import zlib
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.topology.base import Topology

#: A path is the full node sequence, server to server.
Path = tuple[str, ...]


class RoutingError(ValueError):
    """Raised when no path exists or a router is misconfigured."""


def _path_crosses(affected: set[tuple[str, str]]) -> Callable[[Path], bool]:
    """Predicate: does a path traverse any of the affected directed links?"""

    def crosses(path: Path) -> bool:
        return any(
            (path[i], path[i + 1]) in affected for i in range(len(path) - 1)
        )

    return crosses


def stable_hash(*parts: object) -> int:
    """A deterministic 32-bit hash of the given parts.

    Python's builtin ``hash`` is salted per process for strings; CRC32
    over the repr keeps path selection reproducible across runs.
    """
    text = "\x00".join(repr(p) for p in parts)
    return zlib.crc32(text.encode())


@dataclass(frozen=True)
class WeightedPath:
    """A path with the fraction of the flow's traffic routed over it."""

    path: Path
    weight: float


class Router(abc.ABC):
    """Base class: path selection over a topology."""

    #: Cap on memoized per-flow route picks; hashing is re-done (still
    #: deterministically) once a run has seen this many distinct flows.
    ROUTE_CACHE_LIMIT = 1_000_000

    def __init__(self, topo: Topology) -> None:
        self.topo = topo
        self._cache: dict[tuple[str, str], list[Path]] = {}
        self._route_cache: dict[tuple[str, str, int], Path] = {}

    # -- interface -------------------------------------------------------------

    @abc.abstractmethod
    def paths(self, src: str, dst: str) -> list[Path]:
        """All paths this router may use between two servers (stable order)."""

    def route(self, src: str, dst: str, flow_id: int = 0) -> Path:
        """The single path used by flow ``flow_id`` (hash-based pick).

        The pick is memoized per ``(src, dst, flow_id)`` — the stable
        hash is pure, so caching it never changes which path a flow gets.
        """
        key = (src, dst, flow_id)
        pick = self._route_cache.get(key)
        if pick is None:
            options = self._cached_paths(src, dst)
            pick = options[stable_hash(src, dst, flow_id) % len(options)]
            if len(self._route_cache) < self.ROUTE_CACHE_LIMIT:
                self._route_cache[key] = pick
        return pick

    def weighted_paths(self, src: str, dst: str) -> list[WeightedPath]:
        """Paths with traffic split weights; defaults to an even ECMP split."""
        options = self._cached_paths(src, dst)
        share = 1.0 / len(options)
        return [WeightedPath(path=p, weight=share) for p in options]

    # -- runtime topology changes ---------------------------------------------------

    def invalidate_links(
        self, links: Iterable[tuple[str, str]], repaired: bool = False
    ) -> None:
        """React to links going down (or coming back) mid-run.

        On a **cut** (``repaired=False``) the invalidation is targeted:
        memoized path sets and per-flow route picks survive unless one of
        their paths crosses an affected link, so unaffected pairs keep
        their (still valid) routes and only severed pairs recompute over
        the surviving topology.

        On a **repair** (``repaired=True``) every cache is flushed: a
        restored link can shorten paths for pairs whose cached routes
        never touched it, so targeted filtering cannot identify the
        beneficiaries.

        Either way the router re-reads ``self.topo`` lazily, which the
        network keeps in sync with the live link state.
        """
        if repaired:
            self._cache.clear()
            self._route_cache.clear()
        else:
            affected = set()
            for u, v in links:
                affected.add((u, v))
                affected.add((v, u))
            crosses = _path_crosses(affected)
            self._cache = {
                key: paths
                for key, paths in self._cache.items()
                if not any(crosses(p) for p in paths)
            }
            self._route_cache = {
                key: pick
                for key, pick in self._route_cache.items()
                if not crosses(pick)
            }
        self._on_topology_change(repaired=repaired)

    def _on_topology_change(self, repaired: bool) -> None:
        """Hook for subclasses holding derived topology state (e.g. the
        ECMP switch graph or the VLB mesh-peer table)."""

    # -- helpers ------------------------------------------------------------------

    def _cached_paths(self, src: str, dst: str) -> list[Path]:
        key = (src, dst)
        cached = self._cache.get(key)
        if cached is None:
            cached = self.paths(src, dst)
            if not cached:
                raise RoutingError(f"no path from {src!r} to {dst!r}")
            self._cache[key] = cached
        return cached
