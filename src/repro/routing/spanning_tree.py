"""Single-spanning-tree (classic Ethernet) routing.

The naïve L2 baseline the paper dismisses in Section 3.4: Ethernet
builds one spanning tree, so only a small fraction of a mesh's links
carry traffic.  Included as a baseline and as the building block of the
SPAIN-style multi-tree router used in the prototype experiment.
"""

from __future__ import annotations

import networkx as nx

from repro.routing.base import Path, Router, RoutingError
from repro.topology.base import Topology


class SpanningTreeRouter(Router):
    """Routes every flow along one BFS spanning tree.

    ``root`` defaults to the first switch (deterministic); in real
    Ethernet the highest-priority bridge wins the root election.
    """

    def __init__(self, topo: Topology, root: str | None = None) -> None:
        super().__init__(topo)
        switches = topo.switches()
        if not switches:
            raise RoutingError("topology has no switches")
        self.root = root if root is not None else switches[0]
        if self.root not in topo.graph:
            raise RoutingError(f"unknown root {self.root!r}")
        # BFS tree over switches only, then hang the servers off their
        # access switches (servers are leaves by construction).
        switch_tree = nx.bfs_tree(topo.switch_graph(), self.root).to_undirected()
        self.tree = nx.Graph(switch_tree)
        for server in topo.servers():
            for neighbor in topo.graph.neighbors(server):
                self.tree.add_edge(server, neighbor)

    def paths(self, src: str, dst: str) -> list[Path]:
        try:
            return [tuple(nx.shortest_path(self.tree, src, dst))]
        except nx.NetworkXNoPath as exc:
            raise RoutingError(f"no tree path {src!r} → {dst!r}") from exc
