"""SPAIN-style multi-VLAN path exposure (Mudigonda et al., NSDI 2010).

The paper's prototype (Section 6) uses SPAIN's technique to let the
*application* pick among paths on commodity Ethernet: one VLAN per
spanning tree, each tree rooted at a different switch, exposed to the
host as separate virtual interfaces.  An application selects the direct
two-hop path or a specific indirect three-hop path by choosing the
virtual interface (= VLAN = tree).

:class:`SPAINRouter` reproduces this: it maintains one
:class:`~repro.routing.spanning_tree.SpanningTreeRouter` per VLAN and
routes each flow on the VLAN the caller names.
"""

from __future__ import annotations

from repro.routing.base import Path, Router, RoutingError
from repro.routing.spanning_tree import SpanningTreeRouter
from repro.topology.base import Topology


class SPAINRouter(Router):
    """One spanning tree per VLAN; the caller picks the VLAN per flow.

    ``roots`` defaults to every switch in the topology — the prototype's
    "spanning trees for the VLANs are rooted at different switches".
    """

    def __init__(self, topo: Topology, roots: list[str] | None = None) -> None:
        super().__init__(topo)
        if roots is None:
            roots = topo.switches()
        if not roots:
            raise RoutingError("need at least one VLAN root")
        self.vlans = [SpanningTreeRouter(topo, root=root) for root in roots]

    @property
    def num_vlans(self) -> int:
        return len(self.vlans)

    def paths(self, src: str, dst: str) -> list[Path]:
        """The distinct paths reachable across all VLANs (stable order)."""
        seen: dict[Path, None] = {}
        for vlan in self.vlans:
            seen.setdefault(vlan.paths(src, dst)[0], None)
        return list(seen)

    def route_on_vlan(self, src: str, dst: str, vlan: int) -> Path:
        """The path flow traffic takes when sent on virtual interface ``vlan``."""
        if not 0 <= vlan < len(self.vlans):
            raise RoutingError(f"VLAN {vlan} out of range 0..{len(self.vlans) - 1}")
        return self.vlans[vlan].paths(src, dst)[0]

    def best_vlan(self, src: str, dst: str) -> int:
        """The VLAN giving the fewest-hop path (the app's 'direct' pick)."""
        best_vlan, best_len = 0, float("inf")
        for index, vlan in enumerate(self.vlans):
            length = len(vlan.paths(src, dst)[0])
            if length < best_len:
                best_vlan, best_len = index, length
        return best_vlan
