"""k-shortest-paths routing (Jellyfish's preferred scheme).

Singla et al. showed random graphs need k-shortest-paths rather than
plain ECMP to exploit their path diversity; the paper's Table 9 notes
Jellyfish's diversity depends on this choice.

Yen's enumeration is the most expensive per-pair computation in the
routing layer, so with the artifact cache enabled the router routes
through the batched all-pairs table of
:func:`repro.routing.tables.kshortest_table` (built once per topology
fingerprint, shared across processes) instead of re-running
``nx.shortest_simple_paths`` per call.  The table replicates the
per-call enumeration exactly, so results are identical either way.
"""

from __future__ import annotations

from itertools import islice

import networkx as nx

from repro.cache import artifact_cache
from repro.routing.base import Path, Router
from repro.routing.tables import RouteTable, kshortest_table
from repro.topology.base import Topology


class KShortestPathsRouter(Router):
    """Hash flows over the ``k`` shortest simple paths per pair."""

    def __init__(self, topo: Topology, k: int = 8) -> None:
        super().__init__(topo)
        if k < 1:
            raise ValueError("k must be at least 1")
        self.k = k
        self._table: RouteTable | None = None

    def paths(self, src: str, dst: str) -> list[Path]:
        if artifact_cache().enabled:
            if self._table is None:
                self._table = kshortest_table(self.topo, self.k)
            entry = self._table.get((src, dst))
            if entry is not None:
                # Empty = unroutable; _cached_paths turns it into RoutingError.
                return list(entry)
        # Cache disabled, or an endpoint outside the server table.
        try:
            found = nx.shortest_simple_paths(self.topo.graph, src, dst)
            return [tuple(p) for p in islice(found, self.k)]
        except nx.NetworkXNoPath:
            return []

    def _on_topology_change(self, repaired: bool) -> None:
        # The graph content changed, so its fingerprint — and therefore
        # the right table — changed too.  Refetch lazily: a cut keys a
        # fresh (degraded) table, a full repair keys back to the
        # original one and hits the cache.
        self._table = None
