"""k-shortest-paths routing (Jellyfish's preferred scheme).

Singla et al. showed random graphs need k-shortest-paths rather than
plain ECMP to exploit their path diversity; the paper's Table 9 notes
Jellyfish's diversity depends on this choice.
"""

from __future__ import annotations

from itertools import islice

import networkx as nx

from repro.routing.base import Path, Router
from repro.topology.base import Topology


class KShortestPathsRouter(Router):
    """Hash flows over the ``k`` shortest simple paths per pair."""

    def __init__(self, topo: Topology, k: int = 8) -> None:
        super().__init__(topo)
        if k < 1:
            raise ValueError("k must be at least 1")
        self.k = k

    def paths(self, src: str, dst: str) -> list[Path]:
        generator = nx.shortest_simple_paths(self.topo.graph, src, dst)
        return [tuple(p) for p in islice(generator, self.k)]
