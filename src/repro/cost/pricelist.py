"""Hardware price list for the cost configurator — paper Section 4.4.

The paper prices Table 8 from late-2013/2014 vendor quotes (its refs
[2]–[12]): cut-through edge switches (Arista 7150 class), high-density
store-and-forward core switches (Cisco Nexus 7700 class), 10 G DWDM
transceivers, 80-channel DWDM muxes, EDFA amplifiers, and attenuators.
The quotes themselves are dead links, so this module carries documented
approximate street prices of the same part classes.  All Table 8
conclusions are *relative* (Quartz premium of roughly 7–17 %), so what
matters is the price ratios, which these figures preserve; every figure
is a dataclass field, so sensitivity studies can override any of them.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PriceList:
    """Unit prices in USD (approximate 2014 street prices)."""

    #: 64-port 10 GbE cut-through switch (Arista 7150S-64 class, ref [4]).
    cut_through_switch: float = 13_000.0
    #: High-port-count store-and-forward core switch, 768 × 10 G
    #: (Cisco Nexus 7700 class, ref [9]) — chassis + fabrics + line
    #: cards, fully loaded.
    core_switch: float = 300_000.0
    #: 48-port 1 GbE managed switch (prototype class).
    gige_switch: float = 1_500.0
    #: Short-reach 10 G optic (SR SFP+), per end.
    sr_transceiver: float = 225.0
    #: 40 G short-reach optic (QSFP+), per end.
    qsfp_transceiver: float = 450.0
    #: 10 G DWDM SFP+ transceiver (ref [7]), per end.  Priced at the
    #: bottom of the 2014 range — the paper's thesis is precisely that
    #: fibre-to-the-home volume has collapsed WDM part prices (Figure 1).
    dwdm_transceiver: float = 150.0
    #: 80-channel athermal AWG DWDM mux/demux (ref [8]).
    dwdm_mux: float = 1_500.0
    #: 80-channel EDFA amplifier (ref [12]).
    amplifier: float = 2_000.0
    #: Fixed fibre attenuator (ref [10]).
    attenuator: float = 40.0
    #: Fibre patch cable.
    fiber_cable: float = 30.0
    #: Direct-attach copper cable (server to ToR).
    dac_cable: float = 12.0


#: Default catalogue used by the configurator.
DEFAULT_PRICES = PriceList()
