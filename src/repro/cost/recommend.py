"""Deployment recommendation — the Section 4.4 configurator as a decision.

Table 8 is a static comparison; operators asked the paper's underlying
question: *given my datacenter, where (if anywhere) should Quartz go?*
:func:`recommend` answers it with the same machinery: price the
candidate deployments for the requested size, attach the expected
latency reduction, and pick the cheapest candidate that meets the
latency target (or explain why none does).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cost.bom import (
    BillOfMaterials,
    quartz_core_bom,
    quartz_edge_and_core_bom,
    quartz_edge_bom,
    quartz_ring_bom,
    three_tier_tree_bom,
    two_tier_tree_bom,
)
from repro.cost.configurator import PAPER_LATENCY_REDUCTIONS
from repro.cost.pricelist import DEFAULT_PRICES, PriceList


class RecommendationError(ValueError):
    """Raised for unanswerable recommendation requests."""


@dataclass(frozen=True)
class Candidate:
    """One deployment option, priced and scored."""

    name: str
    cost_per_server: float
    latency_reduction: float  # vs the tree baseline, fraction
    baseline: bool = False


@dataclass(frozen=True)
class Recommendation:
    """The configurator's answer."""

    num_servers: int
    utilization: str
    chosen: Candidate
    candidates: tuple[Candidate, ...]
    meets_target: bool

    @property
    def premium_over_baseline(self) -> float:
        base = next(c for c in self.candidates if c.baseline)
        return self.chosen.cost_per_server / base.cost_per_server - 1.0


def _size_class(num_servers: int) -> str:
    if num_servers <= 2_000:
        return "small"
    if num_servers <= 30_000:
        return "medium"
    return "large"


def candidates_for(
    num_servers: int,
    utilization: str = "low",
    prices: PriceList = DEFAULT_PRICES,
) -> list[Candidate]:
    """All deployments the configurator prices at this size.

    Latency reductions come from the Table 8 defaults for the matching
    size class (regenerable from the Figure 17 benchmarks).
    """
    if num_servers < 1:
        raise RecommendationError("need at least one server")
    if utilization not in ("low", "high"):
        raise RecommendationError(f"utilization must be low/high, got {utilization!r}")

    size = _size_class(num_servers)
    reductions = dict(PAPER_LATENCY_REDUCTIONS)
    out: list[Candidate] = []
    if size == "small":
        tree: BillOfMaterials = two_tier_tree_bom(num_servers)
        out.append(Candidate("two-tier tree", tree.cost_per_server(num_servers, prices), 0.0, baseline=True))
        ring = quartz_ring_bom(math.ceil(num_servers / 32), num_servers)
        out.append(
            Candidate(
                "single Quartz ring",
                ring.cost_per_server(num_servers, prices),
                reductions[("small", utilization)],
            )
        )
        return out

    tree = three_tier_tree_bom(num_servers)
    out.append(Candidate("three-tier tree", tree.cost_per_server(num_servers, prices), 0.0, baseline=True))
    out.append(
        Candidate(
            "Quartz in edge",
            quartz_edge_bom(num_servers).cost_per_server(num_servers, prices),
            reductions[("medium", utilization)],
        )
    )
    out.append(
        Candidate(
            "Quartz in core",
            quartz_core_bom(num_servers).cost_per_server(num_servers, prices),
            reductions[("large", "low")],
        )
    )
    out.append(
        Candidate(
            "Quartz in edge and core",
            quartz_edge_and_core_bom(num_servers).cost_per_server(num_servers, prices),
            reductions[("large", "high")],
        )
    )
    return out


def recommend(
    num_servers: int,
    latency_reduction_target: float = 0.0,
    utilization: str = "low",
    prices: PriceList = DEFAULT_PRICES,
) -> Recommendation:
    """Cheapest deployment meeting ``latency_reduction_target``.

    A target of 0 returns the cheapest option overall (usually the
    tree); 0.5 asks for the paper's headline "50 % in typical
    scenarios".  If no candidate meets the target, the best-reducing
    candidate is returned with ``meets_target=False``.
    """
    if not 0.0 <= latency_reduction_target < 1.0:
        raise RecommendationError("target must be in [0, 1)")
    options = candidates_for(num_servers, utilization, prices)
    qualifying = [c for c in options if c.latency_reduction >= latency_reduction_target]
    if qualifying:
        chosen = min(qualifying, key=lambda c: c.cost_per_server)
        meets = True
    else:
        chosen = max(options, key=lambda c: c.latency_reduction)
        meets = False
    return Recommendation(
        num_servers=num_servers,
        utilization=utilization,
        chosen=chosen,
        candidates=tuple(options),
        meets_target=meets,
    )
