"""Cost modelling: price list, bills of materials, and the Table 8 configurator."""

from repro.cost.bom import (
    BillOfMaterials,
    BOMError,
    quartz_core_bom,
    quartz_edge_and_core_bom,
    quartz_edge_bom,
    quartz_ring_bom,
    three_tier_tree_bom,
    two_tier_tree_bom,
)
from repro.cost.configurator import (
    PAPER_LATENCY_REDUCTIONS,
    ScenarioRow,
    format_table8,
    table8,
)
from repro.cost.pricelist import DEFAULT_PRICES, PriceList
from repro.cost.recommend import (
    Candidate,
    Recommendation,
    RecommendationError,
    candidates_for,
    recommend,
)

__all__ = [
    "BillOfMaterials",
    "Candidate",
    "Recommendation",
    "RecommendationError",
    "candidates_for",
    "recommend",
    "BOMError",
    "DEFAULT_PRICES",
    "PAPER_LATENCY_REDUCTIONS",
    "PriceList",
    "ScenarioRow",
    "format_table8",
    "quartz_core_bom",
    "quartz_edge_and_core_bom",
    "quartz_edge_bom",
    "quartz_ring_bom",
    "table8",
    "three_tier_tree_bom",
    "two_tier_tree_bom",
]
