"""The cost/latency configurator — paper Section 4.4, Table 8.

"Datacenter providers must balance the gain from reducing end-to-end
latency with the cost of using low-latency hardware."  The configurator
prices both the baseline tree and the Quartz alternative for each
datacenter size, and pairs the cost with the latency reduction measured
by this repository's own simulations (Section 7 benchmarks).

The latency-reduction defaults are the paper's Table 8 figures; the
Figure 17 benchmark recomputes our measured equivalents so the table can
be regenerated end-to-end from this repo.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cost.bom import (
    BillOfMaterials,
    quartz_core_bom,
    quartz_edge_and_core_bom,
    quartz_edge_bom,
    quartz_ring_bom,
    three_tier_tree_bom,
    two_tier_tree_bom,
)
from repro.cost.pricelist import DEFAULT_PRICES, PriceList


@dataclass(frozen=True)
class ScenarioRow:
    """One Table 8 comparison: baseline vs Quartz for a DC size/load."""

    datacenter: str
    num_servers: int
    utilization: str  # "low" (≈50 % link load) or "high" (≈70 %)
    baseline_name: str
    baseline_cost_per_server: float
    quartz_name: str
    quartz_cost_per_server: float
    latency_reduction: float  # fraction, e.g. 0.33

    @property
    def cost_premium(self) -> float:
        """Quartz cost increase over the baseline (fraction)."""
        return self.quartz_cost_per_server / self.baseline_cost_per_server - 1.0


#: Paper Table 8 latency-reduction figures, keyed by
#: (datacenter, utilization).  The Figure 17/18 benchmarks measure our
#: own equivalents; pass them to :func:`table8` to regenerate the table
#: entirely from this repository's simulations.
PAPER_LATENCY_REDUCTIONS: dict[tuple[str, str], float] = {
    ("small", "low"): 0.33,
    ("small", "high"): 0.50,
    ("medium", "low"): 0.20,
    ("medium", "high"): 0.40,
    ("large", "low"): 0.70,
    ("large", "high"): 0.74,
}


def _small_scenario(
    utilization: str, prices: PriceList, reduction: float
) -> ScenarioRow:
    servers = 500
    baseline = two_tier_tree_bom(servers)
    ring_size = math.ceil(servers / 32)
    quartz = quartz_ring_bom(ring_size, servers)
    return ScenarioRow(
        datacenter="small",
        num_servers=servers,
        utilization=utilization,
        baseline_name="two-tier tree",
        baseline_cost_per_server=baseline.cost_per_server(servers, prices),
        quartz_name="single Quartz ring",
        quartz_cost_per_server=quartz.cost_per_server(servers, prices),
        latency_reduction=reduction,
    )


def _medium_scenario(
    utilization: str, prices: PriceList, reduction: float
) -> ScenarioRow:
    servers = 10_000
    baseline = three_tier_tree_bom(servers)
    quartz = quartz_edge_bom(servers)
    return ScenarioRow(
        datacenter="medium",
        num_servers=servers,
        utilization=utilization,
        baseline_name="three-tier tree",
        baseline_cost_per_server=baseline.cost_per_server(servers, prices),
        quartz_name="Quartz in edge",
        quartz_cost_per_server=quartz.cost_per_server(servers, prices),
        latency_reduction=reduction,
    )


def _large_scenario(
    utilization: str, prices: PriceList, reduction: float
) -> ScenarioRow:
    servers = 100_000
    baseline = three_tier_tree_bom(servers)
    if utilization == "low":
        quartz_name = "Quartz in core"
        quartz: BillOfMaterials = quartz_core_bom(servers)
    else:
        quartz_name = "Quartz in edge and core"
        quartz = quartz_edge_and_core_bom(servers)
    return ScenarioRow(
        datacenter="large",
        num_servers=servers,
        utilization=utilization,
        baseline_name="three-tier tree",
        baseline_cost_per_server=baseline.cost_per_server(servers, prices),
        quartz_name=quartz_name,
        quartz_cost_per_server=quartz.cost_per_server(servers, prices),
        latency_reduction=reduction,
    )


def table8(
    prices: PriceList = DEFAULT_PRICES,
    latency_reductions: dict[tuple[str, str], float] | None = None,
) -> list[ScenarioRow]:
    """Build the full Table 8: six scenarios across three DC sizes.

    ``latency_reductions`` overrides the paper's figures with measured
    ones (keys: ``(datacenter, utilization)``).
    """
    reductions = dict(PAPER_LATENCY_REDUCTIONS)
    if latency_reductions:
        reductions.update(latency_reductions)
    rows = []
    for utilization in ("low", "high"):
        rows.append(_small_scenario(utilization, prices, reductions[("small", utilization)]))
    for utilization in ("low", "high"):
        rows.append(_medium_scenario(utilization, prices, reductions[("medium", utilization)]))
    for utilization in ("low", "high"):
        rows.append(_large_scenario(utilization, prices, reductions[("large", utilization)]))
    return rows


def format_table8(rows: list[ScenarioRow]) -> str:
    """Render Table 8 as aligned text (the benchmark prints this)."""
    lines = [
        f"{'DC size':<18}{'Util':<6}{'Topology':<26}{'LatRed':>7}{'$/server':>10}",
        "-" * 67,
    ]
    for row in rows:
        lines.append(
            f"{row.datacenter + f' ({row.num_servers})':<18}{row.utilization:<6}"
            f"{row.baseline_name:<26}{'':>7}{row.baseline_cost_per_server:>10.0f}"
        )
        lines.append(
            f"{'':<18}{'':<6}{row.quartz_name:<26}"
            f"{row.latency_reduction * 100:>6.0f}%{row.quartz_cost_per_server:>10.0f}"
        )
    return "\n".join(lines)
