"""Bills of materials for the deployment scenarios of Table 8.

Every builder returns a :class:`BillOfMaterials` — a typed count of
parts — priced against a :class:`~repro.cost.pricelist.PriceList`.
Sizing conventions (documented here because the paper only gives
results, not its arithmetic):

* 64-port cut-through switches in edge/aggregation tiers, split 48
  server-facing / 16 uplink ports (3:1 oversubscription) in trees;
* 768 × 10 G store-and-forward switches in tree cores;
* Quartz rings sized at 32 servers + 32 mesh ports per switch (the
  paper's canonical split), with DWDM transceivers per rack pair, one
  WDM mux per switch per fibre ring, amplifiers per Section 3.3's
  spacing, and one attenuator per transceiver;
* servers attach with DAC cables; switch-to-switch links use fibre with
  an optic at each end (SR for tree tiers, QSFP for 40 G uplinks, DWDM
  inside Quartz rings).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.channels import wavelengths_required, WDM_CHANNEL_LIMIT
from repro.core.optical import amplifiers_required
from repro.cost.pricelist import DEFAULT_PRICES, PriceList


class BOMError(ValueError):
    """Raised for unsatisfiable sizing requests."""


@dataclass
class BillOfMaterials:
    """Part counts for one network build."""

    items: dict[str, int] = field(default_factory=dict)

    def add(self, item: str, count: int) -> None:
        if count < 0:
            raise BOMError(f"negative count for {item!r}")
        self.items[item] = self.items.get(item, 0) + count

    def __add__(self, other: "BillOfMaterials") -> "BillOfMaterials":
        merged = BillOfMaterials(dict(self.items))
        for item, count in other.items.items():
            merged.add(item, count)
        return merged

    def count(self, item: str) -> int:
        return self.items.get(item, 0)

    def total_cost(self, prices: PriceList = DEFAULT_PRICES) -> float:
        """Price the BOM; unknown part names raise."""
        total = 0.0
        for item, count in self.items.items():
            unit = getattr(prices, item, None)
            if unit is None:
                raise BOMError(f"no price for part {item!r}")
            total += unit * count
        return total

    def cost_per_server(
        self, num_servers: int, prices: PriceList = DEFAULT_PRICES
    ) -> float:
        if num_servers < 1:
            raise BOMError("need at least one server")
        return self.total_cost(prices) / num_servers


# -- tree builders ------------------------------------------------------------------


def two_tier_tree_bom(
    num_servers: int,
    tor_server_ports: int = 48,
    tor_uplink_ports: int = 16,
    agg_ports: int = 64,
) -> BillOfMaterials:
    """Two-tier tree: cut-through ToRs under cut-through aggregation."""
    if num_servers < 1:
        raise BOMError("need at least one server")
    bom = BillOfMaterials()
    tors = math.ceil(num_servers / tor_server_ports)
    uplinks = tors * tor_uplink_ports
    aggs = max(1, math.ceil(uplinks / agg_ports))
    bom.add("cut_through_switch", tors + aggs)
    bom.add("sr_transceiver", uplinks * 2)
    bom.add("fiber_cable", uplinks)
    bom.add("dac_cable", num_servers)
    return bom


def three_tier_tree_bom(
    num_servers: int,
    tor_server_ports: int = 48,
    tor_uplink_ports: int = 16,
    agg_down_ports: int = 48,
    agg_uplink_ports: int = 16,
    core_ports: int = 768,
) -> BillOfMaterials:
    """Three-tier tree: cut-through edge/agg, store-and-forward core."""
    bom = BillOfMaterials()
    tors = math.ceil(num_servers / tor_server_ports)
    tor_uplinks = tors * tor_uplink_ports
    aggs = max(1, math.ceil(tor_uplinks / agg_down_ports))
    agg_uplinks = aggs * agg_uplink_ports
    cores = max(1, math.ceil(agg_uplinks / core_ports))
    bom.add("cut_through_switch", tors + aggs)
    bom.add("core_switch", cores)
    bom.add("sr_transceiver", (tor_uplinks + agg_uplinks) * 2)
    bom.add("fiber_cable", tor_uplinks + agg_uplinks)
    bom.add("dac_cable", num_servers)
    return bom


# -- Quartz builders -----------------------------------------------------------------


def quartz_ring_bom(
    num_switches: int,
    servers: int,
    include_server_cables: bool = True,
) -> BillOfMaterials:
    """One Quartz ring of ``num_switches`` (single-ToR racks).

    Optics per Section 3: one DWDM transceiver per switch per peer, one
    WDM mux per switch per parallel fibre ring, amplifiers every two
    switches per ring, one attenuator per transceiver, and one fibre
    segment per switch per ring.
    """
    if num_switches < 2:
        raise BOMError("a ring needs at least two switches")
    bom = BillOfMaterials()
    bom.add("cut_through_switch", num_switches)
    transceivers = num_switches * (num_switches - 1)
    bom.add("dwdm_transceiver", transceivers)
    bom.add("attenuator", transceivers)
    rings = max(1, math.ceil(wavelengths_required(num_switches) / WDM_CHANNEL_LIMIT))
    bom.add("dwdm_mux", num_switches * rings)
    bom.add("amplifier", amplifiers_required(num_switches) * rings)
    bom.add("fiber_cable", num_switches * rings)
    if include_server_cables:
        bom.add("dac_cable", servers)
    return bom


def quartz_edge_bom(
    num_servers: int,
    ring_size: int = 16,
    servers_per_switch: int = 32,
    uplinks_per_switch: int = 2,
    core_ports_40g: int = 192,
) -> BillOfMaterials:
    """Quartz rings replacing the ToR + aggregation tiers, under a
    store-and-forward core (Figure 15(c))."""
    bom = BillOfMaterials()
    servers_per_ring = ring_size * servers_per_switch
    rings = math.ceil(num_servers / servers_per_ring)
    for _ in range(rings):
        bom += quartz_ring_bom(ring_size, 0, include_server_cables=False)
    uplinks = rings * ring_size * uplinks_per_switch  # 40 G links to cores
    cores = max(1, math.ceil(uplinks / core_ports_40g))
    bom.add("core_switch", cores)
    bom.add("qsfp_transceiver", uplinks * 2)
    bom.add("fiber_cable", uplinks)
    bom.add("dac_cable", num_servers)
    return bom


def quartz_core_bom(
    num_servers: int,
    tor_server_ports: int = 48,
    tor_uplink_ports: int = 16,
    agg_down_ports: int = 48,
    agg_uplink_ports: int = 16,
    core_ring_switch_ports: int = 16,
) -> BillOfMaterials:
    """Three-tier tree with the core tier replaced by Quartz rings of
    40 G cut-through switches (Figure 15(b)).

    Each replacement ring switch has 16 × 40 G ports, split 8 facing the
    aggregation tier and 8 into the mesh (ring size 9 per the canonical
    half/half split).
    """
    bom = BillOfMaterials()
    tors = math.ceil(num_servers / tor_server_ports)
    tor_uplinks = tors * tor_uplink_ports
    aggs = max(1, math.ceil(tor_uplinks / agg_down_ports))
    agg_uplinks_40g = aggs * agg_uplink_ports // 4  # 4 × 10 G lanes per 40 G
    bom.add("cut_through_switch", tors + aggs)
    bom.add("sr_transceiver", tor_uplinks * 2)
    bom.add("fiber_cable", tor_uplinks)

    half = core_ring_switch_ports // 2
    ring_size = half + 1
    down_ports_per_ring = ring_size * half
    rings = max(1, math.ceil(agg_uplinks_40g / down_ports_per_ring))
    for _ in range(rings):
        bom += quartz_ring_bom(ring_size, 0, include_server_cables=False)
    bom.add("qsfp_transceiver", agg_uplinks_40g * 2)
    bom.add("fiber_cable", agg_uplinks_40g)
    bom.add("dac_cable", num_servers)
    return bom


def quartz_edge_and_core_bom(
    num_servers: int,
    ring_size: int = 16,
    servers_per_switch: int = 32,
    uplinks_per_switch: int = 2,
    core_ring_switch_ports: int = 16,
) -> BillOfMaterials:
    """Quartz at both tiers (Figure 15(d))."""
    bom = BillOfMaterials()
    servers_per_ring = ring_size * servers_per_switch
    edge_rings = math.ceil(num_servers / servers_per_ring)
    for _ in range(edge_rings):
        bom += quartz_ring_bom(ring_size, 0, include_server_cables=False)
    uplinks = edge_rings * ring_size * uplinks_per_switch  # 40 G

    half = core_ring_switch_ports // 2
    core_ring_size = half + 1
    down_per_core_ring = core_ring_size * half
    core_rings = max(1, math.ceil(uplinks / down_per_core_ring))
    for _ in range(core_rings):
        bom += quartz_ring_bom(core_ring_size, 0, include_server_cables=False)
    bom.add("qsfp_transceiver", uplinks * 2)
    bom.add("fiber_cable", uplinks)
    bom.add("dac_cable", num_servers)
    return bom
