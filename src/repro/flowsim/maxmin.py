"""Max-min fair rate allocation by progressive filling.

The flow-level counterpart to the packet simulator: given flows with
(possibly multipath, weighted) routes and per-flow demand caps, raise
every unfrozen flow's rate in lockstep; when a link saturates, freeze
the flows crossing it; repeat.  This is the textbook water-filling
algorithm, implemented over a sparse link × subflow incidence matrix so
Quartz-scale instances (tens of thousands of subflows) solve quickly.

Used for the paper's bisection-bandwidth study (Section 5.1, Figure 10),
where TCP-like fair sharing is what the normalized-throughput metric
abstracts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.routing.base import Path, WeightedPath


class FlowSimError(ValueError):
    """Raised for malformed flow or capacity specifications."""


@dataclass(frozen=True)
class Flow:
    """One unidirectional flow: weighted paths plus a demand cap (bps)."""

    flow_id: int
    paths: tuple[WeightedPath, ...]
    demand: float

    def __post_init__(self) -> None:
        if not self.paths:
            raise FlowSimError(f"flow {self.flow_id} has no paths")
        total = sum(p.weight for p in self.paths)
        # Each weight carries its own rounding error, so the tolerance
        # must grow with the split width: 64 paths of 1/64 can drift
        # past a fixed 1e-9 while still being an exact even split.
        if abs(total - 1.0) > 1e-9 * max(1.0, len(self.paths)):
            raise FlowSimError(
                f"flow {self.flow_id} path weights sum to {total}, expected 1"
            )
        if self.demand <= 0:
            raise FlowSimError(f"flow {self.flow_id} demand must be positive")


def flow_from_single_path(flow_id: int, path: Path, demand: float) -> Flow:
    """Convenience: a flow pinned to one path."""
    return Flow(flow_id=flow_id, paths=(WeightedPath(path, 1.0),), demand=demand)


def _directed_links(path: Path) -> list[tuple[str, str]]:
    return [(path[i], path[i + 1]) for i in range(len(path) - 1)]


def max_min_rates(
    flows: list[Flow],
    capacities: dict[tuple[str, str], float],
) -> dict[int, float]:
    """Allocate max-min fair rates.

    ``capacities`` maps *directed* links to bps.  Each flow's traffic is
    split over its paths per the path weights (the split ratio is fixed —
    it models the routing protocol, not the transport).  Returns
    flow_id → achieved rate.

    Raises :class:`FlowSimError` if a flow crosses a link that has no
    capacity entry.
    """
    if not flows:
        return {}

    # Build the link × subflow incidence with per-subflow weights.
    link_index: dict[tuple[str, str], int] = {}
    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    for f_idx, flow in enumerate(flows):
        for wp in flow.paths:
            if wp.weight == 0.0:
                continue
            for link in _directed_links(wp.path):
                if link not in capacities:
                    raise FlowSimError(f"flow {flow.flow_id} uses unknown link {link}")
                l_idx = link_index.setdefault(link, len(link_index))
                rows.append(l_idx)
                cols.append(f_idx)
                vals.append(wp.weight)

    n_flows = len(flows)
    n_links = len(link_index)
    demands = np.array([f.demand for f in flows])
    rates = np.zeros(n_flows)
    active = np.ones(n_flows, dtype=bool)

    if n_links == 0:
        # Degenerate: no links touched (empty paths) — everyone gets demand.
        return {f.flow_id: f.demand for f in flows}

    a = sparse.csr_matrix(
        (vals, (rows, cols)), shape=(n_links, n_flows)
    )
    cap = np.zeros(n_links)
    for link, idx in link_index.items():
        cap[idx] = capacities[link]
        if cap[idx] <= 0:
            raise FlowSimError(f"link {link} has non-positive capacity")

    # Progressive filling: all active flows share a common increment.
    for _ in range(n_flows + n_links + 1):
        if not active.any():
            break
        load = a @ rates
        active_weight = a @ active.astype(float)
        headroom = cap - load
        # Numerical guard: tiny negative headroom from float error.
        headroom = np.maximum(headroom, 0.0)
        with np.errstate(divide="ignore", invalid="ignore"):
            per_link_increment = np.where(
                active_weight > 1e-12, headroom / active_weight, np.inf
            )
        link_limit = float(per_link_increment.min()) if n_links else np.inf
        demand_gap = np.where(active, demands - rates, np.inf)
        demand_limit = float(demand_gap.min())
        increment = min(link_limit, demand_limit)
        if not np.isfinite(increment):
            break
        rates = np.where(active, rates + increment, rates)

        # Freeze demand-satisfied flows.
        active &= rates < demands - 1e-9
        # Freeze flows crossing saturated links.
        load = a @ rates
        saturated = load >= cap - 1e-6 * np.maximum(cap, 1.0)
        if saturated.any():
            touched = np.asarray(
                (a[saturated].T @ np.ones(int(saturated.sum()))) > 0
            ).ravel()
            active &= ~touched
        if increment <= 0:
            # No progress possible (all remaining flows blocked).
            break

    return {flow.flow_id: float(rates[i]) for i, flow in enumerate(flows)}


def max_min_rates_multipath(
    flows: list[Flow],
    capacities: dict[tuple[str, str], float],
) -> dict[int, float]:
    """Max-min allocation where flows spill onto detours adaptively.

    :func:`max_min_rates` fixes the split ratio across a flow's paths
    (modelling a static routing split): one saturated detour then caps
    the whole flow.  This variant models adaptive multipath (the
    paper's VLB with a demand-adaptive ``k``): each flow first fills its
    *primary* path (its first, shortest one), and whatever demand
    remains spills onto the detour paths over the residual capacity.
    Detours cost extra fabric capacity (two channels instead of one), so
    filling the direct paths first is both what real adaptive VLB does
    and what maximizes delivered throughput.

    Path weights are ignored; only the path order and set matter.
    """
    if not flows:
        return {}

    # Phase 1: every flow on its primary path alone.
    primary = [
        Flow(f.flow_id, (WeightedPath(f.paths[0].path, 1.0),), f.demand)
        for f in flows
    ]
    phase1 = max_min_rates(primary, capacities)

    # Residual capacity after the primary allocation.
    residual = dict(capacities)
    for f in flows:
        rate = phase1[f.flow_id]
        for link in _directed_links(f.paths[0].path):
            residual[link] = max(0.0, residual[link] - rate)

    # Phase 2: unsatisfied flows share the residual over their detours,
    # all detour subflows of a flow rising together (they are
    # symmetric: same length, disjoint middles).
    leftovers = []
    for f in flows:
        gap = f.demand - phase1[f.flow_id]
        if gap > 1e-9 and len(f.paths) > 1:
            share = 1.0 / (len(f.paths) - 1)
            leftovers.append(
                Flow(
                    f.flow_id,
                    tuple(WeightedPath(p.path, share) for p in f.paths[1:]),
                    gap,
                )
            )
    phase2: dict[int, float] = {}
    if leftovers:
        phase2 = _equal_rise_subflows(leftovers, residual)

    return {
        f.flow_id: phase1[f.flow_id] + phase2.get(f.flow_id, 0.0) for f in flows
    }


def _equal_rise_subflows(
    flows: list[Flow],
    capacities: dict[tuple[str, str], float],
) -> dict[int, float]:
    """Water-filling where each flow's subflows rise together but freeze
    independently when their own path saturates."""
    link_index: dict[tuple[str, str], int] = {}
    sub_links: list[list[int]] = []
    sub_flow: list[int] = []
    for f_idx, flow in enumerate(flows):
        for wp in flow.paths:
            links = []
            for link in _directed_links(wp.path):
                if link not in capacities:
                    raise FlowSimError(f"flow {flow.flow_id} uses unknown link {link}")
                links.append(link_index.setdefault(link, len(link_index)))
            sub_links.append(links)
            sub_flow.append(f_idx)

    n_subs = len(sub_links)
    n_links = len(link_index)
    cap = np.zeros(n_links)
    for link, idx in link_index.items():
        cap[idx] = capacities[link]

    rows = [l for links in sub_links for l in links]
    cols = [s for s, links in enumerate(sub_links) for _ in links]
    a = sparse.csr_matrix((np.ones(len(rows)), (rows, cols)), shape=(n_links, n_subs))

    flow_of = np.array(sub_flow)
    demands = np.array([f.demand for f in flows])
    n_flows = len(flows)
    sub_rates = np.zeros(n_subs)
    active = np.ones(n_subs, dtype=bool)
    # Subflows whose path crosses an already-saturated link can never rise.
    zero_links = cap <= 1e-9
    if zero_links.any():
        blocked = np.asarray(
            (a[zero_links].T @ np.ones(int(zero_links.sum()))) > 0
        ).ravel()
        active &= ~blocked

    for _ in range(n_subs + n_links + 1):
        if not active.any():
            break
        active_f = active.astype(float)
        load = a @ sub_rates
        on_link = a @ active_f
        headroom = np.maximum(cap - load, 0.0)
        with np.errstate(divide="ignore", invalid="ignore"):
            link_inc = np.where(on_link > 1e-12, headroom / on_link, np.inf)
        flow_totals = np.bincount(flow_of, weights=sub_rates, minlength=n_flows)
        flow_active = np.bincount(flow_of, weights=active_f, minlength=n_flows)
        gap = demands - flow_totals
        with np.errstate(divide="ignore", invalid="ignore"):
            demand_inc = np.where(flow_active > 1e-12, gap / flow_active, np.inf)
        increment = min(
            float(link_inc.min()) if n_links else np.inf,
            float(demand_inc.min()),
        )
        if not np.isfinite(increment) or increment < 0:
            break
        sub_rates = np.where(active, sub_rates + increment, sub_rates)

        load = a @ sub_rates
        saturated = load >= cap - 1e-6 * np.maximum(cap, 1.0)
        if saturated.any():
            touched = np.asarray(
                (a[saturated].T @ np.ones(int(saturated.sum()))) > 0
            ).ravel()
            active &= ~touched
        flow_totals = np.bincount(flow_of, weights=sub_rates, minlength=n_flows)
        satisfied = flow_totals >= demands - 1e-9
        active &= ~satisfied[flow_of]
        if increment == 0:
            break

    totals = np.bincount(flow_of, weights=sub_rates, minlength=n_flows)
    return {flow.flow_id: float(totals[i]) for i, flow in enumerate(flows)}


def capacities_of(topo) -> dict[tuple[str, str], float]:
    """Directed capacity map of a :class:`~repro.topology.base.Topology`."""
    caps: dict[tuple[str, str], float] = {}
    for link in topo.links():
        caps[(link.u, link.v)] = link.capacity
        caps[(link.v, link.u)] = link.capacity
    return caps
