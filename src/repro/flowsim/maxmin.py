"""Max-min fair rate allocation by progressive filling.

The flow-level counterpart to the packet simulator: given flows with
(possibly multipath, weighted) routes and per-flow demand caps, raise
every unfrozen flow's rate in lockstep; when a link saturates, freeze
the flows crossing it; repeat.  This is the textbook water-filling
algorithm, implemented over a sparse link × subflow incidence matrix so
Quartz-scale instances (tens of thousands of subflows) solve quickly.

Used for the paper's bisection-bandwidth study (Section 5.1, Figure 10),
where TCP-like fair sharing is what the normalized-throughput metric
abstracts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.routing.base import Path, WeightedPath


class FlowSimError(ValueError):
    """Raised for malformed flow or capacity specifications."""


@dataclass(frozen=True)
class Flow:
    """One unidirectional flow: weighted paths plus a demand cap (bps)."""

    flow_id: int
    paths: tuple[WeightedPath, ...]
    demand: float

    def __post_init__(self) -> None:
        if not self.paths:
            raise FlowSimError(f"flow {self.flow_id} has no paths")
        total = sum(p.weight for p in self.paths)
        # Each weight carries its own rounding error, so the tolerance
        # must grow with the split width: 64 paths of 1/64 can drift
        # past a fixed 1e-9 while still being an exact even split.
        if abs(total - 1.0) > 1e-9 * max(1.0, len(self.paths)):
            raise FlowSimError(
                f"flow {self.flow_id} path weights sum to {total}, expected 1"
            )
        if self.demand <= 0:
            raise FlowSimError(f"flow {self.flow_id} demand must be positive")


def flow_from_single_path(flow_id: int, path: Path, demand: float) -> Flow:
    """Convenience: a flow pinned to one path."""
    return Flow(flow_id=flow_id, paths=(WeightedPath(path, 1.0),), demand=demand)


def _directed_links(path: Path) -> list[tuple[str, str]]:
    return [(path[i], path[i + 1]) for i in range(len(path) - 1)]


def _build_incidence(
    flows: list[Flow],
    capacities: dict[tuple[str, str], float],
) -> "tuple[sparse.csr_matrix, dict[tuple[str, str], int]]":
    """Link × flow incidence with per-subflow weights, plus the link index.

    Raises :class:`FlowSimError` if a flow crosses a link that has no
    capacity entry.  The link index assigns rows in first-touch order,
    so identical flow lists always produce identical matrices.
    """
    link_index: dict[tuple[str, str], int] = {}
    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    for f_idx, flow in enumerate(flows):
        for wp in flow.paths:
            if wp.weight == 0.0:
                continue
            for link in _directed_links(wp.path):
                if link not in capacities:
                    raise FlowSimError(f"flow {flow.flow_id} uses unknown link {link}")
                l_idx = link_index.setdefault(link, len(link_index))
                rows.append(l_idx)
                cols.append(f_idx)
                vals.append(wp.weight)
    a = sparse.csr_matrix(
        (vals, (rows, cols)), shape=(len(link_index), len(flows))
    )
    return a, link_index


def _waterfill(
    a: "sparse.csr_matrix",
    cap: np.ndarray,
    demands: np.ndarray,
    at: "sparse.csr_matrix | None" = None,
) -> np.ndarray:
    """Progressive filling over a prebuilt incidence; returns per-flow rates.

    This is the loop :func:`max_min_rates` has always run, factored out
    so the incremental solver (:class:`ResidualSolver`) can re-run it
    against mutated capacities without rebuilding the incidence.  One
    extension: links with (numerically) zero capacity — a failed fibre
    in the hybrid engine's capacity map — permanently freeze the flows
    crossing them at rate zero instead of raising, matching what the
    fluid model means by a dead link.  With every capacity positive the
    arithmetic is unchanged operation for operation.

    ``at`` is the transpose of ``a`` in CSR form; callers that re-solve
    repeatedly (the hybrid engine's epoch loop) pass it in so freezing
    "flows touching these links" is one matvec instead of a sparse
    fancy-index per iteration.  Every incidence entry is a positive path
    weight, so ``(at @ mask) > 0`` marks exactly the flows crossing a
    masked link — the same set the sliced form computed.
    """
    n_links, n_flows = a.shape
    if at is None:
        at = a.T.tocsr()
    rates = np.zeros(n_flows)
    active = np.ones(n_flows, dtype=bool)

    dead = cap <= 1e-12
    if dead.any():
        blocked = np.asarray(at @ dead.astype(float)).ravel() > 0
        active &= ~blocked

    # Progressive filling: all active flows share a common increment.
    # ``load`` is carried across iterations: the value computed after a
    # rate update is exactly the value the next iteration starts from.
    load = a @ rates
    for _ in range(n_flows + n_links + 1):
        if not active.any():
            break
        active_weight = a @ active.astype(float)
        headroom = cap - load
        # Numerical guard: tiny negative headroom from float error.
        headroom = np.maximum(headroom, 0.0)
        with np.errstate(divide="ignore", invalid="ignore"):
            per_link_increment = np.where(
                active_weight > 1e-12, headroom / active_weight, np.inf
            )
        link_limit = float(per_link_increment.min()) if n_links else np.inf
        demand_gap = np.where(active, demands - rates, np.inf)
        demand_limit = float(demand_gap.min())
        increment = min(link_limit, demand_limit)
        if not np.isfinite(increment):
            break
        rates = np.where(active, rates + increment, rates)

        # Freeze demand-satisfied flows.
        active &= rates < demands - 1e-9
        # Freeze flows crossing saturated links.
        load = a @ rates
        saturated = load >= cap - 1e-6 * np.maximum(cap, 1.0)
        if saturated.any():
            touched = np.asarray(at @ saturated.astype(float)).ravel() > 0
            active &= ~touched
        if increment <= 0:
            # No progress possible (all remaining flows blocked).
            break
    return rates


def max_min_rates(
    flows: list[Flow],
    capacities: dict[tuple[str, str], float],
) -> dict[int, float]:
    """Allocate max-min fair rates.

    ``capacities`` maps *directed* links to bps.  Each flow's traffic is
    split over its paths per the path weights (the split ratio is fixed —
    it models the routing protocol, not the transport).  Returns
    flow_id → achieved rate.

    Raises :class:`FlowSimError` if a flow crosses a link that has no
    capacity entry or whose capacity entry is non-positive (the
    :class:`ResidualSolver` is the API that tolerates dead links).
    """
    if not flows:
        return {}

    a, link_index = _build_incidence(flows, capacities)
    if not link_index:
        # Degenerate: no links touched (empty paths) — everyone gets demand.
        return {f.flow_id: f.demand for f in flows}

    cap = np.zeros(len(link_index))
    for link, idx in link_index.items():
        cap[idx] = capacities[link]
        if cap[idx] <= 0:
            raise FlowSimError(f"link {link} has non-positive capacity")

    demands = np.array([f.demand for f in flows])
    rates = _waterfill(a, cap, demands)
    return {flow.flow_id: float(rates[i]) for i, flow in enumerate(flows)}


def max_min_rates_multipath(
    flows: list[Flow],
    capacities: dict[tuple[str, str], float],
) -> dict[int, float]:
    """Max-min allocation where flows spill onto detours adaptively.

    :func:`max_min_rates` fixes the split ratio across a flow's paths
    (modelling a static routing split): one saturated detour then caps
    the whole flow.  This variant models adaptive multipath (the
    paper's VLB with a demand-adaptive ``k``): each flow first fills its
    *primary* path (its first, shortest one), and whatever demand
    remains spills onto the detour paths over the residual capacity.
    Detours cost extra fabric capacity (two channels instead of one), so
    filling the direct paths first is both what real adaptive VLB does
    and what maximizes delivered throughput.

    Path weights are ignored; only the path order and set matter.
    """
    if not flows:
        return {}

    # Phase 1: every flow on its primary path alone.
    primary = [
        Flow(f.flow_id, (WeightedPath(f.paths[0].path, 1.0),), f.demand)
        for f in flows
    ]
    phase1 = max_min_rates(primary, capacities)

    # Residual capacity after the primary allocation.
    residual = dict(capacities)
    for f in flows:
        rate = phase1[f.flow_id]
        for link in _directed_links(f.paths[0].path):
            residual[link] = max(0.0, residual[link] - rate)

    # Phase 2: unsatisfied flows share the residual over their detours,
    # all detour subflows of a flow rising together (they are
    # symmetric: same length, disjoint middles).
    leftovers = []
    for f in flows:
        gap = f.demand - phase1[f.flow_id]
        if gap > 1e-9 and len(f.paths) > 1:
            share = 1.0 / (len(f.paths) - 1)
            leftovers.append(
                Flow(
                    f.flow_id,
                    tuple(WeightedPath(p.path, share) for p in f.paths[1:]),
                    gap,
                )
            )
    phase2: dict[int, float] = {}
    if leftovers:
        phase2 = _equal_rise_subflows(leftovers, residual)

    return {
        f.flow_id: phase1[f.flow_id] + phase2.get(f.flow_id, 0.0) for f in flows
    }


def _equal_rise_subflows(
    flows: list[Flow],
    capacities: dict[tuple[str, str], float],
) -> dict[int, float]:
    """Water-filling where each flow's subflows rise together but freeze
    independently when their own path saturates."""
    link_index: dict[tuple[str, str], int] = {}
    sub_links: list[list[int]] = []
    sub_flow: list[int] = []
    for f_idx, flow in enumerate(flows):
        for wp in flow.paths:
            links = []
            for link in _directed_links(wp.path):
                if link not in capacities:
                    raise FlowSimError(f"flow {flow.flow_id} uses unknown link {link}")
                links.append(link_index.setdefault(link, len(link_index)))
            sub_links.append(links)
            sub_flow.append(f_idx)

    n_subs = len(sub_links)
    n_links = len(link_index)
    cap = np.zeros(n_links)
    for link, idx in link_index.items():
        cap[idx] = capacities[link]

    rows = [l for links in sub_links for l in links]
    cols = [s for s, links in enumerate(sub_links) for _ in links]
    a = sparse.csr_matrix((np.ones(len(rows)), (rows, cols)), shape=(n_links, n_subs))
    at = a.T.tocsr()

    flow_of = np.array(sub_flow)
    demands = np.array([f.demand for f in flows])
    n_flows = len(flows)
    sub_rates = np.zeros(n_subs)
    active = np.ones(n_subs, dtype=bool)
    # Subflows whose path crosses an already-saturated link can never rise.
    zero_links = cap <= 1e-9
    if zero_links.any():
        blocked = np.asarray(at @ zero_links.astype(float)).ravel() > 0
        active &= ~blocked

    for _ in range(n_subs + n_links + 1):
        if not active.any():
            break
        active_f = active.astype(float)
        load = a @ sub_rates
        on_link = a @ active_f
        headroom = np.maximum(cap - load, 0.0)
        with np.errstate(divide="ignore", invalid="ignore"):
            link_inc = np.where(on_link > 1e-12, headroom / on_link, np.inf)
        flow_totals = np.bincount(flow_of, weights=sub_rates, minlength=n_flows)
        flow_active = np.bincount(flow_of, weights=active_f, minlength=n_flows)
        gap = demands - flow_totals
        with np.errstate(divide="ignore", invalid="ignore"):
            demand_inc = np.where(flow_active > 1e-12, gap / flow_active, np.inf)
        increment = min(
            float(link_inc.min()) if n_links else np.inf,
            float(demand_inc.min()),
        )
        if not np.isfinite(increment) or increment < 0:
            break
        sub_rates = np.where(active, sub_rates + increment, sub_rates)

        load = a @ sub_rates
        saturated = load >= cap - 1e-6 * np.maximum(cap, 1.0)
        if saturated.any():
            touched = np.asarray(at @ saturated.astype(float)).ravel() > 0
            active &= ~touched
        flow_totals = np.bincount(flow_of, weights=sub_rates, minlength=n_flows)
        satisfied = flow_totals >= demands - 1e-9
        active &= ~satisfied[flow_of]
        if increment == 0:
            break

    totals = np.bincount(flow_of, weights=sub_rates, minlength=n_flows)
    return {flow.flow_id: float(totals[i]) for i, flow in enumerate(flows)}


@dataclass(frozen=True)
class MaxMinSolution:
    """One max-min solve: rates plus the per-link load/residual picture.

    ``residual`` covers *every* link the solver knows a capacity for —
    links no flow touches carry their full capacity, failed links carry
    zero — so consumers (the hybrid engine) can index it blindly.
    """

    rates: dict[int, float]
    link_load: dict[tuple[str, str], float]
    residual: dict[tuple[str, str], float]


class ResidualSolver:
    """Incrementally re-solvable max-min allocator with residual output.

    Owns a mutable copy of the capacity map and a mutable flow set.
    Mutations are cheap bookkeeping; :meth:`solve` is lazy and caches at
    two levels:

    * the link × flow incidence survives capacity-only mutations
      (``fail_link`` / ``repair_link`` / ``set_capacity``), so fault
      churn re-runs only the water-filling loop;
    * the full solution survives no-op calls (nothing changed since the
      last solve returns the identical object).

    Flows are ordered by ``flow_id`` when the incidence is built, so an
    incremental re-solve is bit-identical to a from-scratch solve over
    the same final state regardless of mutation order.

    Two more caches keep the hybrid engine's epoch loop off the Python
    floor: each flow's incidence entries (link rows + weights) are
    computed once per flow and reused across rebuilds — a boundary that
    adds or removes a handful of flows re-concatenates cached arrays
    instead of re-walking every surviving flow's paths — and the
    capacity vector is maintained in place by the mutators, so a solve
    never loops over the capacity dict.  The link index covers the whole
    base map in insertion order; rows no flow touches are inert in the
    water-filling arithmetic, so rates stay bit-identical to
    :func:`max_min_rates` over the first-touch index.
    """

    def __init__(self, capacities: dict[tuple[str, str], float]) -> None:
        for link, cap in capacities.items():
            if cap <= 0:
                raise FlowSimError(f"link {link} has non-positive capacity")
        self._base = dict(capacities)
        self._caps = dict(capacities)
        self._link_index = {link: i for i, link in enumerate(self._base)}
        self._cap_vec = np.array(list(self._base.values()), dtype=float)
        self._flows: dict[int, Flow] = {}
        self._failed: set[tuple[str, str]] = set()
        # Caches: per-flow incidence entries keyed to each flow (built
        # lazily at solve so unknown-link errors surface there),
        # incidence keyed to the flow set, solution to everything.
        self._flow_entries: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self._incidence: "tuple[sparse.csr_matrix, dict[tuple[str, str], int]] | None" = None
        self._at: "sparse.csr_matrix | None" = None
        self._solution: "MaxMinSolution | None" = None

    # -- mutations ----------------------------------------------------------------

    def add_flow(self, flow: Flow) -> None:
        if flow.flow_id in self._flows:
            raise FlowSimError(f"flow {flow.flow_id} already registered")
        self._flows[flow.flow_id] = flow
        self._incidence = None
        self._at = None
        self._solution = None

    def remove_flow(self, flow_id: int) -> None:
        if flow_id not in self._flows:
            raise FlowSimError(f"flow {flow_id} not registered")
        del self._flows[flow_id]
        self._flow_entries.pop(flow_id, None)
        self._incidence = None
        self._at = None
        self._solution = None

    def fail_link(self, u: str, v: str) -> None:
        """Zero both directions of ``u — v`` (idempotent)."""
        for link in ((u, v), (v, u)):
            if link in self._base:
                self._caps[link] = 0.0
                self._cap_vec[self._link_index[link]] = 0.0
                self._failed.add(link)
        self._solution = None

    def repair_link(self, u: str, v: str) -> None:
        """Restore both directions of ``u — v`` to their base capacity."""
        for link in ((u, v), (v, u)):
            if link in self._base:
                self._caps[link] = self._base[link]
                self._cap_vec[self._link_index[link]] = self._base[link]
                self._failed.discard(link)
        self._solution = None

    def set_capacity(self, u: str, v: str, capacity: float) -> None:
        """Override one *directed* link's current capacity."""
        if (u, v) not in self._base:
            raise FlowSimError(f"unknown link {(u, v)}")
        if capacity < 0:
            raise FlowSimError(f"capacity must be non-negative, got {capacity}")
        self._caps[(u, v)] = capacity
        self._cap_vec[self._link_index[(u, v)]] = capacity
        self._solution = None

    # -- read side ----------------------------------------------------------------

    @property
    def flow_ids(self) -> list[int]:
        return sorted(self._flows)

    def capacity(self, u: str, v: str) -> float:
        return self._caps[(u, v)]

    def _entries_for(self, flow: Flow) -> tuple[np.ndarray, np.ndarray]:
        """This flow's incidence entries (link rows, weights), cached.

        Validates against the *base* link index: a flow may legitimately
        cross a currently failed link (it gets rate zero), but a link
        the fabric never had is an error — raised here, i.e. at solve
        time, matching :func:`_build_incidence`.
        """
        entries = self._flow_entries.get(flow.flow_id)
        if entries is None:
            rows: list[int] = []
            vals: list[float] = []
            for wp in flow.paths:
                if wp.weight == 0.0:
                    continue
                for link in _directed_links(wp.path):
                    idx = self._link_index.get(link)
                    if idx is None:
                        raise FlowSimError(
                            f"flow {flow.flow_id} uses unknown link {link}"
                        )
                    rows.append(idx)
                    vals.append(wp.weight)
            entries = (
                np.asarray(rows, dtype=np.int64),
                np.asarray(vals, dtype=np.float64),
            )
            self._flow_entries[flow.flow_id] = entries
        return entries

    def solve(self) -> MaxMinSolution:
        if self._solution is not None:
            return self._solution

        flows = [self._flows[fid] for fid in sorted(self._flows)]
        if self._incidence is None:
            per_flow = [self._entries_for(f) for f in flows]
            n_links = len(self._link_index)
            if per_flow:
                counts = [len(rows) for rows, _ in per_flow]
                rows = np.concatenate([r for r, _ in per_flow])
                vals = np.concatenate([v for _, v in per_flow])
                cols = np.repeat(np.arange(len(flows)), counts)
                a = sparse.csr_matrix(
                    (vals, (rows, cols)), shape=(n_links, len(flows))
                )
            else:
                a = sparse.csr_matrix((n_links, 0))
            self._incidence = (a, self._link_index)
            self._at = a.T.tocsr()
        a, link_index = self._incidence

        if flows and link_index:
            demands = np.array([f.demand for f in flows])
            rates_vec = _waterfill(a, self._cap_vec, demands, at=self._at)
            load_vec = np.asarray(a @ rates_vec).ravel()
        else:
            rates_vec = np.array([f.demand for f in flows])
            load_vec = np.zeros(len(link_index))

        rates = {f.flow_id: float(rates_vec[i]) for i, f in enumerate(flows)}
        link_load = {
            link: float(load_vec[idx]) for link, idx in link_index.items()
        }
        residual = {
            link: max(0.0, self._caps[link] - link_load[link])
            for link in self._caps
        }
        self._solution = MaxMinSolution(
            rates=rates, link_load=link_load, residual=residual
        )
        return self._solution


def capacities_of(topo) -> dict[tuple[str, str], float]:
    """Directed capacity map of a :class:`~repro.topology.base.Topology`."""
    caps: dict[tuple[str, str], float] = {}
    for link in topo.links():
        caps[(link.u, link.v)] = link.capacity
        caps[(link.v, link.u)] = link.capacity
    return caps
