"""Flow-completion-time (FCT) fluid simulation.

The paper's motivation is flow latency — "a wide-area request may
trigger hundreds of message exchanges inside a datacenter" — and its
related work (DCTCP, D3, PDQ, DeTail) is evaluated on FCTs.  This module
adds the classic fluid FCT model on top of the max-min allocator: flows
arrive over time with a size and a route; whenever the active set
changes (an arrival or a completion), rates are re-solved max-min
fairly; flows complete when their bytes drain.

This complements the packet simulator: packet-level runs capture
queueing microstructure; the fluid model scales to large flow counts
and long horizons.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.flowsim.maxmin import (
    Flow,
    capacities_of,
    max_min_rates,
    max_min_rates_multipath,
)
from repro.routing.base import Router
from repro.topology.base import Topology
from repro.units import BITS_PER_BYTE


class FCTError(RuntimeError):
    """Raised when the fluid simulation cannot make progress."""


@dataclass(frozen=True)
class TimedFlow:
    """A flow with an arrival time and a size."""

    flow_id: int
    src: str
    dst: str
    size_bytes: float
    arrival: float

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise FCTError(f"flow {self.flow_id} size must be positive")
        if self.arrival < 0:
            raise FCTError(f"flow {self.flow_id} arrival must be non-negative")


@dataclass(frozen=True)
class FlowCompletion:
    """Result for one flow."""

    flow_id: int
    arrival: float
    completion: float
    size_bytes: float

    @property
    def fct(self) -> float:
        return self.completion - self.arrival

    @property
    def average_rate_bps(self) -> float:
        return self.size_bytes * BITS_PER_BYTE / self.fct


class FCTSimulator:
    """Event-driven fluid simulation of max-min shared flows."""

    def __init__(
        self,
        topo: Topology,
        router: Router,
        multipath: bool = False,
        demand_cap_bps: float | None = None,
    ) -> None:
        """``multipath`` switches the allocator to adaptive multipath
        spill (see :mod:`repro.flowsim.maxmin`).  ``demand_cap_bps``
        bounds any single flow's rate (e.g. a transport pacing limit);
        by default flows are limited only by their paths' links."""
        self.topo = topo
        self.router = router
        self.multipath = multipath
        self.capacities = capacities_of(topo)
        if demand_cap_bps is None:
            demand_cap_bps = max(self.capacities.values())
        if demand_cap_bps <= 0:
            raise FCTError("demand cap must be positive")
        self.demand_cap = demand_cap_bps

    def run(self, flows: list[TimedFlow], horizon: float | None = None) -> list[FlowCompletion]:
        """Simulate until every flow completes (or ``horizon`` passes).

        Returns completions sorted by flow id; flows unfinished at the
        horizon are omitted.  Raises :class:`FCTError` if the active set
        deadlocks (every active flow at rate zero with no arrivals
        pending).
        """
        if not flows:
            return []
        ids = [f.flow_id for f in flows]
        if len(ids) != len(set(ids)):
            raise FCTError("duplicate flow ids")

        pending = sorted(flows, key=lambda f: (f.arrival, f.flow_id))
        arrivals = iter(pending)
        next_arrival = next(arrivals, None)

        remaining: dict[int, float] = {}  # bits left
        spec: dict[int, TimedFlow] = {}
        completions: list[FlowCompletion] = []
        now = 0.0
        allocate = max_min_rates_multipath if self.multipath else max_min_rates

        while remaining or next_arrival is not None:
            if horizon is not None and now >= horizon:
                break
            if not remaining:
                assert next_arrival is not None
                now = max(now, next_arrival.arrival)
                while next_arrival is not None and next_arrival.arrival <= now:
                    spec[next_arrival.flow_id] = next_arrival
                    remaining[next_arrival.flow_id] = (
                        next_arrival.size_bytes * BITS_PER_BYTE
                    )
                    next_arrival = next(arrivals, None)

            active = [
                Flow(
                    flow_id=fid,
                    paths=tuple(self.router.weighted_paths(spec[fid].src, spec[fid].dst)),
                    demand=self.demand_cap,
                )
                for fid in sorted(remaining)
            ]
            rates = allocate(active, self.capacities)

            # Next event: earliest completion or next arrival.
            finish_time = None
            for fid, bits in remaining.items():
                rate = rates.get(fid, 0.0)
                if rate > 1e-9:
                    t = now + bits / rate
                    if finish_time is None or t < finish_time:
                        finish_time = t
            arrival_time = next_arrival.arrival if next_arrival is not None else None
            if finish_time is None and arrival_time is None:
                raise FCTError(
                    f"deadlock at t={now}: {len(remaining)} flows active, all at "
                    "rate zero and no arrivals pending"
                )

            candidates = [t for t in (finish_time, arrival_time) if t is not None]
            next_time = min(candidates)
            if horizon is not None:
                next_time = min(next_time, horizon)
            dt = next_time - now
            for fid in list(remaining):
                remaining[fid] = max(0.0, remaining[fid] - rates.get(fid, 0.0) * dt)
            now = next_time

            for fid in sorted(remaining):
                if remaining[fid] <= 1e-6:
                    flow = spec[fid]
                    completions.append(
                        FlowCompletion(
                            flow_id=fid,
                            arrival=flow.arrival,
                            completion=now,
                            size_bytes=flow.size_bytes,
                        )
                    )
                    del remaining[fid]
                    del spec[fid]
            while next_arrival is not None and next_arrival.arrival <= now:
                spec[next_arrival.flow_id] = next_arrival
                remaining[next_arrival.flow_id] = (
                    next_arrival.size_bytes * BITS_PER_BYTE
                )
                next_arrival = next(arrivals, None)

        return sorted(completions, key=lambda c: c.flow_id)


def mean_fct(completions: list[FlowCompletion]) -> float:
    """Mean flow completion time over a result set."""
    if not completions:
        raise FCTError("no completed flows")
    return sum(c.fct for c in completions) / len(completions)
