"""Flow-level (fluid) simulation: max-min fair throughput evaluation."""

from repro.flowsim.fct import (
    FCTError,
    FCTSimulator,
    FlowCompletion,
    TimedFlow,
    mean_fct,
)
from repro.flowsim.maxmin import (
    Flow,
    FlowSimError,
    MaxMinSolution,
    ResidualSolver,
    capacities_of,
    flow_from_single_path,
    max_min_rates,
    max_min_rates_multipath,
)
from repro.flowsim.reference import oversubscribed_fabric
from repro.flowsim.throughput import (
    ThroughputResult,
    TrafficMatrix,
    achieved_throughput,
    build_flows,
    evaluate,
    ideal_throughput,
)

__all__ = [
    "FCTError",
    "FCTSimulator",
    "Flow",
    "FlowCompletion",
    "FlowSimError",
    "MaxMinSolution",
    "ResidualSolver",
    "TimedFlow",
    "max_min_rates_multipath",
    "mean_fct",
    "ThroughputResult",
    "TrafficMatrix",
    "achieved_throughput",
    "build_flows",
    "capacities_of",
    "evaluate",
    "flow_from_single_path",
    "ideal_throughput",
    "max_min_rates",
    "oversubscribed_fabric",
]
