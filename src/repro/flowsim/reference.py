"""Reference fabrics for the bisection-bandwidth comparison (Figure 10).

The paper compares Quartz's throughput against an ideal full-bisection
network and against networks with 1/2 and 1/4 bisection bandwidth.  We
model these as two-tier trees whose aggregate uplink capacity is the
rack's server capacity scaled by the bisection factor: factor 1 is a
non-blocking fabric, 1/2 and 1/4 are the oversubscribed references.
"""

from __future__ import annotations

from repro.topology.base import Topology
from repro.topology.tree import two_tier_tree
from repro.units import GBPS


def oversubscribed_fabric(
    num_racks: int,
    servers_per_rack: int,
    bisection_factor: float = 1.0,
    host_rate: float = 10 * GBPS,
    name: str | None = None,
) -> Topology:
    """A two-tier fabric with ``bisection_factor`` of full bisection.

    Each ToR's uplink to the (single, non-blocking) core carries
    ``servers_per_rack × host_rate × bisection_factor``.
    """
    if bisection_factor <= 0:
        raise ValueError(f"bisection factor must be positive, got {bisection_factor}")
    uplink = servers_per_rack * host_rate * bisection_factor
    label = name or f"fabric-{bisection_factor:g}x-{num_racks}x{servers_per_rack}"
    return two_tier_tree(
        num_tors=num_racks,
        servers_per_tor=servers_per_rack,
        num_roots=1,
        host_rate=host_rate,
        uplink_rate=uplink,
        tor_model="ULL",
        root_model="CCS",
        name=label,
    )
