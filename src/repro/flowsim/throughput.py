"""Normalized-throughput evaluation — paper Section 5.1 / Figure 10.

Given a traffic matrix, the achieved aggregate rate under max-min fair
sharing is compared against the rate an ideal non-blocking fabric would
deliver for the *same* matrix.  "The normalized throughput equals 1 if
every server can send traffic at its full rate"; patterns that are
receiver-limited even on an ideal fabric (incast) are normalized against
that ideal, so the metric isolates what the *fabric* loses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.flowsim.maxmin import (
    Flow,
    capacities_of,
    max_min_rates,
    max_min_rates_multipath,
)
from repro.routing.base import Router, WeightedPath
from repro.topology.base import Topology

#: A traffic matrix: (source server, destination server, demand bps).
TrafficMatrix = list[tuple[str, str, float]]


@dataclass(frozen=True)
class ThroughputResult:
    """Outcome of one traffic-matrix evaluation."""

    aggregate_bps: float
    ideal_bps: float
    per_flow_bps: dict[int, float]

    @property
    def normalized(self) -> float:
        if self.ideal_bps <= 0:
            raise ValueError("ideal throughput is zero; empty traffic matrix?")
        return self.aggregate_bps / self.ideal_bps


def build_flows(router: Router, matrix: TrafficMatrix) -> list[Flow]:
    """Materialize a traffic matrix into weighted-path flows."""
    flows = []
    for flow_id, (src, dst, demand) in enumerate(matrix):
        flows.append(
            Flow(
                flow_id=flow_id,
                paths=tuple(router.weighted_paths(src, dst)),
                demand=demand,
            )
        )
    return flows


def achieved_throughput(
    topo: Topology,
    router: Router,
    matrix: TrafficMatrix,
    multipath: bool = False,
) -> dict[int, float]:
    """Max-min fair per-flow rates of ``matrix`` on ``topo``.

    ``multipath=True`` lets each flow use its paths independently
    (idealized multipath transport) instead of at the router's fixed
    split ratio — see :func:`repro.flowsim.maxmin.max_min_rates_multipath`.
    """
    flows = build_flows(router, matrix)
    allocate = max_min_rates_multipath if multipath else max_min_rates
    return allocate(flows, capacities_of(topo))


def ideal_throughput(matrix: TrafficMatrix, line_rate: float) -> dict[int, float]:
    """Per-flow rates on an ideal non-blocking fabric.

    Modelled as a star: every server's ``line_rate`` NIC feeds an
    infinite-capacity core, so only sender and receiver NICs constrain
    the allocation.
    """
    flows = []
    caps: dict[tuple[str, str], float] = {}
    for flow_id, (src, dst, demand) in enumerate(matrix):
        path = (f"src:{src}", "core", f"dst:{dst}")
        flows.append(Flow(flow_id=flow_id, paths=(WeightedPath(path, 1.0),), demand=demand))
        caps[(f"src:{src}", "core")] = line_rate
        caps[("core", f"dst:{dst}")] = line_rate
    return max_min_rates(flows, caps)


def evaluate(
    topo: Topology,
    router: Router,
    matrix: TrafficMatrix,
    line_rate: float,
    multipath: bool = False,
) -> ThroughputResult:
    """Run a traffic matrix and normalize against the ideal fabric."""
    achieved = achieved_throughput(topo, router, matrix, multipath=multipath)
    ideal = ideal_throughput(matrix, line_rate)
    return ThroughputResult(
        aggregate_bps=sum(achieved.values()),
        ideal_bps=sum(ideal.values()),
        per_flow_bps=achieved,
    )
