"""Integration: fibre failures → degraded mesh → multi-hop re-routing.

Validates Section 3.5's claim end-to-end at the packet level: after a
fibre cut kills a set of direct channels, every server pair remains
reachable over multi-hop paths on the surviving channels, at a modest
latency penalty.
"""

import networkx as nx
import pytest

from repro.core import QuartzRing
from repro.core.fault import RingFaultModel, degraded_mesh_topology
from repro.routing import ECMPRouter
from repro.sim import Network
from repro.topology.base import TopologyError


@pytest.fixture(scope="module")
def element():
    ring = QuartzRing(num_switches=9, server_ports=4, mesh_ports=8)
    return ring, ring.to_topology(servers_per_switch=1)


class TestDegradedTopology:
    def test_single_cut_removes_channels_but_not_connectivity(self, element):
        _ring, topo = element
        model = RingFaultModel(9, 1)
        failed = {(0, 3)}  # ring 0, fibre segment 3
        degraded = degraded_mesh_topology(topo, model, failed)
        assert degraded.graph.number_of_edges() < topo.graph.number_of_edges()
        degraded.validate()  # still connected

    def test_two_cuts_on_one_ring_partition(self, element):
        _ring, topo = element
        model = RingFaultModel(9, 1)
        degraded = degraded_mesh_topology(topo, model, {(0, 1), (0, 5)})
        with pytest.raises(TopologyError):
            degraded.validate()

    def test_two_rings_survive_two_cuts(self, element):
        _ring, topo = element
        model = RingFaultModel(9, 2)
        degraded = degraded_mesh_topology(topo, model, {(0, 1), (0, 5)})
        degraded.validate()

    def test_removing_unknown_link_rejected(self, element):
        _ring, topo = element
        with pytest.raises(TopologyError):
            topo.degraded([("tor0", "ghost")])


class TestReroutedTraffic:
    def test_affected_pair_takes_two_mesh_hops(self, element):
        _ring, topo = element
        model = RingFaultModel(9, 1)
        failed = {(0, 2)}
        degraded = degraded_mesh_topology(topo, model, failed)
        # Find a rack pair whose direct channel died.
        dead_pair = next(
            (s, t)
            for (s, t), (ring, links) in model.pair_routes.items()
            if ring == 0 and 2 in links
        )
        s, t = dead_pair
        path = nx.shortest_path(degraded.graph, f"h{s}.0", f"h{t}.0")
        switches = [n for n in path if degraded.is_switch(n)]
        assert len(switches) == 3  # one detour switch

    def test_packets_still_delivered_with_latency_penalty(self, element):
        _ring, topo = element
        model = RingFaultModel(9, 1)
        failed = {(0, 2)}
        degraded = degraded_mesh_topology(topo, model, failed)
        dead_pair = next(
            (s, t)
            for (s, t), (ring, links) in model.pair_routes.items()
            if ring == 0 and 2 in links
        )
        s, t = dead_pair

        healthy_net = Network(topo, ECMPRouter(topo))
        healthy = healthy_net.send(f"h{s}.0", f"h{t}.0", 400)
        healthy_net.run()

        degraded_net = Network(degraded, ECMPRouter(degraded))
        rerouted = degraded_net.send(f"h{s}.0", f"h{t}.0", 400)
        degraded_net.run()

        assert rerouted.delivered_at is not None
        # One extra cut-through hop: a sub-microsecond penalty.
        assert healthy.latency < rerouted.latency < healthy.latency + 1e-6

    def test_all_pairs_deliver_after_single_cut(self, element):
        _ring, topo = element
        model = RingFaultModel(9, 1)
        degraded = degraded_mesh_topology(topo, model, {(0, 7)})
        net = Network(degraded, ECMPRouter(degraded))
        servers = degraded.servers()
        packets = [
            net.send(a, b, 400)
            for i, a in enumerate(servers)
            for b in servers[i + 1 :]
        ]
        net.run()
        assert all(p.delivered_at is not None for p in packets)
