"""The queue-diagnosis experiment: localization against injected truth.

The PR 7 acceptance story: inject an incast whose culprit port and flow
the simulator knows exactly, then require the telemetry layer to find
both — including with a fibre-segment cut landing mid-burst, where
attribution must survive reroutes, drops, and route churn.  Telemetry
integrity (non-negative per-flow occupancy integrals, windows that tile
time with no overlaps or skips) is asserted on the same runs.
"""

import pytest

from repro.experiments.queue_diagnosis import (
    HEAVY_FLOW,
    DiagnosisScore,
    QueueDiagnosisResult,
    format_queue_diagnosis,
    queue_diagnosis_sweep,
    run_queue_diagnosis_cell,
    score_diagnosis,
)


@pytest.fixture(scope="module")
def calm_cell():
    return run_queue_diagnosis_cell(seed=0, cut=False)


@pytest.fixture(scope="module")
def churn_cell():
    # Seed 3's sampled SegmentCut lands on links the incast actually
    # crosses: the cut severs channels mid-burst and live packets are
    # dropped and rerouted while the queue is building.
    return run_queue_diagnosis_cell(seed=3, cut=True)


class TestLocalization:
    def test_culprit_port_and_flow_found(self, calm_cell):
        assert calm_cell.port_correct
        assert calm_cell.flow_correct
        assert calm_cell.detected_flow == HEAVY_FLOW

    def test_burst_registers_as_microbursts(self, calm_cell):
        assert calm_cell.bursts_at_culprit > 0
        assert calm_cell.peak_depth >= 8

    def test_victim_rotates_with_seed(self):
        cell = run_queue_diagnosis_cell(seed=2, cut=False)
        assert cell.true_port == ("tor2", "h2.0")
        assert cell.port_correct

    def test_deterministic(self, calm_cell):
        assert run_queue_diagnosis_cell(seed=0, cut=False) == calm_cell


class TestAttributionUnderFaultChurn:
    """The satellite: a SegmentCut mid-burst must not confuse attribution."""

    def test_cut_actually_disrupted_traffic(self, churn_cell):
        assert churn_cell.channels_severed > 0
        assert churn_cell.packets_dropped + churn_cell.packets_rerouted > 0

    def test_dominant_flow_still_attributed(self, churn_cell):
        assert churn_cell.port_correct
        assert churn_cell.flow_correct

    def test_no_negative_occupancy_integrals(self, churn_cell, calm_cell):
        assert churn_cell.min_flow_occupancy >= 0.0
        assert calm_cell.min_flow_occupancy >= 0.0

    def test_windows_never_overlap_or_skip_time(self, churn_cell, calm_cell):
        assert churn_cell.windows_contiguous
        assert calm_cell.windows_contiguous
        assert churn_cell.windows_observed > 0


class TestScoring:
    def test_perfect_sweep_scores_one(self):
        results = queue_diagnosis_sweep(seeds=(0, 1), cuts=(False,))
        score = score_diagnosis(results)
        assert score.cells == 2
        assert score.port_precision == score.port_recall == 1.0
        assert score.flow_precision == score.flow_recall == 1.0

    def test_miss_and_abstain_arithmetic(self, calm_cell):
        miss = QueueDiagnosisResult(
            **{
                **calm_cell.__dict__,
                "detected_port": ("tor9", "h9.0"),
                "detected_flow": "bg-0-1",
            }
        )
        abstain = QueueDiagnosisResult(
            **{**calm_cell.__dict__, "detected_port": None, "detected_flow": None}
        )
        score = score_diagnosis([calm_cell, miss, abstain])
        assert score == DiagnosisScore(
            cells=3, port_tp=1, port_predictions=2, flow_tp=1, flow_predictions=2
        )
        assert score.port_precision == 0.5
        assert score.port_recall == pytest.approx(1 / 3)

    def test_empty_sweep_scores_zero(self):
        score = score_diagnosis([])
        assert score.port_precision == 0.0
        assert score.port_recall == 0.0

    def test_format_renders_scorecard(self, calm_cell):
        text = format_queue_diagnosis([calm_cell])
        assert "tor0->h0.0" in text
        assert "port  precision 1.00  recall 1.00" in text
        assert "flow  precision 1.00  recall 1.00" in text


class TestValidation:
    def test_unknown_router_rejected(self):
        with pytest.raises(ValueError, match="unknown router"):
            run_queue_diagnosis_cell(router="spain")

    def test_bad_burst_span_rejected(self):
        with pytest.raises(ValueError, match="burst"):
            run_queue_diagnosis_cell(burst_at=0.004, burst_until=0.002)

    def test_sender_count_bounds(self):
        with pytest.raises(ValueError, match="incast_senders"):
            run_queue_diagnosis_cell(incast_senders=1)
        with pytest.raises(ValueError, match="incast_senders"):
            run_queue_diagnosis_cell(ring_size=5, incast_senders=5)


class TestParallelSweep:
    def test_workers_bit_identical(self):
        serial = queue_diagnosis_sweep(seeds=(0, 1), cuts=(True,), workers=1)
        fanned = queue_diagnosis_sweep(seeds=(0, 1), cuts=(True,), workers=2)
        assert serial == fanned


class TestWindowDump:
    def test_dump_written_and_contiguous(self, tmp_path):
        import json

        out = tmp_path / "windows.json"
        run_queue_diagnosis_cell(seed=0, cut=False, dump_windows_to=out)
        dump = json.loads(out.read_text())
        assert dump["stamping"] is True
        assert dump["ports"], "monitored ports expected"
        for port in dump["ports"].values():
            indices = [w["index"] for w in port["windows"]]
            assert indices == list(range(indices[0], indices[-1] + 1))
