"""Tests for the parallel sweep runner.

The contract under test: ``run_cells(cells, workers=N)`` returns the
same results in the same order for every ``N`` — a parallel sweep is
bit-identical to a serial one.
"""

import pickle

import pytest

from repro.experiments import figure17_sweep
from repro.runner import ExperimentSpec, RunnerError, default_workers, run_cells


def _square(x):
    return x * x


def _concat(a, b, sep="-"):
    return f"{a}{sep}{b}"


class TestRunCells:
    def test_serial_runs_in_order(self):
        cells = [ExperimentSpec(_square, args=(i,)) for i in range(5)]
        assert run_cells(cells, workers=1) == [0, 1, 4, 9, 16]

    def test_parallel_matches_serial_order(self):
        cells = [ExperimentSpec(_square, args=(i,)) for i in range(8)]
        serial = run_cells(cells, workers=1)
        parallel = run_cells(cells, workers=4)
        assert parallel == serial

    def test_kwargs_and_labels(self):
        cell = ExperimentSpec(
            _concat, args=("a", "b"), kwargs={"sep": "+"}, label="demo"
        )
        assert run_cells([cell], workers=1) == ["a+b"]
        assert cell.label == "demo"

    def test_specs_are_picklable(self):
        cell = ExperimentSpec(_concat, args=("a", "b"), kwargs={"sep": "+"})
        clone = pickle.loads(pickle.dumps(cell))
        assert clone.run() == "a+b"

    def test_zero_workers_rejected(self):
        with pytest.raises(RunnerError):
            run_cells([ExperimentSpec(_square, args=(1,))], workers=0)

    def test_chunksize_preserves_order(self):
        cells = [ExperimentSpec(_square, args=(i,)) for i in range(11)]
        expected = run_cells(cells, workers=1)
        for chunksize in (1, 2, 5, 100):
            assert run_cells(cells, workers=3, chunksize=chunksize) == expected

    def test_bad_chunksize_rejected(self):
        with pytest.raises(RunnerError):
            run_cells([ExperimentSpec(_square, args=(1,))], chunksize=0)

    def test_workers_none_uses_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        assert default_workers() == 2
        cells = [ExperimentSpec(_square, args=(i,)) for i in range(3)]
        assert run_cells(cells, workers=None) == [0, 1, 4]

    def test_bad_repro_workers_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "zero")
        with pytest.raises(RunnerError):
            default_workers()
        monkeypatch.setenv("REPRO_WORKERS", "0")
        with pytest.raises(RunnerError):
            default_workers()


class TestSweepDeterminism:
    def test_figure17_parallel_bit_identical_to_serial(self):
        """A 4-way parallel Figure 17 sweep equals the serial sweep, byte
        for byte (pickled SweepPoints compared verbatim)."""
        kwargs = dict(
            topologies=["three-tier tree", "quartz in edge and core"],
            kind="scatter",
            task_counts=[1, 2],
            seeds=(0, 1),
        )
        serial = figure17_sweep(**kwargs, workers=1)
        parallel = figure17_sweep(**kwargs, workers=4)
        assert pickle.dumps(parallel) == pickle.dumps(serial)

    def test_figure10_parallel_with_shared_disk_cache_bit_identical(
        self, tmp_path, monkeypatch
    ):
        """Workers warmed from a shared on-disk artifact cache must not
        change a single bit of the sweep output — the tentpole's
        determinism criterion."""
        from repro.cache import configure, reset
        from repro.experiments import figure10_sweep

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "store"))
        configure(directory=str(tmp_path / "store"))
        try:
            kwargs = dict(num_racks=5, servers_per_rack=4)
            serial = figure10_sweep(**kwargs, workers=1)
            parallel = figure10_sweep(**kwargs, workers=4)  # warm disk store
            # Compared per result: pickling the whole list is sensitive
            # to cross-result object sharing (serial cells share interned
            # strings, pool results do not), which differs between serial
            # and parallel even with caching disabled.
            assert len(parallel) == len(serial)
            for par, ser in zip(parallel, serial):
                assert pickle.dumps(par) == pickle.dumps(ser)
        finally:
            reset()
