"""Tests for normalized-throughput evaluation (Figure 10 machinery)."""

import pytest

import repro.topology as T
from repro.flowsim import evaluate, ideal_throughput, oversubscribed_fabric
from repro.routing import ECMPRouter, VLBRouter
from repro.units import GBPS
from repro.workloads.patterns import incast, random_permutation


LINE = 10 * GBPS


class TestIdealFabric:
    def test_permutation_reaches_line_rate(self):
        topo = T.full_mesh(4, 2)
        matrix = random_permutation(topo, demand=LINE, seed=1)
        ideal = ideal_throughput(matrix, LINE)
        for rate in ideal.values():
            assert rate == pytest.approx(LINE)

    def test_incast_is_receiver_limited(self):
        topo = oversubscribed_fabric(4, 4, bisection_factor=1.0)
        matrix = incast(topo, demand=LINE, fan_in=10, seed=1)
        ideal = ideal_throughput(matrix, LINE)
        # 10 senders share each receiver NIC; sender NICs serving many
        # receivers constrain some flows further, but no receiver can
        # exceed its NIC and the average flow lands near line / 10.
        per_receiver: dict[str, float] = {}
        for flow_id, (_src, dst, _demand) in enumerate(matrix):
            per_receiver[dst] = per_receiver.get(dst, 0.0) + ideal[flow_id]
        for total in per_receiver.values():
            assert total <= LINE * (1 + 1e-6)
        mean_rate = sum(ideal.values()) / len(ideal)
        assert mean_rate == pytest.approx(LINE / 10, rel=0.2)


class TestFabricComparison:
    def test_full_bisection_is_normalized_one(self):
        topo = oversubscribed_fabric(4, 4, bisection_factor=1.0)
        matrix = random_permutation(topo, demand=LINE, seed=2)
        result = evaluate(topo, ECMPRouter(topo), matrix, LINE)
        assert result.normalized == pytest.approx(1.0, rel=1e-6)

    def test_quarter_bisection_is_lower(self):
        full = oversubscribed_fabric(4, 4, bisection_factor=1.0)
        quarter = oversubscribed_fabric(4, 4, bisection_factor=0.25)
        matrix = random_permutation(full, demand=LINE, seed=2)
        full_result = evaluate(full, ECMPRouter(full), matrix, LINE)
        quarter_result = evaluate(quarter, ECMPRouter(quarter), matrix, LINE)
        assert quarter_result.normalized < full_result.normalized

    def test_quartz_beats_half_bisection_on_permutation(self):
        # The paper's Figure 10 conclusion: "Quartz's bisection bandwidth
        # is less than full bisection bandwidth but greater than 1/2."
        quartz = T.quartz_ring(8, 4)
        matrix = random_permutation(quartz, demand=LINE, seed=3)
        quartz_result = evaluate(quartz, VLBRouter(quartz, 0.5), matrix, LINE)

        half = oversubscribed_fabric(8, 4, bisection_factor=0.5)
        half_matrix = random_permutation(half, demand=LINE, seed=3)
        half_result = evaluate(half, ECMPRouter(half), half_matrix, LINE)

        assert quartz_result.normalized > half_result.normalized


class TestResultObject:
    def test_aggregate_is_sum_of_flows(self):
        topo = T.full_mesh(4, 2)
        matrix = random_permutation(topo, demand=LINE, seed=4)
        result = evaluate(topo, ECMPRouter(topo), matrix, LINE)
        assert result.aggregate_bps == pytest.approx(sum(result.per_flow_bps.values()))

    def test_empty_matrix_raises_on_normalize(self):
        from repro.flowsim.throughput import ThroughputResult

        with pytest.raises(ValueError):
            _ = ThroughputResult(0.0, 0.0, {}).normalized


class TestOversubscribedFabric:
    def test_uplink_scales_with_factor(self):
        topo = oversubscribed_fabric(4, 8, bisection_factor=0.5, host_rate=LINE)
        assert topo.capacity("tor0", "root0") == 8 * LINE * 0.5

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            oversubscribed_fabric(4, 4, bisection_factor=0.0)
