"""Tests for the adaptive multipath max-min allocation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.flowsim.maxmin import (
    Flow,
    flow_from_single_path,
    max_min_rates,
    max_min_rates_multipath,
)
from repro.routing.base import WeightedPath


def caps(**links):
    return {tuple(k.split("_")): float(v) for k, v in links.items()}


def two_path_flow(flow_id, demand):
    return Flow(
        flow_id,
        (
            WeightedPath(("a", "b"), 0.5),
            WeightedPath(("a", "c", "b"), 0.5),
        ),
        demand,
    )


class TestAdaptiveSpill:
    def test_direct_preferred_when_sufficient(self):
        # Demand 8 fits the 10-capacity direct path: no detour traffic,
        # so the detour links stay free for others.
        capacities = caps(a_b=10, a_c=10, c_b=10)
        rates = max_min_rates_multipath([two_path_flow(0, 8.0)], capacities)
        assert rates[0] == pytest.approx(8.0)

    def test_excess_spills_to_detour(self):
        capacities = caps(a_b=10, a_c=10, c_b=10)
        rates = max_min_rates_multipath([two_path_flow(0, 18.0)], capacities)
        # 10 direct + 8 detour.
        assert rates[0] == pytest.approx(18.0)

    def test_detour_capacity_bounds_spill(self):
        capacities = caps(a_b=10, a_c=4, c_b=10)
        rates = max_min_rates_multipath([two_path_flow(0, 100.0)], capacities)
        assert rates[0] == pytest.approx(14.0)

    def test_beats_fixed_split_under_asymmetry(self):
        # Fixed 50/50 split is capped by the 4-capacity detour; adaptive
        # spill uses the direct path fully.
        capacities = caps(a_b=10, a_c=4, c_b=10)
        flow = two_path_flow(0, 100.0)
        fixed = max_min_rates([flow], capacities)[0]
        adaptive = max_min_rates_multipath([flow], capacities)[0]
        assert adaptive > fixed

    def test_primary_competition_shared_fairly(self):
        capacities = caps(a_b=10, a_c=10, c_b=10)
        flows = [two_path_flow(0, 20.0), two_path_flow(1, 20.0)]
        rates = max_min_rates_multipath(flows, capacities)
        # 10 direct shared 5/5; 10 detour shared 5/5 → 10 each.
        assert rates[0] == pytest.approx(rates[1])
        assert rates[0] + rates[1] == pytest.approx(20.0)

    def test_single_path_flows_match_plain_maxmin(self):
        capacities = caps(a_b=10)
        flows = [
            flow_from_single_path(0, ("a", "b"), 7.0),
            flow_from_single_path(1, ("a", "b"), 7.0),
        ]
        plain = max_min_rates(flows, capacities)
        multi = max_min_rates_multipath(flows, capacities)
        assert plain == pytest.approx(multi)

    def test_empty(self):
        assert max_min_rates_multipath([], caps(a_b=1)) == {}


class TestInvariants:
    @given(
        st.lists(st.floats(0.5, 30.0), min_size=1, max_size=6),
        st.floats(2.0, 20.0),
        st.floats(2.0, 20.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_feasible(self, demands, direct_cap, detour_cap):
        capacities = {
            ("a", "b"): direct_cap,
            ("a", "c"): detour_cap,
            ("c", "b"): detour_cap,
        }
        flows = [two_path_flow(i, d) for i, d in enumerate(demands)]
        rates = max_min_rates_multipath(flows, capacities)
        total = sum(rates.values())
        # Total cannot exceed direct + detour capacity, nor total demand.
        assert total <= direct_cap + detour_cap + 1e-6
        assert total <= sum(demands) + 1e-6
        for i, d in enumerate(demands):
            assert rates[i] <= d + 1e-9

    @given(st.floats(1.0, 50.0))
    @settings(max_examples=20, deadline=None)
    def test_property_adaptive_at_least_direct_only(self, demand):
        capacities = caps(a_b=10, a_c=10, c_b=10)
        flow = two_path_flow(0, demand)
        direct_only = max_min_rates(
            [flow_from_single_path(0, ("a", "b"), demand)], capacities
        )[0]
        adaptive = max_min_rates_multipath([flow], capacities)[0]
        assert adaptive >= direct_only - 1e-9
