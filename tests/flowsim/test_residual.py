"""Property tests for the incremental residual max-min solver.

The hybrid engine trusts three things about :class:`ResidualSolver`:
residuals are physical (non-negative, conserve link capacity), the
incremental path is exact (a re-solve after add/remove/fail/repair
matches a from-scratch solve over the same final state bit for bit),
and mutation bookkeeping never corrupts the caches.  Hypothesis drives
random flow sets and mutation sequences over a small ring fabric.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.flowsim.maxmin import (
    Flow,
    FlowSimError,
    ResidualSolver,
    flow_from_single_path,
    max_min_rates,
)

#: Ring fabric the strategies route over: n0 — n1 — … — n4 — n0.
N_NODES = 5
NODES = [f"n{i}" for i in range(N_NODES)]
LINKS = [(NODES[i], NODES[(i + 1) % N_NODES]) for i in range(N_NODES)]


def ring_capacities(caps_per_link):
    """Directed capacity map for the ring, one value per undirected link."""
    out = {}
    for (u, v), cap in zip(LINKS, caps_per_link):
        out[(u, v)] = cap
        out[(v, u)] = cap
    return out


def arc_path(start, length, clockwise):
    """A simple path along the ring: ``length`` hops from ``start``."""
    step = 1 if clockwise else -1
    return tuple(NODES[(start + step * k) % N_NODES] for k in range(length + 1))


#: One flow: (start node, hop count, direction, demand).
flow_specs = st.tuples(
    st.integers(0, N_NODES - 1),
    st.integers(1, N_NODES - 1),
    st.booleans(),
    st.floats(0.5, 20.0),
)
capacity_lists = st.lists(
    st.floats(1.0, 50.0), min_size=len(LINKS), max_size=len(LINKS)
)


def build_flows(specs):
    return [
        flow_from_single_path(i, arc_path(s, h, cw), demand=d)
        for i, (s, h, cw, d) in enumerate(specs)
    ]


#: A mutation: ("add", spec) | ("remove", idx) | ("fail", link_idx) |
#: ("repair", link_idx).  Indices are taken modulo whatever exists.
mutations = st.lists(
    st.one_of(
        st.tuples(st.just("add"), flow_specs),
        st.tuples(st.just("remove"), st.integers(0, 30)),
        st.tuples(st.just("fail"), st.integers(0, len(LINKS) - 1)),
        st.tuples(st.just("repair"), st.integers(0, len(LINKS) - 1)),
    ),
    min_size=1,
    max_size=12,
)


class TestResidualInvariants:
    @given(st.lists(flow_specs, min_size=1, max_size=10), capacity_lists)
    @settings(max_examples=60, deadline=None)
    def test_residuals_non_negative_and_conserve_capacity(self, specs, caps):
        capacities = ring_capacities(caps)
        solver = ResidualSolver(capacities)
        for flow in build_flows(specs):
            solver.add_flow(flow)
        sol = solver.solve()

        assert set(sol.residual) == set(capacities)
        assert set(sol.link_load) == set(capacities)
        for link, cap in capacities.items():
            assert sol.residual[link] >= 0.0
            # Conservation: load + residual spans the link exactly
            # (modulo the water-filling loop's saturation tolerance).
            assert sol.link_load[link] <= cap * (1 + 1e-6)
            assert sol.link_load[link] + sol.residual[link] == pytest.approx(
                cap, rel=1e-9, abs=1e-9
            )

    @given(st.lists(flow_specs, min_size=1, max_size=10), capacity_lists)
    @settings(max_examples=40, deadline=None)
    def test_untouched_links_keep_full_capacity(self, specs, caps):
        capacities = ring_capacities(caps)
        solver = ResidualSolver(capacities)
        flows = build_flows(specs)
        for flow in flows:
            solver.add_flow(flow)
        sol = solver.solve()

        touched = set()
        for f in flows:
            for wp in f.paths:
                for i in range(len(wp.path) - 1):
                    touched.add((wp.path[i], wp.path[i + 1]))
        for link in capacities:
            if link not in touched:
                assert sol.link_load[link] == 0.0
                assert sol.residual[link] == capacities[link]

    @given(st.lists(flow_specs, min_size=1, max_size=10), capacity_lists)
    @settings(max_examples=40, deadline=None)
    def test_matches_max_min_rates_on_static_state(self, specs, caps):
        """With no faults, the solver is exactly ``max_min_rates``."""
        capacities = ring_capacities(caps)
        solver = ResidualSolver(capacities)
        flows = build_flows(specs)
        for flow in flows:
            solver.add_flow(flow)
        assert solver.solve().rates == max_min_rates(flows, capacities)


class TestIncrementalExactness:
    @given(st.lists(flow_specs, min_size=0, max_size=6), mutations, capacity_lists)
    @settings(max_examples=60, deadline=None)
    def test_incremental_matches_from_scratch(self, specs, ops, caps):
        """Any mutation sequence → same answer as a fresh solver."""
        capacities = ring_capacities(caps)
        solver = ResidualSolver(capacities)
        flows = {}
        next_id = 0
        for flow in build_flows(specs):
            solver.add_flow(flow)
            flows[flow.flow_id] = flow
            next_id = flow.flow_id + 1
        failed = set()

        solver.solve()  # prime both caches so mutations must invalidate
        for op, arg in ops:
            if op == "add":
                s, h, cw, d = arg
                flow = flow_from_single_path(next_id, arc_path(s, h, cw), d)
                solver.add_flow(flow)
                flows[next_id] = flow
                next_id += 1
            elif op == "remove" and flows:
                fid = sorted(flows)[arg % len(flows)]
                solver.remove_flow(fid)
                del flows[fid]
            elif op == "fail":
                solver.fail_link(*LINKS[arg % len(LINKS)])
                failed.add(arg % len(LINKS))
            elif op == "repair":
                solver.repair_link(*LINKS[arg % len(LINKS)])
                failed.discard(arg % len(LINKS))
            solver.solve()  # exercise the incremental path every step

        fresh = ResidualSolver(capacities)
        for fid in sorted(flows):
            fresh.add_flow(flows[fid])
        for idx in failed:
            fresh.fail_link(*LINKS[idx])

        incremental, scratch = solver.solve(), fresh.solve()
        assert incremental.rates == scratch.rates
        assert incremental.link_load == scratch.link_load
        assert incremental.residual == scratch.residual

    @given(st.lists(flow_specs, min_size=1, max_size=8), capacity_lists)
    @settings(max_examples=40, deadline=None)
    def test_fail_repair_round_trips(self, specs, caps):
        capacities = ring_capacities(caps)
        solver = ResidualSolver(capacities)
        for flow in build_flows(specs):
            solver.add_flow(flow)
        before = solver.solve()

        for u, v in LINKS[:2]:
            solver.fail_link(u, v)
        failed_sol = solver.solve()
        for u, v in LINKS[:2]:
            assert failed_sol.residual[(u, v)] == 0.0
            assert failed_sol.residual[(v, u)] == 0.0
        for u, v in LINKS[:2]:
            solver.repair_link(u, v)
        after = solver.solve()

        assert after.rates == before.rates
        assert after.residual == before.residual

    @given(st.lists(flow_specs, min_size=1, max_size=8), capacity_lists)
    @settings(max_examples=40, deadline=None)
    def test_flows_on_dead_links_get_zero(self, specs, caps):
        capacities = ring_capacities(caps)
        solver = ResidualSolver(capacities)
        flows = build_flows(specs)
        for flow in flows:
            solver.add_flow(flow)
        dead = LINKS[0]
        solver.fail_link(*dead)
        sol = solver.solve()
        dead_links = {dead, (dead[1], dead[0])}
        for f in flows:
            crosses = any(
                (wp.path[i], wp.path[i + 1]) in dead_links
                for wp in f.paths
                for i in range(len(wp.path) - 1)
            )
            if crosses:
                assert sol.rates[f.flow_id] == 0.0
            assert math.isfinite(sol.rates[f.flow_id])


class TestSolverBookkeeping:
    def test_solution_cached_until_mutation(self):
        solver = ResidualSolver(ring_capacities([10.0] * len(LINKS)))
        solver.add_flow(flow_from_single_path(0, arc_path(0, 2, True), 5.0))
        first = solver.solve()
        assert solver.solve() is first  # no-op re-solve is free
        solver.fail_link(*LINKS[0])
        assert solver.solve() is not first

    def test_empty_solver_residual_is_full_capacity(self):
        capacities = ring_capacities([10.0] * len(LINKS))
        sol = ResidualSolver(capacities).solve()
        assert sol.rates == {}
        assert sol.residual == capacities

    def test_duplicate_flow_rejected(self):
        solver = ResidualSolver(ring_capacities([10.0] * len(LINKS)))
        solver.add_flow(flow_from_single_path(0, arc_path(0, 1, True), 1.0))
        with pytest.raises(FlowSimError):
            solver.add_flow(flow_from_single_path(0, arc_path(1, 1, True), 1.0))

    def test_unknown_flow_removal_rejected(self):
        solver = ResidualSolver(ring_capacities([10.0] * len(LINKS)))
        with pytest.raises(FlowSimError):
            solver.remove_flow(7)

    def test_unknown_link_capacity_rejected(self):
        solver = ResidualSolver(ring_capacities([10.0] * len(LINKS)))
        with pytest.raises(FlowSimError):
            solver.set_capacity("n0", "n3", 5.0)

    def test_flow_over_unknown_link_rejected_at_solve(self):
        solver = ResidualSolver(ring_capacities([10.0] * len(LINKS)))
        solver.add_flow(flow_from_single_path(0, ("n0", "zz"), 1.0))
        with pytest.raises(FlowSimError):
            solver.solve()

    def test_set_capacity_is_directed(self):
        solver = ResidualSolver(ring_capacities([10.0] * len(LINKS)))
        u, v = LINKS[0]
        solver.set_capacity(u, v, 3.0)
        sol = solver.solve()
        assert sol.residual[(u, v)] == 3.0
        assert sol.residual[(v, u)] == 10.0
