"""Tests for the flow-completion-time fluid simulator."""

import pytest
from hypothesis import given, settings, strategies as st

import repro.topology as T
from repro.flowsim.fct import FCTError, FCTSimulator, TimedFlow, mean_fct
from repro.routing import ECMPRouter, VLBRouter
from repro.units import GBPS


@pytest.fixture()
def mesh_sim():
    topo = T.full_mesh(4, 2, link_rate=10 * GBPS)
    return FCTSimulator(topo, ECMPRouter(topo))


MB = 1_000_000  # bytes


class TestSingleFlow:
    def test_fct_is_size_over_line_rate(self, mesh_sim):
        flows = [TimedFlow(0, "h0.0", "h1.0", 10 * MB, arrival=0.0)]
        done = mesh_sim.run(flows)
        # 10 MB at 10 Gbps = 8 ms.
        assert done[0].fct == pytest.approx(8e-3, rel=1e-6)

    def test_arrival_offsets_completion(self, mesh_sim):
        flows = [TimedFlow(0, "h0.0", "h1.0", 10 * MB, arrival=0.5)]
        done = mesh_sim.run(flows)
        assert done[0].completion == pytest.approx(0.508, rel=1e-6)
        assert done[0].fct == pytest.approx(8e-3, rel=1e-6)

    def test_average_rate(self, mesh_sim):
        done = mesh_sim.run([TimedFlow(0, "h0.0", "h1.0", 10 * MB, 0.0)])
        assert done[0].average_rate_bps == pytest.approx(10 * GBPS, rel=1e-6)


class TestSharing:
    def test_two_simultaneous_flows_share_the_host_link(self, mesh_sim):
        flows = [
            TimedFlow(0, "h0.0", "h1.0", 10 * MB, 0.0),
            TimedFlow(1, "h0.0", "h2.0", 10 * MB, 0.0),
        ]
        done = mesh_sim.run(flows)
        # Both share h0.0's 10 G NIC: 16 ms each.
        for c in done:
            assert c.fct == pytest.approx(16e-3, rel=1e-6)

    def test_short_flow_finishes_first_then_long_speeds_up(self, mesh_sim):
        flows = [
            TimedFlow(0, "h0.0", "h1.0", 20 * MB, 0.0),
            TimedFlow(1, "h0.0", "h2.0", 5 * MB, 0.0),
        ]
        done = {c.flow_id: c for c in mesh_sim.run(flows)}
        # Shared at 5 G until the short flow drains 5 MB (t = 8 ms);
        # the long flow then has 15 MB left at full rate (+12 ms).
        assert done[1].completion == pytest.approx(8e-3, rel=1e-6)
        assert done[0].completion == pytest.approx(20e-3, rel=1e-6)

    def test_staggered_arrival_reallocates(self, mesh_sim):
        flows = [
            TimedFlow(0, "h0.0", "h1.0", 10 * MB, 0.0),
            TimedFlow(1, "h0.0", "h2.0", 10 * MB, 4e-3),
        ]
        done = {c.flow_id: c for c in mesh_sim.run(flows)}
        # Flow 0 runs alone for 4 ms (5 MB), then shares: 5 MB at 5 G
        # (+8 ms) → 12 ms total.
        assert done[0].completion == pytest.approx(12e-3, rel=1e-6)
        assert done[1].completion > done[0].completion


class TestMultipath:
    def test_vlb_multipath_beats_single_channel(self):
        topo = T.full_mesh(4, 2, link_rate=10 * GBPS)
        # Two flows rack0 → rack1 compete for one 10 G channel under
        # direct routing; multipath VLB spills one onto detours.
        flows = [
            TimedFlow(0, "h0.0", "h1.0", 10 * MB, 0.0),
            TimedFlow(1, "h0.1", "h1.1", 10 * MB, 0.0),
        ]
        direct = FCTSimulator(topo, ECMPRouter(topo)).run(flows)
        spread = FCTSimulator(
            topo, VLBRouter(topo, 0.5), multipath=True
        ).run(flows)
        assert mean_fct(spread) < mean_fct(direct)


class TestControls:
    def test_horizon_truncates(self, mesh_sim):
        flows = [TimedFlow(0, "h0.0", "h1.0", 100 * MB, 0.0)]
        done = mesh_sim.run(flows, horizon=1e-3)
        assert done == []

    def test_demand_cap(self):
        topo = T.full_mesh(4, 2, link_rate=10 * GBPS)
        sim = FCTSimulator(topo, ECMPRouter(topo), demand_cap_bps=1 * GBPS)
        done = sim.run([TimedFlow(0, "h0.0", "h1.0", 10 * MB, 0.0)])
        assert done[0].fct == pytest.approx(80e-3, rel=1e-6)

    def test_duplicate_ids_rejected(self, mesh_sim):
        flows = [
            TimedFlow(0, "h0.0", "h1.0", MB, 0.0),
            TimedFlow(0, "h0.1", "h1.1", MB, 0.0),
        ]
        with pytest.raises(FCTError):
            mesh_sim.run(flows)

    def test_invalid_flow_specs(self):
        with pytest.raises(FCTError):
            TimedFlow(0, "a", "b", 0, 0.0)
        with pytest.raises(FCTError):
            TimedFlow(0, "a", "b", 10, -1.0)

    def test_empty(self, mesh_sim):
        assert mesh_sim.run([]) == []

    def test_mean_fct_empty_rejected(self):
        with pytest.raises(FCTError):
            mean_fct([])


class TestInvariants:
    @given(
        st.lists(
            st.tuples(st.floats(0.1, 20.0), st.floats(0.0, 0.01)),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=20, deadline=None)
    def test_property_all_flows_complete_with_sane_fcts(self, specs):
        topo = T.full_mesh(4, 2, link_rate=10 * GBPS)
        sim = FCTSimulator(topo, ECMPRouter(topo))
        servers = topo.servers()
        flows = [
            TimedFlow(
                i,
                servers[i % len(servers)],
                servers[(i + 3) % len(servers)],
                size_mb * MB,
                arrival,
            )
            for i, (size_mb, arrival) in enumerate(specs)
        ]
        done = sim.run(flows)
        assert len(done) == len(flows)
        for c in done:
            # Never faster than line rate, never slower than a full
            # serial schedule of all bytes.
            assert c.fct >= c.size_bytes * 8 / (10 * GBPS) - 1e-9
            total_bytes = sum(f.size_bytes for f in flows)
            assert c.fct <= total_bytes * 8 / (10 * GBPS) + 0.011
