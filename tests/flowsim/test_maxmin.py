"""Tests for max-min fair progressive filling."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.flowsim.maxmin import (
    Flow,
    FlowSimError,
    capacities_of,
    flow_from_single_path,
    max_min_rates,
)
from repro.routing.base import WeightedPath


def caps(**links):
    """Helper: {'a_b': 10} → {('a','b'): 10} (directed)."""
    return {tuple(k.split("_")): float(v) for k, v in links.items()}


class TestFlowValidation:
    def test_wide_split_with_accumulated_drift_accepted(self):
        """A 64-way split whose weights drifted a few ULPs per path can
        sum a handful of nanos away from 1; the tolerance scales with
        path count so such splits are no longer spuriously rejected."""
        n = 64
        paths = tuple(
            WeightedPath(("s", f"m{i}", "d"), (1.0 + 3e-9) / n) for i in range(n)
        )
        flow = Flow(flow_id=0, paths=paths, demand=1.0)
        assert len(flow.paths) == n

    def test_genuinely_wrong_weights_rejected(self):
        paths = (
            WeightedPath(("s", "m", "d"), 0.5),
            WeightedPath(("s", "n", "d"), 0.4),
        )
        with pytest.raises(FlowSimError):
            Flow(flow_id=0, paths=paths, demand=1.0)

    def test_single_path_tolerance_stays_tight(self):
        with pytest.raises(FlowSimError):
            Flow(
                flow_id=0,
                paths=(WeightedPath(("s", "d"), 1.0 + 1e-6),),
                demand=1.0,
            )


class TestSingleLink:
    def test_two_flows_share_equally(self):
        flows = [
            flow_from_single_path(0, ("a", "b"), demand=10.0),
            flow_from_single_path(1, ("a", "b"), demand=10.0),
        ]
        rates = max_min_rates(flows, caps(a_b=10))
        assert rates[0] == pytest.approx(5.0)
        assert rates[1] == pytest.approx(5.0)

    def test_demand_cap_respected(self):
        flows = [
            flow_from_single_path(0, ("a", "b"), demand=2.0),
            flow_from_single_path(1, ("a", "b"), demand=10.0),
        ]
        rates = max_min_rates(flows, caps(a_b=10))
        assert rates[0] == pytest.approx(2.0)
        assert rates[1] == pytest.approx(8.0)  # takes the leftover

    def test_unconstrained_flow_gets_demand(self):
        flows = [flow_from_single_path(0, ("a", "b"), demand=3.0)]
        rates = max_min_rates(flows, caps(a_b=10))
        assert rates[0] == pytest.approx(3.0)


class TestClassicScenarios:
    def test_textbook_three_flow_maxmin(self):
        # Two tandem links; flow 0 crosses both, flows 1 and 2 one each.
        capacities = caps(a_b=10, b_c=10)
        flows = [
            Flow(0, (WeightedPath(("a", "b", "c"), 1.0),), demand=100.0),
            flow_from_single_path(1, ("a", "b"), demand=100.0),
            flow_from_single_path(2, ("b", "c"), demand=100.0),
        ]
        rates = max_min_rates(flows, capacities)
        assert rates[0] == pytest.approx(5.0)
        assert rates[1] == pytest.approx(5.0)
        assert rates[2] == pytest.approx(5.0)

    def test_bottleneck_asymmetry(self):
        capacities = caps(a_b=10, b_c=2)
        flows = [
            Flow(0, (WeightedPath(("a", "b", "c"), 1.0),), demand=100.0),
            flow_from_single_path(1, ("a", "b"), demand=100.0),
        ]
        rates = max_min_rates(flows, capacities)
        assert rates[0] == pytest.approx(2.0)
        assert rates[1] == pytest.approx(8.0)


class TestMultipath:
    def test_even_two_path_split_doubles_throughput(self):
        capacities = caps(a_b=10, a_c=10, c_b=10)
        flow = Flow(
            0,
            (
                WeightedPath(("a", "b"), 0.5),
                WeightedPath(("a", "c", "b"), 0.5),
            ),
            demand=100.0,
        )
        rates = max_min_rates([flow], capacities)
        # Each path carries half the rate; the direct link caps its half
        # at 10, so the total rate reaches 20.
        assert rates[0] == pytest.approx(20.0)

    def test_weighted_split_bottleneck(self):
        capacities = caps(a_b=10, a_c=10, c_b=10)
        flow = Flow(
            0,
            (
                WeightedPath(("a", "b"), 0.8),
                WeightedPath(("a", "c", "b"), 0.2),
            ),
            demand=100.0,
        )
        rates = max_min_rates([flow], capacities)
        # The 80 % direct share saturates at 10 → total 12.5.
        assert rates[0] == pytest.approx(12.5)


class TestValidation:
    def test_weights_must_sum_to_one(self):
        with pytest.raises(FlowSimError):
            Flow(0, (WeightedPath(("a", "b"), 0.5),), demand=1.0)

    def test_unknown_link_rejected(self):
        flow = flow_from_single_path(0, ("a", "z"), demand=1.0)
        with pytest.raises(FlowSimError):
            max_min_rates([flow], caps(a_b=10))

    def test_non_positive_demand_rejected(self):
        with pytest.raises(FlowSimError):
            flow_from_single_path(0, ("a", "b"), demand=0.0)

    def test_non_positive_capacity_rejected(self):
        flow = flow_from_single_path(0, ("a", "b"), demand=1.0)
        with pytest.raises(FlowSimError):
            max_min_rates([flow], {("a", "b"): 0.0})

    def test_empty_flow_list(self):
        assert max_min_rates([], caps(a_b=10)) == {}


class TestInvariants:
    @given(
        st.lists(st.floats(0.5, 20.0), min_size=1, max_size=8),
        st.floats(1.0, 50.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_feasible_and_demand_bounded(self, demands, capacity):
        flows = [
            flow_from_single_path(i, ("a", "b"), demand=d)
            for i, d in enumerate(demands)
        ]
        rates = max_min_rates(flows, {("a", "b"): capacity})
        total = sum(rates.values())
        assert total <= capacity * (1 + 1e-6)
        for i, d in enumerate(demands):
            assert rates[i] <= d * (1 + 1e-9)
        # Work-conserving: either capacity is used up or everyone got
        # their full demand.
        assert total == pytest.approx(min(capacity, sum(demands)), rel=1e-5)

    @given(st.lists(st.floats(1.0, 10.0), min_size=2, max_size=6))
    @settings(max_examples=30, deadline=None)
    def test_property_equal_demands_get_equal_rates(self, demands):
        # All flows identical demand on one link → identical rates.
        demand = demands[0]
        flows = [
            flow_from_single_path(i, ("a", "b"), demand=demand)
            for i in range(len(demands))
        ]
        rates = max_min_rates(flows, {("a", "b"): 7.0})
        values = list(rates.values())
        assert max(values) - min(values) < 1e-6


class TestCapacitiesOf:
    def test_both_directions_present(self):
        import repro.topology as T

        topo = T.full_mesh(3, 1)
        capacities = capacities_of(topo)
        assert ("tor0", "tor1") in capacities
        assert ("tor1", "tor0") in capacities
