"""Correctness contract: cached artifacts are value-equal to fresh builds.

Every constructor wrapped by :func:`repro.cache.cached` keeps its raw
implementation reachable as ``__wrapped__``; these property tests build
each artifact twice — once through the cache (forcing hits by repeating
the call) and once raw — and require value equality.  This is the
property that lets caching change wall-clock time but never results.
"""

import pytest
from hypothesis import given, settings, strategies as st

import repro.topology as T
from repro.cache import configure, reset
from repro.core.channels import greedy_assignment
from repro.core.multiring import plan_rings
from repro.routing.tables import kshortest_table, vlb_table
from repro.topology.base import topologies_equal


@pytest.fixture(autouse=True)
def _fresh_cache(tmp_path):
    """Route every test through a private disk-backed cache."""
    configure(directory=str(tmp_path / "store"))
    yield
    reset()


class TestPlanEquivalence:
    @settings(max_examples=15, deadline=None)
    @given(ring_size=st.integers(min_value=2, max_value=14))
    def test_greedy_cached_equals_fresh(self, ring_size):
        cached_plan = greedy_assignment(ring_size)
        again = greedy_assignment(ring_size)
        fresh = greedy_assignment.__wrapped__(ring_size)
        assert cached_plan == again == fresh

    @settings(max_examples=10, deadline=None)
    @given(
        ring_size=st.integers(min_value=4, max_value=12),
        seed=st.integers(min_value=0, max_value=3),
    )
    def test_greedy_seed_is_part_of_the_key(self, ring_size, seed):
        assert greedy_assignment(ring_size, seed=seed) == greedy_assignment.__wrapped__(
            ring_size, seed=seed
        )

    @settings(max_examples=8, deadline=None)
    @given(ring_size=st.integers(min_value=4, max_value=12))
    def test_multiring_cached_equals_fresh(self, ring_size):
        # Two rings with the default WDM budget: always feasible at
        # these sizes, still exercises the multi-ring placement.
        cached_plan = plan_rings(ring_size, num_rings=2)
        fresh = plan_rings.__wrapped__(ring_size, num_rings=2)
        assert cached_plan == plan_rings(ring_size, num_rings=2) == fresh


class TestTopologyEquivalence:
    @settings(max_examples=8, deadline=None)
    @given(
        racks=st.integers(min_value=3, max_value=8),
        servers=st.integers(min_value=1, max_value=3),
    )
    def test_quartz_ring_cached_equals_fresh(self, racks, servers):
        cached_topo = T.quartz_ring(racks, servers)
        fresh = T.quartz_ring.__wrapped__(racks, servers)
        assert topologies_equal(cached_topo, fresh)

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=5))
    def test_jellyfish_cached_equals_fresh(self, seed):
        cached_topo = T.jellyfish(8, 4, 2, seed=seed)
        fresh = T.jellyfish.__wrapped__(8, 4, 2, seed=seed)
        assert topologies_equal(cached_topo, fresh)

    def test_hit_returns_an_independent_copy(self):
        first = T.quartz_ring(5, 2)
        second = T.quartz_ring(5, 2)
        assert first is not second
        assert first.graph is not second.graph
        u, v = next(iter(first.graph.edges()))
        first.graph.remove_edge(u, v)
        # Mutating one returned topology must not leak into the cache.
        third = T.quartz_ring(5, 2)
        assert third.graph.has_edge(u, v)
        assert topologies_equal(second, third)


class TestRouteTableEquivalence:
    @settings(max_examples=5, deadline=None)
    @given(
        k=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=2),
    )
    def test_kshortest_table_cached_equals_fresh(self, k, seed):
        topo = T.jellyfish(6, 3, 2, seed=seed)
        cached_table = kshortest_table(topo, k)
        fresh = kshortest_table.__wrapped__(topo, k)
        assert cached_table == kshortest_table(topo, k) == fresh

    def test_vlb_table_cached_equals_fresh(self):
        topo = T.quartz_ring(6, 2)
        assert vlb_table(topo) == vlb_table.__wrapped__(topo)

    def test_fingerprint_keys_degraded_topology_separately(self):
        topo = T.quartz_ring(6, 2)
        intact = kshortest_table(topo, 2)
        u, v = next(
            (l.u, l.v) for l in topo.links() if l.link_kind.value == "mesh"
        )
        topo.graph.remove_edge(u, v)
        degraded = kshortest_table(topo, 2)
        assert degraded != intact
        assert degraded == kshortest_table.__wrapped__(topo, 2)
