"""Canonical cache-key encoding: stable, collision-free, type-tagged."""

import enum
from dataclasses import dataclass

import pytest
from hypothesis import given, strategies as st

from repro.cache import CacheKeyError, canonical, digest


class Color(enum.Enum):
    RED = 1
    BLUE = 2


@dataclass(frozen=True)
class Spec:
    size: int
    label: str


class Fingerprinted:
    def __cache_key__(self):
        return ("fp", "abc123")


class TestCanonical:
    def test_scalar_types_do_not_collide(self):
        encodings = {canonical(v) for v in (1, 1.0, True, "1", b"1", None)}
        assert len(encodings) == 6

    def test_dict_order_irrelevant(self):
        assert canonical({"a": 1, "b": 2}) == canonical({"b": 2, "a": 1})

    def test_set_order_irrelevant(self):
        assert canonical({3, 1, 2}) == canonical({2, 3, 1})

    def test_nested_structures(self):
        value = {"sizes": [1, 2, (3, 4)], "flags": {"x": True}}
        assert canonical(value) == canonical(dict(reversed(value.items())))

    def test_enum_encodes_type_and_value(self):
        assert canonical(Color.RED) != canonical(Color.BLUE)
        assert canonical(Color.RED) != canonical(1)

    def test_dataclass_encodes_fields(self):
        assert canonical(Spec(3, "a")) != canonical(Spec(4, "a"))
        assert canonical(Spec(3, "a")) == canonical(Spec(3, "a"))

    def test_cache_key_protocol_wins(self):
        assert "abc123" in canonical(Fingerprinted())

    def test_unencodable_raises(self):
        with pytest.raises(CacheKeyError):
            canonical(object())

    def test_float_exact(self):
        assert canonical(0.1 + 0.2) != canonical(0.3)

    @given(st.floats(allow_nan=False))
    def test_float_round_trip_exact(self, x):
        assert canonical(x) == canonical(float(repr(x)))

    @given(
        st.recursive(
            st.none() | st.booleans() | st.integers() | st.text(),
            lambda inner: st.lists(inner, max_size=3)
            | st.dictionaries(st.text(max_size=5), inner, max_size=3),
            max_leaves=10,
        )
    )
    def test_equal_values_encode_identically(self, value):
        import copy

        assert canonical(value) == canonical(copy.deepcopy(value))


class TestDigest:
    def test_deterministic(self):
        assert digest("ns", 1, (1, 2)) == digest("ns", 1, (1, 2))

    def test_namespace_and_version_salt(self):
        base = digest("ns", 1, (1, 2))
        assert digest("other", 1, (1, 2)) != base
        assert digest("ns", 2, (1, 2)) != base

    def test_hex_sha256_shape(self):
        value = digest("ns", 1, ())
        assert len(value) == 64
        int(value, 16)
