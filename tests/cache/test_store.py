"""The two-layer artifact store: LRU, disk sharing, stats, lifecycle."""

import pytest

from repro.cache import (
    ArtifactCache,
    CacheConfig,
    CacheConfigError,
    artifact_cache,
    cached,
    configure,
    reset,
)


@pytest.fixture(autouse=True)
def _isolated_cache():
    """Every test gets a fresh process-wide cache; env config restored after."""
    yield
    reset()


def _build_counter():
    calls = {"n": 0}

    def build():
        calls["n"] += 1
        return {"value": calls["n"]}

    return calls, build


class TestMemoryLayer:
    def test_hit_returns_stored_value(self):
        cache = ArtifactCache(CacheConfig())
        calls, build = _build_counter()
        first = cache.get_or_build("ns", 1, ("k",), build)
        second = cache.get_or_build("ns", 1, ("k",), build)
        assert first == second == {"value": 1}
        assert calls["n"] == 1
        assert cache.stats.memory_hits == 1
        assert cache.stats.misses == 1

    def test_distinct_keys_build_separately(self):
        cache = ArtifactCache(CacheConfig())
        calls, build = _build_counter()
        cache.get_or_build("ns", 1, ("a",), build)
        cache.get_or_build("ns", 1, ("b",), build)
        assert calls["n"] == 2

    def test_version_salts_the_key(self):
        cache = ArtifactCache(CacheConfig())
        calls, build = _build_counter()
        cache.get_or_build("ns", 1, ("k",), build)
        cache.get_or_build("ns", 2, ("k",), build)
        assert calls["n"] == 2

    def test_lru_eviction_and_counters(self):
        cache = ArtifactCache(CacheConfig(memory_items=2))
        for key in ("a", "b", "c"):
            cache.get_or_build("ns", 1, (key,), lambda: key)
        assert cache.stats.evictions == 1
        # "a" was evicted; "b" and "c" still hit.
        calls, build = _build_counter()
        cache.get_or_build("ns", 1, ("a",), build)
        assert calls["n"] == 1
        assert cache.stats.memory_bytes > 0

    def test_recently_used_survives_eviction(self):
        cache = ArtifactCache(CacheConfig(memory_items=2))
        cache.get_or_build("ns", 1, ("a",), lambda: "a")
        cache.get_or_build("ns", 1, ("b",), lambda: "b")
        cache.get_or_build("ns", 1, ("a",), lambda: "a")  # refresh "a"
        cache.get_or_build("ns", 1, ("c",), lambda: "c")  # evicts "b"
        calls, build = _build_counter()
        cache.get_or_build("ns", 1, ("a",), build)
        assert calls["n"] == 0

    def test_cached_none_is_a_hit(self):
        cache = ArtifactCache(CacheConfig())
        calls = {"n": 0}

        def build():
            calls["n"] += 1
            return None

        assert cache.get_or_build("ns", 1, ("k",), build) is None
        assert cache.get_or_build("ns", 1, ("k",), build) is None
        assert calls["n"] == 1

    def test_disabled_always_builds(self):
        cache = ArtifactCache(CacheConfig(enabled=False))
        calls, build = _build_counter()
        cache.get_or_build("ns", 1, ("k",), build)
        cache.get_or_build("ns", 1, ("k",), build)
        assert calls["n"] == 2
        assert cache.stats.lookups == 0

    def test_copy_applied_on_hit_and_miss(self):
        cache = ArtifactCache(CacheConfig())
        build = lambda: {"v": 1}  # noqa: E731
        first = cache.get_or_build("ns", 1, ("k",), build, copy=dict)
        first["v"] = 999  # must not corrupt the stored entry
        second = cache.get_or_build("ns", 1, ("k",), build, copy=dict)
        assert second == {"v": 1}
        assert second is not first


class TestDiskLayer:
    def test_shared_between_instances(self, tmp_path):
        config = CacheConfig(directory=str(tmp_path))
        writer = ArtifactCache(config)
        calls, build = _build_counter()
        writer.get_or_build("ns", 1, ("k",), build)
        reader = ArtifactCache(config)  # fresh memory, same disk
        assert reader.get_or_build("ns", 1, ("k",), build) == {"value": 1}
        assert calls["n"] == 1
        assert reader.stats.disk_hits == 1
        assert reader.stats.disk_bytes_read > 0
        assert writer.stats.disk_bytes_written > 0

    def test_corrupt_entry_rebuilds(self, tmp_path):
        config = CacheConfig(directory=str(tmp_path))
        cache = ArtifactCache(config)
        calls, build = _build_counter()
        cache.get_or_build("ns", 1, ("k",), build)
        for entry in tmp_path.glob("*/*.pkl"):
            entry.write_bytes(b"not a pickle")
        fresh = ArtifactCache(config)
        assert fresh.get_or_build("ns", 1, ("k",), build) == {"value": 2}
        assert calls["n"] == 2

    def test_clear_removes_entries(self, tmp_path):
        cache = ArtifactCache(CacheConfig(directory=str(tmp_path)))
        cache.get_or_build("ns", 1, ("a",), lambda: 1)
        cache.get_or_build("other", 1, ("b",), lambda: 2)
        entries, size = cache.disk_usage()
        assert entries == 2 and size > 0
        assert cache.clear() == 2
        assert cache.disk_usage() == (0, 0)
        calls, build = _build_counter()
        cache.get_or_build("ns", 1, ("a",), build)
        assert calls["n"] == 1

    def test_namespace_slash_maps_to_directory_safe_name(self, tmp_path):
        cache = ArtifactCache(CacheConfig(directory=str(tmp_path)))
        cache.get_or_build("route-table/kshortest", 1, ("k",), lambda: 1)
        assert (tmp_path / "route-table_kshortest").is_dir()


class TestProcessWideCache:
    def test_configure_overrides_and_reset_restores(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        configure(directory=str(tmp_path))
        assert artifact_cache().config.directory == str(tmp_path)
        reset()
        assert artifact_cache().config.directory is None

    def test_configure_rejects_mixed_arguments(self):
        with pytest.raises(CacheConfigError):
            configure(CacheConfig(), directory="/tmp/x")

    def test_from_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_CACHE_MEMORY_ITEMS", "7")
        config = CacheConfig.from_env()
        assert config.directory == str(tmp_path)
        assert config.memory_items == 7
        assert config.enabled

    def test_disable_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DISABLE", "1")
        assert not CacheConfig.from_env().enabled

    def test_bad_memory_items_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_MEMORY_ITEMS", "many")
        with pytest.raises(CacheConfigError):
            CacheConfig.from_env()
        monkeypatch.setenv("REPRO_CACHE_MEMORY_ITEMS", "-1")
        with pytest.raises(CacheConfigError):
            CacheConfig.from_env()


class TestCachedDecorator:
    def test_positional_and_keyword_calls_share_an_entry(self):
        configure(directory=None)
        calls = {"n": 0}

        @cached("test/decorator")
        def build(size, label="x"):
            calls["n"] += 1
            return (size, label)

        assert build(3) == (3, "x")
        assert build(size=3) == (3, "x")
        assert build(3, label="x") == (3, "x")
        assert calls["n"] == 1
        assert build(3, label="y") == (3, "y")
        assert calls["n"] == 2

    def test_wrapped_reaches_the_raw_function(self):
        @cached("test/wrapped")
        def build(x):
            return x + 1

        assert build.__wrapped__(1) == 2

    def test_disabled_cache_bypasses(self):
        configure(enabled=False)
        calls = {"n": 0}

        @cached("test/disabled")
        def build(x):
            calls["n"] += 1
            return x

        build(1)
        build(1)
        assert calls["n"] == 2
