"""Tests for finite output-port buffers and tail drops."""

import pytest

import repro.topology as T
from repro.routing import ECMPRouter
from repro.sim import Network, NetworkSimError, PoissonSource
from repro.units import GBPS


def burst(net, count=20, size=1500):
    for _ in range(count):
        net.send("h0.0", "h1.0", size)


class TestTailDrop:
    def test_default_is_unbounded(self):
        topo = T.full_mesh(2, 1, link_rate=1 * GBPS)
        net = Network(topo, ECMPRouter(topo))
        burst(net, count=100)
        net.run()
        assert net.packets_dropped == 0
        assert net.packets_delivered == 100

    def test_small_buffer_drops_burst_tail(self):
        topo = T.full_mesh(2, 1, link_rate=1 * GBPS)
        # Buffer of ~4 packets: a 20-packet back-to-back burst loses most.
        net = Network(topo, ECMPRouter(topo), buffer_bytes=6000)
        burst(net, count=20)
        net.run()
        assert net.packets_dropped > 0
        assert net.packets_delivered + net.packets_dropped == 20

    def test_dropped_packets_are_not_recorded(self):
        topo = T.full_mesh(2, 1, link_rate=1 * GBPS)
        net = Network(topo, ECMPRouter(topo), buffer_bytes=3000)
        burst(net, count=10)
        net.run()
        assert net.stats.count == net.packets_delivered

    def test_bigger_buffer_fewer_drops(self):
        def drops(buffer_bytes):
            topo = T.full_mesh(2, 1, link_rate=1 * GBPS)
            net = Network(topo, ECMPRouter(topo), buffer_bytes=buffer_bytes)
            burst(net, count=30)
            net.run()
            return net.packets_dropped

        assert drops(3000) > drops(15000) >= drops(60000)

    def test_paced_traffic_does_not_drop(self):
        topo = T.full_mesh(2, 1, link_rate=10 * GBPS)
        net = Network(topo, ECMPRouter(topo), buffer_bytes=20 * 1500)
        source = PoissonSource.at_bandwidth(net, "h0.0", "h1.0", 1 * GBPS, seed=1)
        source.start()
        net.run(until=0.005)
        assert net.packets_dropped == 0

    def test_drop_counted_per_port(self):
        topo = T.full_mesh(2, 1, link_rate=1 * GBPS)
        net = Network(topo, ECMPRouter(topo), buffer_bytes=3000)
        burst(net, count=10)
        net.run()
        port = net._ports[("h0.0", "tor0")]
        assert port.packets_dropped == net.packets_dropped

    def test_invalid_buffer_rejected(self):
        topo = T.full_mesh(2, 1)
        with pytest.raises(NetworkSimError):
            Network(topo, ECMPRouter(topo), buffer_bytes=0)
