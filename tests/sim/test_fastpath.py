"""Compiled forwarding fast path: bit-identical to the reference loop.

The fast path (:mod:`repro.sim.fastpath`) must be a pure speed change:
every metric — per-packet latencies, drop/reroute counters, even the
engine's event count — must match the reference ``_transmit``/``_arrive``
loop exactly, including under mid-run fault injection (which invalidates
compiled plans) and bounded-buffer tail drops.
"""

import pytest

import repro.topology as T
from repro.routing import ECMPRouter
from repro.sim import Network, NetworkSimError, ULL
from repro.sim.fastpath import compile_plan
from repro.sim.network import DEFAULT_PROPAGATION_DELAY
from repro.sim.sources import PoissonSource
from repro.units import GBPS, serialization_delay


def run_fingerprint(fastpath, buffer_bytes=None, fault=False):
    """Run a fixed workload; return every externally visible number."""
    topo = T.three_tier_tree()
    net = Network(
        topo, ECMPRouter(topo), buffer_bytes=buffer_bytes, fastpath=fastpath
    )
    engine = net.engine
    servers = topo.servers()
    # Six senders converge on one receiver: the shared downlink
    # oversubscribes (~11.5 Gbps offered into 10 Gbps), so bounded
    # buffers genuinely tail-drop.
    sources = [
        PoissonSource(
            net, servers[i], servers[-1], rate_pps=600_000.0,
            seed=i, flow_id=i, group="load", chunk=1 if not fastpath else None,
        )
        for i in range(6)
    ]
    for source in sources:
        source.start()
    if fault:
        # Cut a link on the first pair's route mid-run, repair later:
        # this severs in-flight packets, forces detours, and must clear
        # the compiled-plan cache both times.
        probe = net.router.route(servers[0], servers[-1], 0)
        u, v = probe[1], probe[2]
        net.enable_fault_tracking()
        engine.schedule(0.004, lambda: net.fail_link(u, v))
        engine.schedule(0.008, lambda: net.repair_link(u, v))
    engine.run(until=0.012)
    return (
        net.packets_delivered,
        net.packets_dropped,
        net.packets_dropped_fault,
        net.packets_rerouted,
        engine.events_processed,
        tuple(net.stats.samples),
    )


class TestEquivalence:
    def test_plain_traffic_bit_identical(self):
        assert run_fingerprint(True) == run_fingerprint(False)

    def test_bounded_buffer_drops_bit_identical(self):
        fast = run_fingerprint(True, buffer_bytes=1600)
        ref = run_fingerprint(False, buffer_bytes=1600)
        assert fast == ref
        assert fast[1] > 0  # the regime actually dropped packets

    def test_fault_injection_bit_identical(self):
        fast = run_fingerprint(True, fault=True)
        ref = run_fingerprint(False, fault=True)
        assert fast == ref

    def test_fault_and_buffer_bit_identical(self):
        fast = run_fingerprint(True, buffer_bytes=3000, fault=True)
        ref = run_fingerprint(False, buffer_bytes=3000, fault=True)
        assert fast == ref


class TestPlanCache:
    @pytest.fixture
    def net(self):
        topo = T.three_tier_tree()
        return Network(topo, ECMPRouter(topo), fastpath=True)

    def test_plan_shared_across_packets(self, net):
        first = net.send("h0.0", "h15.0", 400)
        second = net.send("h0.0", "h15.0", 400)
        assert first.plan is second.plan
        assert len(net._plans) == 1

    def test_distinct_paths_get_distinct_plans(self, net):
        a = net.send("h0.0", "h15.0", 400, flow_id=0)
        b = net.send("h1.0", "h14.0", 400, flow_id=1)
        assert a.plan is not b.plan

    def test_fail_link_clears_cache(self, net):
        packet = net.send("h0.0", "h15.0", 400)
        net.run()
        assert net._plans
        u, v = packet.path[1], packet.path[2]
        net.fail_link(u, v)
        assert not net._plans

    def test_repair_link_clears_cache(self, net):
        packet = net.send("h0.0", "h15.0", 400)
        net.run()
        u, v = packet.path[1], packet.path[2]
        net.fail_link(u, v)
        net.send("h0.0", "h15.0", 400)
        assert net._plans
        net.repair_link(u, v)
        assert not net._plans

    def test_missing_link_raises_same_error(self, net):
        with pytest.raises(NetworkSimError, match="no link"):
            compile_plan(net._link_rec, net._hop_rec, ("h0.0", "h15.0"))


class TestFlagResolution:
    def test_explicit_flag_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FASTPATH_DISABLE", "1")
        topo = T.full_mesh(2, 1)
        assert Network(topo, ECMPRouter(topo), fastpath=True).fastpath_enabled
        assert not Network(topo, ECMPRouter(topo)).fastpath_enabled

    def test_env_unset_enables_fastpath(self, monkeypatch):
        monkeypatch.delenv("REPRO_FASTPATH_DISABLE", raising=False)
        topo = T.full_mesh(2, 1)
        assert Network(topo, ECMPRouter(topo)).fastpath_enabled


def mixed_rate_topology(rate_in, rate_out):
    """server a — ULL switch — server b with different link rates."""
    topo = T.Topology(name="mixed")
    topo.add_server("a", rack=0)
    topo.add_server("b", rack=1)
    topo.add_switch("s", rack=0, switch_model="ULL")
    topo.add_link("a", "s", rate_in)
    topo.add_link("s", "b", rate_out)
    return topo


class TestCutThroughMixedRates:
    """Cut-through timing when ``ser_in != ser_out``.

    The switch starts clocking the packet out before the tail arrives:
    ``earliest_start`` is *before* the arrival event's ``now`` by
    ``min(ser_in, ser_out)``.  Expected latencies are hand-computed.
    """

    @pytest.mark.parametrize(
        "rate_in,rate_out",
        [(40 * GBPS, 10 * GBPS), (10 * GBPS, 40 * GBPS)],
        ids=["slow-out", "slow-in"],
    )
    @pytest.mark.parametrize("fastpath", [True, False], ids=["fast", "ref"])
    def test_single_packet_latency(self, rate_in, rate_out, fastpath):
        topo = mixed_rate_topology(rate_in, rate_out)
        net = Network(topo, ECMPRouter(topo), fastpath=fastpath)
        packet = net.send("a", "b", 400)
        net.run()
        ser_in = serialization_delay(400, rate_in)
        ser_out = serialization_delay(400, rate_out)
        # Host clocks the packet in (ser_in); the switch overlaps its
        # output with reception, so only the *excess* of ser_out over
        # the overlap min(ser_in, ser_out) is paid on the second hop.
        expected = (
            ser_in
            + DEFAULT_PROPAGATION_DELAY
            - min(ser_in, ser_out)
            + ULL.latency
            + ser_out
            + DEFAULT_PROPAGATION_DELAY
        )
        assert packet.latency == pytest.approx(expected, rel=1e-12)

    @pytest.mark.parametrize("fastpath", [True, False], ids=["fast", "ref"])
    def test_queueing_defeats_cut_through_credit(self, fastpath):
        # A busy output port pushes the start past the cut-through
        # earliest_start: start = busy_until, not the credited time.
        topo = mixed_rate_topology(40 * GBPS, 10 * GBPS)
        net = Network(topo, ECMPRouter(topo), fastpath=fastpath)
        first = net.send("a", "b", 1500)
        second = net.send("a", "b", 1500)
        net.run()
        # Second packet leaves the switch one full output serialization
        # after the first (they share the 10G switch→b port).
        ser_out = serialization_delay(1500, 10 * GBPS)
        assert second.latency - first.latency == pytest.approx(ser_out, rel=1e-12)

    def test_fast_and_reference_latencies_bitwise_equal(self):
        for rate_in, rate_out in [(40 * GBPS, 10 * GBPS), (10 * GBPS, 40 * GBPS)]:
            topo_f = mixed_rate_topology(rate_in, rate_out)
            topo_r = mixed_rate_topology(rate_in, rate_out)
            net_f = Network(topo_f, ECMPRouter(topo_f), fastpath=True)
            net_r = Network(topo_r, ECMPRouter(topo_r), fastpath=False)
            for size in (400, 1500, 64):
                net_f.send("a", "b", size)
                net_r.send("a", "b", size)
            net_f.run()
            net_r.run()
            assert net_f.stats.samples == net_r.stats.samples  # exact floats
