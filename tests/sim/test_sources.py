"""Tests for the traffic sources."""

import pytest

import repro.topology as T
from repro.routing import ECMPRouter
from repro.sim import BurstSource, Network, PoissonSource, RPCSource, SourceError
from repro.sim.sources import poisson_pair_sources
from repro.units import GBPS, MBPS


@pytest.fixture()
def net():
    topo = T.full_mesh(4, 2)
    return Network(topo, ECMPRouter(topo))


class TestPoissonSource:
    def test_rate_is_respected(self, net):
        source = PoissonSource(net, "h0.0", "h1.0", rate_pps=100_000, seed=1)
        source.start()
        net.run(until=0.05)
        # 100 k pps over 50 ms → ~5000 packets; Poisson noise ±5 σ.
        assert 4600 <= source.packets_sent <= 5400

    def test_bandwidth_constructor(self, net):
        source = PoissonSource.at_bandwidth(
            net, "h0.0", "h1.0", 1 * GBPS, size_bytes=400, seed=1
        )
        assert source.rate_pps == pytest.approx(1e9 / 3200)

    def test_multiple_destinations_all_hit(self, net):
        source = PoissonSource(
            net, "h0.0", ["h1.0", "h2.0", "h3.0"], rate_pps=50_000, seed=2
        )
        source.start()
        net.run(until=0.01)
        assert net.stats.count > 100

    def test_stop_at(self, net):
        source = PoissonSource(net, "h0.0", "h1.0", rate_pps=100_000, stop_at=0.01, seed=3)
        source.start()
        net.run(until=0.05)
        assert source.packets_sent <= 1100

    def test_stop_method(self, net):
        source = PoissonSource(net, "h0.0", "h1.0", rate_pps=100_000, seed=4)
        source.start()
        net.engine.schedule(0.01, source.stop)
        net.run(until=0.05)
        assert source.packets_sent <= 1100

    def test_double_start_rejected(self, net):
        source = PoissonSource(net, "h0.0", "h1.0", rate_pps=1000)
        source.start()
        with pytest.raises(SourceError):
            source.start()

    def test_zero_rate_rejected(self, net):
        with pytest.raises(SourceError):
            PoissonSource(net, "h0.0", "h1.0", rate_pps=0)

    def test_empty_destinations_rejected(self, net):
        with pytest.raises(SourceError):
            PoissonSource(net, "h0.0", [], rate_pps=1000)

    def test_deterministic_for_seed(self):
        counts = []
        for _ in range(2):
            topo = T.full_mesh(4, 2)
            network = Network(topo, ECMPRouter(topo))
            source = PoissonSource(network, "h0.0", "h1.0", rate_pps=50_000, seed=9)
            source.start()
            network.run(until=0.01)
            counts.append(source.packets_sent)
        assert counts[0] == counts[1]


class TestBurstSource:
    def test_burst_interval_matches_target_bandwidth(self, net):
        source = BurstSource(
            net, "h0.0", "h1.0", target_bandwidth_bps=100 * MBPS,
            burst_packets=20, size_bytes=1500,
        )
        # 20 × 1500 B × 8 = 240 kbit per burst; at 100 Mb/s → 2.4 ms.
        assert source.burst_interval == pytest.approx(2.4e-3)

    def test_long_run_average_rate(self, net):
        source = BurstSource(
            net, "h0.0", "h1.0", target_bandwidth_bps=200 * MBPS, seed=5
        )
        source.start()
        net.run(until=0.1)
        sent_bits = source.packets_sent * 1500 * 8
        assert sent_bits / 0.1 == pytest.approx(200e6, rel=0.15)

    def test_packets_come_in_bursts(self, net):
        source = BurstSource(
            net, "h0.0", "h1.0", target_bandwidth_bps=50 * MBPS, burst_packets=20,
        )
        source.start(delay=0.0)
        net.run(until=source.burst_interval * 0.5)
        assert source.packets_sent == 20

    def test_invalid_parameters(self, net):
        with pytest.raises(SourceError):
            BurstSource(net, "h0.0", "h1.0", target_bandwidth_bps=0)
        with pytest.raises(SourceError):
            BurstSource(net, "h0.0", "h1.0", target_bandwidth_bps=1e6, burst_packets=0)


class TestRPCSource:
    def test_completes_requested_calls(self, net):
        rpc = RPCSource(net, "h0.0", "h1.0", num_calls=50)
        rpc.start()
        net.run()
        assert rpc.completed == 50
        assert len(rpc.rtts) == 50

    def test_rtts_are_recorded_in_stats_group(self, net):
        rpc = RPCSource(net, "h0.0", "h1.0", num_calls=10, group="probe")
        rpc.start()
        net.run()
        assert net.stats.summary("probe").count == 10

    def test_rtt_greater_than_one_way(self, net):
        rpc = RPCSource(net, "h0.0", "h1.0", num_calls=5)
        rpc.start()
        net.run()
        one_way = net.send("h0.0", "h1.0", 200)
        net.run()
        assert min(rpc.rtts) > one_way.latency

    def test_server_think_time_adds_to_rtt(self):
        topo = T.full_mesh(4, 2)
        network = Network(topo, ECMPRouter(topo))
        fast = RPCSource(network, "h0.0", "h1.0", num_calls=5, group="fast")
        slow = RPCSource(
            network, "h2.0", "h3.0", num_calls=5, server_think_time=1e-5, group="slow"
        )
        fast.start()
        slow.start()
        network.run()
        assert network.stats.summary("slow").mean - network.stats.summary(
            "fast"
        ).mean == pytest.approx(1e-5, rel=0.05)

    def test_zero_calls_rejected(self, net):
        with pytest.raises(SourceError):
            RPCSource(net, "h0.0", "h1.0", num_calls=0)


class TestPairSources:
    def test_one_source_per_pair(self, net):
        sources = poisson_pair_sources(
            net, [("h0.0", "h1.0"), ("h2.0", "h3.0")], per_pair_bandwidth_bps=1 * GBPS
        )
        assert len(sources) == 2
        for source in sources:
            source.start()
        net.run(until=0.001)
        assert all(s.packets_sent > 0 for s in sources)


class TestChunkedDraws:
    """Batched RNG draws are a speed knob only: any chunk size must
    produce the exact same packet sequence (numpy generators fill
    batches from the same bit stream as repeated scalar draws, and gap
    and destination picks use independent streams)."""

    def fingerprint(self, chunk, env=None, monkeypatch=None):
        if monkeypatch is not None:
            if env is None:
                monkeypatch.delenv("REPRO_FASTPATH_DISABLE", raising=False)
            else:
                monkeypatch.setenv("REPRO_FASTPATH_DISABLE", env)
        topo = T.full_mesh(4, 2)
        net = Network(topo, ECMPRouter(topo))
        source = PoissonSource(
            net, "h0.0", ["h1.0", "h2.0", "h3.0"], rate_pps=100_000,
            seed=11, chunk=chunk,
        )
        source.start()
        net.run(until=0.02)
        return (
            source.packets_sent,
            net.packets_delivered,
            net.engine.events_processed,
            tuple(net.stats.samples),
        )

    def test_chunk_sizes_bit_identical(self):
        one = self.fingerprint(1)
        assert self.fingerprint(256) == one
        assert self.fingerprint(7) == one
        assert self.fingerprint(1024) == one

    def test_default_chunk_matches_reference_env(self, monkeypatch):
        batched = self.fingerprint(None, env=None, monkeypatch=monkeypatch)
        reference = self.fingerprint(None, env="1", monkeypatch=monkeypatch)
        assert batched == reference

    def test_env_forces_per_packet_draws(self, monkeypatch):
        monkeypatch.setenv("REPRO_FASTPATH_DISABLE", "1")
        topo = T.full_mesh(2, 1)
        source = PoissonSource(
            Network(topo, ECMPRouter(topo)), "h0.0", "h1.0", rate_pps=1000
        )
        assert source.chunk == 1

    def test_invalid_chunk_rejected(self):
        topo = T.full_mesh(2, 1)
        net = Network(topo, ECMPRouter(topo))
        with pytest.raises(SourceError):
            PoissonSource(net, "h0.0", "h1.0", rate_pps=1000, chunk=0)

    def test_pair_sources_forward_chunk(self):
        topo = T.full_mesh(4, 2)
        net = Network(topo, ECMPRouter(topo))
        sources = poisson_pair_sources(
            net, [("h0.0", "h1.0"), ("h2.0", "h3.0")], 100 * MBPS, chunk=17
        )
        assert [s.chunk for s in sources] == [17, 17]
