"""Tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Engine, SimulationError


class TestScheduling:
    def test_events_fire_in_time_order(self):
        engine = Engine()
        fired = []
        engine.schedule(2.0, fired.append, "b")
        engine.schedule(1.0, fired.append, "a")
        engine.schedule(3.0, fired.append, "c")
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_simultaneous_events_fire_in_schedule_order(self):
        engine = Engine()
        fired = []
        for tag in "xyz":
            engine.schedule(1.0, fired.append, tag)
        engine.run()
        assert fired == ["x", "y", "z"]

    def test_now_advances(self):
        engine = Engine()
        seen = []
        engine.schedule(0.5, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [0.5]

    def test_nested_scheduling(self):
        engine = Engine()
        fired = []

        def outer():
            fired.append("outer")
            engine.schedule(1.0, lambda: fired.append("inner"))

        engine.schedule(1.0, outer)
        engine.run()
        assert fired == ["outer", "inner"]
        assert engine.now == 2.0

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Engine().schedule(-1.0, lambda: None)

    def test_past_absolute_time_rejected(self):
        engine = Engine()
        engine.schedule(5.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.schedule_at(1.0, lambda: None)


class TestRunControl:
    def test_until_horizon_stops_and_advances_clock(self):
        engine = Engine()
        fired = []
        engine.schedule(1.0, fired.append, "early")
        engine.schedule(10.0, fired.append, "late")
        engine.run(until=5.0)
        assert fired == ["early"]
        assert engine.now == 5.0
        engine.run()
        assert fired == ["early", "late"]

    def test_max_events_bound(self):
        engine = Engine()
        fired = []
        for i in range(10):
            engine.schedule(float(i + 1), fired.append, i)
        engine.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_cancelled_events_do_not_fire(self):
        engine = Engine()
        fired = []
        event = engine.schedule(1.0, fired.append, "no")
        engine.schedule(2.0, fired.append, "yes")
        event.cancel()
        engine.run()
        assert fired == ["yes"]

    def test_events_processed_counter(self):
        engine = Engine()
        engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        engine.run()
        assert engine.events_processed == 2

    def test_pending_count(self):
        engine = Engine()
        engine.schedule(1.0, lambda: None)
        assert engine.pending() == 1
        engine.run()
        assert engine.pending() == 0
