"""Tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Engine, SimulationError


class TestScheduling:
    def test_events_fire_in_time_order(self):
        engine = Engine()
        fired = []
        engine.schedule(2.0, fired.append, "b")
        engine.schedule(1.0, fired.append, "a")
        engine.schedule(3.0, fired.append, "c")
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_simultaneous_events_fire_in_schedule_order(self):
        engine = Engine()
        fired = []
        for tag in "xyz":
            engine.schedule(1.0, fired.append, tag)
        engine.run()
        assert fired == ["x", "y", "z"]

    def test_now_advances(self):
        engine = Engine()
        seen = []
        engine.schedule(0.5, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [0.5]

    def test_nested_scheduling(self):
        engine = Engine()
        fired = []

        def outer():
            fired.append("outer")
            engine.schedule(1.0, lambda: fired.append("inner"))

        engine.schedule(1.0, outer)
        engine.run()
        assert fired == ["outer", "inner"]
        assert engine.now == 2.0

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Engine().schedule(-1.0, lambda: None)

    def test_past_absolute_time_rejected(self):
        engine = Engine()
        engine.schedule(5.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.schedule_at(1.0, lambda: None)


class TestRunControl:
    def test_until_horizon_stops_and_advances_clock(self):
        engine = Engine()
        fired = []
        engine.schedule(1.0, fired.append, "early")
        engine.schedule(10.0, fired.append, "late")
        engine.run(until=5.0)
        assert fired == ["early"]
        assert engine.now == 5.0
        engine.run()
        assert fired == ["early", "late"]

    def test_max_events_bound(self):
        engine = Engine()
        fired = []
        for i in range(10):
            engine.schedule(float(i + 1), fired.append, i)
        engine.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_cancelled_events_do_not_fire(self):
        engine = Engine()
        fired = []
        event = engine.schedule(1.0, fired.append, "no")
        engine.schedule(2.0, fired.append, "yes")
        event.cancel()
        engine.run()
        assert fired == ["yes"]

    def test_events_processed_counter(self):
        engine = Engine()
        engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        engine.run()
        assert engine.events_processed == 2

    def test_pending_count(self):
        engine = Engine()
        engine.schedule(1.0, lambda: None)
        assert engine.pending() == 1
        engine.run()
        assert engine.pending() == 0

    def test_pending_excludes_cancelled(self):
        engine = Engine()
        live = engine.schedule(1.0, lambda: None)
        doomed = engine.schedule(2.0, lambda: None)
        doomed.cancel()
        assert engine.pending() == 1
        assert not live.cancelled

    def test_cancel_is_idempotent_and_noop_after_fire(self):
        engine = Engine()
        fired = []
        event = engine.schedule(1.0, fired.append, "x")
        engine.run()
        assert fired == ["x"]
        event.cancel()  # after fire: no-op
        event.cancel()  # idempotent
        assert engine.pending() == 0

    def test_cancel_reports_whether_it_revoked(self):
        engine = Engine()
        event = engine.schedule(1.0, lambda: None)
        assert event.cancel() is True
        assert event.cancel() is False  # second cancel revokes nothing
        assert engine.pending() == 0

    def test_cancel_after_fire_is_truthful(self):
        # Regression: cancel() used to set ``cancelled`` even when the
        # callback had already fired, so the handle claimed it revoked
        # work it did not.
        engine = Engine()
        fired = []
        event = engine.schedule(1.0, fired.append, "x")
        engine.run()
        assert event.cancel() is False
        assert not event.cancelled
        assert fired == ["x"]
        assert engine.pending() == 0

    def test_cancel_inside_own_callback_is_noop(self):
        engine = Engine()
        fired = []
        holder = []

        def callback():
            fired.append("once")
            assert holder[0].cancel() is False

        holder.append(engine.schedule(1.0, callback))
        engine.run()
        assert fired == ["once"]
        assert not holder[0].cancelled
        assert engine.pending() == 0

    def test_pending_exact_across_compaction_boundary(self):
        # Cancel handles one at a time straight through the compaction
        # threshold: pending() must stay exact on both sides, and
        # handles whose entries compaction already removed must refuse
        # to double-count.  White-box on the heap, so pin it explicitly
        # (REPRO_SCHEDULER may select the bucket queue).
        engine = Engine(scheduler="heap")
        live = [engine.schedule(100.0 + i, lambda: None) for i in range(4)]
        doomed = [engine.schedule(float(i + 1), lambda: None) for i in range(20)]
        for index, event in enumerate(doomed):
            assert event.cancel() is True
            assert engine.pending() == 4 + len(doomed) - index - 1
        assert len(engine._heap) < 8  # compaction dropped most of the dead
        for event in doomed:
            assert event.cancel() is False  # entry long gone from heap
        assert engine.pending() == 4
        engine.run()
        assert engine.events_processed == 4
        assert engine.pending() == 0
        assert not any(event.cancelled for event in live)

    def test_heap_compacts_when_mostly_cancelled(self):
        engine = Engine(scheduler="heap")
        keep = engine.schedule(100.0, lambda: None)
        doomed = [engine.schedule(float(i + 1), lambda: None) for i in range(64)]
        for event in doomed:
            event.cancel()
        # More than half the heap is dead: compaction must have dropped
        # the cancelled entries while keeping the live one schedulable.
        assert len(engine._heap) < 32
        assert engine.pending() == 1
        engine.run()
        assert engine.now == 100.0
        assert not keep.cancelled
        assert engine.events_processed == 1


class TestDeterministicOrdering:
    """Regression tests for the scheduling-order contract.

    Same-timestamp events must fire in the order they were scheduled,
    regardless of which API scheduled them (``schedule``, ``schedule_at``,
    ``call_at``) and regardless of interleaved cancellations — packet
    traces rely on this for bit-identical reruns.
    """

    def test_call_at_interleaved_with_schedule_keeps_order(self):
        engine = Engine()
        fired = []
        engine.schedule(1.0, fired.append, "a")
        engine.call_at(1.0, fired.append, "b")
        engine.schedule_at(1.0, fired.append, "c")
        engine.call_at(1.0, fired.append, "d")
        engine.run()
        assert fired == ["a", "b", "c", "d"]

    def test_order_survives_interleaved_cancellation(self):
        engine = Engine()
        fired = []
        events = [engine.schedule(1.0, fired.append, tag) for tag in "abcdef"]
        events[1].cancel()
        events[4].cancel()
        engine.call_at(1.0, fired.append, "g")
        engine.run()
        assert fired == ["a", "c", "d", "f", "g"]

    def test_order_survives_compaction(self):
        engine = Engine()
        fired = []
        engine.schedule(5.0, fired.append, "first")
        engine.call_at(5.0, fired.append, "second")
        doomed = [engine.schedule(1.0, lambda: None) for _ in range(32)]
        engine.schedule(5.0, fired.append, "third")
        for event in doomed:
            event.cancel()  # triggers compaction mid-stream
        engine.call_at(5.0, fired.append, "fourth")
        engine.run()
        assert fired == ["first", "second", "third", "fourth"]


class TestCallAtMany:
    def test_bulk_matches_individual_pushes(self):
        bulk = Engine()
        single = Engine()
        fired_bulk, fired_single = [], []
        items = [(0.3, fired_bulk.append, ("a",)), (0.1, fired_bulk.append, ("b",)),
                 (0.2, fired_bulk.append, ("c",))]
        bulk.call_at_many(items)
        for when, _cb, args in items:
            single.call_at(when, fired_single.append, *args)
        bulk.run()
        single.run()
        assert fired_bulk == fired_single == ["b", "c", "a"]
        assert bulk.events_processed == single.events_processed

    def test_equal_times_keep_submission_order(self):
        engine = Engine()
        fired = []
        engine.call_at(1.0, fired.append, "before")
        engine.call_at_many(
            [(1.0, fired.append, ("x",)), (1.0, fired.append, ("y",))]
        )
        engine.call_at(1.0, fired.append, "after")
        engine.run()
        assert fired == ["before", "x", "y", "after"]

    def test_bucket_scheduler_bulk(self):
        engine = Engine(scheduler="bucket")
        fired = []
        engine.call_at_many(
            [(2e-6, fired.append, ("b",)), (1e-6, fired.append, ("a",)),
             (3e-6, fired.append, ("c",))]
        )
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_past_time_rejected_and_sequence_stays_consistent(self):
        engine = Engine()
        engine.schedule(5.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.call_at_many([(6.0, lambda: None, ()), (1.0, lambda: None, ())])
        # Sequence numbers consumed by the failed bulk push must not
        # reorder later same-time events.
        fired = []
        engine.call_at(6.0, fired.append, "first")
        engine.call_at(6.0, fired.append, "second")
        engine.run()
        assert fired == ["first", "second"]


class TestPeekTime:
    def test_empty_queue_is_infinite(self):
        assert Engine().peek_time() == float("inf")

    def test_reports_head_time(self):
        engine = Engine()
        engine.schedule(2.0, lambda: None)
        engine.schedule(1.0, lambda: None)
        assert engine.peek_time() == 1.0

    def test_bucket_scheduler_lower_bound(self):
        engine = Engine(scheduler="bucket")
        engine.schedule(3e-6, lambda: None)
        assert engine.peek_time() <= 3e-6

    def test_updates_inside_run(self):
        engine = Engine()
        seen = []
        engine.schedule(1.0, lambda: seen.append(engine.peek_time()))
        engine.schedule(2.0, lambda: None)
        engine.run()
        assert seen == [2.0]


class TestCreditEvents:
    def test_counts_logical_events(self):
        engine = Engine()
        engine.credit_events(5)
        engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        engine.run()
        assert engine.events_processed == 7

    def test_batching_ok_only_inside_unbounded_or_until_runs(self):
        engine = Engine()
        assert not engine.batching_ok
        seen = []
        engine.schedule(1.0, lambda: seen.append(engine.batching_ok))
        engine.run(until=2.0)
        assert seen == [True]
        assert not engine.batching_ok
        engine.schedule(3.0, lambda: seen.append(engine.batching_ok))
        engine.run(max_events=1)
        assert seen == [True, False]

    def test_run_horizon_visible_during_until_run(self):
        engine = Engine()
        seen = []
        engine.schedule(1.0, lambda: seen.append(engine.run_horizon))
        engine.run(until=4.0)
        assert seen == [4.0]
        assert engine.run_horizon is None
