"""Batched flight engine: bit-identical to the scalar loops.

The batched path (:meth:`Network.send_cohort` driven by the
cohort-aware :class:`PoissonSource`) must be a pure speed change, like
the compiled fast path before it: every externally visible number —
per-packet latencies, drop/reroute counters, port state, the logical
event count — must match both the scalar fast path and the reference
loop exactly.  The equivalence fingerprint here extends
``tests/sim/test_fastpath.py``'s to cohorts: mid-run fault churn must
truncate cohorts at the cut boundary, ``run(until=...)`` must leave the
same packets in flight, and ``stop_at`` must stop the stream on the
same packet.
"""

import pytest

import repro.topology as T
from repro.routing import ECMPRouter
from repro.sim import Network, NetworkSimError
from repro.sim.fastpath import BATCH_ENV
from repro.sim.network import _contended_tails, _repeated_add
from repro.sim.sources import MIN_COHORT, PoissonSource

import numpy as np

MODES = ("batched", "fastpath", "reference")


def build(mode, buffer_bytes=None):
    """A three-tier network in one of the three forwarding modes.

    ``telemetry=False`` is pinned (like ``fastpath`` below) so the
    batching assertions hold under ``REPRO_TELEMETRY=1``, where armed
    monitors would otherwise stand the cohort engine down.
    """
    topo = T.three_tier_tree()
    fastpath = mode != "reference"
    return Network(
        topo,
        ECMPRouter(topo),
        fastpath=fastpath,
        batch=(mode == "batched"),
        buffer_bytes=buffer_bytes,
        telemetry=False,
    )


def port_state(net):
    """Every port counter, in deterministic key order — exact floats."""
    return tuple(
        (key, port.packets_sent, port.bytes_sent, port.busy_until)
        for key, port in sorted(net._ports.items())
    )


def fingerprint(net, sources):
    return (
        net.packets_delivered,
        net.packets_dropped,
        net.packets_dropped_fault,
        net.packets_rerouted,
        net._next_packet_id,
        net.engine.events_processed,
        tuple(net.stats.samples),
        tuple(source.packets_sent for source in sources),
        port_state(net),
    )


def run_workload(
    mode,
    nsrc=6,
    rate=600_000.0,
    until=0.012,
    fault=None,
    stop_at=None,
    interrupters=(),
):
    """Fixed workload; returns (fingerprint, net, sources).

    ``fault="lazy"`` schedules a cut+repair without pre-arming in-flight
    tracking, so batching stays live right up to the cut and cohorts
    must truncate against the queued fault events.  ``fault="armed"``
    pre-arms tracking like the fastpath suite (batching then stands down
    for the whole run and must still agree).  ``interrupters`` schedules
    no-op events at the given times — each one is a lookahead wall a
    cohort must not cross.
    """
    net = build(mode)
    engine = net.engine
    servers = net.topo.servers()
    sources = [
        PoissonSource(
            net, servers[i], servers[-1], rate_pps=rate, seed=i, flow_id=i,
            group="load", stop_at=stop_at,
            # Pinned (not None) so the suite behaves the same under
            # REPRO_FASTPATH_DISABLE=1, which flips the chunk default.
            chunk=1 if mode == "reference" else 256,
        )
        for i in range(nsrc)
    ]
    for source in sources:
        source.start()
    if fault is not None:
        probe = net.router.route(servers[0], servers[-1], 0)
        u, v = probe[1], probe[2]
        if fault == "armed":
            net.enable_fault_tracking()
        engine.schedule(0.004, lambda: net.fail_link(u, v))
        engine.schedule(0.008, lambda: net.repair_link(u, v))
    for when in interrupters:
        engine.schedule_at(when, lambda: None)
    engine.run(until=until)
    return fingerprint(net, sources), net, sources


class TestEquivalence:
    def test_multi_source_bit_identical(self):
        batched, _, _ = run_workload("batched")
        fast, _, _ = run_workload("fastpath")
        ref, _, _ = run_workload("reference")
        assert batched == fast == ref

    def test_single_source_full_cohorts_bit_identical(self):
        # One source and an otherwise empty queue: the lookahead window
        # is unbounded, cohorts commit whole chunks at a time.
        batched, net, _ = run_workload("batched", nsrc=1)
        fast, _, _ = run_workload("fastpath", nsrc=1)
        assert batched == fast
        assert net._stacked, "cohort commits should have stacked the plan"

    def test_contended_port_cohorts_bit_identical(self):
        # 2 Mpps of 400 B ≈ 6.4 Gb/s against 10 G links: cohorts queue
        # on their own ports, so the sequential contended-span replay
        # must agree with the scalar recurrence.
        batched, _, _ = run_workload("batched", nsrc=1, rate=2_000_000.0)
        fast, _, _ = run_workload("fastpath", nsrc=1, rate=2_000_000.0)
        ref, _, _ = run_workload("reference", nsrc=1, rate=2_000_000.0)
        assert batched == fast == ref

    def test_lazy_fault_churn_bit_identical(self):
        # Batching is live until the first cut arms tracking: cohorts
        # near t=4ms must truncate against the queued fail_link event,
        # and the post-repair stream must match the scalar loops.
        batched, _, _ = run_workload("batched", fault="lazy")
        fast, _, _ = run_workload("fastpath", fault="lazy")
        ref, _, _ = run_workload("reference", fault="lazy")
        assert batched == fast == ref

    def test_armed_fault_tracking_bit_identical(self):
        batched, _, _ = run_workload("batched", fault="armed")
        fast, _, _ = run_workload("fastpath", fault="armed")
        assert batched == fast

    def test_interrupters_force_prefix_commits(self):
        # A wall of no-op events slices through the single-source
        # stream: every cohort must commit exactly the prefix whose
        # elided events stay strictly before the next wall.
        walls = tuple(0.0005 * k for k in range(1, 20))
        batched, _, _ = run_workload("batched", nsrc=1, interrupters=walls)
        fast, _, _ = run_workload("fastpath", nsrc=1, interrupters=walls)
        assert batched == fast

    def test_stop_at_bit_identical(self):
        batched, _, _ = run_workload("batched", nsrc=1, stop_at=0.006)
        fast, _, _ = run_workload("fastpath", nsrc=1, stop_at=0.006)
        ref, _, _ = run_workload("reference", nsrc=1, stop_at=0.006)
        assert batched == fast == ref

    def test_horizon_leaves_same_packets_in_flight(self):
        # Stop mid-flight: cohorts whose tails cross the horizon must
        # fall back to real events, so the counts agree at the horizon
        # *and* after resuming to exhaustion.
        results = {}
        for mode in MODES:
            fp, net, sources = run_workload(mode, nsrc=2, until=0.003)
            for source in sources:
                source.stop()
            resumed_at = fp
            net.engine.run()
            results[mode] = (resumed_at, fingerprint(net, sources))
        assert results["batched"] == results["fastpath"] == results["reference"]


class TestFlagResolution:
    # fastpath=True and telemetry=False are pinned so the assertions
    # hold even when the whole suite runs under REPRO_FASTPATH_DISABLE=1
    # or REPRO_TELEMETRY=1.
    def test_env_disables_batching(self, monkeypatch):
        monkeypatch.setenv(BATCH_ENV, "1")
        topo = T.full_mesh(2, 1)
        net = Network(topo, ECMPRouter(topo), fastpath=True, telemetry=False)
        assert not net.batch_enabled

    def test_explicit_flag_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(BATCH_ENV, "1")
        topo = T.full_mesh(2, 1)
        net = Network(
            topo, ECMPRouter(topo), fastpath=True, batch=True, telemetry=False
        )
        assert net.batch_enabled

    def test_env_unset_enables_batching(self, monkeypatch):
        monkeypatch.delenv(BATCH_ENV, raising=False)
        topo = T.full_mesh(2, 1)
        net = Network(topo, ECMPRouter(topo), fastpath=True, telemetry=False)
        assert net.batch_enabled

    def test_batching_requires_fastpath(self):
        topo = T.full_mesh(2, 1)
        net = Network(
            topo, ECMPRouter(topo), fastpath=False, batch=True, telemetry=False
        )
        assert not net.batch_enabled

    def test_telemetry_stands_batching_down(self):
        topo = T.full_mesh(2, 1)
        net = Network(
            topo, ECMPRouter(topo), fastpath=True, batch=True, telemetry=True
        )
        assert not net.batch_enabled
        assert net.fastpath_enabled, "fast path keeps running under telemetry"

    def test_bounded_buffers_disable_batching(self):
        topo = T.full_mesh(2, 1)
        net = Network(
            topo, ECMPRouter(topo), fastpath=True, batch=True, buffer_bytes=9000,
            telemetry=False,
        )
        assert not net.batch_enabled
        # ... and the run still agrees with the scalar loops trivially.
        fast = run_buffered(batch=True)
        ref = run_buffered(batch=False)
        assert fast == ref


def run_buffered(batch):
    net = build("batched" if batch else "fastpath", buffer_bytes=1600)
    servers = net.topo.servers()
    sources = [
        PoissonSource(net, servers[i], servers[-1], rate_pps=600_000.0,
                      seed=i, flow_id=i, group="load")
        for i in range(6)
    ]
    for source in sources:
        source.start()
    net.engine.run(until=0.012)
    return fingerprint(net, sources)


class TestSendCohortAPI:
    @pytest.fixture
    def net(self):
        topo = T.three_tier_tree()
        return Network(
            topo, ECMPRouter(topo), fastpath=True, batch=True, telemetry=False
        )

    def test_returns_zero_outside_run(self, net):
        # batching_ok is only True while a run loop dispatches.
        assert net.send_cohort("h0.0", "h15.0", 400, [0.0, 1e-6]) == 0

    def test_commits_inside_run_and_elides_events(self, net):
        committed = {}

        def inject():
            committed["m"] = net.send_cohort(
                "h0.0", "h15.0", 400, [net.engine.now, net.engine.now + 1e-6]
            )

        net.engine.schedule(0.0, inject)
        net.engine.run()
        assert committed["m"] == 2
        assert net.packets_delivered == 2
        assert net._next_packet_id == 2
        # 1 real event + 2 packets × hops elided arrivals.
        hops = len(net.router.route("h0.0", "h15.0", 0)) - 1
        assert net.engine.events_processed == 1 + 2 * hops

    def test_prefix_commit_against_queued_event(self, net):
        # A queued event right behind the first packet's delivery forces
        # a prefix: the second packet must not be sent.
        result = {}

        def inject():
            result["m"] = net.send_cohort(
                "h0.0", "h15.0", 400,
                [net.engine.now, net.engine.now + 2e-3],
            )

        net.engine.schedule(0.0, inject)
        net.engine.schedule(1e-3, lambda: None)  # wall between the two
        net.engine.run()
        assert result["m"] == 1
        assert net.packets_delivered == 1

    def test_returns_zero_with_dead_links(self, net):
        probe = net.router.route("h0.0", "h15.0", 0)
        net.fail_link(probe[1], probe[2])
        seen = {}
        net.engine.schedule(0.0, lambda: seen.setdefault(
            "m", net.send_cohort("h0.0", "h15.0", 400, [net.engine.now])
        ))
        net.engine.run()
        assert seen["m"] == 0

    def test_rejects_bad_times(self, net):
        def inject():
            with pytest.raises(NetworkSimError):
                net.send_cohort("h0.0", "h15.0", 400, [])
            with pytest.raises(NetworkSimError):
                net.send_cohort("h0.0", "h15.0", 400, [1e-3, 0.5e-3])
            with pytest.raises(NetworkSimError):
                net.send_cohort("h0.0", "h15.0", 400, [net.engine.now - 1.0])
            with pytest.raises(NetworkSimError):
                net.send_cohort("h0.0", "h15.0", 0, [net.engine.now])

        net.engine.schedule(0.0, inject)
        net.engine.run()


class TestContendedReplay:
    def test_matches_reference_recurrence(self):
        rng = np.random.default_rng(7)
        for _ in range(50):
            e = np.sort(rng.uniform(0.0, 1e-5, size=rng.integers(1, 40)))
            busy = float(rng.uniform(0.0, 1.2e-5))
            ser = float(rng.uniform(1e-8, 1e-6))
            tails = _contended_tails(e, busy, ser)
            b = busy
            for i, earliest in enumerate(e.tolist()):
                start = earliest if b < earliest else b
                b = start + ser
                assert tails[i] == b  # exact float equality

    def test_repeated_add_exact(self):
        # Integer shortcut and float replay must both equal the chain.
        for base, step, count in [(0.0, 400.0, 257), (1.5e-7, 0.3, 100), (12.0, 64, 9)]:
            chain = float(base)
            for _ in range(count):
                chain += step
            assert _repeated_add(base, step, count) == chain


class TestCohortSourceAccounting:
    def test_gap_stream_consumption_matches_scalar(self):
        # The same seed must produce the same injection times whether
        # gaps are consumed one per fire or a cohort at a time.
        times = {}
        for mode in ("batched", "fastpath"):
            net = build(mode)
            servers = net.topo.servers()
            source = PoissonSource(
                net, servers[0], servers[-1], rate_pps=500_000.0, seed=3,
                chunk=256,
            )
            source.start()
            net.engine.run(until=0.002)
            times[mode] = (source.packets_sent, source._gap_i, tuple(net.stats.samples))
        assert times["batched"][0] == times["fastpath"][0]
        assert times["batched"][2] == times["fastpath"][2]

    def test_min_cohort_floor_is_positive(self):
        assert MIN_COHORT >= 1
