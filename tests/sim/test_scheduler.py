"""Pluggable scheduler: the bucket queue must order events exactly
like the reference heap — same timestamps, same FIFO tie-breaking,
same behaviour under cancellation — for any operation sequence.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import BucketScheduler, Engine, SimulationError

#: Delays spanning the bucket width (1 µs), the full ring (256 µs), and
#: the overflow heap beyond it, plus exact duplicates from the small pool.
DELAYS = st.one_of(
    st.sampled_from([0.0, 1e-9, 5e-7, 1e-6, 3.2e-5, 2.56e-4, 1e-3]),
    st.floats(min_value=0.0, max_value=5e-4, allow_nan=False),
)


def run_trace(scheduler, ops):
    """Replay an operation script; return the observed firing order."""
    engine = Engine(scheduler=scheduler)
    trace = []
    handles = []

    def fire(tag):
        trace.append((engine.now, tag))
        chain = OPS_CHAIN.get(tag)
        if chain is not None:
            # One level of event-from-event scheduling; the ("chain", …)
            # tag is not in OPS_CHAIN, so chains don't recurse.
            engine.schedule(chain, fire, ("chain", tag))

    OPS_CHAIN = {}
    for tag, (delay, cancel_idx, chain_delay) in enumerate(ops):
        if chain_delay is not None:
            OPS_CHAIN[tag] = chain_delay
        handles.append(engine.schedule(delay, fire, tag))
        if cancel_idx is not None and handles:
            handles[cancel_idx % len(handles)].cancel()
    engine.run()
    return trace


OP = st.tuples(
    DELAYS,
    st.one_of(st.none(), st.integers(min_value=0, max_value=63)),
    st.one_of(st.none(), DELAYS),
)


class TestPopOrderEquivalence:
    @settings(max_examples=120, deadline=None)
    @given(st.lists(OP, min_size=1, max_size=40))
    def test_bucket_matches_heap(self, ops):
        assert run_trace("bucket", ops) == run_trace("heap", ops)

    def test_fifo_among_equal_timestamps(self):
        for scheduler in ("heap", "bucket"):
            engine = Engine(scheduler=scheduler)
            order = []
            for tag in range(20):
                engine.schedule(1e-6, order.append, tag)
            engine.run()
            assert order == list(range(20)), scheduler

    def test_equal_timestamps_across_bucket_boundary(self):
        # Ties at a bucket edge (exact multiples of the 1 µs width) must
        # still pop in schedule order.
        for scheduler in ("heap", "bucket"):
            engine = Engine(scheduler=scheduler)
            order = []
            for tag in range(8):
                engine.schedule(2e-6, order.append, (2, tag))
                engine.schedule(1e-6, order.append, (1, tag))
            engine.run()
            assert order == sorted(order), scheduler

    def test_self_rescheduling_chain(self):
        # An event that schedules its successor inside the currently
        # draining bucket exercises the in-window insort path.
        results = {}
        for scheduler in ("heap", "bucket"):
            engine = Engine(scheduler=scheduler)
            times = []

            def tick():
                times.append(engine.now)
                if len(times) < 2000:
                    engine.schedule(3.7e-7, tick)

            engine.schedule(0.0, tick)
            engine.run()
            results[scheduler] = times
        assert results["bucket"] == results["heap"]

    def test_run_until_stops_identically(self):
        for scheduler in ("heap", "bucket"):
            engine = Engine(scheduler=scheduler)
            fired = []
            for tag in range(10):
                engine.schedule(tag * 1e-5, fired.append, tag)
            engine.run(until=4.5e-5)
            assert fired == [0, 1, 2, 3, 4], scheduler
            assert engine.now == 4.5e-5
            engine.run()
            assert fired == list(range(10)), scheduler


class TestSelection:
    def test_env_selects_bucket(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCHEDULER", "bucket")
        assert Engine()._heap is None

    def test_env_selects_heap(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCHEDULER", "heap")
        assert Engine()._heap is not None

    def test_default_is_heap(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCHEDULER", raising=False)
        assert Engine()._heap is not None

    def test_calendar_is_alias_for_bucket(self):
        assert Engine(scheduler="calendar")._heap is None

    def test_instance_accepted(self):
        engine = Engine(scheduler=BucketScheduler(width=2e-6, nbuckets=64))
        fired = []
        engine.schedule(1e-3, fired.append, 1)
        engine.run()
        assert fired == [1]

    def test_unknown_name_rejected(self):
        with pytest.raises(SimulationError):
            Engine(scheduler="fibonacci")


class TestBucketCancellation:
    def test_cancel_in_far_heap_and_ring(self):
        engine = Engine(scheduler="bucket")
        near = engine.schedule(1e-7, lambda: None)
        ring = engine.schedule(5e-5, lambda: None)
        far = engine.schedule(1.0, lambda: None)
        assert engine.pending() == 3
        assert ring.cancel() is True
        assert far.cancel() is True
        assert engine.pending() == 1
        engine.run()
        assert engine.events_processed == 1
        assert not near.cancelled

    def test_mass_cancellation_compacts(self):
        engine = Engine(scheduler="bucket")
        keep = engine.schedule(100.0, lambda: None)
        doomed = [engine.schedule(float(i + 1), lambda: None) for i in range(64)]
        for event in doomed:
            event.cancel()
        assert engine.pending() == 1
        engine.run()
        assert engine.now == 100.0
        assert engine.events_processed == 1
        assert not keep.cancelled


#: Delays landing exactly on bucket boundaries: integer multiples of the
#: 1 µs width, spanning the ring (256 µs) and the overflow heap past it.
EDGE_DELAYS = st.builds(lambda k: k * 1e-6, st.integers(min_value=0, max_value=600))

EDGE_OP = st.tuples(
    EDGE_DELAYS,
    st.one_of(st.none(), st.integers(min_value=0, max_value=63)),
    st.one_of(st.none(), st.sampled_from([0.0, 3.7e-7, 1e-6, 2.56e-4])),
)


class TestWindowBoundaries:
    @settings(max_examples=120, deadline=None)
    @given(st.lists(EDGE_OP, min_size=1, max_size=40))
    def test_exact_bucket_edge_pushes_match_heap(self, ops):
        # Every push lands on a window boundary — the worst case for
        # float bucket indexing, where an ulp of drift flips the slot.
        assert run_trace("bucket", ops) == run_trace("heap", ops)

    def test_boundary_pushes_while_window_advances(self):
        # A chain stepping in whole-bucket strides keeps scheduling onto
        # the edge of the freshly advanced window; boundaries must stay
        # the same float no matter how many windows have rolled past.
        for stride_buckets in (1, 3, 255, 256, 257):
            results = {}
            for scheduler in ("heap", "bucket"):
                engine = Engine(scheduler=scheduler)
                times = []

                def tick():
                    times.append(engine.now)
                    if len(times) < 800:
                        engine.schedule(stride_buckets * 1e-6, tick)

                engine.schedule(0.0, tick)
                engine.run()
                results[scheduler] = times
            assert results["bucket"] == results["heap"], stride_buckets

    def test_migrate_keeps_cancelled_overflow_entries_dead(self):
        # Entries cancelled while parked in the overflow heap must stay
        # cancelled when _migrate pulls their window into the ring.
        engine = Engine(scheduler="bucket")
        fired = []
        near = engine.schedule(1e-6, fired.append, "near")
        far = [
            engine.schedule(5e-4 + i * 1e-6, fired.append, i) for i in range(8)
        ]
        for handle in far[::2]:
            handle.cancel()
        engine.run()
        assert fired == ["near", 1, 3, 5, 7]
        assert engine.events_processed == 5
        assert near.cancel() is False  # already fired

    def test_jump_to_far_head_skips_cancelled_head(self):
        # With an empty ring, pop re-bases the window on the overflow
        # head; a cancelled head must not leave a live event behind.
        engine = Engine(scheduler="bucket")
        fired = []
        doomed = engine.schedule(1e-3, fired.append, "doomed")
        engine.schedule(1e-3 + 5e-7, fired.append, "kept")
        doomed.cancel()
        engine.run()
        assert fired == ["kept"]

    def test_degenerate_width_force_drains(self):
        # When ulp(base) exceeds the bucket width, boundaries collapse to
        # the same float and the window cannot advance; the scheduler
        # must still drain events (in order) rather than spin.
        engine = Engine(scheduler=BucketScheduler(width=1e-9, nbuckets=4))
        fired = []
        for offset in (0.0, 0.5, 1.25):
            engine.schedule_at(1e12 + offset, fired.append, offset)
        engine.run()
        assert fired == [0.0, 0.5, 1.25]
        assert engine.now == 1e12 + 1.25


#: Timestamps with forced duplicates: a small exact pool (hit often) mixed
#: with arbitrary floats, spanning the bucket ring and the overflow heap.
DUP_TIMES = st.lists(
    st.one_of(
        st.sampled_from([0.0, 3.7e-7, 1e-6, 1e-6, 3.2e-5, 2.56e-4]),
        st.floats(min_value=0.0, max_value=5e-4, allow_nan=False),
    ),
    min_size=1,
    max_size=60,
)


class TestCallAtManyEquivalence:
    @settings(max_examples=120, deadline=None)
    @given(DUP_TIMES)
    def test_duplicate_timestamps_pop_fifo_identically(self, times):
        # One bulk push per engine; sequence numbers are assigned in
        # iteration order, so duplicates must fire in list order — on
        # both schedulers, yielding identical traces.
        traces = {}
        for scheduler in ("heap", "bucket"):
            engine = Engine(scheduler=scheduler)
            trace = []

            def fire(tag):
                trace.append((engine.now, tag))

            engine.call_at_many(
                (t, fire, (tag,)) for tag, t in enumerate(times)
            )
            engine.run()
            traces[scheduler] = trace
        assert traces["bucket"] == traces["heap"]
        # FIFO among equal timestamps == a stable sort of the input.
        assert traces["heap"] == sorted(
            ((t, tag) for tag, t in enumerate(times)),
            key=lambda pair: pair[0],
        )

    @settings(max_examples=60, deadline=None)
    @given(DUP_TIMES, DUP_TIMES)
    def test_bulk_and_scalar_pushes_interleave_identically(self, bulk, scalar):
        # call_at_many shares the sequence counter with call_at; a bulk
        # batch followed by scalar pushes at colliding times must still
        # drain in global FIFO-per-timestamp order on both schedulers.
        traces = {}
        for scheduler in ("heap", "bucket"):
            engine = Engine(scheduler=scheduler)
            trace = []

            def fire(tag):
                trace.append((engine.now, tag))

            engine.call_at_many(
                (t, fire, (("bulk", tag),)) for tag, t in enumerate(bulk)
            )
            for tag, t in enumerate(scalar):
                engine.call_at(t, fire, ("scalar", tag))
            engine.run()
            traces[scheduler] = trace
        assert traces["bucket"] == traces["heap"]
        expected = [(t, ("bulk", tag)) for tag, t in enumerate(bulk)]
        expected += [(t, ("scalar", tag)) for tag, t in enumerate(scalar)]
        assert traces["heap"] == sorted(expected, key=lambda pair: pair[0])


#: (delay, cancel-this-one) pairs for the peek lower-bound property.
PEEK_OPS = st.lists(
    st.tuples(DELAYS, st.booleans()), min_size=1, max_size=40
)


class TestPeekTimeLowerBound:
    """``peek_time`` is a *lower bound* on the next live event.

    Lazily-cancelled entries are blanked in place, so a dead head may
    make the bound earlier than the next event that actually fires —
    never later.  Lookahead consumers (batching, the parallel window
    coordinator) rely on exactly this one-sided error.
    """

    @settings(max_examples=120, deadline=None)
    @given(PEEK_OPS)
    def test_peek_never_exceeds_next_live_event(self, ops):
        for scheduler in ("heap", "bucket"):
            engine = Engine(scheduler=scheduler)
            fired = []
            live = []
            for delay, doomed in ops:
                handle = engine.schedule(delay, fired.append, delay)
                if doomed:
                    handle.cancel()
                else:
                    live.append(delay)
            peek = engine.peek_time()
            assert peek >= 0.0, scheduler
            if live:
                assert peek <= min(live), scheduler
            engine.run()
            assert fired == sorted(fired), scheduler
            assert len(fired) == len(live), scheduler

    def test_peek_is_inf_when_empty(self):
        for scheduler in ("heap", "bucket"):
            assert math.isinf(Engine(scheduler=scheduler).peek_time())

    def test_heap_cancelled_head_only_underestimates(self):
        engine = Engine(scheduler="heap")
        doomed = engine.schedule(1e-6, lambda: None)
        engine.schedule(5e-6, lambda: None)
        doomed.cancel()
        # The blanked head may still be reported (1e-6) — a valid lower
        # bound — but the bound must never pass the live event.
        assert 0.0 <= engine.peek_time() <= 5e-6

    def test_bucket_cancelled_active_head_only_underestimates(self):
        engine = Engine(scheduler="bucket")
        doomed = engine.schedule(1e-7, lambda: None)
        engine.schedule(9e-7, lambda: None)  # same 1 us bucket
        doomed.cancel()
        assert 0.0 <= engine.peek_time() <= 9e-7

    def test_bucket_cancelled_overflow_head_only_underestimates(self):
        # Both events park in the overflow heap (past the 256 us ring);
        # cancelling its head must not push the bound past the live one.
        engine = Engine(scheduler="bucket")
        doomed = engine.schedule(1e-3, lambda: None)
        engine.schedule(2e-3, lambda: None)
        doomed.cancel()
        assert 0.0 <= engine.peek_time() <= 2e-3
        engine.run()
        assert engine.events_processed == 1
