"""Runtime fault injection: cuts, repairs, drops, and live rerouting."""

import pytest

from repro.core.multiring import plan_rings
from repro.routing import ECMPRouter, RoutingError, VLBRouter
from repro.sim import Network
from repro.sim.faults import (
    FaultInjectionError,
    FaultInjector,
    SegmentCut,
    random_fault_schedule,
)
from repro.topology import quartz_ring, two_tier_tree


@pytest.fixture
def mesh():
    """A 5-switch Quartz mesh with one server per rack, ECMP routed."""
    topo = quartz_ring(5, servers_per_switch=1)
    return Network(topo, ECMPRouter(topo))


@pytest.fixture
def plan():
    return plan_rings(5, num_rings=1)


class TestSegmentCut:
    def test_valid_cut_passes(self, plan):
        SegmentCut(start=0.001, ring=0, segment=2, repair_at=0.002).validate(plan)

    def test_negative_start_rejected(self, plan):
        with pytest.raises(FaultInjectionError, match="non-negative"):
            SegmentCut(start=-1.0, ring=0, segment=0).validate(plan)

    def test_ring_out_of_range_rejected(self, plan):
        with pytest.raises(FaultInjectionError, match="ring"):
            SegmentCut(start=0.0, ring=1, segment=0).validate(plan)

    def test_segment_out_of_range_rejected(self, plan):
        with pytest.raises(FaultInjectionError, match="segment"):
            SegmentCut(start=0.0, ring=0, segment=5).validate(plan)

    def test_repair_must_follow_cut(self, plan):
        with pytest.raises(FaultInjectionError, match="repair"):
            SegmentCut(start=0.002, ring=0, segment=0, repair_at=0.002).validate(plan)


class TestRandomSchedule:
    def test_deterministic_for_seed(self, plan):
        a = random_fault_schedule(plan, 3, cut_at=0.001, repair_after=0.002, seed=7)
        b = random_fault_schedule(plan, 3, cut_at=0.001, repair_after=0.002, seed=7)
        assert a == b

    def test_segments_distinct(self, plan):
        cuts = random_fault_schedule(plan, 5, cut_at=0.001, seed=1)
        assert len({(c.ring, c.segment) for c in cuts}) == 5

    def test_repair_timing(self, plan):
        (cut,) = random_fault_schedule(plan, 1, cut_at=0.003, repair_after=0.001)
        assert cut.repair_at == pytest.approx(0.004)
        (never,) = random_fault_schedule(plan, 1, cut_at=0.003)
        assert never.repair_at is None

    def test_too_many_cuts_rejected(self, plan):
        with pytest.raises(FaultInjectionError, match="cannot cut"):
            random_fault_schedule(plan, 6, cut_at=0.001)

    def test_negative_count_rejected(self, plan):
        with pytest.raises(FaultInjectionError, match="non-negative"):
            random_fault_schedule(plan, -1, cut_at=0.001)


class TestFaultInjector:
    def test_rejects_mismatched_network(self, plan):
        topo = two_tier_tree(4, 2)
        net = Network(topo, ECMPRouter(topo))
        with pytest.raises(FaultInjectionError, match="lacks switches"):
            FaultInjector(net, plan)

    def test_cut_severs_exactly_crossing_channels(self, mesh, plan):
        injector = FaultInjector(mesh, plan)
        injector.apply_cut(0, 2)
        expected = sorted(plan.channels_crossing(0, 2))
        assert injector.down_channels() == expected
        for s, t in expected:
            assert mesh.link_is_down(f"tor{s}", f"tor{t}")

    def test_cut_is_idempotent(self, mesh, plan):
        injector = FaultInjector(mesh, plan)
        injector.apply_cut(0, 2)
        down = injector.down_channels()
        assert injector.apply_cut(0, 2) == 0
        assert injector.down_channels() == down
        assert injector.cuts_applied == 1

    def test_repair_restores_everything(self, mesh, plan):
        injector = FaultInjector(mesh, plan)
        injector.apply_cut(0, 2)
        restored = injector.apply_repair(0, 2)
        assert restored == len(plan.channels_crossing(0, 2))
        assert injector.down_channels() == []
        assert not any(
            mesh.link_is_down(f"tor{s}", f"tor{t}")
            for s, t in plan.channels_crossing(0, 2)
        )

    def test_repair_of_intact_segment_is_noop(self, mesh, plan):
        injector = FaultInjector(mesh, plan)
        assert injector.apply_repair(0, 1) == 0
        assert injector.repairs_applied == 0

    def test_channel_crossing_two_cuts_needs_both_repairs(self, mesh, plan):
        # Find a channel whose wavelength path crosses >= 2 segments.
        routes = plan.pair_routes()
        pair, (ring, segments) = next(
            (p, r) for p, r in routes.items() if len(r[1]) >= 2
        )
        first, second = segments[0], segments[1]
        injector = FaultInjector(mesh, plan)
        injector.apply_cut(ring, first)
        injector.apply_cut(ring, second)
        assert pair in injector.down_channels()
        injector.apply_repair(ring, first)
        # Still severed: the other segment on its path is broken.
        assert pair in injector.down_channels()
        injector.apply_repair(ring, second)
        assert pair not in injector.down_channels()

    def test_schedule_applies_cut_and_repair_as_events(self, mesh, plan):
        injector = FaultInjector(mesh, plan)
        injector.schedule(
            [SegmentCut(start=0.001, ring=0, segment=2, repair_at=0.002)]
        )
        mesh.run(until=0.0015)
        assert injector.down_channels() != []
        mesh.run(until=0.003)
        assert injector.down_channels() == []
        kinds = [e.kind for e in mesh.fault_stats.events]
        assert "cut" in kinds and "repair" in kinds
        assert "link_down" in kinds and "link_up" in kinds


class TestNetworkLinkFaults:
    def test_fail_link_drops_queued_packets(self, mesh):
        mesh.enable_fault_tracking()
        # Saturate tor0->tor1 so arrivals stretch out, then cut mid-queue.
        for _ in range(50):
            mesh.send("h0.0", "h1.0", 400, group="burst")
        mesh.engine.schedule_at(5e-6, mesh.fail_link, "tor0", "tor1")
        mesh.run(until=0.001)
        assert mesh.packets_dropped_fault > 0
        assert mesh.fault_stats.total_drops == mesh.packets_dropped_fault
        assert mesh.packets_delivered + mesh.packets_dropped_fault == 50

    def test_in_flight_packets_reroute_around_cut(self, mesh):
        mesh.enable_fault_tracking()
        # Stagger sends so some packets reach tor0 only after the cut and
        # must detour over a surviving two-hop path.
        for k in range(30):
            mesh.engine.schedule_at(
                k * 1e-6, mesh.send, "h0.0", "h1.0", 400, 0, "stream"
            )
        mesh.engine.schedule_at(4e-6, mesh.fail_link, "tor0", "tor1")
        mesh.run(until=0.001)
        assert mesh.packets_rerouted > 0
        assert mesh.fault_stats.total_reroutes == mesh.packets_rerouted
        # Nothing is lost except packets queued on the dead link itself.
        assert (
            mesh.packets_delivered + mesh.packets_dropped_fault == 30
        )

    def test_recovery_time_recorded_per_flow(self, mesh):
        mesh.enable_fault_tracking()
        for k in range(30):
            mesh.engine.schedule_at(
                k * 1e-6, mesh.send, "h0.0", "h1.0", 400, 0, "stream"
            )
        mesh.engine.schedule_at(4e-6, mesh.fail_link, "tor0", "tor1")
        mesh.run(until=0.001)
        times = mesh.fault_stats.recovery_times_by_flow.get("stream")
        assert times and all(t >= 0 for t in times)
        assert mesh.fault_stats.max_recovery_time() >= max(times)

    def test_fail_link_is_idempotent(self, mesh):
        mesh.fail_link("tor0", "tor1")
        assert mesh.fail_link("tor0", "tor1") == 0
        assert mesh.link_is_down("tor0", "tor1")
        assert mesh.link_is_down("tor1", "tor0")

    def test_repair_unknown_link_is_noop(self, mesh):
        assert mesh.repair_link("tor0", "tor1") is False

    def test_repair_accepts_either_orientation(self, mesh):
        mesh.fail_link("tor0", "tor1")
        assert mesh.repair_link("tor1", "tor0") is True
        assert not mesh.link_is_down("tor0", "tor1")

    def test_new_traffic_avoids_dead_link(self, mesh):
        mesh.fail_link("tor0", "tor1")
        packet = mesh.send("h0.0", "h1.0", 400)
        assert ("tor0", "tor1") not in [
            (packet.path[i], packet.path[i + 1])
            for i in range(len(packet.path) - 1)
        ]
        assert len(packet.path) == 5  # two mesh hops via a detour switch

    def test_direct_path_returns_after_repair(self, mesh):
        mesh.fail_link("tor0", "tor1")
        mesh.repair_link("tor0", "tor1")
        packet = mesh.send("h0.0", "h1.0", 400)
        assert packet.path == ("h0.0", "tor0", "tor1", "h1.0")


class TestVLBUnderFaults:
    def test_vlb_falls_back_to_detours(self):
        topo = quartz_ring(5, servers_per_switch=1)
        net = Network(topo, VLBRouter(topo))
        net.fail_link("tor0", "tor1")
        for flow in range(8):
            path = net.send("h0.0", "h1.0", 400, flow_id=flow).path
            assert ("tor0", "tor1") not in [
                (path[i], path[i + 1]) for i in range(len(path) - 1)
            ]

    def test_vlb_isolated_pair_raises(self):
        topo = quartz_ring(3, servers_per_switch=1)
        net = Network(topo, VLBRouter(topo))
        # Kill every mesh link touching tor0: no direct, no detour.
        net.fail_link("tor0", "tor1")
        net.fail_link("tor0", "tor2")
        with pytest.raises(RoutingError):
            net.send("h0.0", "h1.0", 400)


class TestPartitionedMesh:
    def test_source_survives_partition_and_counts_losses(self):
        from repro.sim import PoissonSource

        topo = quartz_ring(3, servers_per_switch=1)
        net = Network(topo, ECMPRouter(topo))
        net.enable_fault_tracking()
        PoissonSource.at_bandwidth(net, "h0.0", "h1.0", 1e9, group="s").start()
        # Isolate tor0 entirely: h0.0 can reach nobody.
        net.engine.schedule_at(1e-4, net.fail_link, "tor0", "tor1")
        net.engine.schedule_at(1e-4, net.fail_link, "tor0", "tor2")
        net.run(until=5e-4)
        assert net.packets_unroutable > 0
        assert net.packets_dropped_fault >= net.packets_unroutable
        assert net.fault_stats.drops_by_flow["s"] > 0

    def test_repair_reconnects_and_traffic_resumes(self):
        from repro.sim import PoissonSource

        topo = quartz_ring(3, servers_per_switch=1)
        net = Network(topo, ECMPRouter(topo))
        net.enable_fault_tracking()
        PoissonSource.at_bandwidth(net, "h0.0", "h1.0", 1e9, group="s").start()
        net.engine.schedule_at(1e-4, net.fail_link, "tor0", "tor1")
        net.engine.schedule_at(1e-4, net.fail_link, "tor0", "tor2")
        net.engine.schedule_at(2e-4, net.repair_link, "tor0", "tor1")
        net.run(until=6e-4)
        delivered_at_repair = net.packets_unroutable
        assert delivered_at_repair > 0
        # Deliveries resumed after the splice, closing the outage window.
        assert net.fault_stats.recovery_times_by_flow.get("s")
        assert net.packets_delivered > 0


class TestDeterminism:
    def _run(self):
        topo = quartz_ring(5, servers_per_switch=1)
        net = Network(topo, ECMPRouter(topo))
        plan = plan_rings(5, num_rings=1)
        injector = FaultInjector(net, plan)
        injector.schedule(
            random_fault_schedule(plan, 1, cut_at=3e-5, repair_after=5e-5, seed=3)
        )
        for k in range(200):
            net.engine.schedule_at(
                k * 1e-6, net.send, f"h{k % 5}.0", f"h{(k + 2) % 5}.0", 400, k, "s"
            )
        net.run(until=0.001)
        return (
            net.packets_delivered,
            net.packets_dropped_fault,
            net.packets_rerouted,
            tuple(net.fault_stats.events),
            injector.down_channels(),
        )

    def test_identical_runs_bit_identical(self):
        assert self._run() == self._run()
