"""Tests for latency statistics."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.stats import (
    UNGROUPED,
    HopStampStats,
    LatencyRecorder,
    summarize_latencies,
)


class TestSummarize:
    def test_basic_statistics(self):
        s = summarize_latencies([1.0, 2.0, 3.0, 4.0])
        assert s.count == 4
        assert s.mean == pytest.approx(2.5)
        assert s.minimum == 1.0
        assert s.maximum == 4.0

    def test_percentiles(self):
        samples = [float(i) for i in range(1, 101)]
        s = summarize_latencies(samples)
        assert s.p50 == 50.0
        assert s.p95 == 95.0
        assert s.p99 == 99.0

    def test_single_sample(self):
        s = summarize_latencies([5.0])
        assert s.std == 0.0
        assert s.ci95_halfwidth == 0.0
        assert s.p99 == 5.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_latencies([])

    @given(st.lists(st.floats(0, 1e6), min_size=1, max_size=200))
    def test_property_bounds(self, samples):
        s = summarize_latencies(samples)
        eps = 1e-9 * max(1.0, s.maximum)  # float summation slack
        assert s.minimum - eps <= s.mean <= s.maximum + eps
        assert s.minimum <= s.p50 <= s.p95 <= s.p99 <= s.maximum
        assert s.std >= 0


class TestRecorder:
    def test_grouping(self):
        rec = LatencyRecorder()
        rec.record(1.0, group="a")
        rec.record(3.0, group="b")
        rec.record(2.0)
        assert rec.count == 3
        assert rec.summary("a").mean == 1.0
        assert rec.summary().count == 3
        assert rec.groups() == ["a", "b"]

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            LatencyRecorder().record(-1.0)

    def test_missing_group_raises(self):
        rec = LatencyRecorder()
        rec.record(1.0, group="a")
        with pytest.raises(ValueError):
            rec.summary("missing")

    def test_clear(self):
        rec = LatencyRecorder()
        rec.record(1.0, group="a")
        rec.clear()
        assert rec.count == 0
        assert rec.groups() == []

    def test_record_many_matches_per_packet_records(self):
        bulk, loop = LatencyRecorder(), LatencyRecorder()
        samples = [3.0, 1.0, 2.0]
        bulk.record_many(samples, group="a")
        for sample in samples:
            loop.record(sample, group="a")
        assert bulk.samples == loop.samples
        assert bulk.by_group == loop.by_group

    def test_record_many_rejects_any_negative(self):
        rec = LatencyRecorder()
        with pytest.raises(ValueError):
            rec.record_many([1.0, -0.5, 2.0])

    def test_record_many_empty_records_no_samples(self):
        rec = LatencyRecorder()
        rec.record_many([], group="a")
        assert rec.count == 0
        # Documented quirk: unlike zero record() calls, an empty bulk
        # commit still registers the group key (setdefault) — empty.
        assert rec.groups() == ["a"]
        assert rec.by_group["a"] == []


class TestHopStamps:
    def test_empty_stamp_list_creates_flow_without_nodes(self):
        rec = LatencyRecorder()
        rec.record_stamps("flow", [])
        assert rec.hop_stamps == {"flow": {}}

    def test_stamps_fold_into_sum_and_max(self):
        rec = LatencyRecorder()
        rec.record_stamps("f", [("tor0", 2, 1e-6), ("tor1", 0, 0.0)])
        rec.record_stamps("f", [("tor0", 4, 5e-7)])
        tor0 = rec.hop_stamps["f"]["tor0"]
        assert tor0.packets == 2
        assert tor0.depth_sum == 6
        assert tor0.depth_max == 4
        assert tor0.wait_sum == pytest.approx(1.5e-6)
        assert tor0.wait_max == pytest.approx(1e-6)
        assert tor0.mean_depth == pytest.approx(3.0)
        assert tor0.mean_wait == pytest.approx(7.5e-7)
        assert rec.hop_stamps["f"]["tor1"].packets == 1

    def test_groupless_packets_share_the_ungrouped_flow(self):
        rec = LatencyRecorder()
        rec.record_stamps(None, [("tor0", 1, 0.0)])
        rec.record_stamps(None, [("tor0", 3, 0.0)])
        rec.record_stamps("named", [("tor0", 9, 0.0)])
        assert rec.hop_stamps[UNGROUPED]["tor0"].packets == 2
        assert rec.hop_stamps["named"]["tor0"].depth_max == 9

    def test_zero_packet_stats_have_zero_means(self):
        empty = HopStampStats()
        assert empty.mean_depth == 0.0
        assert empty.mean_wait == 0.0

    def test_clear_drops_hop_stamps(self):
        rec = LatencyRecorder()
        rec.record_stamps("f", [("tor0", 1, 0.0)])
        rec.clear()
        assert rec.hop_stamps == {}
