"""Tests for latency statistics."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.stats import LatencyRecorder, summarize_latencies


class TestSummarize:
    def test_basic_statistics(self):
        s = summarize_latencies([1.0, 2.0, 3.0, 4.0])
        assert s.count == 4
        assert s.mean == pytest.approx(2.5)
        assert s.minimum == 1.0
        assert s.maximum == 4.0

    def test_percentiles(self):
        samples = [float(i) for i in range(1, 101)]
        s = summarize_latencies(samples)
        assert s.p50 == 50.0
        assert s.p95 == 95.0
        assert s.p99 == 99.0

    def test_single_sample(self):
        s = summarize_latencies([5.0])
        assert s.std == 0.0
        assert s.ci95_halfwidth == 0.0
        assert s.p99 == 5.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_latencies([])

    @given(st.lists(st.floats(0, 1e6), min_size=1, max_size=200))
    def test_property_bounds(self, samples):
        s = summarize_latencies(samples)
        eps = 1e-9 * max(1.0, s.maximum)  # float summation slack
        assert s.minimum - eps <= s.mean <= s.maximum + eps
        assert s.minimum <= s.p50 <= s.p95 <= s.p99 <= s.maximum
        assert s.std >= 0


class TestRecorder:
    def test_grouping(self):
        rec = LatencyRecorder()
        rec.record(1.0, group="a")
        rec.record(3.0, group="b")
        rec.record(2.0)
        assert rec.count == 3
        assert rec.summary("a").mean == 1.0
        assert rec.summary().count == 3
        assert rec.groups() == ["a", "b"]

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            LatencyRecorder().record(-1.0)

    def test_missing_group_raises(self):
        rec = LatencyRecorder()
        rec.record(1.0, group="a")
        with pytest.raises(ValueError):
            rec.summary("missing")

    def test_clear(self):
        rec = LatencyRecorder()
        rec.record(1.0, group="a")
        rec.clear()
        assert rec.count == 0
        assert rec.groups() == []
