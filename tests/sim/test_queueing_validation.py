"""Simulator validation against queueing theory.

The paper: "We have performed extensive validation testing of our
simulator to ensure that it produces correct results that match queuing
theory."  These integration tests drive a single bottleneck link with
Poisson arrivals and compare the measured queueing delay against the
M/D/1 Pollaczek–Khinchine prediction at several utilizations.
"""

import pytest

import repro.topology as T
from repro.analysis.queueing import md1_mean_wait
from repro.routing import ECMPRouter
from repro.sim import Network, PoissonSource
from repro.units import GBPS, serialization_delay


def measured_queueing_delay(utilization: float, seed: int = 1) -> tuple[float, float]:
    """(measured mean wait, predicted M/D/1 wait) on one 10 G link."""
    size = 1250  # bytes → service time 1 µs at 10 Gbps
    rate_bps = 10 * GBPS
    service = serialization_delay(size, rate_bps)
    arrival_rate = utilization / service

    topo = T.full_mesh(2, 1, link_rate=rate_bps)
    net = Network(topo, ECMPRouter(topo))

    # Zero-load reference: a single packet's latency.
    ref_net = Network(T.full_mesh(2, 1, link_rate=rate_bps), ECMPRouter(topo))
    ref = ref_net.send("h0.0", "h1.0", size)
    ref_net.run()

    source = PoissonSource(
        net, "h0.0", "h1.0", rate_pps=arrival_rate, size_bytes=size, seed=seed
    )
    source.start()
    net.run(until=0.25)

    measured_wait = net.stats.summary().mean - ref.latency
    predicted_wait = md1_mean_wait(arrival_rate, service)
    return measured_wait, predicted_wait


class TestMD1Validation:
    @pytest.mark.parametrize("rho", [0.3, 0.5, 0.7])
    def test_mean_wait_matches_pollaczek_khinchine(self, rho):
        measured, predicted = measured_queueing_delay(rho)
        assert measured == pytest.approx(predicted, rel=0.15)

    def test_wait_grows_with_utilization(self):
        w30, _ = measured_queueing_delay(0.3)
        w70, _ = measured_queueing_delay(0.7)
        assert w70 > 3 * w30

    def test_light_load_has_negligible_wait(self):
        measured, _ = measured_queueing_delay(0.05)
        service = serialization_delay(1250, 10 * GBPS)
        assert measured < 0.1 * service
