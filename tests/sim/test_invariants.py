"""Property-based invariants of the packet simulator."""

from hypothesis import given, settings, strategies as st

import repro.topology as T
from repro.routing import ECMPRouter
from repro.sim import Network, PoissonSource
from repro.units import GBPS


class TestConservation:
    @given(
        st.integers(1, 40),
        st.floats(100, 9000),
        st.integers(0, 100),
    )
    @settings(max_examples=25, deadline=None)
    def test_every_sent_packet_is_delivered_or_dropped(self, count, size, seed):
        topo = T.full_mesh(3, 2, link_rate=1 * GBPS)
        net = Network(topo, ECMPRouter(topo), buffer_bytes=9000)
        servers = topo.servers()
        import random

        rng = random.Random(seed)
        for _ in range(count):
            src, dst = rng.sample(servers, 2)
            net.send(src, dst, size)
        net.run()
        assert net.packets_delivered + net.packets_dropped == count
        assert net.stats.count == net.packets_delivered

    @given(st.integers(1, 30))
    @settings(max_examples=15, deadline=None)
    def test_unbounded_buffers_never_drop(self, count):
        topo = T.full_mesh(2, 1, link_rate=1 * GBPS)
        net = Network(topo, ECMPRouter(topo))
        for _ in range(count):
            net.send("h0.0", "h1.0", 1500)
        net.run()
        assert net.packets_dropped == 0
        assert net.packets_delivered == count


class TestOrdering:
    @given(st.integers(2, 25), st.floats(200, 3000))
    @settings(max_examples=20, deadline=None)
    def test_fifo_per_path(self, count, size):
        """Same-path packets sent in order are delivered in order."""
        topo = T.full_mesh(2, 1, link_rate=1 * GBPS)
        net = Network(topo, ECMPRouter(topo))
        packets = [net.send("h0.0", "h1.0", size) for _ in range(count)]
        net.run()
        deliveries = [p.delivered_at for p in packets]
        assert deliveries == sorted(deliveries)

    @given(st.integers(1, 20))
    @settings(max_examples=15, deadline=None)
    def test_latency_never_below_zero_load_floor(self, count):
        topo = T.full_mesh(4, 1)
        net = Network(topo, ECMPRouter(topo))
        packets = [net.send("h0.0", "h3.0", 400) for _ in range(count)]
        net.run()
        floor = packets[0].latency  # first packet sees an idle network
        for p in packets:
            assert p.latency >= floor - 1e-12


class TestDeterminism:
    @given(st.integers(0, 50))
    @settings(max_examples=10, deadline=None)
    def test_identical_runs_identical_results(self, seed):
        def run():
            topo = T.quartz_ring(4, 2)
            net = Network(topo, ECMPRouter(topo))
            source = PoissonSource(
                net, "h0.0", "h2.0", rate_pps=200_000, seed=seed
            )
            source.start()
            net.run(until=0.002)
            return (net.stats.count, net.stats.summary().mean if net.stats.count else 0)

        assert run() == run()
