"""Tests for the packet-level network model."""

import pytest

import repro.topology as T
from repro.routing import ECMPRouter
from repro.sim import CCS, Network, NetworkSimError, ULL
from repro.sim.network import DEFAULT_PROPAGATION_DELAY
from repro.units import GBPS, MICROSECONDS, serialization_delay


def one_packet_latency(topo, src, dst, size=400, **net_kwargs):
    net = Network(topo, ECMPRouter(topo), **net_kwargs)
    packet = net.send(src, dst, size)
    net.run()
    return packet.latency, net


class TestUncongestedLatency:
    def test_mesh_two_cut_through_hops(self):
        topo = T.full_mesh(4, 1, link_rate=10 * GBPS)
        latency, _net = one_packet_latency(topo, "h0.0", "h3.0")
        # host serialization + 2 × (ULL latency) + 3 × propagation;
        # cut-through switches do not re-pay serialization.
        ser = serialization_delay(400, 10 * GBPS)
        expected = ser + 2 * ULL.latency + 3 * DEFAULT_PROPAGATION_DELAY
        assert latency == pytest.approx(expected, rel=1e-6)

    def test_store_and_forward_pays_serialization_per_hop(self):
        topo = T.full_mesh(4, 1, link_rate=10 * GBPS, switch_model="CCS")
        latency, _net = one_packet_latency(topo, "h0.0", "h3.0")
        ser = serialization_delay(400, 10 * GBPS)
        expected = 3 * ser + 2 * CCS.latency + 3 * DEFAULT_PROPAGATION_DELAY
        assert latency == pytest.approx(expected, rel=1e-6)

    def test_three_tier_dominated_by_core(self):
        topo = T.three_tier_tree()
        latency, _net = one_packet_latency(topo, "h0.0", "h15.0")
        assert latency > 6 * MICROSECONDS  # the CCS core hop alone

    def test_same_rack_single_hop(self):
        topo = T.full_mesh(4, 2)
        latency, _net = one_packet_latency(topo, "h0.0", "h0.1")
        assert latency < 1.5 * MICROSECONDS


class TestQueueing:
    def test_back_to_back_packets_queue_on_host_link(self):
        topo = T.full_mesh(2, 1, link_rate=10 * GBPS)
        net = Network(topo, ECMPRouter(topo))
        first = net.send("h0.0", "h1.0", 1500)
        second = net.send("h0.0", "h1.0", 1500)
        net.run()
        ser = serialization_delay(1500, 10 * GBPS)
        assert second.latency == pytest.approx(first.latency + ser, rel=1e-6)

    def test_cross_traffic_delays_on_shared_link(self):
        topo = T.two_tier_tree(2, 2, uplink_rate=10 * GBPS)
        net = Network(topo, ECMPRouter(topo))
        # Fill the tor0 → root uplink with a big packet, then probe while
        # the uplink is still draining it.
        net.send("h0.0", "h1.0", 9000)
        probes = []
        net.engine.schedule(
            2 * MICROSECONDS,
            lambda: probes.append(net.send("h0.1", "h1.1", 400)),
        )
        net.run()
        probe = probes[0]
        solo_latency, _ = one_packet_latency(
            T.two_tier_tree(2, 2, uplink_rate=10 * GBPS), "h0.1", "h1.1"
        )
        assert probe.latency > solo_latency


class TestServerRelay:
    def test_bcube_relay_pays_os_stack(self):
        topo = T.bcube(4, 1)
        latency, _net = one_packet_latency(topo, "h0", "h5")
        # One server relay hop at 15 µs dominates.
        assert latency > 15 * MICROSECONDS

    def test_relay_latency_configurable(self):
        topo = T.bcube(4, 1)
        fast, _ = one_packet_latency(
            topo, "h0", "h5", server_forward_latency=1 * MICROSECONDS
        )
        slow, _ = one_packet_latency(
            topo, "h0", "h5", server_forward_latency=15 * MICROSECONDS
        )
        assert slow - fast == pytest.approx(14 * MICROSECONDS, rel=1e-6)


class TestAccounting:
    def test_stats_recorded_per_group(self):
        topo = T.full_mesh(3, 1)
        net = Network(topo, ECMPRouter(topo))
        net.send("h0.0", "h1.0", 400, group="a")
        net.send("h0.0", "h2.0", 400, group="b")
        net.run()
        assert net.stats.count == 2
        assert net.stats.groups() == ["a", "b"]

    def test_delivery_callback_fires(self):
        topo = T.full_mesh(3, 1)
        net = Network(topo, ECMPRouter(topo))
        landed = []
        net.send("h0.0", "h1.0", 400, on_delivered=lambda p, t: landed.append((p.dst, t)))
        net.run()
        assert landed and landed[0][0] == "h1.0"

    def test_port_utilization(self):
        topo = T.full_mesh(2, 1, link_rate=10 * GBPS)
        net = Network(topo, ECMPRouter(topo))
        for _ in range(10):
            net.send("h0.0", "h1.0", 1250)  # 1 µs each at 10 G
        net.run()
        assert net.port_utilization("h0.0", "tor0", 1e-4) == pytest.approx(0.1, rel=0.01)

    def test_unutilized_port_is_zero(self):
        topo = T.full_mesh(2, 1)
        net = Network(topo, ECMPRouter(topo))
        assert net.port_utilization("h0.0", "tor0", 1.0) == 0.0


class TestErrors:
    def test_non_positive_size_rejected(self):
        topo = T.full_mesh(2, 1)
        net = Network(topo, ECMPRouter(topo))
        with pytest.raises(NetworkSimError):
            net.send("h0.0", "h1.0", 0)

    def test_bad_explicit_path_rejected(self):
        topo = T.full_mesh(2, 1)
        net = Network(topo, ECMPRouter(topo))
        with pytest.raises(NetworkSimError):
            net.send("h0.0", "h1.0", 400, path=("h1.0", "tor1", "h0.0"))

    def test_latency_before_delivery_raises(self):
        topo = T.full_mesh(2, 1)
        net = Network(topo, ECMPRouter(topo))
        packet = net.send("h0.0", "h1.0", 400)
        with pytest.raises(NetworkSimError):
            _ = packet.latency

    def test_host_receive_latency_added(self):
        topo = T.full_mesh(2, 1)
        base, _ = one_packet_latency(topo, "h0.0", "h1.0")
        slow, _ = one_packet_latency(
            T.full_mesh(2, 1), "h0.0", "h1.0", host_receive_latency=5 * MICROSECONDS
        )
        assert slow - base == pytest.approx(5 * MICROSECONDS, rel=1e-6)
