"""Tests for the switch models (paper Table 16)."""

import pytest

from repro.sim.switch import CCS, SF_1G, SwitchModel, ULL, get_model, register_model
from repro.units import MICROSECONDS, NANOSECONDS


class TestTable16:
    def test_ull_spec(self):
        assert ULL.latency == pytest.approx(380 * NANOSECONDS)
        assert ULL.cut_through
        assert ULL.ports_10g == 64
        assert ULL.ports_40g == 16

    def test_ccs_spec(self):
        assert CCS.latency == pytest.approx(6 * MICROSECONDS)
        assert not CCS.cut_through
        assert CCS.ports_10g == 768
        assert CCS.ports_40g == 192

    def test_prototype_switch_is_store_and_forward(self):
        assert not SF_1G.cut_through


class TestRegistry:
    def test_lookup(self):
        assert get_model("ULL") is ULL
        assert get_model("CCS") is CCS

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            get_model("nonexistent")

    def test_register_custom(self):
        custom = SwitchModel("TEST40G", 200 * NANOSECONDS, True, 0, 32)
        register_model(custom)
        assert get_model("TEST40G") is custom

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            SwitchModel("bad", -1.0, True, 1, 1)
