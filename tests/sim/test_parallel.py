"""Conservative-window parallel DES: fingerprint equivalence vs serial.

The contract under test (mirroring ``tests/sim/test_batch.py``'s
three-mode equivalence style): :func:`repro.sim.parallel.run_parallel`
produces a :meth:`~repro.sim.parallel.RunResult.fingerprint` — packet
counters, packet-id allocation, logical event count, every latency
sample, per-port transmission state, per-source send counts, per-flow
fault stats — **bit-identical** to :func:`~repro.sim.parallel.run_serial`
for any shard count, in both coordinator modes, with and without fault
churn crossing shard boundaries.
"""

from __future__ import annotations

import math

import pytest

import repro.topology as T
from repro.sim.faults import SegmentCut
from repro.sim.knobs import PARALLEL_ENV
from repro.sim.parallel import (
    BoundaryMessage,
    FABRICS,
    ParallelScenario,
    ParallelSimError,
    ShardNetwork,
    SourceSpec,
    boundary_links,
    lookahead,
    partition_racks,
    run_parallel,
    run_serial,
)
from repro.routing import ECMPRouter
from repro.sim.switch import ULL


RING = 5
SERVERS = 2


def make_scenario(fault: bool = False, duration: float = 2e-3) -> ParallelScenario:
    """Cross-rack Poisson mesh on a 5-switch ring, optionally with a
    cut + repair and an unrepaired cut whose severed channels include
    boundary links of every partition tested here."""
    specs = []
    for rack in range(RING):
        for server in range(SERVERS):
            specs.append(
                SourceSpec(
                    src=f"h{rack}.{server}",
                    dst=f"h{(rack + 2) % RING}.{server}",
                    rate_pps=300_000.0,
                    group=f"g{rack % 2}",
                    flow_id=rack * 10 + server,
                    seed=rack * 10 + server,
                )
            )
    cuts = ()
    plan = None
    if fault:
        cuts = (
            SegmentCut(start=0.4e-3, ring=0, segment=1, repair_at=1.2e-3),
            SegmentCut(start=0.7e-3, ring=0, segment=3),
        )
        plan = (RING, None)
    return ParallelScenario(
        fabric="quartz-ring",
        fabric_args=(RING, SERVERS),
        sources=tuple(specs),
        duration=duration,
        fault_cuts=cuts,
        fault_plan=plan,
    )


# -- partitioning ------------------------------------------------------------------


class TestPartitioning:
    def test_partition_covers_all_nodes_disjointly(self):
        topo = T.quartz_ring(RING, SERVERS)
        parts = partition_racks(topo, 3)
        assert len(parts) == 3
        union = set().union(*parts)
        assert union == set(topo.graph)
        assert sum(len(p) for p in parts) == len(topo.graph)

    def test_partition_is_contiguous_and_balanced(self):
        topo = T.quartz_ring(RING, SERVERS)
        parts = partition_racks(topo, 2)
        racks = [sorted({topo.rack(n) for n in part}) for part in parts]
        assert racks == [[0, 1, 2], [3, 4]]
        # Servers ride with their rack's ToR.
        for part in parts:
            for node in part:
                if topo.is_server(node):
                    assert topo.tor_of(node) in part

    def test_unracked_nodes_ride_with_shard_zero(self):
        topo = T.quartz_in_edge(num_rings=2, ring_size=3, num_cores=2)
        parts = partition_racks(topo, 2)
        cores = [n for n in topo.graph if topo.rack(n) is None]
        assert cores  # the composite has rack-less core switches
        assert all(core in parts[0] for core in cores)

    def test_too_many_shards_raises(self):
        topo = T.quartz_ring(3, 1)
        with pytest.raises(ParallelSimError, match="racks"):
            partition_racks(topo, 4)
        with pytest.raises(ParallelSimError, match="shard"):
            partition_racks(topo, 0)

    def test_boundary_links_cross_shards_only(self):
        topo = T.quartz_ring(RING, SERVERS)
        parts = partition_racks(topo, 2)
        owner = {n: i for i, p in enumerate(parts) for n in p}
        crossing = boundary_links(topo, parts)
        assert crossing
        for u, v in crossing:
            assert owner[u] != owner[v]
        # Directed both ways, host links never cross (servers stay racked).
        assert all((v, u) in crossing for u, v in crossing)
        assert all(not topo.is_server(u) and not topo.is_server(v)
                   for u, v in crossing)


class TestLookahead:
    def test_lookahead_is_switch_latency_plus_propagation(self):
        topo = T.quartz_ring(RING, SERVERS)
        parts = partition_racks(topo, 2)
        window = lookahead(topo, parts, propagation_delay=100e-9)
        # All boundary links are ToR-to-ToR on ULL cut-through switches;
        # the bound is latency + propagation (modulo the safety shave).
        expected = (ULL.latency + 100e-9)
        assert window == pytest.approx(expected, rel=1e-6)
        assert window < expected  # strictly shaved, never optimistic

    def test_single_shard_has_no_boundary(self):
        topo = T.quartz_ring(RING, SERVERS)
        parts = partition_racks(topo, 1)
        assert math.isinf(lookahead(topo, parts))

    def test_nonpositive_propagation_rejected(self):
        topo = T.quartz_ring(RING, SERVERS)
        parts = partition_racks(topo, 2)
        with pytest.raises(ParallelSimError, match="propagation"):
            lookahead(topo, parts, propagation_delay=0.0)


# -- scenario validation -----------------------------------------------------------


class TestScenario:
    def test_unknown_fabric_rejected(self):
        with pytest.raises(ParallelSimError, match="fabric"):
            ParallelScenario(fabric="nope")

    def test_cuts_require_plan(self):
        with pytest.raises(ParallelSimError, match="fault_plan"):
            ParallelScenario(
                fabric="quartz-ring",
                fault_cuts=(SegmentCut(start=1e-3, ring=0, segment=0),),
            )

    def test_registry_covers_quartz_builders(self):
        assert "quartz-ring" in FABRICS
        topo = ParallelScenario(
            fabric="quartz-ring", fabric_args=(3, 1)
        ).build_topology()
        assert len(topo.graph) == 3 + 3


# -- shard network unit behaviour --------------------------------------------------


def _shard_pair():
    topo = T.quartz_ring(RING, SERVERS)
    parts = partition_racks(topo, 2)
    net = ShardNetwork(topo, ECMPRouter(topo), owned=parts[0], shard_index=0)
    return topo, parts, net

class TestShardNetwork:
    def test_boundary_transmit_goes_to_outbox(self):
        topo, parts, net = _shard_pair()
        # h0.0 -> h3.0 must cross into shard 1 (racks 3-4).
        packet = net.send("h0.0", "h3.0", 400)
        net.engine.run(until=1e-3)
        messages = net.drain_outbox(cutoff=1.0)
        assert len(messages) == 1
        message = messages[0]
        assert message.packet_id == packet.packet_id
        assert message.path[message.hop] in parts[0]
        assert message.path[message.hop + 1] in parts[1]
        assert net.packets_delivered == 0  # lives on in the peer shard

    def test_local_traffic_never_crosses(self):
        _, _, net = _shard_pair()
        net.send("h0.0", "h2.0", 400)
        net.engine.run(until=1e-3)
        assert net.drain_outbox(cutoff=1.0) == []
        assert net.packets_delivered == 1

    def test_receive_boundary_rejects_late_arrivals(self):
        _, _, net = _shard_pair()
        net.engine.run(until=1e-3)
        stale = BoundaryMessage(
            arrival=0.5e-3, origin=1, seq=0, packet_id=7, src="h3.0",
            dst="h0.0", size_bytes=400.0, path=("h3.0", "tor3", "tor0", "h0.0"),
            created_at=0.4e-3, group=None, hop=2, rerouted=False,
        )
        with pytest.raises(ParallelSimError, match="lookahead violation"):
            net.receive_boundary([stale])

    def test_cohorts_refuse_cross_shard_routes(self):
        _, _, net = _shard_pair()
        if not net.batch_enabled:
            pytest.skip("batching disabled in this environment")
        committed = {}

        def probe():
            # Cohorts may only commit while a run loop is dispatching
            # (batching_ok), so exercise them from inside an event.
            times = [net.engine.now + i * 1e-6 for i in range(16)]
            committed["cross"] = net.send_cohort("h0.0", "h3.0", 400, times)
            committed["local"] = net.send_cohort("h0.0", "h2.0", 400, times)

        net.engine.schedule(0.0, probe)
        net.engine.run(until=1e-3)
        assert committed["cross"] == 0  # crossing routes take the scalar path
        assert committed["local"] > 0

    def test_bounded_buffers_rejected(self):
        topo = T.quartz_ring(RING, SERVERS)
        parts = partition_racks(topo, 2)
        with pytest.raises(ParallelSimError, match="unbounded"):
            ShardNetwork(
                topo, ECMPRouter(topo), owned=parts[0], buffer_bytes=9000.0
            )


# -- end-to-end equivalence --------------------------------------------------------


class TestFingerprintEquivalence:
    # ``parallel=True`` everywhere below: the equivalence claims are
    # about real sharded execution, so the tests must not silently
    # degrade to serial-vs-serial under a REPRO_PARALLEL_DISABLE leg
    # (explicit argument beats environment, per the knob contract).

    @pytest.mark.parametrize("num_shards", [2, 3, 5])
    def test_inline_matches_serial(self, num_shards):
        scenario = make_scenario()
        serial = run_serial(scenario)
        parallel = run_parallel(
            scenario, num_shards=num_shards, mode="inline", parallel=True
        )
        assert parallel.mode == "parallel-inline"
        assert parallel.fingerprint() == serial.fingerprint()
        assert parallel.windows > 0
        assert parallel.boundary_messages > 0

    @pytest.mark.parametrize("num_shards", [2, 3])
    def test_fault_churn_matches_serial(self, num_shards):
        """Cut + repair crossing shard boundaries: severed boundary
        packets, reroutes, and per-flow drop attribution all merge to
        the serial reference exactly."""
        scenario = make_scenario(fault=True)
        serial = run_serial(scenario)
        assert serial.packets_dropped_fault > 0  # the churn actually bites
        assert serial.packets_rerouted > 0
        parallel = run_parallel(
            scenario, num_shards=num_shards, mode="inline", parallel=True
        )
        assert parallel.fingerprint() == serial.fingerprint()

    def test_process_mode_matches_serial(self):
        scenario = make_scenario(fault=True, duration=1e-3)
        serial = run_serial(scenario)
        parallel = run_parallel(
            scenario, num_shards=2, mode="process", parallel=True
        )
        assert parallel.fingerprint() == serial.fingerprint()
        assert parallel.mode == "parallel-process"
        assert parallel.spinup_seconds > 0.0
        assert parallel.compute_seconds > 0.0

    def test_single_shard_falls_back_to_serial(self):
        scenario = make_scenario(duration=0.5e-3)
        result = run_parallel(scenario, num_shards=1, mode="inline")
        assert result.mode == "serial"
        assert result.windows == 0

    def test_disable_knob_falls_back_to_serial(self, monkeypatch):
        scenario = make_scenario(duration=0.5e-3)
        monkeypatch.setenv(PARALLEL_ENV, "1")
        result = run_parallel(scenario, num_shards=2, mode="inline")
        assert result.mode == "serial"
        # Explicit argument beats the environment, like every knob.
        monkeypatch.setenv(PARALLEL_ENV, "1")
        forced = run_parallel(
            scenario, num_shards=2, mode="inline", parallel=True
        )
        assert forced.mode == "parallel-inline"
        assert forced.fingerprint() == result.fingerprint()

    def test_bad_mode_rejected(self):
        with pytest.raises(ParallelSimError, match="mode"):
            run_parallel(make_scenario(), num_shards=2, mode="threads")
