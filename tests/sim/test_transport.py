"""Tests for the TCP-style transport."""

import pytest

import repro.topology as T
from repro.routing import ECMPRouter
from repro.sim import Network
from repro.sim.transport import TCPFlow, TransportError, bulk_tcp_flows
from repro.units import GBPS, MBPS


def make_net(link_rate=1 * GBPS, buffer_bytes=None, racks=2, servers=2):
    topo = T.full_mesh(racks, servers, link_rate=link_rate)
    return Network(topo, ECMPRouter(topo), buffer_bytes=buffer_bytes)


class TestBasicTransfer:
    def test_flow_completes(self):
        net = make_net()
        flow = TCPFlow(net, "h0.0", "h1.0", 150_000)
        flow.start()
        net.run(until=1.0)
        assert flow.done
        assert flow.delivered_bytes >= 150_000 - flow.mss

    def test_completion_callback(self):
        net = make_net()
        finished = []
        flow = TCPFlow(
            net, "h0.0", "h1.0", 30_000,
            on_complete=lambda f, t: finished.append(t),
        )
        flow.start()
        net.run(until=1.0)
        assert len(finished) == 1
        assert finished[0] == flow.completed_at

    def test_no_loss_no_retransmissions(self):
        net = make_net()  # unbounded buffers
        flow = TCPFlow(net, "h0.0", "h1.0", 300_000)
        flow.start()
        net.run(until=1.0)
        assert flow.done
        assert flow.retransmissions == 0
        assert flow.timeouts == 0

    def test_throughput_approaches_line_rate(self):
        net = make_net(link_rate=1 * GBPS)
        flow = TCPFlow(net, "h0.0", "h1.0", 2_000_000)
        flow.start()
        net.run(until=1.0)
        assert flow.done
        # ~16 ms of payload at 1 Gbps plus the slow-start ramp.
        assert flow.throughput_bps() > 0.5 * GBPS

    def test_slow_start_grows_window(self):
        net = make_net()
        flow = TCPFlow(net, "h0.0", "h1.0", 600_000, initial_cwnd=2)
        flow.start()
        net.run(until=1.0)
        assert flow.done
        assert flow.cwnd > 2


class TestPacing:
    def test_paced_flow_respects_rate(self):
        net = make_net(link_rate=1 * GBPS)
        flow = TCPFlow(net, "h0.0", "h1.0", 1_000_000, pacing_rate_bps=100 * MBPS)
        flow.start()
        net.run(until=1.0)
        assert flow.done
        # 8 Mbit at 100 Mb/s → ≥ 80 ms; throughput ≈ the pacing rate.
        assert flow.throughput_bps() == pytest.approx(100 * MBPS, rel=0.2)

    def test_invalid_pacing_rejected(self):
        net = make_net()
        with pytest.raises(TransportError):
            TCPFlow(net, "h0.0", "h1.0", 1000, pacing_rate_bps=0)


class TestLossRecovery:
    def test_shallow_buffers_cause_retransmissions_but_flow_completes(self):
        # Two flows into one receiver NIC with 4-packet buffers: drops
        # are inevitable; both flows must still finish.
        topo = T.full_mesh(3, 1, link_rate=1 * GBPS)
        net = Network(topo, ECMPRouter(topo), buffer_bytes=6_000)
        flows = bulk_tcp_flows(
            net, [("h0.0", "h2.0"), ("h1.0", "h2.0")], 400_000
        )
        for flow in flows:
            flow.start()
        net.run(until=5.0)
        assert all(f.done for f in flows)
        assert sum(f.retransmissions for f in flows) > 0
        assert net.packets_dropped > 0

    def test_loss_halves_window(self):
        topo = T.full_mesh(3, 1, link_rate=1 * GBPS)
        net = Network(topo, ECMPRouter(topo), buffer_bytes=6_000)
        flows = bulk_tcp_flows(net, [("h0.0", "h2.0"), ("h1.0", "h2.0")], 400_000)
        for flow in flows:
            flow.start()
        net.run(until=5.0)
        # At least one flow left slow start via a loss event.
        assert any(f.ssthresh != float("inf") for f in flows)

    def test_rto_recovers_from_total_blackout(self):
        # Buffer of a single packet forces heavy loss including ACKs;
        # timeouts must still drive the flow home.
        topo = T.full_mesh(2, 2, link_rate=1 * GBPS)
        net = Network(topo, ECMPRouter(topo), buffer_bytes=1_600)
        flow = TCPFlow(net, "h0.0", "h1.0", 60_000, initial_cwnd=20)
        flow.start()
        net.run(until=10.0)
        assert flow.done


class TestFairness:
    def test_two_flows_share_a_bottleneck(self):
        topo = T.full_mesh(2, 2, link_rate=1 * GBPS)
        net = Network(topo, ECMPRouter(topo), buffer_bytes=30_000)
        flows = bulk_tcp_flows(
            net, [("h0.0", "h1.0"), ("h0.1", "h1.1")], 2_000_000
        )
        for flow in flows:
            flow.start()
        net.run(until=10.0)
        assert all(f.done for f in flows)
        rates = sorted(f.throughput_bps() for f in flows)
        # Rough fairness: the slower flow gets at least a third of the
        # faster one's goodput.
        assert rates[0] > rates[1] / 3


class TestValidation:
    def test_invalid_sizes(self):
        net = make_net()
        with pytest.raises(TransportError):
            TCPFlow(net, "h0.0", "h1.0", 0)
        with pytest.raises(TransportError):
            TCPFlow(net, "h0.0", "h1.0", 1000, mss=32)
        with pytest.raises(TransportError):
            TCPFlow(net, "h0.0", "h1.0", 1000, initial_cwnd=0)


class TestPacingWakeups:
    def test_single_armed_pacing_wake(self, monkeypatch):
        """Regression: overlapping ACKs used to each schedule another
        `_fill_window` at the pacing gate, piling up duplicate wake-ups.
        At most one pacing wake may be armed at any time."""
        from repro.sim.engine import Engine

        net = make_net(link_rate=10 * GBPS)
        flow = TCPFlow(
            net, "h0.0", "h1.0", 400_000,
            pacing_rate_bps=200 * MBPS, initial_cwnd=64,
        )
        outstanding = 0
        peak = 0
        real_schedule_at = Engine.schedule_at

        def spy(engine, time, callback, *args):
            nonlocal outstanding, peak
            if callback == flow._pacing_fire:
                outstanding += 1
                peak = max(peak, outstanding)

                def fire_and_release():
                    nonlocal outstanding
                    outstanding -= 1
                    callback()

                return real_schedule_at(engine, time, fire_and_release)
            return real_schedule_at(engine, time, callback, *args)

        monkeypatch.setattr(Engine, "schedule_at", spy)
        flow.start()
        net.run(until=30.0)
        assert flow.done
        assert peak == 1

    def test_paced_event_count_scales_with_segments(self):
        # With one armed wake per gate, total engine events stay within
        # a small constant factor of the segment count (the storm made
        # this superlinear in the window size).
        net = make_net(link_rate=10 * GBPS)
        flow = TCPFlow(
            net, "h0.0", "h1.0", 300_000,
            pacing_rate_bps=100 * MBPS, initial_cwnd=64,
        )
        flow.start()
        net.run(until=30.0)
        assert flow.done
        segments = flow._num_segments
        # data + ACK deliveries ≈ 4 events/segment on this one-hop mesh;
        # pacing adds at most one wake per sent segment.
        assert net.engine.events_processed < 12 * segments
