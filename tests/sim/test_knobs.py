"""Table-driven tests for the shared knob-resolution helper.

One helper (:func:`repro.sim.knobs.resolve_flag`) now backs every
boolean feature knob — fastpath, batch, telemetry, hybrid — in both
environment-variable senses.  The table pins the full truth table, and
the integration cases prove each consumer actually routes through it
(explicit ``False`` wins over the environment everywhere).
"""

from __future__ import annotations

import pytest

import repro.topology as T
from repro.routing import ECMPRouter
from repro.sim import Network
from repro.sim.fastpath import BATCH_ENV, FASTPATH_ENV
from repro.sim.knobs import HYBRID_ENV, PARALLEL_ENV, env_truthy, resolve_flag
from repro.sim.sources import PoissonSource
from repro.telemetry import TELEMETRY_ENV, TelemetryConfig
from repro.telemetry.windows import resolve_config

#: (value, env setting, env_disables, expected) — the full truth table.
#: ``env`` of None means the variable is unset.
RESOLVE_TABLE = [
    # env-disables sense (fastpath/batch/hybrid): default on.
    (None, None, True, True),
    (None, "", True, True),
    (None, "0", True, True),
    (None, "1", True, False),
    (None, "yes", True, False),
    (True, "1", True, True),  # explicit True beats a disabling env
    (False, None, True, False),  # explicit False with no env stays off
    (False, "0", True, False),
    # env-enables sense (telemetry): default off.
    (None, None, False, False),
    (None, "", False, False),
    (None, "0", False, False),
    (None, "1", False, True),
    (None, "on", False, True),
    (True, None, False, True),
    (False, "1", False, False),  # explicit False beats an enabling env
]


@pytest.mark.parametrize("value,env,env_disables,expected", RESOLVE_TABLE)
def test_resolve_flag_truth_table(value, env, env_disables, expected):
    environ = {} if env is None else {"KNOB": env}
    assert (
        resolve_flag(value, "KNOB", env_disables=env_disables, environ=environ)
        is expected
    )


def test_env_truthy_convention():
    assert not env_truthy("KNOB", {})
    assert not env_truthy("KNOB", {"KNOB": ""})
    assert not env_truthy("KNOB", {"KNOB": "0"})
    assert env_truthy("KNOB", {"KNOB": "1"})
    assert env_truthy("KNOB", {"KNOB": "false"})  # any non-falsy string


def _net(monkeypatch, env_name=None, env_value=None, **kwargs):
    # Hermetic environment: an outer CI leg (REPRO_TELEMETRY=1,
    # REPRO_FASTPATH_DISABLE=1, ...) must not leak into knob-resolution
    # assertions — each case sets exactly the one variable it tests.
    for leaked in (FASTPATH_ENV, BATCH_ENV, HYBRID_ENV, PARALLEL_ENV,
                   TELEMETRY_ENV):
        monkeypatch.delenv(leaked, raising=False)
    if env_name is not None:
        monkeypatch.setenv(env_name, env_value)
    topo = T.quartz_ring(3, 1)
    return Network(topo, ECMPRouter(topo), **kwargs)


#: Each consumer knob: (Network kwarg, env var, attribute, armed-check).
KNOB_CASES = [
    ("fastpath", FASTPATH_ENV, "fastpath_enabled"),
    ("batch", BATCH_ENV, "batch_enabled"),
    ("hybrid", HYBRID_ENV, "hybrid_enabled"),
    ("parallel", PARALLEL_ENV, "parallel_enabled"),
]


@pytest.mark.parametrize("kwarg,env,attr", KNOB_CASES)
def test_network_knob_default_follows_env(monkeypatch, kwarg, env, attr):
    monkeypatch.delenv(env, raising=False)
    assert getattr(_net(monkeypatch), attr) is True
    assert getattr(_net(monkeypatch, env, "1"), attr) is False


@pytest.mark.parametrize("kwarg,env,attr", KNOB_CASES)
def test_network_explicit_false_wins(monkeypatch, kwarg, env, attr):
    monkeypatch.delenv(env, raising=False)
    assert getattr(_net(monkeypatch, **{kwarg: False}), attr) is False
    # ... and explicit True beats a disabling environment.  batch is
    # special only in that it also requires the fast path, which the
    # default leaves on.
    assert getattr(_net(monkeypatch, env, "1", **{kwarg: True}), attr) is True


def test_telemetry_knob_env_enables(monkeypatch):
    monkeypatch.delenv(TELEMETRY_ENV, raising=False)
    assert _net(monkeypatch).telemetry is None
    assert _net(monkeypatch, TELEMETRY_ENV, "1").telemetry is not None
    # Explicit False wins over an enabling environment.
    assert _net(monkeypatch, TELEMETRY_ENV, "1", telemetry=False).telemetry is None


def test_telemetry_config_passthrough():
    config = TelemetryConfig(window=1e-3, stamping=False)
    assert resolve_config(config) is config


def test_source_chunk_follows_fastpath_env(monkeypatch):
    net = _net(monkeypatch)
    servers = net.topo.servers()
    assert PoissonSource(net, servers[0], servers[1], rate_pps=1.0).chunk > 1
    net = _net(monkeypatch, FASTPATH_ENV, "1")
    assert PoissonSource(net, servers[0], servers[1], rate_pps=1.0).chunk == 1
