"""Tests for latency decomposition (TracingNetwork)."""

import pytest

import repro.topology as T
from repro.routing import ECMPRouter
from repro.sim.trace import LatencyBreakdown, TracingNetwork, format_breakdown
from repro.units import GBPS, MICROSECONDS


def traced_packet(topo, src, dst, size=400, extra=None, **kwargs):
    net = TracingNetwork(topo, ECMPRouter(topo), **kwargs)
    if extra is not None:
        extra(net)
    packet = net.send(src, dst, size, group="probe")
    net.run()
    return packet, net


class TestComponentsSumToLatency:
    @pytest.mark.parametrize(
        "build",
        [
            lambda: T.full_mesh(4, 1),
            lambda: T.full_mesh(4, 1, switch_model="CCS"),
            lambda: T.three_tier_tree(),
            lambda: T.bcube(4, 1),
        ],
    )
    def test_sum_matches_measured(self, build):
        topo = build()
        servers = topo.servers()
        packet, net = traced_packet(topo, servers[0], servers[-1])
        breakdown = net.breakdowns[packet.packet_id]
        assert breakdown.total == pytest.approx(packet.latency, rel=1e-9)

    def test_sum_matches_under_queueing(self):
        topo = T.full_mesh(2, 1, link_rate=1 * GBPS)
        net = TracingNetwork(topo, ECMPRouter(topo))
        packets = [net.send("h0.0", "h1.0", 1500, group="p") for _ in range(10)]
        net.run()
        for packet in packets:
            assert net.breakdowns[packet.packet_id].total == pytest.approx(
                packet.latency, rel=1e-9
            )


class TestAttribution:
    def test_ccs_core_dominates_tree_switching(self):
        topo = T.three_tier_tree()
        packet, net = traced_packet(topo, "h0.0", "h15.0")
        breakdown = net.breakdowns[packet.packet_id]
        # 4 ULL + 1 CCS: switching ≈ 7.5 µs, > 80 % of the total.
        assert breakdown.switching == pytest.approx(4 * 380e-9 + 6e-6, rel=1e-6)
        assert breakdown.switching > 0.8 * breakdown.total

    def test_server_relay_counts_as_switching(self):
        topo = T.bcube(4, 1)
        packet, net = traced_packet(topo, "h0", "h5")
        breakdown = net.breakdowns[packet.packet_id]
        assert breakdown.switching > 15 * MICROSECONDS

    def test_queueing_attributed_to_waiting(self):
        topo = T.full_mesh(2, 1, link_rate=1 * GBPS)
        net = TracingNetwork(topo, ECMPRouter(topo))
        net.send("h0.0", "h1.0", 1500)
        second = net.send("h0.0", "h1.0", 1500, group="p")
        net.run()
        breakdown = net.breakdowns[second.packet_id]
        # Waited exactly one 1500 B serialization behind the first.
        assert breakdown.queueing == pytest.approx(12e-6, rel=1e-6)

    def test_uncongested_has_zero_queueing(self):
        topo = T.full_mesh(4, 1)
        packet, net = traced_packet(topo, "h0.0", "h3.0")
        assert net.breakdowns[packet.packet_id].queueing == 0.0

    def test_cut_through_serialization_less_than_store_forward(self):
        ull_packet, ull_net = traced_packet(T.full_mesh(4, 1), "h0.0", "h3.0")
        ccs_packet, ccs_net = traced_packet(
            T.full_mesh(4, 1, switch_model="CCS"), "h0.0", "h3.0"
        )
        ull = ull_net.breakdowns[ull_packet.packet_id]
        ccs = ccs_net.breakdowns[ccs_packet.packet_id]
        assert ull.serialization < ccs.serialization


class TestAggregation:
    def test_mean_breakdown(self):
        topo = T.full_mesh(3, 1)
        net = TracingNetwork(topo, ECMPRouter(topo))
        for _ in range(5):
            net.send("h0.0", "h1.0", 400, group="a")
        net.run()
        mean = net.mean_breakdown("a")
        assert mean.total > 0
        assert len(net.breakdowns_by_group["a"]) == 5

    def test_empty_aggregate_raises(self):
        topo = T.full_mesh(3, 1)
        net = TracingNetwork(topo, ECMPRouter(topo))
        with pytest.raises(ValueError):
            net.mean_breakdown()

    def test_breakdown_arithmetic(self):
        a = LatencyBreakdown(1.0, 2.0, 3.0, 4.0)
        b = LatencyBreakdown(1.0, 1.0, 1.0, 1.0)
        total = a + b
        assert total.switching == 3.0
        assert total.scaled(0.5).queueing == 2.0
        assert total.total == 14.0

    def test_format(self):
        text = format_breakdown(LatencyBreakdown(1e-6, 2e-6, 0.0, 1e-7), "probe")
        assert "probe" in text
        assert "switch" in text
