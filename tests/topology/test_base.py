"""Tests for the typed topology graph."""

import pytest

from repro.topology.base import (
    LinkKind,
    NodeKind,
    Topology,
    TopologyError,
    connect_all,
)
from repro.units import GBPS


@pytest.fixture()
def tiny():
    topo = Topology("tiny")
    topo.add_switch("sw0", NodeKind.TOR, rack=0)
    topo.add_switch("sw1", NodeKind.TOR, rack=1)
    topo.add_link("sw0", "sw1", 10 * GBPS, LinkKind.MESH)
    topo.add_server("h0", rack=0)
    topo.add_link("h0", "sw0", 10 * GBPS, LinkKind.HOST)
    topo.add_server("h1", rack=1)
    topo.add_link("h1", "sw1", 10 * GBPS, LinkKind.HOST)
    return topo


class TestConstruction:
    def test_duplicate_node_rejected(self, tiny):
        with pytest.raises(TopologyError):
            tiny.add_server("h0")

    def test_duplicate_link_rejected(self, tiny):
        with pytest.raises(TopologyError):
            tiny.add_link("sw0", "sw1", 10 * GBPS)

    def test_self_loop_rejected(self, tiny):
        with pytest.raises(TopologyError):
            tiny.add_link("sw0", "sw0", 10 * GBPS)

    def test_unknown_endpoint_rejected(self, tiny):
        with pytest.raises(TopologyError):
            tiny.add_link("sw0", "ghost", 10 * GBPS)

    def test_non_positive_capacity_rejected(self, tiny):
        tiny.add_switch("sw2", NodeKind.TOR, rack=2)
        with pytest.raises(TopologyError):
            tiny.add_link("sw0", "sw2", 0)

    def test_server_as_switch_kind_rejected(self):
        topo = Topology("bad")
        with pytest.raises(TopologyError):
            topo.add_switch("x", NodeKind.SERVER)


class TestQueries:
    def test_servers_and_switches(self, tiny):
        assert tiny.servers() == ["h0", "h1"]
        assert set(tiny.switches()) == {"sw0", "sw1"}

    def test_kind_filter(self, tiny):
        assert tiny.switches(NodeKind.TOR) == ["sw0", "sw1"]
        assert tiny.switches(NodeKind.CORE) == []

    def test_tor_of(self, tiny):
        assert tiny.tor_of("h0") == "sw0"

    def test_tor_of_non_server_raises(self, tiny):
        with pytest.raises(TopologyError):
            tiny.tor_of("sw0")

    def test_link_lookup_either_orientation(self, tiny):
        assert tiny.link("sw1", "sw0").capacity == 10 * GBPS

    def test_missing_link_raises(self, tiny):
        with pytest.raises(TopologyError):
            tiny.link("h0", "h1")

    def test_racks(self, tiny):
        assert tiny.racks() == [0, 1]

    def test_servers_in_rack(self, tiny):
        assert tiny.servers_in_rack(1) == ["h1"]

    def test_contains_and_len(self, tiny):
        assert "h0" in tiny
        assert "ghost" not in tiny
        assert len(tiny) == 4

    def test_summary_counts(self, tiny):
        assert "2 servers" in tiny.summary()
        assert "2 switches" in tiny.summary()


class TestValidation:
    def test_valid_topology_passes(self, tiny):
        tiny.validate()

    def test_empty_topology_fails(self):
        with pytest.raises(TopologyError):
            Topology("empty").validate()

    def test_disconnected_fails(self, tiny):
        tiny.add_switch("lonely", NodeKind.TOR, rack=9)
        with pytest.raises(TopologyError):
            tiny.validate()

    def test_server_to_server_link_fails_unless_server_centric(self):
        topo = Topology("sc")
        topo.add_switch("sw", NodeKind.TOR, rack=0)
        topo.add_server("a", rack=0)
        topo.add_server("b", rack=0)
        topo.add_link("a", "sw", 1 * GBPS, LinkKind.HOST)
        topo.add_link("b", "sw", 1 * GBPS, LinkKind.HOST)
        topo.add_link("a", "b", 1 * GBPS, LinkKind.MESH)
        with pytest.raises(TopologyError):
            topo.validate()
        topo.graph.graph["server_centric"] = True
        topo.validate()


class TestHelpers:
    def test_connect_all_builds_full_mesh(self):
        topo = Topology("mesh")
        nodes = [topo.add_switch(f"s{i}", NodeKind.TOR, rack=i) for i in range(5)]
        connect_all(topo, nodes, 10 * GBPS)
        assert topo.graph.number_of_edges() == 10

    def test_switch_graph_excludes_servers(self, tiny):
        sg = tiny.switch_graph()
        assert set(sg.nodes()) == {"sw0", "sw1"}
