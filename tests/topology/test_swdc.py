"""Tests for the SWDC small-world topology."""

import networkx as nx
import pytest

from repro.topology import average_path_length, swdc_ring
from repro.topology.base import LinkKind


class TestConstruction:
    def test_marked_server_centric(self):
        assert swdc_ring(16).graph.graph["server_centric"]

    def test_ring_lattice_present(self):
        topo = swdc_ring(16, regular_degree=2, random_links_per_server=0)
        for i in range(16):
            assert topo.graph.has_edge(f"h{i}", f"h{(i + 1) % 16}")

    def test_random_links_added(self):
        topo = swdc_ring(32, random_links_per_server=2, seed=3)
        random_links = [l for l in topo.links() if l.link_kind is LinkKind.RANDOM]
        # Some collisions/self-targets are skipped, but most links land.
        assert len(random_links) >= 32

    def test_deterministic_per_seed(self):
        a = swdc_ring(24, seed=5)
        b = swdc_ring(24, seed=5)
        assert set(a.graph.edges()) == set(b.graph.edges())

    def test_each_server_has_a_tor(self):
        topo = swdc_ring(16, servers_per_rack=4)
        assert len(topo.switches()) == 4
        for server in topo.servers():
            assert topo.tor_of(server)


class TestSmallWorldProperty:
    def test_long_links_shorten_paths(self):
        lattice = swdc_ring(64, random_links_per_server=0, seed=1)
        small_world = swdc_ring(64, random_links_per_server=2, seed=1)
        assert average_path_length(small_world, sample=24) < average_path_length(
            lattice, sample=24
        )

    def test_connected(self):
        topo = swdc_ring(48, seed=2)
        assert nx.is_connected(topo.graph)


class TestValidation:
    def test_too_few_servers(self):
        with pytest.raises(ValueError):
            swdc_ring(2)

    def test_uneven_racks_rejected(self):
        with pytest.raises(ValueError):
            swdc_ring(10, servers_per_rack=4)

    def test_odd_degree_rejected(self):
        with pytest.raises(ValueError):
            swdc_ring(16, regular_degree=3)

    def test_negative_random_links_rejected(self):
        with pytest.raises(ValueError):
            swdc_ring(16, random_links_per_server=-1)
