"""Tests for the topology generators (trees, fat-tree, BCube, DCell,
Jellyfish, mesh, Quartz)."""

import networkx as nx
import pytest

import repro.topology as T
from repro.topology.base import LinkKind, NodeKind
from repro.units import GBPS


class TestTwoTierTree:
    def test_table9_configuration(self):
        topo = T.two_tier_tree(num_tors=16, servers_per_tor=2)
        assert len(topo.switches()) == 17
        assert len(topo.servers()) == 32

    def test_uplinks_are_uplink_kind(self):
        topo = T.two_tier_tree(4, 2)
        uplinks = [l for l in topo.links() if l.link_kind is LinkKind.UPLINK]
        assert len(uplinks) == 4

    def test_multiple_roots(self):
        topo = T.two_tier_tree(4, 2, num_roots=2)
        assert len(topo.switches(NodeKind.CORE)) == 2

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            T.two_tier_tree(0, 2)


class TestThreeTierTree:
    def test_default_structure(self):
        topo = T.three_tier_tree()
        assert len(topo.switches(NodeKind.CORE)) == 2
        assert len(topo.switches(NodeKind.AGG)) == 4  # 2 pods × 2
        assert len(topo.switches(NodeKind.TOR)) == 16
        assert len(topo.servers()) == 64

    def test_cores_are_ccs(self):
        topo = T.three_tier_tree()
        for core in topo.switches(NodeKind.CORE):
            assert topo.switch_model(core) == "CCS"

    def test_tor_connects_to_all_pod_aggs(self):
        topo = T.three_tier_tree(num_pods=2, aggs_per_pod=2)
        neighbors = set(topo.graph.neighbors("tor0.0"))
        assert {"agg0.0", "agg0.1"} <= neighbors
        assert not {"agg1.0", "agg1.1"} & neighbors

    def test_cross_pod_paths_traverse_core(self):
        topo = T.three_tier_tree()
        path = nx.shortest_path(topo.graph, "h0.0", "h15.0")
        kinds = [topo.kind(n) for n in path if topo.is_switch(n)]
        assert NodeKind.CORE in kinds


class TestFatTree:
    def test_k4_counts(self):
        topo = T.fat_tree(4)
        assert len(topo.switches()) == 20  # 4 cores + 8 aggs + 8 edges
        assert len(topo.servers()) == 16

    def test_odd_k_rejected(self):
        with pytest.raises(ValueError):
            T.fat_tree(5)

    def test_reduced_hosts(self):
        topo = T.fat_tree(4, servers_per_edge=1)
        assert len(topo.servers()) == 8

    def test_too_many_hosts_rejected(self):
        with pytest.raises(ValueError):
            T.fat_tree(4, servers_per_edge=3)

    def test_cross_pod_reachability(self):
        topo = T.fat_tree(4)
        assert nx.has_path(topo.graph, "h0.0", "h7.0")


class TestFoldedClos:
    def test_table9_fat_tree_row(self):
        topo = T.folded_clos(32, 16, 2, 1)
        assert len(topo.switches()) == 48

    def test_parallel_links_fold_into_capacity(self):
        topo = T.folded_clos(4, 2, links_per_pair=2, servers_per_edge=1,
                             fabric_rate=10 * GBPS)
        assert topo.capacity("edge0", "spine0") == 20 * GBPS

    def test_physical_link_count_recorded(self):
        topo = T.folded_clos(4, 2, links_per_pair=2, servers_per_edge=1)
        assert topo.graph.graph["physical_links_per_pair"] == 2


class TestBCube:
    def test_bcube1_counts(self):
        topo = T.bcube(4, 1)
        assert len(topo.servers()) == 16
        assert len(topo.switches()) == 8  # 2 levels × 4

    def test_each_server_has_k_plus_1_nics(self):
        topo = T.bcube(4, 1)
        for server in topo.servers():
            assert topo.graph.degree(server) == 2

    def test_bcube0_is_a_star(self):
        topo = T.bcube(4, 0)
        assert len(topo.switches()) == 1
        assert len(topo.servers()) == 4

    def test_marked_server_centric(self):
        assert T.bcube(4, 1).graph.graph["server_centric"]

    def test_shortest_cross_module_path_relays_through_server(self):
        topo = T.bcube(4, 1)
        # Servers 0 and 5 share no switch; the path relays via a server.
        path = nx.shortest_path(topo.graph, "h0", "h5")
        relays = [n for n in path[1:-1] if topo.is_server(n)]
        assert len(relays) == 1

    def test_invalid_arity(self):
        with pytest.raises(ValueError):
            T.bcube(1, 1)


class TestDCell:
    def test_dcell1_counts(self):
        topo = T.dcell(4, 1)
        assert len(topo.servers()) == 20  # n (n+1)
        assert len(topo.switches()) == 5

    def test_server_count_formula(self):
        assert T.dcell_server_count(4, 1) == 20
        assert T.dcell_server_count(2, 2) == 42

    def test_level_links_join_cells(self):
        topo = T.dcell(3, 1)
        inter = [l for l in topo.links() if l.link_kind is LinkKind.MESH]
        assert len(inter) == 6  # C(4, 2)

    def test_level2_unsupported(self):
        with pytest.raises(ValueError):
            T.dcell(4, 2)


class TestJellyfish:
    def test_regular_degree(self):
        topo = T.jellyfish(16, 4, 2, seed=0)
        for sw in topo.switches():
            random_links = [
                l for l in topo.links()
                if l.link_kind is LinkKind.RANDOM and sw in l.endpoints()
            ]
            assert len(random_links) == 4

    def test_deterministic_per_seed(self):
        a = T.jellyfish(12, 4, 1, seed=3)
        b = T.jellyfish(12, 4, 1, seed=3)
        assert set(a.graph.edges()) == set(b.graph.edges())

    def test_odd_stub_count_rejected(self):
        with pytest.raises(ValueError):
            T.jellyfish(5, 3)

    def test_degree_too_high_rejected(self):
        with pytest.raises(ValueError):
            T.jellyfish(4, 4)


class TestMeshAndQuartz:
    def test_full_mesh_link_count(self):
        topo = T.full_mesh(6, 1)
        mesh = [l for l in topo.links() if l.link_kind is LinkKind.MESH]
        assert len(mesh) == 15

    def test_quartz_ring_equals_mesh_shape(self):
        q = T.quartz_ring(6, 1)
        m = T.full_mesh(6, 1)
        assert nx.is_isomorphic(q.graph, m.graph)

    def test_quartz_dual_tor_topology(self):
        topo = T.quartz_dual_tor(8, servers_per_rack=1)
        # 8-port switches → 4 servers/rack capacity, 9 racks, 18 switches.
        assert len(topo.switches()) == 18
        for server in topo.servers():
            assert topo.graph.degree(server) == 2


class TestComposites:
    def test_quartz_in_core_has_no_ccs(self):
        topo = T.quartz_in_core()
        models = {topo.switch_model(s) for s in topo.switches()}
        assert models == {"ULL"}

    def test_quartz_in_core_ring_is_meshed(self):
        topo = T.quartz_in_core(core_ring_size=4)
        ring = [s for s in topo.switches() if s.startswith("qcore")]
        assert len(ring) == 4
        for i, u in enumerate(ring):
            for v in ring[i + 1 :]:
                assert topo.graph.has_edge(u, v)

    def test_quartz_in_edge_keeps_ccs_core(self):
        topo = T.quartz_in_edge()
        cores = topo.switches(NodeKind.CORE)
        assert cores and all(topo.switch_model(c) == "CCS" for c in cores)

    def test_quartz_in_edge_and_core_all_ull(self):
        topo = T.quartz_in_edge_and_core()
        assert {topo.switch_model(s) for s in topo.switches()} == {"ULL"}

    def test_quartz_in_jellyfish_inter_ring_degree(self):
        topo = T.quartz_in_jellyfish(num_rings=4, inter_ring_links=4, seed=0)
        random_capacity = sum(
            l.capacity for l in topo.links() if l.link_kind is LinkKind.RANDOM
        )
        # 4 rings × 4 links / 2 = 8 inter-ring links of 10 G (possibly
        # folded into fewer edges with added capacity).
        assert random_capacity == 8 * 10 * GBPS

    def test_quartz_in_jellyfish_connected_rings(self):
        topo = T.quartz_in_jellyfish(num_rings=4, seed=1)
        topo.validate()

    def test_odd_inter_ring_stub_rejected(self):
        with pytest.raises(ValueError):
            T.quartz_in_jellyfish(num_rings=3, inter_ring_links=3)

    def test_all_composites_have_64_servers_by_default(self):
        for build in (
            T.quartz_in_core,
            T.quartz_in_edge,
            T.quartz_in_edge_and_core,
            T.quartz_in_jellyfish,
        ):
            assert len(build().servers()) == 64
