"""Tests for topology metrics — the Table 9 reproduction machinery."""

import repro.topology as T


class TestHopCounts:
    def test_mesh_is_two_switch_hops(self):
        topo = T.full_mesh(6, 1)
        assert T.switch_hops(topo, "h0.0", "h5.0") == 2

    def test_same_rack_is_one_hop(self):
        topo = T.full_mesh(4, 2)
        assert T.switch_hops(topo, "h0.0", "h0.1") == 1

    def test_two_tier_is_three_hops(self):
        topo = T.two_tier_tree(4, 2)
        assert T.switch_hops(topo, "h0.0", "h3.0") == 3

    def test_three_tier_worst_case_is_five(self):
        topo = T.three_tier_tree()
        worst = T.worst_case_hop_profile(topo, sample=20)
        assert worst.switch_hops == 5

    def test_bcube_profile(self):
        topo = T.bcube(4, 1)
        profile = T.worst_case_hop_profile(topo)
        assert profile.switch_hops == 2
        assert profile.server_relay_hops == 1

    def test_average_below_worst(self):
        topo = T.three_tier_tree()
        assert T.average_path_length(topo, sample=16) <= 7


class TestPathDiversity:
    def test_table9_values(self):
        assert T.path_diversity(T.full_mesh(33, 1)) == 32
        assert T.path_diversity(T.two_tier_tree(16, 1)) == 1
        assert T.path_diversity(T.folded_clos(32, 16, 2, 1)) == 32
        assert T.path_diversity(T.bcube(8, 1)) == 2

    def test_jellyfish_bounded_by_degree(self):
        topo = T.jellyfish(16, 4, 1, seed=0)
        assert T.path_diversity(topo) <= 4

    def test_explicit_pair(self):
        topo = T.full_mesh(5, 1)
        assert T.path_diversity(topo, "tor0", "tor1") == 4

    def test_needs_two_endpoints(self):
        topo = T.full_mesh(2, 1)
        assert T.path_diversity(topo) == 1


class TestWiringComplexity:
    def test_table9_values(self):
        assert T.wiring_complexity(T.full_mesh(33, 1)) == 528
        assert T.wiring_complexity(T.two_tier_tree(16, 1)) == 16
        # Folded Clos with 2 parallel cables per pair: 32 × 16 × 2.
        assert T.wiring_complexity(T.folded_clos(32, 16, 2, 1)) == 1024

    def test_jellyfish_counts_random_links(self):
        topo = T.jellyfish(24, 20, 1, seed=1)
        assert T.wiring_complexity(topo) == 240

    def test_host_links_do_not_count(self):
        topo = T.full_mesh(3, 5)
        assert T.wiring_complexity(topo) == 3


class TestSummaries:
    def test_summarize_mesh(self):
        row = T.summarize(T.full_mesh(33, 1), hop_sample=33)
        assert row.switch_hops == 2
        assert row.num_switches == 33
        assert row.wiring_complexity == 528
        assert row.path_diversity == 32

    def test_switch_count(self):
        assert T.switch_count(T.three_tier_tree()) == 22


class TestBisectionCapacity:
    def test_mesh_bisection(self):
        from repro.units import GBPS

        topo = T.full_mesh(4, 1, link_rate=10 * GBPS)
        # Cut racks {0,1} | {2,3}: 4 mesh links cross.
        assert T.bisection_capacity(topo) == 4 * 10 * GBPS

    def test_two_tier_counts_half_of_root_links(self):
        from repro.units import GBPS

        topo = T.two_tier_tree(4, 1, uplink_rate=40 * GBPS)
        assert T.bisection_capacity(topo) == 2 * 40 * GBPS
