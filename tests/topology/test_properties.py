"""Property-based invariants of the topology generators."""

import networkx as nx
from hypothesis import given, settings, strategies as st

import repro.topology as T
from repro.topology.base import LinkKind


class TestMeshProperties:
    @given(st.integers(2, 12), st.integers(1, 4))
    @settings(max_examples=20, deadline=None)
    def test_mesh_structure(self, switches, servers):
        topo = T.full_mesh(switches, servers)
        mesh_links = [l for l in topo.links() if l.link_kind is LinkKind.MESH]
        assert len(mesh_links) == switches * (switches - 1) // 2
        assert len(topo.servers()) == switches * servers
        # Every server pair is at most 2 switch hops apart.
        profile = T.worst_case_hop_profile(topo, sample=8)
        assert profile.switch_hops <= 2


class TestTreeProperties:
    @given(st.integers(1, 4), st.integers(1, 4), st.integers(1, 3))
    @settings(max_examples=20, deadline=None)
    def test_three_tier_counts(self, pods, tors, servers):
        topo = T.three_tier_tree(
            num_pods=pods, tors_per_pod=tors, servers_per_tor=servers
        )
        assert len(topo.servers()) == pods * tors * servers
        topo.validate()

    @given(st.integers(1, 8), st.integers(1, 4))
    @settings(max_examples=20, deadline=None)
    def test_two_tier_diameter(self, tors, servers):
        topo = T.two_tier_tree(tors, servers)
        diameter = nx.diameter(topo.graph)
        assert diameter <= 4  # server-tor-root-tor-server


class TestJellyfishProperties:
    @given(st.integers(0, 20))
    @settings(max_examples=15, deadline=None)
    def test_regular_and_connected(self, seed):
        try:
            topo = T.jellyfish(12, 4, 2, seed=seed)
        except ValueError:
            return  # disconnected sample: generator correctly rejects
        sg = topo.switch_graph()
        assert all(d == 4 for _, d in sg.degree())
        assert nx.is_connected(topo.graph)


class TestBCubeProperties:
    @given(st.integers(2, 6), st.integers(0, 1))
    @settings(max_examples=15, deadline=None)
    def test_counts_and_nic_degree(self, n, k):
        topo = T.bcube(n, k)
        assert len(topo.servers()) == n ** (k + 1)
        assert len(topo.switches()) == (k + 1) * n**k
        for server in topo.servers():
            assert topo.graph.degree(server) == k + 1


class TestQuartzCompositeProperties:
    @given(st.integers(2, 4), st.integers(2, 4))
    @settings(max_examples=10, deadline=None)
    def test_quartz_in_edge_connectivity(self, rings, ring_size):
        topo = T.quartz_in_edge(
            num_rings=rings, ring_size=ring_size, servers_per_switch=1
        )
        topo.validate()
        # Intra-ring pairs never need the core.
        path = nx.shortest_path(topo.graph, "h0.0", "h1.0")
        assert all(not n.startswith("core") for n in path)

    @given(st.integers(0, 10))
    @settings(max_examples=10, deadline=None)
    def test_quartz_in_jellyfish_connected(self, seed):
        topo = T.quartz_in_jellyfish(seed=seed)
        topo.validate()


class TestDegradedProperties:
    @given(st.integers(3, 8), st.integers(0, 50))
    @settings(max_examples=20, deadline=None)
    def test_single_mesh_link_removal_keeps_connectivity(self, switches, seed):
        import random

        topo = T.full_mesh(switches, 1)
        rng = random.Random(seed)
        mesh_links = [l for l in topo.links() if l.link_kind is LinkKind.MESH]
        victim = rng.choice(mesh_links)
        degraded = topo.degraded([(victim.u, victim.v)])
        assert nx.is_connected(degraded.graph)
