"""Tests for unit helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.units import (
    GBPS,
    MBPS,
    MICROSECONDS,
    mbps,
    serialization_delay,
    usec,
)


class TestSerialization:
    def test_known_values(self):
        # 400 B at 10 Gbps = 320 ns; 1500 B at 1 Gbps = 12 µs.
        assert serialization_delay(400, 10 * GBPS) == pytest.approx(320e-9)
        assert serialization_delay(1500, 1 * GBPS) == pytest.approx(12e-6)

    def test_zero_rate_rejected(self):
        with pytest.raises(ValueError):
            serialization_delay(100, 0)

    @given(st.floats(1, 1e5), st.floats(1e6, 1e12))
    def test_property_scales_linearly(self, size, rate):
        assert serialization_delay(2 * size, rate) == pytest.approx(
            2 * serialization_delay(size, rate)
        )


class TestReportingHelpers:
    def test_mbps(self):
        assert mbps(200 * MBPS) == pytest.approx(200)

    def test_usec(self):
        assert usec(1.5 * MICROSECONDS) == pytest.approx(1.5)
