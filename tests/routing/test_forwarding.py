"""Tests for forwarding-table compilation and table-driven routing."""

import pytest

import repro.topology as T
from repro.routing import ECMPRouter, RoutingError, VLBRouter
from repro.routing.forwarding import (
    TableDrivenRouter,
    compile_tables,
    total_state,
)
from repro.sim import Network


@pytest.fixture()
def mesh():
    return T.full_mesh(5, 2)


class TestCompilation:
    def test_mesh_tables_are_linear_in_racks(self, mesh):
        tables = compile_tables(mesh, ECMPRouter(mesh))
        # Each ToR holds one entry per foreign rack: the direct channel.
        for table in tables.values():
            assert table.size == 4
            for hops in table.entries.values():
                assert len(hops) == 1

    def test_vlb_tables_hold_detours_too(self, mesh):
        tables = compile_tables(mesh, VLBRouter(mesh))
        # With detour paths compiled in, every foreign rack has the
        # direct hop plus detour first-hops.
        tor0 = tables["tor0"]
        assert all(len(hops) == 4 for hops in tor0.entries.values())

    def test_tree_aggregation_switch_knows_all_racks(self):
        topo = T.three_tier_tree(num_pods=2, tors_per_pod=2, servers_per_tor=2)
        tables = compile_tables(topo, ECMPRouter(topo))
        agg = tables["agg0.0"]
        assert set(agg.entries) == set(topo.racks())

    def test_state_grows_with_path_diversity(self, mesh):
        ecmp_state = total_state(compile_tables(mesh, ECMPRouter(mesh)))
        vlb_state = total_state(compile_tables(mesh, VLBRouter(mesh)))
        assert vlb_state > ecmp_state

    def test_server_relay_paths_rejected(self):
        topo = T.bcube(4, 1)
        with pytest.raises(RoutingError):
            compile_tables(topo, ECMPRouter(topo))


class TestTableDrivenRouting:
    def test_matches_source_routing_on_mesh(self, mesh):
        ecmp = ECMPRouter(mesh)
        driven = TableDrivenRouter(mesh, compile_tables(mesh, ecmp))
        for src, dst in (("h0.0", "h3.1"), ("h2.0", "h4.0"), ("h1.1", "h0.0")):
            assert driven.route(src, dst) == ecmp.route(src, dst)

    def test_intra_rack_delivery(self, mesh):
        driven = TableDrivenRouter(mesh, compile_tables(mesh, ECMPRouter(mesh)))
        assert driven.route("h0.0", "h0.1") == ("h0.0", "tor0", "h0.1")

    def test_tree_paths_are_valid(self):
        topo = T.three_tier_tree(num_pods=2, tors_per_pod=2, servers_per_tor=2)
        driven = TableDrivenRouter(topo, compile_tables(topo, ECMPRouter(topo)))
        path = driven.route("h0.0", "h3.0")
        assert path[0] == "h0.0" and path[-1] == "h3.0"
        for u, v in zip(path, path[1:]):
            assert topo.graph.has_edge(u, v)

    def test_flows_spread_across_ecmp_options(self):
        topo = T.three_tier_tree(num_pods=2, tors_per_pod=2, servers_per_tor=2)
        driven = TableDrivenRouter(topo, compile_tables(topo, ECMPRouter(topo)))
        paths = {driven.route("h0.0", "h3.0", f) for f in range(40)}
        assert len(paths) > 1

    def test_missing_entry_raises(self, mesh):
        tables = compile_tables(mesh, ECMPRouter(mesh))
        tables["tor0"].entries.pop(3)
        driven = TableDrivenRouter(mesh, tables)
        with pytest.raises(RoutingError):
            driven.route("h0.0", "h3.0")

    def test_loop_detected(self, mesh):
        tables = compile_tables(mesh, ECMPRouter(mesh))
        # Sabotage: tor0 → rack 3 points back and forth via tor1.
        tables["tor0"].entries[3] = ("tor1",)
        tables["tor1"].entries[3] = ("tor0",)
        driven = TableDrivenRouter(mesh, tables)
        with pytest.raises(RoutingError, match="loop"):
            driven.route("h0.0", "h3.0")

    def test_drives_the_packet_simulator(self, mesh):
        driven = TableDrivenRouter(mesh, compile_tables(mesh, ECMPRouter(mesh)))
        net = Network(mesh, driven)
        packet = net.send("h0.0", "h4.1", 400)
        net.run()
        assert packet.delivered_at is not None
