"""Tests for demand-aware VLB and per-packet path variation."""

import pytest

import repro.topology as T
from repro.routing import DemandAwareVLBRouter, ECMPRouter
from repro.sim import Network, PoissonSource
from repro.units import GBPS


@pytest.fixture()
def mesh():
    return T.full_mesh(5, 2)


class TestDemandAwareVLB:
    def test_light_pairs_stay_direct(self, mesh):
        matrix = [("h0.0", "h1.0", 1 * GBPS)]
        router = DemandAwareVLBRouter(mesh, matrix)
        weighted = router.weighted_paths("h0.0", "h1.0")
        assert len(weighted) == 1
        assert weighted[0].weight == 1.0

    def test_heavy_pairs_spill(self, mesh):
        matrix = [
            ("h0.0", "h1.0", 10 * GBPS),
            ("h0.1", "h1.1", 10 * GBPS),
        ]
        router = DemandAwareVLBRouter(mesh, matrix)
        weighted = router.weighted_paths("h0.0", "h1.0")
        # 20 G demand over a 10 G channel: k = 0.9 × 10 / 20 = 0.45.
        assert weighted[0].weight == pytest.approx(0.45)
        assert sum(w.weight for w in weighted) == pytest.approx(1.0)

    def test_demand_is_per_direction(self, mesh):
        # Channels are full duplex: 10 G each way fits without spilling.
        matrix = [
            ("h0.0", "h1.0", 9 * GBPS),
            ("h1.1", "h0.1", 9 * GBPS),
        ]
        router = DemandAwareVLBRouter(mesh, matrix)
        assert len(router.weighted_paths("h0.0", "h1.0")) == 1
        assert len(router.weighted_paths("h1.1", "h0.1")) == 1

    def test_pairs_absent_from_matrix_stay_direct(self, mesh):
        router = DemandAwareVLBRouter(mesh, [("h0.0", "h1.0", 50 * GBPS)])
        assert len(router.weighted_paths("h2.0", "h3.0")) == 1

    def test_same_rack_traffic_ignored(self, mesh):
        router = DemandAwareVLBRouter(mesh, [("h0.0", "h0.1", 50 * GBPS)])
        assert router.weighted_paths("h0.0", "h0.1")[0].weight == 1.0

    def test_invalid_target(self, mesh):
        with pytest.raises(ValueError):
            DemandAwareVLBRouter(mesh, [], utilization_target=0.0)


class TestPerPacketPathVariation:
    def test_flow_ids_vary(self, mesh):
        net = Network(mesh, ECMPRouter(mesh))
        seen = set()
        original_send = net.send

        def spy(src, dst, size, flow_id=0, **kwargs):
            seen.add(flow_id)
            return original_send(src, dst, size, flow_id=flow_id, **kwargs)

        net.send = spy
        source = PoissonSource(
            net, "h0.0", "h1.0", rate_pps=100_000, vary_flow_per_packet=True, seed=1
        )
        source.start()
        net.run(until=0.001)
        assert len(seen) == source.packets_sent

    def test_default_is_single_flow(self, mesh):
        net = Network(mesh, ECMPRouter(mesh))
        source = PoissonSource(net, "h0.0", "h1.0", rate_pps=100_000, seed=1)
        source.start()
        net.run(until=0.001)
        # All packets took the same (only) mesh path: one port used.
        assert net.port_utilization("tor0", "tor1", 0.001) > 0
