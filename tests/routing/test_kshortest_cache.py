"""k-shortest-paths routing under the batched route-table cache.

Covers the three contract points for the cached router: path order is
deterministic, cached results equal uncached ones, and the table is
correctly invalidated (and restored) around ``fail_link``/``repair_link``.
"""

import pytest

import repro.topology as T
from repro.cache import configure, reset
from repro.routing import KShortestPathsRouter, RoutingError


@pytest.fixture(autouse=True)
def _fresh_cache(tmp_path):
    configure(directory=str(tmp_path / "store"))
    yield
    reset()


@pytest.fixture
def topo():
    return T.jellyfish(8, 4, 2, seed=1)


def _first_pair(topo):
    servers = topo.servers()
    return servers[0], servers[-1]


class TestDeterminism:
    def test_repeated_calls_identical(self, topo):
        router = KShortestPathsRouter(topo, k=4)
        src, dst = _first_pair(topo)
        first = router.paths(src, dst)
        assert all(router.paths(src, dst) == first for _ in range(3))

    def test_fresh_router_same_order(self, topo):
        src, dst = _first_pair(topo)
        a = KShortestPathsRouter(topo, k=4).paths(src, dst)
        b = KShortestPathsRouter(T.jellyfish(8, 4, 2, seed=1), k=4).paths(src, dst)
        assert a == b

    def test_paths_are_sorted_by_length_and_bounded(self, topo):
        router = KShortestPathsRouter(topo, k=4)
        src, dst = _first_pair(topo)
        paths = router.paths(src, dst)
        assert 1 <= len(paths) <= 4
        lengths = [len(p) for p in paths]
        assert lengths == sorted(lengths)
        assert all(p[0] == src and p[-1] == dst for p in paths)


class TestCacheEquivalence:
    def test_cached_equals_uncached_for_every_pair(self, topo):
        cached_router = KShortestPathsRouter(topo, k=3)
        configure(enabled=False)
        uncached_router = KShortestPathsRouter(topo, k=3)
        servers = topo.servers()
        pairs = [(s, d) for s in servers[:4] for d in servers[-4:] if s != d]
        configure(directory=None)  # re-enable for the cached router
        for src, dst in pairs:
            cached_paths = cached_router.paths(src, dst)
            configure(enabled=False)
            assert uncached_router.paths(src, dst) == cached_paths
            configure(directory=None)

    def test_route_pick_identical_with_and_without_cache(self, topo):
        src, dst = _first_pair(topo)
        with_cache = KShortestPathsRouter(topo, k=4).route(src, dst, flow_id=7)
        configure(enabled=False)
        without = KShortestPathsRouter(topo, k=4).route(src, dst, flow_id=7)
        assert with_cache == without


class TestInvalidation:
    def _cut(self, topo, router, link):
        topo.graph.remove_edge(*link)
        router.invalidate_links([link])

    def _repair(self, topo, router, link, data):
        topo.graph.add_edge(*link, **data)
        router.invalidate_links([link], repaired=True)

    def test_cut_reroutes_around_dead_link(self, topo):
        router = KShortestPathsRouter(topo, k=2)
        src, dst = _first_pair(topo)
        before = router.paths(src, dst)
        shortest = before[0]
        link = (shortest[1], shortest[2])  # a switch hop of the best path
        data = dict(topo.graph.get_edge_data(*link))
        self._cut(topo, router, link)
        after = router._cached_paths(src, dst)
        for path in after:
            hops = list(zip(path, path[1:]))
            assert link not in hops and (link[1], link[0]) not in hops
        self._repair(topo, router, link, data)

    def test_repair_restores_original_paths(self, topo):
        router = KShortestPathsRouter(topo, k=3)
        src, dst = _first_pair(topo)
        before = router._cached_paths(src, dst)
        shortest = before[0]
        link = (shortest[1], shortest[2])
        data = dict(topo.graph.get_edge_data(*link))
        self._cut(topo, router, link)
        assert router._cached_paths(src, dst) != before
        self._repair(topo, router, link, data)
        assert router._cached_paths(src, dst) == before

    def test_unaffected_pairs_survive_a_cut(self, topo):
        router = KShortestPathsRouter(topo, k=2)
        servers = topo.servers()
        src, dst = servers[0], servers[-1]
        before = router._cached_paths(src, dst)
        # Cut a link no cached path crosses: the cached entry survives.
        used = {
            frozenset(hop)
            for path in before
            for hop in zip(path, path[1:])
        }
        link = next(
            (l.u, l.v)
            for l in topo.links()
            if frozenset((l.u, l.v)) not in used
        )
        self._cut(topo, router, link)
        assert (src, dst) in router._cache
        assert router._cached_paths(src, dst) == before

    def test_disconnected_pair_raises(self):
        topo = T.quartz_ring(3, 1)
        router = KShortestPathsRouter(topo, k=2)
        server = topo.servers()[0]
        host_link = (server, topo.tor_of(server))
        topo.graph.remove_edge(*host_link)
        router.invalidate_links([host_link])
        with pytest.raises(RoutingError):
            router._cached_paths(server, topo.servers()[-1])
