"""Tests for the routing engines."""

import pytest

import repro.topology as T
from repro.routing import (
    AdaptiveVLBRouter,
    ECMPRouter,
    KShortestPathsRouter,
    RoutingError,
    SPAINRouter,
    SpanningTreeRouter,
    VLBRouter,
    stable_hash,
)
from repro.units import GBPS


@pytest.fixture()
def mesh():
    return T.full_mesh(5, 2)


@pytest.fixture()
def tree():
    return T.three_tier_tree(num_pods=2, tors_per_pod=2, servers_per_tor=2)


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("a", 1) == stable_hash("a", 1)

    def test_discriminates(self):
        assert stable_hash("a", 1) != stable_hash("a", 2)


class TestECMP:
    def test_mesh_always_uses_direct_path(self, mesh):
        router = ECMPRouter(mesh)
        # "Since there is a single shortest path between any pair of
        # switches in a full mesh, ECMP always selects the direct
        # one-hop path" (Section 3.4).
        for flow in range(10):
            path = router.route("h0.0", "h3.0", flow)
            assert path == ("h0.0", "tor0", "tor3", "h3.0")

    def test_tree_spreads_over_equal_cost_paths(self, tree):
        router = ECMPRouter(tree)
        paths = router.paths("h0.0", "h3.0")
        assert len(paths) > 1
        chosen = {router.route("h0.0", "h3.0", f) for f in range(50)}
        assert len(chosen) > 1

    def test_max_paths_bound(self, tree):
        router = ECMPRouter(tree, max_paths=1)
        assert len(router.paths("h0.0", "h3.0")) == 1

    def test_invalid_max_paths(self, tree):
        with pytest.raises(ValueError):
            ECMPRouter(tree, max_paths=0)

    def test_weighted_paths_even_split(self, tree):
        router = ECMPRouter(tree)
        weighted = router.weighted_paths("h0.0", "h3.0")
        assert sum(w.weight for w in weighted) == pytest.approx(1.0)
        assert len({w.weight for w in weighted}) == 1


class TestVLB:
    def test_paths_direct_first(self, mesh):
        router = VLBRouter(mesh)
        paths = router.paths("h0.0", "h3.0")
        assert paths[0] == ("h0.0", "tor0", "tor3", "h3.0")
        # 3 detours through the other mesh switches.
        assert len(paths) == 4
        assert all(len(p) == 5 for p in paths[1:])

    def test_weights_match_direct_fraction(self, mesh):
        router = VLBRouter(mesh, direct_fraction=0.4)
        weighted = router.weighted_paths("h0.0", "h3.0")
        assert weighted[0].weight == pytest.approx(0.4)
        assert sum(w.weight for w in weighted) == pytest.approx(1.0)
        for detour in weighted[1:]:
            assert detour.weight == pytest.approx(0.6 / 3)

    def test_full_direct_fraction_uses_single_path(self, mesh):
        router = VLBRouter(mesh, direct_fraction=1.0)
        weighted = router.weighted_paths("h0.0", "h3.0")
        assert len(weighted) == 1

    def test_same_rack_short_circuit(self, mesh):
        router = VLBRouter(mesh)
        assert router.paths("h0.0", "h0.1") == [("h0.0", "tor0", "h0.1")]

    def test_route_split_roughly_matches_fraction(self, mesh):
        router = VLBRouter(mesh, direct_fraction=0.5)
        direct = sum(
            1
            for f in range(400)
            if len(router.route("h0.0", "h3.0", f)) == 4
        )
        assert 120 <= direct <= 280  # ~50 % ± sampling noise

    def test_invalid_fraction(self, mesh):
        with pytest.raises(ValueError):
            VLBRouter(mesh, direct_fraction=1.5)

    def test_non_mesh_topology_rejected(self, tree):
        with pytest.raises(RoutingError):
            VLBRouter(tree)

    def test_adaptive_stays_direct_under_light_load(self, mesh):
        router = AdaptiveVLBRouter(mesh, offered_load_bps=1 * GBPS)
        assert router.direct_fraction == 1.0

    def test_adaptive_spills_under_heavy_load(self, mesh):
        # 40 G offered over a 10 G channel at the default 90 % target:
        # k = 0.9 × 10 / 40.
        router = AdaptiveVLBRouter(mesh, offered_load_bps=40 * GBPS)
        assert router.direct_fraction == pytest.approx(0.225)

    def test_adaptive_target_is_configurable(self, mesh):
        router = AdaptiveVLBRouter(
            mesh, offered_load_bps=40 * GBPS, utilization_target=1.0
        )
        assert router.direct_fraction == pytest.approx(0.25)


class TestSpanningTree:
    def test_single_path_per_pair(self, mesh):
        router = SpanningTreeRouter(mesh)
        assert len(router.paths("h0.0", "h3.0")) == 1

    def test_tree_only_uses_root_adjacent_mesh_links(self, mesh):
        router = SpanningTreeRouter(mesh, root="tor0")
        # In a BFS tree rooted at tor0, a path from rack 1 to rack 2
        # detours through the root.
        path = router.route("h1.0", "h2.0")
        assert "tor0" in path

    def test_unknown_root_rejected(self, mesh):
        with pytest.raises(RoutingError):
            SpanningTreeRouter(mesh, root="ghost")


class TestKShortest:
    def test_returns_k_paths(self, mesh):
        router = KShortestPathsRouter(mesh, k=3)
        assert len(router.paths("h0.0", "h3.0")) == 3

    def test_paths_sorted_by_length(self, mesh):
        router = KShortestPathsRouter(mesh, k=4)
        lengths = [len(p) for p in router.paths("h0.0", "h3.0")]
        assert lengths == sorted(lengths)

    def test_invalid_k(self, mesh):
        with pytest.raises(ValueError):
            KShortestPathsRouter(mesh, k=0)


class TestSPAIN:
    def test_one_vlan_per_switch_by_default(self, mesh):
        router = SPAINRouter(mesh)
        assert router.num_vlans == 5

    def test_vlan_selection_changes_path(self, mesh):
        router = SPAINRouter(mesh)
        direct = router.route_on_vlan("h0.0", "h3.0", router.best_vlan("h0.0", "h3.0"))
        assert len(direct) == 4  # two-switch path
        paths = {router.route_on_vlan("h0.0", "h3.0", v) for v in range(5)}
        assert len(paths) > 1

    def test_best_vlan_gives_direct_path(self, mesh):
        router = SPAINRouter(mesh)
        vlan = router.best_vlan("h0.0", "h3.0")
        assert len(router.route_on_vlan("h0.0", "h3.0", vlan)) == 4

    def test_vlan_out_of_range(self, mesh):
        router = SPAINRouter(mesh)
        with pytest.raises(RoutingError):
            router.route_on_vlan("h0.0", "h3.0", 99)

    def test_paths_are_deduplicated(self, mesh):
        router = SPAINRouter(mesh)
        paths = router.paths("h0.0", "h0.1")
        assert len(paths) == len(set(paths))


class TestRouterCaching:
    def test_cache_returns_same_objects(self, mesh):
        router = ECMPRouter(mesh)
        first = router._cached_paths("h0.0", "h3.0")
        second = router._cached_paths("h0.0", "h3.0")
        assert first is second
