"""Run manifests: knob resolution, fault digests, build/validate/render."""

import json

import pytest

from repro import obs
from repro.obs import report
from repro.obs.metrics import MetricsRegistry
from repro.sim.stats import FaultRecorder


@pytest.fixture(autouse=True)
def _disarmed(monkeypatch):
    """Each test starts and ends disarmed, whatever the environment says."""
    monkeypatch.delenv(obs.OBS_ENV, raising=False)
    was_armed = obs.armed()
    obs.disarm()
    yield
    obs.disarm()
    if was_armed:
        obs.arm()


class TestKnobOwnership:
    def test_obs_env_constant_matches_knobs_mirror(self):
        from repro.sim.knobs import OBS_ENV as KNOBS_OBS_ENV

        assert obs.OBS_ENV == KNOBS_OBS_ENV == "REPRO_OBS"


class TestResolvedKnobs:
    def test_defaults_with_empty_environment(self):
        knobs = report.resolved_knobs(environ={})
        assert knobs == {
            "fastpath": True, "batch": True, "telemetry": False,
            "hybrid": True, "parallel": True, "obs": False,
            "scheduler": "heap",
        }

    def test_environment_overrides(self):
        knobs = report.resolved_knobs(
            environ={
                "REPRO_FASTPATH_DISABLE": "1",
                "REPRO_TELEMETRY": "1",
                "REPRO_OBS": "1",
                "REPRO_SCHEDULER": "bucket:1e-6",
            }
        )
        assert knobs["fastpath"] is False
        assert knobs["telemetry"] is True
        assert knobs["obs"] is True
        assert knobs["scheduler"] == "bucket:1e-6"


class TestFaultDigest:
    def test_none_in_none_out(self):
        assert report.fault_digest(None) is None

    def test_digest_counts_kinds_and_hashes_deterministically(self):
        def recorder():
            rec = FaultRecorder()
            rec.log(0.001, "cut", ring=0, segment=2, detail="severed 3")
            rec.log(0.002, "repair", ring=0, segment=2, detail="restored 3")
            rec.log(0.003, "cut", ring=1, segment=0)
            return rec

        digest = report.fault_digest(recorder())
        assert digest["events"] == 3
        assert digest["kinds"] == {"cut": 2, "repair": 1}
        assert digest == report.fault_digest(recorder())  # deterministic

    def test_different_timelines_different_hashes(self):
        a, b = FaultRecorder(), FaultRecorder()
        a.log(0.001, "cut", ring=0, segment=1)
        b.log(0.001, "cut", ring=0, segment=2)
        assert (
            report.fault_digest(a)["sha256"]
            != report.fault_digest(b)["sha256"]
        )


class TestBuildManifest:
    def test_fresh_manifest_validates_and_serializes(self):
        doc = report.build_manifest(environ={})
        assert report.validate_manifest(doc) == []
        json.dumps(doc)  # must not raise

    def test_armed_registry_snapshot_lands_in_metrics(self):
        obs.arm()
        obs.registry().incr("engine.runs", 2)
        doc = report.build_manifest(environ={})
        assert doc["metrics"]["counters"] == {"engine.runs": 2}
        # Programmatic arming must be reported even with REPRO_OBS unset.
        assert doc["knobs"]["obs"] is True

    def test_explicit_metrics_and_seeds_and_extra(self):
        local = MetricsRegistry()
        local.incr("cells", 3)
        doc = report.build_manifest(
            seeds=[3, 1, 1, 2],
            metrics=local.snapshot(),
            extra={"figure": "17"},
            environ={},
        )
        assert doc["seeds"] == [1, 2, 3]
        assert doc["metrics"]["counters"] == {"cells": 3}
        assert doc["extra"] == {"figure": "17"}

    def test_fault_recorder_is_digested(self):
        rec = FaultRecorder()
        rec.log(0.001, "cut", ring=0, segment=1)
        doc = report.build_manifest(faults=rec, environ={})
        assert doc["faults"]["events"] == 1

    def test_write_manifest_round_trips(self, tmp_path):
        path = tmp_path / "manifest.json"
        written = report.write_manifest(path, seeds=[0], environ={})
        loaded = json.loads(path.read_text())
        assert loaded == written
        assert report.validate_manifest(loaded) == []


class TestValidateManifest:
    def test_rejects_non_object(self):
        assert report.validate_manifest([1, 2]) != []

    def test_rejects_wrong_schema_and_missing_keys(self):
        problems = report.validate_manifest({"schema": "bogus/v9"})
        assert any("schema" in p for p in problems)
        assert any("missing key" in p for p in problems)

    def test_rejects_non_boolean_knob(self):
        doc = report.build_manifest(environ={})
        doc["knobs"]["fastpath"] = "yes"
        assert any("knobs.fastpath" in p for p in report.validate_manifest(doc))

    def test_rejects_malformed_metrics(self):
        doc = report.build_manifest(environ={})
        doc["metrics"] = {"counters": {}}
        problems = report.validate_manifest(doc)
        assert any("metrics.gauges" in p for p in problems)
        assert any("metrics.timers" in p for p in problems)


class TestRenderManifest:
    def test_render_mentions_the_essentials(self):
        obs.arm()
        obs.registry().incr("engine.runs")
        obs.registry().observe("engine.run_seconds", 0.5)
        rec = FaultRecorder()
        rec.log(0.001, "cut", ring=0, segment=1)
        doc = report.build_manifest(seeds=[0], faults=rec, environ={})
        text = report.render_manifest(doc)
        assert text.startswith("run manifest (repro.obs.manifest/v1)")
        assert "engine.runs = 1" in text
        assert "engine.run_seconds: count=1" in text
        assert "cut=1" in text
        assert "obs=on" in text
