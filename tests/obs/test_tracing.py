"""Tracer spans and the Chrome trace_event export."""

import json
import os

from repro.obs.tracing import Span, Tracer, export_chrome


class TestTracer:
    def test_add_stamps_pid_and_args(self):
        tracer = Tracer()
        tracer.add("engine.run", 1.0, 0.5, kind="heap", events=42)
        (span,) = tracer.spans
        assert span.name == "engine.run"
        assert span.pid == os.getpid()
        assert span.tid == 0
        assert span.args == {"kind": "heap", "events": 42}

    def test_span_context_manager_times_block(self):
        tracer = Tracer()
        with tracer.span("work", tid=3, label="cell"):
            sum(range(1000))
        (span,) = tracer.spans
        assert span.duration > 0.0
        assert span.tid == 3
        assert span.args == {"label": "cell"}

    def test_span_records_on_exception(self):
        tracer = Tracer()
        try:
            with tracer.span("work"):
                raise ValueError("boom")
        except ValueError:
            pass
        assert len(tracer) == 1

    def test_drain_empties_and_ingest_adopts(self):
        worker = Tracer()
        worker.add("a", 0.0, 1.0)
        worker.add("b", 1.0, 1.0)
        shipped = worker.drain()
        assert len(worker) == 0
        parent = Tracer()
        parent.add("own", 0.0, 0.1)
        parent.ingest(shipped)
        assert [s.name for s in parent.spans] == ["own", "a", "b"]

    def test_max_spans_counts_drops(self):
        tracer = Tracer(max_spans=2)
        for i in range(5):
            tracer.add(f"s{i}", float(i), 0.1)
        assert len(tracer) == 2
        assert tracer.dropped == 3
        tracer.ingest([Span("x", 0.0, 0.1, pid=1)])
        assert tracer.dropped == 4

    def test_spans_are_picklable(self):
        import pickle

        span = Span("a", 0.0, 1.0, pid=7, tid=2, args={"k": 1})
        assert pickle.loads(pickle.dumps(span)) == span


class TestChromeExport:
    def test_complete_events_in_microseconds(self):
        doc = export_chrome([Span("run", 2.0, 0.25, pid=10, tid=1)])
        (event,) = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert event == {
            "name": "run", "ph": "X", "ts": 2e6, "dur": 0.25e6,
            "pid": 10, "tid": 1, "args": {},
        }

    def test_process_metadata_per_pid_with_labels(self):
        spans = [
            Span("a", 0.0, 1.0, pid=10),
            Span("b", 0.0, 1.0, pid=20),
            Span("c", 1.0, 1.0, pid=10),
        ]
        doc = export_chrome(spans, process_labels={10: "coordinator"})
        meta = {
            e["pid"]: e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M"
        }
        assert meta == {10: "coordinator", 20: "worker-20"}

    def test_document_shape_is_json_object_format(self):
        doc = export_chrome([])
        assert doc == {"traceEvents": [], "displayTimeUnit": "ms"}
        json.dumps(doc)  # must not raise
