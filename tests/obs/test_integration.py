"""Armed-vs-disarmed identity and end-to-end span/metric collection.

The contract the whole layer hangs on: arming :mod:`repro.obs` records
counters and spans but changes **no** simulation result — the same
fingerprint contract the fastpath/batch/telemetry/parallel layers obey.
"""

import pytest

import repro.topology as T
from repro import obs
from repro.routing import ECMPRouter
from repro.runner import ExperimentSpec, run_cells
from repro.sim import Network
from repro.sim.parallel import (
    ParallelScenario,
    SourceSpec,
    run_parallel,
    run_serial,
)
from repro.sim.sources import PoissonSource


@pytest.fixture(autouse=True)
def _disarmed(monkeypatch):
    """Tests control arming explicitly; always leave the process clean.

    REPRO_OBS is also scrubbed — a ``Network(obs=None)`` built under an
    armed environment (the CI ``REPRO_OBS=1`` leg) would silently
    re-arm the process mid-test otherwise.
    """
    monkeypatch.delenv(obs.OBS_ENV, raising=False)
    was_armed = obs.armed()
    obs.disarm()
    yield
    obs.disarm()
    if was_armed:
        obs.arm()


def _small_run(obs_flag):
    topo = T.quartz_ring(4, 1)
    net = Network(topo, ECMPRouter(topo), obs=obs_flag)
    source = PoissonSource(
        net, "h0.0", "h2.0", rate_pps=200_000.0, seed=3, group="g"
    )
    source.start()
    net.engine.run(until=0.002)
    return (
        net.packets_delivered,
        net.packets_dropped,
        net.engine.events_processed,
        tuple(net.stats.samples),
    )


class TestFingerprintIdentity:
    def test_armed_run_is_bit_identical(self):
        baseline = _small_run(obs_flag=False)
        obs.arm()
        armed = _small_run(obs_flag=None)  # attaches to the armed process
        assert armed == baseline

    def test_armed_engine_records_runs_and_spans(self):
        obs.arm()
        fingerprint = _small_run(obs_flag=None)
        assert fingerprint[0] > 0
        reg = obs.registry()
        assert reg.counters["engine.runs"] == 1
        assert reg.counters["engine.events.heap"] == fingerprint[2]
        names = {span.name for span in obs.tracer().spans}
        assert "engine.run" in names

    def test_network_obs_false_detaches_while_armed(self):
        obs.arm()
        _small_run(obs_flag=False)
        assert obs.registry().counters.get("fastpath.plan_compiles") is None


def _parallel_scenario():
    return ParallelScenario(
        fabric="quartz-ring",
        fabric_args=(6, 1),
        sources=tuple(
            SourceSpec(
                src=f"h{rack}.0", dst=f"h{(rack + 2) % 6}.0",
                rate_pps=100_000.0, flow_id=rack, seed=rack,
            )
            for rack in range(6)
        ),
        duration=5e-4,
    )


class TestParallelObservation:
    def test_inline_armed_matches_serial_and_collects_window_spans(self):
        scenario = _parallel_scenario()
        serial = run_serial(scenario)
        obs.arm()
        sharded = run_parallel(
            scenario, num_shards=2, mode="inline", parallel=True
        )
        assert sharded.fingerprint() == serial.fingerprint()
        reg = obs.registry()
        assert reg.counters["parallel.runs"] == 1
        assert reg.counters["parallel.windows"] == sharded.windows
        names = {span.name for span in obs.tracer().spans}
        assert {"parallel.window", "parallel.barrier", "engine.run"} <= names
        # Shard spans carry the shard index as their thread lane.
        tids = {
            span.tid for span in obs.tracer().spans
            if span.name == "engine.run"
        }
        assert {0, 1} <= tids

    def test_disarmed_parallel_records_nothing(self):
        run_parallel(
            _parallel_scenario(), num_shards=2, mode="inline", parallel=True
        )
        assert obs.registry() is None
        assert obs.tracer() is None


def _cell(seed):
    return _small_run(obs_flag=None)


class TestSweepObservation:
    def test_run_cells_pool_merges_worker_spans_and_metrics(self):
        cells = [
            ExperimentSpec(_cell, (seed,), label=f"cell-{seed}")
            for seed in range(4)
        ]
        baseline = run_cells(cells, workers=1)
        obs.arm()
        observed = run_cells(cells, workers=2)
        assert observed == baseline  # pool + arming change no result
        reg = obs.registry()
        assert reg.counters["sweep.cells"] == 4
        assert reg.counters["engine.runs"] == 4  # workers shipped theirs home
        cell_spans = [
            s for s in obs.tracer().spans if s.name == "sweep.cell"
        ]
        assert len(cell_spans) == 4
        assert len({span.pid for span in cell_spans}) >= 2  # per-worker lanes
        assert {span.args["label"] for span in cell_spans} == {
            f"cell-{seed}" for seed in range(4)
        }

    def test_serial_run_cells_records_without_pool(self):
        obs.arm()
        run_cells([ExperimentSpec(_cell, (0,))], workers=1)
        reg = obs.registry()
        assert reg.counters["sweep.cells"] == 1
        timer = reg.snapshot()["timers"]["sweep.cell_seconds"]
        assert timer["count"] == 1


class TestSmokeRuntimeKeys:
    def test_timed_run_runtime_shape(self, monkeypatch):
        from repro import smoke

        monkeypatch.setattr(
            smoke, "compute_smoke_metrics", lambda: {"fake.metric": 1}
        )
        metrics, runtime = smoke.timed_run()
        assert metrics == {"fake.metric": 1}
        assert set(runtime) == {
            "runtime.wall_clock_s",
            "runtime.cache_hit_rate",
            "runtime.cache_lookups",
        }
        assert runtime["runtime.wall_clock_s"] > 0.0

    def test_timed_run_merges_into_armed_registry(self, monkeypatch):
        from repro import smoke

        monkeypatch.setattr(
            smoke, "compute_smoke_metrics", lambda: {"fake.metric": 1}
        )
        obs.arm()
        smoke.timed_run()
        assert "smoke.run" in obs.registry().snapshot()["timers"]
