"""MetricsRegistry: recording, snapshots, and cross-worker merging."""

import json

import pytest

from repro.obs.metrics import MetricsRegistry


class TestRecording:
    def test_counters_accumulate(self):
        reg = MetricsRegistry()
        reg.incr("events")
        reg.incr("events", 4)
        reg.incr("cohorts", 2.5)
        assert reg.counters == {"events": 5, "cohorts": 2.5}

    def test_gauges_last_writer_wins(self):
        reg = MetricsRegistry()
        reg.gauge("compute_seconds", 1.0)
        reg.gauge("compute_seconds", 2.0)
        assert reg.gauges == {"compute_seconds": 2.0}

    def test_observe_folds_count_total_max(self):
        reg = MetricsRegistry()
        for value in (3.0, 1.0, 2.0):
            reg.observe("cohort_size", value)
        snap = reg.snapshot()
        assert snap["timers"]["cohort_size"] == {
            "count": 3, "total": 6.0, "max": 3.0,
        }

    def test_timed_records_positive_duration(self):
        reg = MetricsRegistry()
        with reg.timed("block"):
            sum(range(1000))
        timer = reg.snapshot()["timers"]["block"]
        assert timer["count"] == 1
        assert timer["total"] > 0.0
        assert timer["max"] == timer["total"]

    def test_timed_records_on_exception(self):
        reg = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with reg.timed("block"):
                raise RuntimeError("boom")
        assert reg.snapshot()["timers"]["block"]["count"] == 1

    def test_len_counts_all_instruments(self):
        reg = MetricsRegistry()
        assert len(reg) == 0
        reg.incr("a")
        reg.gauge("b", 1.0)
        reg.observe("c", 1.0)
        assert len(reg) == 3


class TestSnapshotAndMerge:
    def test_snapshot_is_json_able_and_detached(self):
        reg = MetricsRegistry()
        reg.incr("a", 2)
        reg.observe("t", 0.5)
        snap = reg.snapshot()
        json.dumps(snap)  # must not raise
        reg.incr("a", 10)
        assert snap["counters"]["a"] == 2  # copy, not a view

    def test_drain_clears_but_stays_usable(self):
        reg = MetricsRegistry()
        reg.incr("a")
        snap = reg.drain()
        assert snap["counters"] == {"a": 1}
        assert len(reg) == 0
        reg.incr("a")
        assert reg.counters["a"] == 1

    def test_merge_snapshot_dict(self):
        parent = MetricsRegistry()
        parent.incr("events", 10)
        parent.observe("cell_seconds", 1.0)
        worker = MetricsRegistry()
        worker.incr("events", 5)
        worker.incr("cohorts", 1)
        worker.observe("cell_seconds", 3.0)
        worker.gauge("hit_rate", 0.5)
        parent.merge(worker.drain())
        snap = parent.snapshot()
        assert snap["counters"] == {"events": 15, "cohorts": 1}
        assert snap["gauges"] == {"hit_rate": 0.5}
        assert snap["timers"]["cell_seconds"] == {
            "count": 2, "total": 4.0, "max": 3.0,
        }

    def test_merge_registry_directly(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.incr("x")
        b.incr("x", 2)
        a.merge(b)
        assert a.counters["x"] == 3

    def test_merge_commutative_over_counters_and_timers(self):
        def worker(seed):
            reg = MetricsRegistry()
            reg.incr("n", seed)
            reg.observe("t", float(seed))
            return reg.snapshot()

        snaps = [worker(s) for s in (1, 2, 3)]
        forward, backward = MetricsRegistry(), MetricsRegistry()
        for snap in snaps:
            forward.merge(snap)
        for snap in reversed(snaps):
            backward.merge(snap)
        fwd, bwd = forward.snapshot(), backward.snapshot()
        assert fwd["counters"] == bwd["counters"]
        assert fwd["timers"] == bwd["timers"]

    def test_merge_into_empty_registry(self):
        reg = MetricsRegistry()
        reg.merge({"counters": {"a": 1}, "timers": {"t": {
            "count": 2, "total": 5.0, "max": 4.0}}})
        snap = reg.snapshot()
        assert snap["counters"] == {"a": 1}
        assert snap["timers"]["t"] == {"count": 2, "total": 5.0, "max": 4.0}
