"""The benchmark-smoke harness: golden comparison and drift detection."""

import json

import pytest

from repro import smoke


@pytest.fixture(scope="module")
def metrics():
    return smoke.compute_smoke_metrics()


class TestMetrics:
    def test_deterministic(self, metrics):
        assert smoke.compute_smoke_metrics() == metrics

    def test_covers_both_cells(self, metrics):
        assert any(key.startswith("fig17.") for key in metrics)
        assert any(key.startswith("fault.") for key in metrics)

    def test_fault_cell_disrupts_traffic(self, metrics):
        assert metrics["fault.channels_severed"] > 0
        assert (
            metrics["fault.packets_dropped"] + metrics["fault.packets_rerouted"] > 0
        )

    def test_json_round_trip_is_lossless(self, metrics):
        assert json.loads(json.dumps(metrics)) == metrics


class TestComparison:
    def test_identical_metrics_match(self, metrics):
        assert smoke.compare_metrics(metrics, metrics) == []

    def test_float_drift_detected(self, metrics):
        drifted = dict(metrics)
        drifted["fig17.mean_latency_us"] *= 1.0 + 1e-6
        problems = smoke.compare_metrics(metrics, drifted)
        assert len(problems) == 1 and "fig17.mean_latency_us" in problems[0]

    def test_tiny_float_noise_tolerated(self, metrics):
        noisy = dict(metrics)
        noisy["fig17.mean_latency_us"] *= 1.0 + 1e-12
        assert smoke.compare_metrics(metrics, noisy) == []

    def test_int_drift_detected(self, metrics):
        drifted = dict(metrics)
        drifted["fault.packets_dropped"] += 1
        assert smoke.compare_metrics(metrics, drifted)

    def test_missing_and_extra_keys_reported(self, metrics):
        current = dict(metrics)
        current.pop("fault.goodput_loss")
        current["brand.new_metric"] = 1
        problems = "\n".join(smoke.compare_metrics(metrics, current))
        assert "missing" in problems and "new metric" in problems


class TestGoldenFile:
    def test_checked_in_golden_matches(self):
        """The repository's golden must match a fresh run — the exact
        check the CI benchmark-smoke job performs."""
        assert smoke.GOLDEN_PATH.exists()
        assert smoke.check() == []

    def test_update_then_check_round_trips(self, tmp_path, metrics):
        path = tmp_path / "golden.json"
        written = smoke.update(path)
        compared = {
            k: v for k, v in written.items() if not k.startswith(smoke.RUNTIME_PREFIX)
        }
        assert compared == metrics
        assert smoke.check(path) == []

    def test_runtime_keys_recorded_but_not_compared(self, tmp_path, metrics):
        path = tmp_path / "golden.json"
        written = smoke.update(path)
        assert "runtime.wall_clock_s" in written
        assert "runtime.cache_hit_rate" in written
        # A wildly different runtime must never fail the check.
        golden = json.loads(path.read_text())
        golden["runtime.wall_clock_s"] = 1e9
        path.write_text(json.dumps(golden))
        assert smoke.check(path) == []

    def test_missing_golden_reported(self, tmp_path):
        problems = smoke.check(tmp_path / "nope.json")
        assert problems and "missing" in problems[0]

    def test_tampered_golden_fails_check(self, tmp_path, metrics):
        path = tmp_path / "golden.json"
        smoke.update(path)
        tampered = dict(metrics)
        tampered["fault.packets_delivered"] += 7
        path.write_text(json.dumps(tampered))
        assert smoke.check(path)


class TestTelemetryVariant:
    @pytest.fixture(scope="class")
    def tele_metrics(self):
        return smoke.compute_telemetry_smoke_metrics()

    def test_base_metrics_unchanged_by_telemetry(self, metrics, tele_metrics):
        """The heart of the opt-in contract: arming monitors + stamping
        for the same cells must not move a single compared metric."""
        for key, value in metrics.items():
            assert tele_metrics[key] == value, key

    def test_telemetry_metrics_present_and_correct(self, tele_metrics):
        assert tele_metrics["telemetry.port_correct"] is True
        assert tele_metrics["telemetry.flow_correct"] is True
        assert tele_metrics["telemetry.windows_contiguous"] is True
        assert tele_metrics["telemetry.bursts_at_culprit"] > 0

    def test_checked_in_telemetry_golden_matches(self):
        """The exact check `make smoke-telemetry` (and its CI leg) runs."""
        assert smoke.GOLDEN_TELEMETRY_PATH.exists()
        assert smoke.check(smoke.GOLDEN_TELEMETRY_PATH, telemetry=True) == []

    def test_telemetry_env_restored_after_run(self, tele_metrics):
        import os

        from repro.telemetry import TELEMETRY_ENV

        assert os.environ.get(TELEMETRY_ENV, "0") in ("", "0", "1")
        # The variant must not leak an armed environment into the
        # process when it started disarmed.
        if os.environ.get(TELEMETRY_ENV) is None:
            smoke.compute_telemetry_smoke_metrics()
            assert TELEMETRY_ENV not in os.environ

    def test_dump_windows_artifact(self, tmp_path):
        out = tmp_path / "windows.json"
        smoke.compute_telemetry_smoke_metrics(dump_windows_to=out)
        dump = json.loads(out.read_text())
        assert dump["ports"]
