"""Background flow/schedule model tests."""

import pytest

from repro.hybrid import (
    BackgroundFlow,
    BackgroundSchedule,
    HybridError,
    random_background_schedule,
)


def bg(fid, start=0.0, stop=1.0, demand=1e9):
    return BackgroundFlow(fid, "a", "b", demand, start, stop)


class TestBackgroundFlow:
    def test_duration(self):
        assert bg(0, 1.0, 3.5).duration == 2.5

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"demand": 0.0},
            {"demand": -1.0},
            {"start": -0.5},
            {"start": 2.0, "stop": 2.0},
            {"start": 2.0, "stop": 1.0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(HybridError):
            bg(0, **kwargs)

    def test_self_loop_rejected(self):
        with pytest.raises(HybridError):
            BackgroundFlow(0, "a", "a", 1e9, 0.0, 1.0)


class TestSchedule:
    def test_duplicate_ids_rejected(self):
        with pytest.raises(HybridError):
            BackgroundSchedule([bg(1), bg(1)])

    def test_boundaries_sorted_unique(self):
        sched = BackgroundSchedule([bg(0, 0.0, 2.0), bg(1, 1.0, 2.0)])
        assert sched.boundaries() == [0.0, 1.0, 2.0]

    def test_active_at_half_open(self):
        sched = BackgroundSchedule([bg(0, 1.0, 2.0)])
        assert sched.active_at(0.5) == []
        assert [f.flow_id for f in sched.active_at(1.0)] == [0]
        assert sched.active_at(2.0) == []  # stop is exclusive

    def test_peak_concurrency(self):
        sched = BackgroundSchedule(
            [bg(0, 0.0, 3.0), bg(1, 1.0, 2.0), bg(2, 1.5, 2.5)]
        )
        assert sched.peak_concurrency() == 3


class TestRandomSchedule:
    SERVERS = [f"h{i}" for i in range(8)]

    def test_deterministic(self):
        a = random_background_schedule(
            self.SERVERS, 20, horizon=1e-3, mean_duration=5e-4,
            demand_bps=1e9, seed=7,
        )
        b = random_background_schedule(
            self.SERVERS, 20, horizon=1e-3, mean_duration=5e-4,
            demand_bps=1e9, seed=7,
        )
        assert [(f.src, f.dst, f.start, f.stop) for f in a] == [
            (f.src, f.dst, f.start, f.stop) for f in b
        ]

    def test_seed_changes_schedule(self):
        a = random_background_schedule(
            self.SERVERS, 20, horizon=1e-3, mean_duration=5e-4,
            demand_bps=1e9, seed=7,
        )
        b = random_background_schedule(
            self.SERVERS, 20, horizon=1e-3, mean_duration=5e-4,
            demand_bps=1e9, seed=8,
        )
        assert [(f.src, f.start) for f in a] != [(f.src, f.start) for f in b]

    def test_flows_well_formed(self):
        sched = random_background_schedule(
            self.SERVERS, 50, horizon=1e-3, mean_duration=5e-4,
            demand_bps=2e9, seed=3,
        )
        assert len(sched) == 50
        for f in sched:
            assert f.src != f.dst
            assert f.src in self.SERVERS and f.dst in self.SERVERS
            assert 0.0 <= f.start < 1e-3
            assert f.stop > f.start
            assert f.flow_id >= 1_000_000

    def test_needs_two_servers(self):
        with pytest.raises(HybridError):
            random_background_schedule(
                ["h0"], 5, horizon=1.0, mean_duration=0.5, demand_bps=1e9
            )
