"""HybridNetwork co-simulation engine tests.

Small fabrics, hand-placed background flows: the assertions pin the
residual handoff (serialization scaling, epoch invalidation), the mode
switch (hybrid vs pure-packet oracle), fault interplay (re-path, park,
re-admit), and bit-identity of the foreground packet schedule across
the reference / fastpath / batched loops under hybrid residuals.
"""

import pytest

import repro.topology as T
from repro.hybrid import (
    BackgroundFlow,
    HybridError,
    HybridNetwork,
)
from repro.routing import ECMPRouter
from repro.sim import PoissonSource
from repro.units import GBPS


def build(flows, topo=None, **kwargs):
    topo = topo if topo is not None else T.quartz_ring(3, 1)
    return HybridNetwork(topo, ECMPRouter(topo), flows, **kwargs)


def one_bg(net_or_topo_servers, demand, start=0.0, stop=1e-3, fid=1_000_000):
    s = net_or_topo_servers
    return BackgroundFlow(fid, s[0], s[1], demand, start, stop)


class TestResidualHandoff:
    def test_residual_scales_serialization(self):
        topo = T.quartz_ring(3, 1)
        servers = topo.servers()
        net = build([one_bg(servers, 5 * GBPS, stop=1e-3)], topo)
        path = net.router.route(servers[0], servers[1])
        net.run(until=5e-4)  # mid-epoch
        for i in range(len(path) - 1):
            assert net.effective_capacity(path[i], path[i + 1]) == pytest.approx(
                5 * GBPS
            )
        net.run(until=2e-3)  # past the flow's stop
        for i in range(len(path) - 1):
            assert net.effective_capacity(path[i], path[i + 1]) == 10 * GBPS

    def test_background_slows_foreground(self):
        topo_a, topo_b = T.quartz_ring(3, 1), T.quartz_ring(3, 1)
        servers = topo_a.servers()
        loaded = build([one_bg(servers, 8 * GBPS)], topo_a)
        idle = build([], topo_b)
        loaded.run(until=1e-4)
        idle.run(until=1e-4)
        pa = loaded.send(servers[0], servers[1], 1500.0, group="fg")
        pb = idle.send(servers[0], servers[1], 1500.0, group="fg")
        loaded.run(until=2e-4)
        idle.run(until=2e-4)
        assert pa.latency > pb.latency

    def test_epoch_boundary_clears_plan_caches(self):
        topo = T.quartz_ring(3, 1)
        servers = topo.servers()
        net = build([one_bg(servers, 5 * GBPS, start=1e-4, stop=2e-4)], topo)
        if not net.fastpath_enabled:
            pytest.skip("plan caches only exist with the compiled fast path")
        net.send(servers[0], servers[1], 1500.0)
        assert net._plans  # compiled by the send
        net.run(until=1.5e-4)  # cross the start boundary
        assert not net._plans
        assert net.residual_epoch >= 1

    def test_unchanged_epoch_keeps_caches_hot(self):
        # A flow that starts and stops touches links both times; but a
        # second solve with nothing changed must not bump residual_epoch.
        topo = T.quartz_ring(3, 1)
        servers = topo.servers()
        net = build([one_bg(servers, 5 * GBPS, stop=1e-4)], topo)
        net.run(until=2e-4)
        assert net.epochs == 2  # start + stop boundaries
        assert net.residual_epoch == 2  # both changed link state

    def test_min_residual_floor_keeps_foreground_moving(self):
        topo = T.quartz_ring(3, 1)
        servers = topo.servers()
        net = build(
            [one_bg(servers, 50 * GBPS)], topo, min_residual_fraction=0.05
        )
        net.run(until=1e-5)
        path = net.router.route(servers[0], servers[1])
        key = (path[0], path[1])
        assert net.effective_capacity(*key) == pytest.approx(0.05 * 10 * GBPS)
        p = net.send(servers[0], servers[1], 1500.0, group="fg")
        net.run(until=1e-3)
        assert p.delivered_at is not None

    def test_timeline_records_changed_links(self):
        topo = T.quartz_ring(3, 1)
        servers = topo.servers()
        net = build([one_bg(servers, 5 * GBPS, stop=1e-4)], topo)
        net.run(until=2e-4)
        assert len(net.residual_timeline) == 2
        t0, changed0 = net.residual_timeline[0]
        t1, changed1 = net.residual_timeline[1]
        assert (t0, t1) == (0.0, 1e-4)
        assert set(changed0) == set(changed1)  # same links restored
        for key, eff in changed0.items():
            assert eff == pytest.approx(5 * GBPS)
        for key, eff in changed1.items():
            assert eff == net._capacity[key]

    def test_timeline_opt_out(self):
        topo = T.quartz_ring(3, 1)
        servers = topo.servers()
        net = build([one_bg(servers, 5 * GBPS)], topo, record_timeline=False)
        net.run(until=1e-4)
        assert net.residual_timeline == []

    def test_background_rates_share_bottleneck(self):
        topo = T.quartz_ring(3, 1)
        servers = topo.servers()
        flows = [
            BackgroundFlow(1_000_000, servers[0], servers[1], 9 * GBPS, 0.0, 1e-3),
            BackgroundFlow(1_000_001, servers[0], servers[1], 9 * GBPS, 0.0, 1e-3),
        ]
        net = build(flows, topo)
        net.run(until=1e-4)
        rates = net.background_rates()
        # Both want 9G through the same 10G server uplink → 5G each.
        assert rates[1_000_000] == pytest.approx(5 * GBPS)
        assert rates[1_000_001] == pytest.approx(5 * GBPS)

    def test_invalid_floor_rejected(self):
        with pytest.raises(HybridError):
            build([], min_residual_fraction=0.0)
        with pytest.raises(HybridError):
            build([], min_residual_fraction=1.0)


class TestModes:
    def test_oracle_mode_materializes_sources(self, monkeypatch):
        monkeypatch.delenv("REPRO_HYBRID_DISABLE", raising=False)
        topo = T.quartz_ring(3, 1)
        servers = topo.servers()
        net = build([one_bg(servers, 1 * GBPS, stop=2e-4)], topo, hybrid=False)
        assert not net.hybrid_enabled
        assert len(net.background_sources) == 1
        net.run(until=5e-4)
        # Background packets really flow (group-separable from foreground).
        assert net.stats.summary("background").count > 0
        with pytest.raises(HybridError):
            net.background_rates()

    def test_env_escape_hatch(self, monkeypatch):
        monkeypatch.setenv("REPRO_HYBRID_DISABLE", "1")
        topo = T.quartz_ring(3, 1)
        servers = topo.servers()
        net = build([one_bg(servers, 1 * GBPS)], topo)
        assert not net.hybrid_enabled
        assert net.background_sources
        # Explicit True still wins over the environment.
        topo2 = T.quartz_ring(3, 1)
        net2 = build([one_bg(topo2.servers(), 1 * GBPS)], topo2, hybrid=True)
        assert net2.hybrid_enabled
        assert not net2.background_sources

    def test_plain_sequence_accepted(self):
        topo = T.quartz_ring(3, 1)
        net = build([one_bg(topo.servers(), 1 * GBPS)], topo)
        assert len(net.background) == 1

    def test_empty_background_is_plain_network(self):
        topo = T.quartz_ring(3, 1)
        servers = topo.servers()
        net = build([], topo)
        p = net.send(servers[0], servers[1], 1500.0)
        net.run()
        assert p.delivered_at is not None
        assert net.epochs == 0


class TestFaultInterplay:
    def test_fail_crossing_link_repaths_background(self):
        topo = T.quartz_ring(4, 1)
        servers = topo.servers()
        net = build([one_bg(servers, 5 * GBPS, stop=1e-2)], topo)
        net.run(until=1e-4)
        (flow, fluid) = net._active_bg[1_000_000]
        # Cut the first inter-switch link on the background's path.
        path = fluid.paths[0].path
        mid = [
            (path[i], path[i + 1])
            for i in range(len(path) - 1)
            if not path[i].startswith("h") and not path[i + 1].startswith("h")
        ]
        u, v = mid[0]
        net.fail_link(u, v)
        assert 1_000_000 in net._active_bg  # re-pathed, not parked
        _, fluid2 = net._active_bg[1_000_000]
        dead = {(u, v), (v, u)}
        for wp in fluid2.paths:
            for i in range(len(wp.path) - 1):
                assert (wp.path[i], wp.path[i + 1]) not in dead

    def test_fail_server_link_parks_then_repair_readmits(self):
        topo = T.quartz_ring(3, 1)
        servers = topo.servers()
        net = build([one_bg(servers, 5 * GBPS, stop=1e-2)], topo)
        net.run(until=1e-4)
        path = net.router.route(servers[0], servers[1])
        u, v = path[0], path[1]  # the only uplink of server 0
        net.fail_link(u, v)
        assert 1_000_000 not in net._active_bg
        assert net.background_unroutable == 1
        assert net.effective_capacity(*(path[1], path[2])) == 10 * GBPS
        net.repair_link(u, v)
        assert 1_000_000 in net._active_bg
        assert net.effective_capacity(u, v) == pytest.approx(5 * GBPS)

    def test_fault_not_crossing_background_is_incremental(self):
        topo = T.quartz_ring(4, 1)
        servers = topo.servers()
        net = build([one_bg(servers, 5 * GBPS, stop=1e-2)], topo)
        net.run(until=1e-4)
        _, fluid = net._active_bg[1_000_000]
        used = {
            (wp.path[i], wp.path[i + 1])
            for wp in fluid.paths
            for i in range(len(wp.path) - 1)
        }
        switches = topo.switches()
        spare = None
        for i in range(len(switches)):
            for j in range(i + 1, len(switches)):
                pair = (switches[i], switches[j])
                if (
                    topo.graph.has_edge(*pair)
                    and pair not in used
                    and (pair[1], pair[0]) not in used
                ):
                    spare = pair
                    break
            if spare:
                break
        assert spare is not None
        incidence_before = net._solver._incidence
        net.fail_link(*spare)
        assert net._solver._incidence is incidence_before  # survived
        assert net.background_rates()[1_000_000] == pytest.approx(5 * GBPS)


class TestBitIdentityAcrossLoops:
    def _foreground_summary(self, monkeypatch, env):
        for name, value in env.items():
            monkeypatch.setenv(name, value)
        topo = T.quartz_ring(3, 1)
        servers = topo.servers()
        flows = [
            BackgroundFlow(1_000_000, servers[0], servers[2], 4 * GBPS, 0.0, 4e-4),
            BackgroundFlow(1_000_001, servers[1], servers[0], 6 * GBPS, 1e-4, 3e-4),
        ]
        net = build(flows, topo)
        src = PoissonSource.at_bandwidth(
            net, servers[0], servers[1], 2 * GBPS, group="fg", seed=11,
            stop_at=4e-4,
        )
        src.start()
        net.run(until=6e-4)
        s = net.stats.summary("fg")
        for name in env:
            monkeypatch.delenv(name)
        return (s.count, s.mean, s.p99, s.maximum)

    def test_reference_fastpath_batched_identical(self, monkeypatch):
        monkeypatch.delenv("REPRO_HYBRID_DISABLE", raising=False)
        batched = self._foreground_summary(monkeypatch, {})
        fastpath = self._foreground_summary(
            monkeypatch, {"REPRO_BATCH_DISABLE": "1"}
        )
        reference = self._foreground_summary(
            monkeypatch, {"REPRO_FASTPATH_DISABLE": "1"}
        )
        assert batched == fastpath == reference
        assert batched[0] > 0
