"""Shared fixtures for the hybrid engine tests.

CI runs the whole suite once with ``REPRO_HYBRID_DISABLE=1`` to prove
the escape hatch is a complete exit.  The tests in this package pin
*hybrid-mode* behavior specifically (residual handoff, epoch caching,
fluid rates), so they must see the knob at its default regardless of
the outer matrix leg — the same convention the fastpath and batch
tests follow for their disable knobs.  Tests that exercise the hatch
itself (``test_env_escape_hatch``) set the variable explicitly on top
of this fixture.
"""

import pytest


@pytest.fixture(autouse=True)
def _hybrid_knob_default(monkeypatch):
    monkeypatch.delenv("REPRO_HYBRID_DISABLE", raising=False)
