"""Tests for synthetic flow traces."""

import random

import pytest
from hypothesis import given, settings, strategies as st

import repro.topology as T
from repro.flowsim import FCTSimulator
from repro.routing import ECMPRouter
from repro.units import GBPS
from repro.workloads.traces import (
    TraceError,
    mean_flow_size,
    sample_flow_size,
    synthetic_flow_trace,
)


class TestSizeSampling:
    def test_websearch_mean_is_megabyte_scale(self):
        mean = mean_flow_size("websearch", samples=20_000, seed=1)
        assert 0.5e6 < mean < 5e6  # published mean ≈ 1.6 MB

    def test_datamining_heavier_tail_than_websearch(self):
        assert mean_flow_size("datamining", seed=1) > mean_flow_size(
            "websearch", seed=1
        )

    def test_datamining_mostly_tiny_flows(self):
        rng = random.Random(2)
        sizes = [sample_flow_size("datamining", rng) for _ in range(5_000)]
        small = sum(1 for s in sizes if s <= 10e3)
        assert small / len(sizes) > 0.6

    def test_uniform_is_constant(self):
        rng = random.Random(0)
        assert sample_flow_size("uniform", rng, uniform_bytes=42.0) == 42.0

    def test_unknown_distribution(self):
        with pytest.raises(TraceError):
            sample_flow_size("pareto9000", random.Random(0))

    @given(st.integers(0, 500))
    @settings(max_examples=30, deadline=None)
    def test_property_sizes_within_distribution_bounds(self, seed):
        rng = random.Random(seed)
        size = sample_flow_size("websearch", rng)
        assert 6e3 <= size <= 30e6


class TestTraceGeneration:
    @pytest.fixture(scope="class")
    def topo(self):
        return T.full_mesh(4, 4, link_rate=10 * GBPS)

    def test_offered_load_calibrated(self, topo):
        flows = synthetic_flow_trace(
            topo, duration=0.5, load_fraction=0.3, line_rate_bps=10 * GBPS,
            seed=3,
        )
        offered = sum(f.size_bytes * 8 for f in flows) / 0.5
        target = 0.3 * 10 * GBPS * 16
        assert offered == pytest.approx(target, rel=0.35)

    def test_arrivals_sorted_and_within_duration(self, topo):
        flows = synthetic_flow_trace(
            topo, 0.1, 0.2, 10 * GBPS, seed=4
        )
        arrivals = [f.arrival for f in flows]
        assert arrivals == sorted(arrivals)
        assert all(0 <= a < 0.1 for a in arrivals)

    def test_no_self_flows(self, topo):
        flows = synthetic_flow_trace(topo, 0.05, 0.2, 10 * GBPS, seed=5)
        assert all(f.src != f.dst for f in flows)

    def test_rack_locality_biases_destinations(self, topo):
        local = synthetic_flow_trace(
            topo, 0.2, 0.2, 10 * GBPS, rack_locality=0.9, seed=6
        )
        remote = synthetic_flow_trace(
            topo, 0.2, 0.2, 10 * GBPS, rack_locality=0.0, seed=6
        )

        def local_share(flows):
            same = sum(1 for f in flows if topo.rack(f.src) == topo.rack(f.dst))
            return same / len(flows)

        assert local_share(local) > local_share(remote) + 0.3

    def test_deterministic(self, topo):
        a = synthetic_flow_trace(topo, 0.05, 0.2, 10 * GBPS, seed=7)
        b = synthetic_flow_trace(topo, 0.05, 0.2, 10 * GBPS, seed=7)
        assert a == b

    def test_invalid_parameters(self, topo):
        with pytest.raises(TraceError):
            synthetic_flow_trace(topo, 0, 0.2, 10 * GBPS)
        with pytest.raises(TraceError):
            synthetic_flow_trace(topo, 1, 0.0, 10 * GBPS)
        with pytest.raises(TraceError):
            synthetic_flow_trace(topo, 1, 0.2, 10 * GBPS, rack_locality=2)


class TestEndToEnd:
    def test_trace_runs_through_fct_simulator(self):
        topo = T.full_mesh(4, 2, link_rate=10 * GBPS)
        flows = synthetic_flow_trace(
            topo, duration=0.02, load_fraction=0.2,
            line_rate_bps=10 * GBPS, distribution="websearch", seed=8,
        )
        sim = FCTSimulator(topo, ECMPRouter(topo))
        done = sim.run(flows)
        assert len(done) == len(flows)
        for completion in done:
            line_floor = completion.size_bytes * 8 / (10 * GBPS)
            assert completion.fct >= line_floor - 1e-9
