"""Tests for the prototype cross-traffic experiment (Section 6.1)."""

import pytest

from repro.topology.base import NodeKind
from repro.units import MBPS
from repro.workloads.crosstraffic import (
    normalized_latency_curve,
    prototype_quartz,
    prototype_tree,
    run_cross_traffic_experiment,
)


class TestPrototypeTopologies:
    def test_quartz_is_full_mesh_of_four(self):
        topo = prototype_quartz()
        switches = topo.switches()
        assert len(switches) == 4
        for i, u in enumerate(switches):
            for v in switches[i + 1 :]:
                assert topo.graph.has_edge(u, v)

    def test_tree_has_one_agg_three_tors(self):
        topo = prototype_tree()
        assert len(topo.switches(NodeKind.AGG)) == 1
        assert len(topo.switches(NodeKind.TOR)) == 3

    def test_both_use_1g_managed_switches(self):
        for topo in (prototype_quartz(), prototype_tree()):
            for sw in topo.switches():
                assert topo.switch_model(sw) == "SF_1G"


class TestExperiment:
    def test_baseline_runs_without_cross_traffic(self):
        result = run_cross_traffic_experiment("quartz", 0.0, num_calls=50)
        assert result.rpc_count == 50
        assert result.mean_rpc_latency > 0

    def test_quartz_faster_than_tree_at_baseline(self):
        quartz = run_cross_traffic_experiment("quartz", 0.0, num_calls=50)
        tree = run_cross_traffic_experiment("tree", 0.0, num_calls=50)
        # Quartz's RPC crosses 2 switches, the tree's 3.
        assert quartz.mean_rpc_latency < tree.mean_rpc_latency

    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError):
            run_cross_traffic_experiment("torus", 0.0)

    def test_tree_latency_rises_more_than_quartz(self):
        # Figure 14's shape at a load level where queueing bites.
        tree = normalized_latency_curve("tree", [600 * MBPS], num_calls=200)
        quartz = normalized_latency_curve("quartz", [600 * MBPS], num_calls=200)
        tree_rise = tree[-1][1]
        quartz_rise = quartz[-1][1]
        assert tree_rise > quartz_rise
        assert quartz_rise < 1.15  # Quartz is essentially unaffected

    def test_curve_starts_at_one(self):
        curve = normalized_latency_curve("quartz", [100 * MBPS], num_calls=50)
        assert curve[0] == (0.0, 1.0)
