"""Tests for the partition/aggregate query workload."""

import pytest

import repro.topology as T
from repro.routing import ECMPRouter
from repro.sim import Network
from repro.workloads.partition_aggregate import (
    PartitionAggregateQuery,
    QueryError,
    QueryTree,
    spread_query_tree,
)


@pytest.fixture()
def net():
    topo = T.quartz_ring(8, 4)
    return Network(topo, ECMPRouter(topo))


@pytest.fixture()
def tree(net):
    return spread_query_tree(net.topo, aggregators=2, workers_per_aggregator=3, seed=1)


class TestQueryTree:
    def test_exchange_count(self, tree):
        # 2 aggregator edges + 6 worker edges → 16 messages per query.
        assert tree.num_exchanges == 16

    def test_duplicate_participants_rejected(self):
        with pytest.raises(QueryError):
            QueryTree("h0", {"h0": ("h1",)})

    def test_empty_aggregators_rejected(self):
        with pytest.raises(QueryError):
            QueryTree("h0", {})

    def test_aggregator_without_workers_rejected(self):
        with pytest.raises(QueryError):
            QueryTree("h0", {"h1": ()})

    def test_spread_needs_enough_servers(self):
        small = T.quartz_ring(2, 1)
        with pytest.raises(QueryError):
            spread_query_tree(small, aggregators=4, workers_per_aggregator=8)


class TestQueryExecution:
    def test_all_queries_complete(self, net, tree):
        job = PartitionAggregateQuery(net, tree, num_queries=25)
        job.start()
        net.run()
        assert job.completed == 25
        assert len(job.completion_times) == 25

    def test_completion_recorded_in_stats(self, net, tree):
        job = PartitionAggregateQuery(net, tree, num_queries=10, group="q")
        job.start()
        net.run()
        assert net.stats.summary("q").count == 10

    def test_query_time_exceeds_two_rtts(self, net, tree):
        # A query is two nested request/response exchanges.
        job = PartitionAggregateQuery(net, tree, num_queries=5)
        job.start()
        net.run()
        one_way = net.send(tree.frontend, next(iter(tree.workers_by_aggregator)), 300)
        net.run()
        assert min(job.completion_times) > 3 * one_way.latency

    def test_deeper_fanout_is_slower(self, net):
        narrow = spread_query_tree(net.topo, 1, 2, seed=2)
        wide = spread_query_tree(net.topo, 2, 8, seed=3)
        job_narrow = PartitionAggregateQuery(net, narrow, num_queries=10, group="n")
        job_wide = PartitionAggregateQuery(net, wide, num_queries=10, group="w")
        job_narrow.start()
        job_wide.start()
        net.run()
        assert net.stats.summary("w").mean > net.stats.summary("n").mean

    def test_zero_queries_rejected(self, net, tree):
        with pytest.raises(QueryError):
            PartitionAggregateQuery(net, tree, num_queries=0)

    def test_quartz_faster_than_tree_for_queries(self):
        results = {}
        for name, topo in (
            ("tree", T.three_tier_tree()),
            ("quartz", T.quartz_in_edge_and_core()),
        ):
            network = Network(topo, ECMPRouter(topo))
            tree_spec = spread_query_tree(topo, 2, 4, seed=4)
            job = PartitionAggregateQuery(network, tree_spec, num_queries=20)
            job.start()
            network.run()
            results[name] = sum(job.completion_times) / len(job.completion_times)
        assert results["quartz"] < results["tree"]
