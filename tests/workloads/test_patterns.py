"""Tests for the traffic-matrix generators."""

import pytest

import repro.topology as T
from repro.units import GBPS
from repro.workloads.patterns import (
    incast,
    pathological_concentration,
    rack_level_shuffle,
    random_permutation,
)


@pytest.fixture()
def topo():
    return T.full_mesh(8, 4)  # 32 servers, 8 racks


class TestRandomPermutation:
    def test_every_server_sends_once(self, topo):
        matrix = random_permutation(topo, demand=GBPS, seed=1)
        senders = [m[0] for m in matrix]
        assert sorted(senders) == sorted(topo.servers())

    def test_every_server_receives_once(self, topo):
        matrix = random_permutation(topo, demand=GBPS, seed=1)
        receivers = [m[1] for m in matrix]
        assert sorted(receivers) == sorted(topo.servers())

    def test_no_self_traffic(self, topo):
        matrix = random_permutation(topo, demand=GBPS, seed=2)
        assert all(src != dst for src, dst, _ in matrix)

    def test_deterministic(self, topo):
        assert random_permutation(topo, GBPS, seed=3) == random_permutation(
            topo, GBPS, seed=3
        )

    def test_needs_two_servers(self):
        tiny = T.full_mesh(2, 0)
        tiny.add_server("h", rack=0)
        tiny.add_link("h", "tor0", GBPS)
        with pytest.raises(ValueError):
            random_permutation(tiny, GBPS)


class TestIncast:
    def test_fan_in_per_receiver(self, topo):
        matrix = incast(topo, demand=GBPS, fan_in=10, seed=1)
        per_receiver: dict[str, int] = {}
        for src, dst, _ in matrix:
            assert src != dst
            per_receiver[dst] = per_receiver.get(dst, 0) + 1
        assert all(count == 10 for count in per_receiver.values())
        assert len(per_receiver) == len(topo.servers())

    def test_senders_distinct_per_receiver(self, topo):
        matrix = incast(topo, demand=GBPS, fan_in=10, seed=2)
        by_receiver: dict[str, list[str]] = {}
        for src, dst, _ in matrix:
            by_receiver.setdefault(dst, []).append(src)
        for senders in by_receiver.values():
            assert len(senders) == len(set(senders))

    def test_too_few_servers_rejected(self):
        small = T.full_mesh(2, 2)
        with pytest.raises(ValueError):
            incast(small, GBPS, fan_in=10)


class TestRackShuffle:
    def test_each_server_sends_to_distinct_racks(self, topo):
        matrix = rack_level_shuffle(topo, demand=GBPS, target_racks=4, seed=1)
        by_sender: dict[str, list[str]] = {}
        for src, dst, _ in matrix:
            by_sender.setdefault(src, []).append(dst)
        for src, dsts in by_sender.items():
            assert len(dsts) == 4
            dst_racks = {topo.rack(d) for d in dsts}
            assert len(dst_racks) == 4
            assert topo.rack(src) not in dst_racks

    def test_needs_enough_racks(self):
        small = T.full_mesh(3, 2)
        with pytest.raises(ValueError):
            rack_level_shuffle(small, GBPS, target_racks=4)


class TestPathological:
    def test_aggregate_demand_preserved(self, topo):
        matrix = pathological_concentration(topo, demand_total=40 * GBPS)
        assert sum(d for _, _, d in matrix) == pytest.approx(40 * GBPS)

    def test_flows_go_rack0_to_rack1(self, topo):
        matrix = pathological_concentration(topo, demand_total=GBPS)
        for src, dst, _ in matrix:
            assert topo.rack(src) == 0
            assert topo.rack(dst) == 1

    def test_explicit_flow_count(self, topo):
        matrix = pathological_concentration(topo, GBPS, num_flows=7)
        assert len(matrix) == 7

    def test_empty_rack_rejected(self, topo):
        with pytest.raises(ValueError):
            pathological_concentration(topo, GBPS, src_rack=99)
