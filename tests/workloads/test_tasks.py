"""Tests for scatter/gather/scatter-gather tasks."""

import pytest

import repro.topology as T
from repro.routing import ECMPRouter
from repro.sim import Network
from repro.units import MBPS
from repro.workloads.tasks import (
    ScatterGatherTask,
    StreamingTask,
    TaskError,
    TaskSpec,
    build_task,
    random_task,
)


@pytest.fixture()
def topo():
    return T.quartz_in_edge_and_core()


@pytest.fixture()
def net(topo):
    return Network(topo, ECMPRouter(topo))


class TestTaskSpec:
    def test_invalid_kind(self):
        with pytest.raises(TaskError):
            TaskSpec("broadcast", "h0.0", ("h1.0",))

    def test_hub_cannot_be_peer(self):
        with pytest.raises(TaskError):
            TaskSpec("scatter", "h0.0", ("h0.0",))

    def test_needs_peers(self):
        with pytest.raises(TaskError):
            TaskSpec("scatter", "h0.0", ())


class TestRandomTask:
    def test_global_placement_unique_participants(self, topo):
        spec = random_task(topo, "scatter", fan=6, seed=1)
        assert len({spec.hub, *spec.peers}) == 7

    def test_localized_placement_within_window(self, topo):
        spec = random_task(topo, "gather", fan=4, seed=2, rack_window=2)
        racks = sorted({topo.rack(s) for s in (spec.hub, *spec.peers)})
        assert racks[-1] - racks[0] <= 1

    def test_deterministic(self, topo):
        assert random_task(topo, "scatter", 5, seed=3) == random_task(
            topo, "scatter", 5, seed=3
        )

    def test_window_too_large(self, topo):
        with pytest.raises(TaskError):
            random_task(topo, "scatter", 4, rack_window=999)

    def test_fan_too_large(self, topo):
        with pytest.raises(TaskError):
            random_task(topo, "scatter", fan=10_000)


class TestStreamingTask:
    def test_scatter_streams_from_hub(self, net, topo):
        spec = random_task(topo, "scatter", fan=4, seed=4)
        task = StreamingTask(net, spec, per_stream_bandwidth_bps=50 * MBPS, group="t")
        task.start()
        net.run(until=0.002)
        assert task.packets_sent > 0
        assert all(s.src == spec.hub for s in task.sources)

    def test_gather_streams_to_hub(self, net, topo):
        spec = random_task(topo, "gather", fan=4, seed=5)
        task = StreamingTask(net, spec, per_stream_bandwidth_bps=50 * MBPS, group="t")
        task.start()
        net.run(until=0.002)
        assert all(s._dsts == [spec.hub] for s in task.sources)
        assert net.stats.summary("t").count > 0

    def test_wrong_kind_rejected(self, net, topo):
        spec = random_task(topo, "scatter_gather", fan=3, seed=6)
        with pytest.raises(TaskError):
            StreamingTask(net, spec, 1 * MBPS)


class TestScatterGatherTask:
    def test_completes_all_rounds(self, net, topo):
        spec = random_task(topo, "scatter_gather", fan=4, seed=7)
        task = ScatterGatherTask(net, spec, rounds=10, group="sg")
        task.start()
        net.run()
        assert task.completed_rounds == 10
        # 10 rounds × 4 peers × 2 directions.
        assert net.stats.summary("sg").count == 80

    def test_rounds_are_sequential(self, net, topo):
        spec = random_task(topo, "scatter_gather", fan=2, seed=8)
        task = ScatterGatherTask(net, spec, rounds=3, group="sg")
        task.start()
        net.run(until=1e-5)
        partial = task.completed_rounds
        net.run()
        assert task.completed_rounds == 3
        assert partial <= 3

    def test_wrong_kind_rejected(self, net, topo):
        spec = random_task(topo, "scatter", fan=3, seed=9)
        with pytest.raises(TaskError):
            ScatterGatherTask(net, spec)

    def test_zero_rounds_rejected(self, net, topo):
        spec = random_task(topo, "scatter_gather", fan=3, seed=10)
        with pytest.raises(TaskError):
            ScatterGatherTask(net, spec, rounds=0)


class TestBuildTask:
    def test_dispatch(self, net, topo):
        streaming = build_task(
            net, random_task(topo, "scatter", 3, seed=11), 10 * MBPS
        )
        sg = build_task(
            net, random_task(topo, "scatter_gather", 3, seed=12), 10 * MBPS
        )
        assert isinstance(streaming, StreamingTask)
        assert isinstance(sg, ScatterGatherTask)
