"""Tests for the queueing-theory reference formulas."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.queueing import (
    QueueingError,
    erlang_c,
    md1_mean_sojourn,
    md1_mean_wait,
    mg1_mean_wait,
    mm1_mean_queue_length,
    mm1_mean_sojourn,
    mm1_mean_wait,
)


class TestMM1:
    def test_known_value(self):
        # λ=5, µ=10 → W_q = 0.5 / 5 = 0.1, T = 0.2, L = 1.
        assert mm1_mean_wait(5, 10) == pytest.approx(0.1)
        assert mm1_mean_sojourn(5, 10) == pytest.approx(0.2)
        assert mm1_mean_queue_length(5, 10) == pytest.approx(1.0)

    def test_unstable_rejected(self):
        with pytest.raises(QueueingError):
            mm1_mean_wait(10, 10)

    def test_invalid_rates_rejected(self):
        with pytest.raises(QueueingError):
            mm1_mean_wait(-1, 10)

    @given(st.floats(0.01, 0.95))
    def test_littles_law(self, rho):
        mu = 10.0
        lam = rho * mu
        assert mm1_mean_queue_length(lam, mu) == pytest.approx(
            lam * mm1_mean_sojourn(lam, mu)
        )


class TestMD1:
    def test_md1_is_half_of_mm1_wait(self):
        # Deterministic service halves the queueing delay.
        lam, service = 5.0, 0.1
        assert md1_mean_wait(lam, service) == pytest.approx(
            mm1_mean_wait(lam, 1 / service) / 2
        )

    def test_sojourn_adds_service(self):
        assert md1_mean_sojourn(5, 0.1) == pytest.approx(md1_mean_wait(5, 0.1) + 0.1)

    def test_mg1_reduces_to_md1_at_zero_variance(self):
        assert mg1_mean_wait(5, 0.1, 0.0) == pytest.approx(md1_mean_wait(5, 0.1))

    def test_mg1_reduces_to_mm1_at_exponential_variance(self):
        # Exponential service: variance = mean².
        assert mg1_mean_wait(5, 0.1, 0.01) == pytest.approx(mm1_mean_wait(5, 10))

    def test_invalid_inputs(self):
        with pytest.raises(QueueingError):
            md1_mean_wait(5, 0)
        with pytest.raises(QueueingError):
            mg1_mean_wait(5, 0.1, -1)


class TestErlangC:
    def test_single_server_equals_utilization(self):
        # For c=1, P(wait) = ρ.
        assert erlang_c(1, 0.6) == pytest.approx(0.6)

    def test_more_servers_less_queueing(self):
        assert erlang_c(4, 2.0) < erlang_c(2, 1.0) * 2

    def test_bounds(self):
        p = erlang_c(8, 4.0)
        assert 0.0 < p < 1.0

    def test_invalid(self):
        with pytest.raises(QueueingError):
            erlang_c(0, 1.0)
        with pytest.raises(QueueingError):
            erlang_c(2, 2.0)
