"""Tests for the analytical latency model (Tables 2 and 9)."""

import pytest

import repro.topology as T
from repro.analysis.latency import (
    STANDARD,
    STATE_OF_THE_ART,
    end_to_end_latency,
    path_latency,
    table9_latency,
)
from repro.topology.metrics import HopProfile, worst_case_hop_profile
from repro.units import MICROSECONDS


class TestTable9Formula:
    def test_two_tier_tree_is_1_5us(self):
        assert table9_latency(HopProfile(3, 0)) == pytest.approx(1.5 * MICROSECONDS)

    def test_mesh_is_1_0us(self):
        assert table9_latency(HopProfile(2, 0)) == pytest.approx(1.0 * MICROSECONDS)

    def test_bcube_is_16us(self):
        assert table9_latency(HopProfile(2, 1)) == pytest.approx(16 * MICROSECONDS)

    def test_matches_measured_topologies(self):
        mesh_profile = worst_case_hop_profile(T.full_mesh(8, 1))
        assert table9_latency(mesh_profile) == pytest.approx(1.0 * MICROSECONDS)
        bcube_profile = worst_case_hop_profile(T.bcube(4, 1))
        assert table9_latency(bcube_profile) == pytest.approx(16 * MICROSECONDS)


class TestPathLatency:
    def test_quartz_two_ull_hops(self):
        topo = T.full_mesh(4, 1)
        latency = path_latency(topo, "h0.0", "h3.0")
        assert latency == pytest.approx(2 * 380e-9)

    def test_three_tier_includes_core(self):
        topo = T.three_tier_tree()
        latency = path_latency(topo, "h0.0", "h15.0")
        # 4 ULL hops + 1 CCS hop.
        assert latency == pytest.approx(4 * 380e-9 + 6e-6)

    def test_bcube_includes_server_relay(self):
        topo = T.bcube(4, 1)
        latency = path_latency(topo, "h0", "h5")
        assert latency == pytest.approx(2 * 380e-9 + 15e-6)


class TestComponentStacks:
    def test_standard_stack_dominated_by_hosts(self):
        total = end_to_end_latency(1.5 * MICROSECONDS, STANDARD)
        assert total == pytest.approx((1.5 + 30 + 34 + 50) * MICROSECONDS)

    def test_state_of_the_art_is_order_of_magnitude_lower(self):
        standard = end_to_end_latency(1.5 * MICROSECONDS, STANDARD)
        modern = end_to_end_latency(1.5 * MICROSECONDS, STATE_OF_THE_ART)
        assert standard / modern > 10
