"""Tests for the element-scaling analysis (Sections 3.2 / 8)."""

import pytest

from repro.analysis.scaling import (
    ScalingError,
    element_scale,
    format_scaling_table,
    scaling_table,
)


class TestCanonicalSizes:
    def test_64_port_element(self):
        scale = element_scale(64)
        assert scale.ring_size == 33
        assert scale.total_server_ports == 1056
        assert scale.fibre_rings == 2

    def test_single_fibre_cap_is_35(self):
        scale = element_scale(128, allow_parallel_rings=False)
        assert scale.ring_size == 35
        assert scale.wavelength_limited

    def test_small_switch_not_wavelength_limited(self):
        scale = element_scale(32, allow_parallel_rings=False)
        assert scale.ring_size == 17
        assert not scale.wavelength_limited

    def test_dual_tor_scales_racks(self):
        scale = element_scale(64, switches_per_rack=2)
        assert scale.ring_size == 130  # 65 racks × 2 switches
        assert scale.total_server_ports == 2080


class TestMonotonicity:
    def test_bigger_switches_bigger_elements(self):
        rows = scaling_table()
        ports = [r.total_server_ports for r in rows]
        assert ports == sorted(ports)
        # The paper's point: scalability grows superlinearly in port
        # count (quadratic in the half-split).
        assert rows[-1].total_server_ports > 4 * rows[-3].total_server_ports

    def test_wavelengths_grow_quadratically(self):
        small = element_scale(32)
        large = element_scale(64)
        assert large.wavelengths > 3 * small.wavelengths


class TestValidation:
    def test_odd_ports_rejected(self):
        with pytest.raises(ScalingError):
            element_scale(63)

    def test_tiny_switch_rejected(self):
        with pytest.raises(ScalingError):
            element_scale(2)

    def test_format(self):
        text = format_scaling_table(scaling_table((16, 64)))
        assert "1056" in text
