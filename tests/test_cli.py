"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestPlanCommand:
    def test_summary_output(self, capsys):
        assert main(["plan", "--ring-size", "8"]) == 0
        out = capsys.readouterr().out
        assert "wavelengths (greedy):  9" in out
        assert "fits one fibre (160 ch): yes" in out

    def test_json_output_parses(self, capsys):
        assert main(["plan", "--ring-size", "6", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ring_size"] == 6

    def test_ilp_method(self, capsys):
        assert main(["plan", "--ring-size", "5", "--method", "ilp"]) == 0
        assert "wavelengths (ilp)" in capsys.readouterr().out

    def test_ilp_too_large_rejected(self, capsys):
        assert main(["plan", "--ring-size", "20", "--method", "ilp"]) == 2
        assert "small rings" in capsys.readouterr().err

    def test_too_small_ring_rejected(self, capsys):
        assert main(["plan", "--ring-size", "1"]) == 2

    def test_over_fibre_limit_flagged(self, capsys):
        assert main(["plan", "--ring-size", "36"]) == 0
        assert "fits one fibre (160 ch): NO" in capsys.readouterr().out


class TestDesignCommand:
    def test_prints_table8(self, capsys):
        assert main(["design"]) == 0
        out = capsys.readouterr().out
        assert "two-tier tree" in out
        assert "Quartz in edge and core" in out


class TestTopologyCommand:
    def test_mesh_metrics(self, capsys):
        assert main(["topology", "--name", "mesh"]) == 0
        out = capsys.readouterr().out
        assert "worst-case switch hops:  2" in out
        assert "path diversity:          32" in out

    def test_bcube_shows_server_relays(self, capsys):
        assert main(["topology", "--name", "bcube"]) == 0
        assert "server relay hops:       1" in capsys.readouterr().out

    def test_unknown_name_rejected(self):
        with pytest.raises(SystemExit):
            main(["topology", "--name", "torus"])


class TestExperimentCommand:
    def test_figure_10(self, capsys):
        assert main(["experiment", "--figure", "10"]) == 0
        assert "normalized throughput" in capsys.readouterr().out

    def test_figure_20(self, capsys):
        assert main(["experiment", "--figure", "20"]) == 0
        assert "quartz-vlb" in capsys.readouterr().out


class TestScalingCommand:
    def test_default_sweep(self, capsys):
        assert main(["scaling"]) == 0
        out = capsys.readouterr().out
        assert "1056" in out  # the 64-port element

    def test_custom_ports(self, capsys):
        assert main(["scaling", "--ports", "32", "64"]) == 0
        assert "1056" in capsys.readouterr().out

    def test_invalid_port_count(self, capsys):
        assert main(["scaling", "--ports", "7"]) == 2

    def test_greedy_method(self, capsys):
        assert main(["scaling", "--ports", "16", "--method", "greedy"]) == 0
        out = capsys.readouterr().out
        assert "racks" in out


class TestCacheCommand:
    @pytest.fixture(autouse=True)
    def _isolated_cache(self, tmp_path, monkeypatch):
        from repro.cache import configure, reset

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "store"))
        configure(directory=str(tmp_path / "store"))
        yield
        reset()

    def test_stats_text(self, capsys):
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "hit_rate" in out and "disk_entries" in out

    def test_stats_json(self, capsys):
        assert main(["cache", "stats", "--json"]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["enabled"] is True
        assert "misses" in info and "disk_bytes" in info

    def test_clear_removes_disk_entries(self, capsys):
        from repro.core.channels import greedy_assignment

        greedy_assignment(9)  # populate the store
        assert main(["cache", "stats", "--json"]) == 0
        before = json.loads(capsys.readouterr().out)
        assert before["disk_entries"] > 0
        assert main(["cache", "clear"]) == 0
        assert "removed" in capsys.readouterr().out
        assert main(["cache", "stats", "--json"]) == 0
        after = json.loads(capsys.readouterr().out)
        assert after["disk_entries"] == 0

    def test_subcommand_required(self):
        with pytest.raises(SystemExit):
            main(["cache"])


class TestExpandCommand:
    def test_expansion_report(self, capsys):
        assert main(["expand", "--from-size", "8", "--to-size", "12"]) == 0
        out = capsys.readouterr().out
        assert "preserved:     28 channels" in out
        assert "fits one fibre (160 ch): yes" in out

    def test_shrink_rejected(self, capsys):
        assert main(["expand", "--from-size", "12", "--to-size", "8"]) == 2

    def test_tiny_start_rejected(self, capsys):
        assert main(["expand", "--from-size", "1", "--to-size", "8"]) == 2


class TestParser:
    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])


class TestSmokeCommand:
    def test_update_then_check_round_trips(self, tmp_path, capsys):
        golden = str(tmp_path / "golden.json")
        assert main(["smoke", "--update", "--golden", golden]) == 0
        assert "golden updated" in capsys.readouterr().out
        assert main(["smoke", "--check", "--golden", golden]) == 0
        assert "benchmark smoke OK" in capsys.readouterr().out

    def test_drifted_golden_fails(self, tmp_path, capsys):
        golden = tmp_path / "golden.json"
        assert main(["smoke", "--update", "--golden", str(golden)]) == 0
        capsys.readouterr()
        doc = json.loads(golden.read_text())
        doc["fault.packets_delivered"] += 1
        golden.write_text(json.dumps(doc))
        assert main(["smoke", "--check", "--golden", str(golden)]) == 1
        err = capsys.readouterr().err
        assert "drift" in err and "fault.packets_delivered" in err

    def test_missing_golden_fails_with_hint(self, tmp_path, capsys):
        assert main(["smoke", "--golden", str(tmp_path / "no.json")]) == 1
        assert "--update" in capsys.readouterr().err

    def test_runtime_line_printed(self, tmp_path, capsys):
        golden = str(tmp_path / "golden.json")
        assert main(["smoke", "--update", "--golden", golden]) == 0
        out = capsys.readouterr().out
        assert "wall-clock" in out and "cache hit-rate" in out
        assert main(["smoke", "--check", "--golden", golden]) == 0
        out = capsys.readouterr().out
        assert "wall-clock" in out and "cache hit-rate" in out


class TestManifestOption:
    def test_smoke_update_writes_valid_manifest(self, tmp_path, capsys):
        from repro.obs.report import validate_manifest

        golden = str(tmp_path / "golden.json")
        manifest = tmp_path / "manifest.json"
        assert main(
            ["smoke", "--update", "--golden", golden,
             "--manifest", str(manifest)]
        ) == 0
        assert "run manifest written" in capsys.readouterr().out
        doc = json.loads(manifest.read_text())
        assert validate_manifest(doc) == []
        assert doc["extra"]["command"] == "smoke"
        assert "runtime.wall_clock_s" in doc["extra"]

    def test_experiment_manifest_records_figure(self, tmp_path, capsys):
        manifest = tmp_path / "manifest.json"
        assert main(
            ["experiment", "--figure", "10", "--manifest", str(manifest)]
        ) == 0
        doc = json.loads(manifest.read_text())
        assert doc["extra"] == {"command": "experiment", "figure": "10"}
        assert doc["seeds"] == [0]


class TestTraceCommand:
    def test_writes_chrome_trace_spanning_all_subsystems(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert main(["trace", "--out", str(out), "--workers", "1"]) == 0
        stdout = capsys.readouterr().out
        assert "trace written" in stdout
        doc = json.loads(out.read_text())
        assert doc["displayTimeUnit"] == "ms"
        names = {ev["name"] for ev in doc["traceEvents"] if ev["ph"] == "X"}
        assert {"engine.run", "sweep.cell", "hybrid.epoch",
                "parallel.window", "parallel.barrier"} <= names
        labels = {
            ev["args"]["name"] for ev in doc["traceEvents"]
            if ev["ph"] == "M"
        }
        assert "coordinator" in labels

    def test_rejects_nonpositive_workers(self, tmp_path, capsys):
        assert main(
            ["trace", "--out", str(tmp_path / "t.json"), "--workers", "0"]
        ) == 2
        assert "workers" in capsys.readouterr().err


class TestReportCommand:
    def test_renders_fresh_manifest_without_path(self, capsys):
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("run manifest (repro.obs.manifest/v1)")

    def test_renders_manifest_file_and_json_mode(self, tmp_path, capsys):
        from repro.obs.report import write_manifest

        path = tmp_path / "m.json"
        write_manifest(path, seeds=[7])
        assert main(["report", str(path)]) == 0
        assert "seeds     [7]" in capsys.readouterr().out
        assert main(["report", str(path), "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["seeds"] == [7]

    def test_invalid_manifest_rejected(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "bogus/v9"}))
        assert main(["report", str(bad)]) == 1
        assert "schema" in capsys.readouterr().err

    def test_missing_file_rejected(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "no.json")]) == 2
        assert "cannot read" in capsys.readouterr().err


class TestTrajectoryCommand:
    def _write_rows(self, path):
        rows = [
            {"commit": "aaaaaaaa" * 5, "recorded_at": "2026-01-01T00:00:00",
             "metrics": {"engine_events_per_sec_batched": 1_000_000}},
            {"commit": "bbbbbbbb" * 5, "recorded_at": "2026-02-01T00:00:00",
             "metrics": {"engine_events_per_sec_batched": 1_500_000}},
        ]
        path.write_text("".join(json.dumps(r) + "\n" for r in rows))

    def test_sparkline_and_change_printed(self, tmp_path, capsys):
        log = tmp_path / "trajectory.jsonl"
        self._write_rows(log)
        assert main(["trajectory", "--file", str(log)]) == 0
        out = capsys.readouterr().out
        assert "engine_events_per_sec_batched" in out
        assert "+50.0%" in out
        assert "aaaaaaa" in out and "bbbbbbb" in out

    def test_unknown_metric_lists_known_keys(self, tmp_path, capsys):
        log = tmp_path / "trajectory.jsonl"
        self._write_rows(log)
        assert main(
            ["trajectory", "--file", str(log), "--metric", "nope"]
        ) == 2
        assert "engine_events_per_sec_batched" in capsys.readouterr().err

    def test_missing_file_hints_at_make_target(self, tmp_path, capsys):
        assert main(["trajectory", "--file", str(tmp_path / "no.jsonl")]) == 2
        assert "bench-trajectory" in capsys.readouterr().err


class TestFaultRecoveryParser:
    def test_figure_choice_and_options_parse(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["experiment", "--figure", "fault-recovery",
             "--router", "vlb", "--seed", "3", "--workers", "2"]
        )
        assert args.figure == "fault-recovery"
        assert args.router == "vlb" and args.seed == 3 and args.workers == 2


class TestQueueDiagnosisCommand:
    def test_runs_and_prints_scorecard(self, capsys):
        assert main(["experiment", "--figure", "queue-diagnosis", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "Queue diagnosis" in out
        assert "tor1->h1.0" in out
        assert "port  precision" in out and "flow  precision" in out

    def test_parser_accepts_options(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["experiment", "--figure", "queue-diagnosis", "--router", "vlb"]
        )
        assert args.figure == "queue-diagnosis"
        assert args.router == "vlb"


class TestTelemetrySmokeCommand:
    def test_update_then_check_round_trips(self, tmp_path, capsys):
        golden = str(tmp_path / "golden.json")
        assert main(["smoke", "--update", "--telemetry", "--golden", golden]) == 0
        out = capsys.readouterr().out
        assert "golden updated" in out and "telemetry.port_correct = True" in out
        assert main(["smoke", "--check", "--telemetry", "--golden", golden]) == 0
        assert "benchmark smoke OK" in capsys.readouterr().out

    def test_dump_windows_writes_artifact(self, tmp_path, capsys):
        golden = str(tmp_path / "golden.json")
        dump = tmp_path / "windows.json"
        assert main(
            ["smoke", "--update", "--telemetry", "--golden", golden,
             "--dump-windows", str(dump)]
        ) == 0
        doc = json.loads(dump.read_text())
        assert doc["ports"]

    def test_dump_windows_requires_telemetry(self, tmp_path, capsys):
        assert main(
            ["smoke", "--check", "--dump-windows", str(tmp_path / "w.json")]
        ) == 2
        assert "--telemetry" in capsys.readouterr().err
