"""Tests for the latency-decomposition experiment."""

import pytest

from repro.experiments.breakdown import (
    breakdown_table,
    format_breakdown_table,
    latency_breakdown,
)


class TestLatencyBreakdownExperiment:
    def test_components_positive_and_consistent(self):
        b = latency_breakdown("quartz in edge and core", duration=0.002)
        assert b.total > 0
        assert b.switching > 0
        assert b.serialization > 0
        assert b.propagation > 0
        assert b.total == pytest.approx(
            b.serialization + b.switching + b.queueing + b.propagation
        )

    def test_tree_switching_includes_ccs(self):
        b = latency_breakdown("three-tier tree", duration=0.002)
        assert b.switching > 6e-6

    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError):
            latency_breakdown("moebius strip")

    def test_table_and_format(self):
        table = breakdown_table(
            ["three-tier tree", "quartz in edge and core"], duration=0.002
        )
        text = format_breakdown_table(table)
        assert "three-tier tree" in text
        assert "switch" in text
