"""Microburst detection and flow attribution over synthetic monitors."""

from repro.telemetry import (
    Diagnosis,
    TelemetryConfig,
    TelemetryHub,
    detect_microbursts,
    diagnose,
    rank_flows,
    top_flow,
)

HOT = ("tor0", "h0.0")
COLD = ("tor1", "h1.0")


def hub_with_incast():
    """One hot port (flow "heavy" dominating window 1) and one cold port."""
    hub = TelemetryHub(TelemetryConfig(window=1.0))
    # Background trickle on both ports, every window.
    for key in (HOT, COLD):
        for k in range(4):
            hub.on_enqueue(key, "bg", 10, k + 0.1, k + 0.1, k + 0.2)
    # The burst: ten deep back-to-back arrivals on the hot port in
    # window 1, flow "heavy" carrying most of the bytes.
    busy = 1.0
    for i in range(10):
        arrival = 1.0 + 0.01 * i
        start = max(arrival, busy)
        busy = start + 0.05
        flow = "heavy" if i < 8 else "light"
        hub.on_enqueue(HOT, flow, 400, arrival, start, busy)
    return hub


class TestRanking:
    def test_rank_flows_by_occupancy(self):
        hub = hub_with_incast()
        peak = hub.monitors[HOT].peak_window
        ranked = rank_flows(peak)
        assert ranked[0][0] == "heavy"
        assert ranked == sorted(ranked, key=lambda kv: (-kv[1], kv[0]))

    def test_rank_ties_break_on_label(self):
        hub = TelemetryHub(TelemetryConfig(window=1.0))
        hub.on_enqueue(HOT, "b", 100, 0.1, 0.1, 0.2)
        hub.on_enqueue(HOT, "a", 100, 0.3, 0.3, 0.4)
        (win,) = hub.monitors[HOT].windows()
        assert [f for f, _ in rank_flows(win)] == ["a", "b"]

    def test_top_flow_empty_window_is_none(self):
        hub = TelemetryHub(TelemetryConfig(window=1.0))
        hub.on_drop(HOT, "a", 0.5)  # drop-only window: no occupancy
        (win,) = hub.monitors[HOT].windows()
        assert top_flow(win) is None


class TestMicrobursts:
    def test_deep_window_detected(self):
        hub = hub_with_incast()
        bursts = detect_microbursts(hub, min_depth=8)
        assert any(b.port == HOT and b.window.index == 1 for b in bursts)

    def test_quiet_port_stays_quiet(self):
        hub = hub_with_incast()
        bursts = detect_microbursts(hub, min_depth=8, occupancy_factor=1e9)
        assert all(b.port != COLD for b in bursts)

    def test_occupancy_factor_triggers_without_depth(self):
        hub = hub_with_incast()
        # Depth gate unreachable: only the occupancy spike can fire.
        bursts = detect_microbursts(hub, min_depth=10**6, occupancy_factor=3.0)
        assert any(b.port == HOT and b.window.index == 1 for b in bursts)

    def test_ordered_by_port_then_window(self):
        bursts = detect_microbursts(hub_with_incast(), min_depth=1)
        order = [(b.port, b.window.index) for b in bursts]
        assert order == sorted(order)

    def test_burst_span_properties(self):
        hub = hub_with_incast()
        burst = next(
            b for b in detect_microbursts(hub, min_depth=8) if b.window.index == 1
        )
        assert burst.start == 1.0
        assert burst.end == 2.0
        assert burst.peak_depth >= 8
        assert burst.occupancy > 0.0


class TestDiagnosis:
    def test_localizes_port_and_flow(self):
        report = diagnose(hub_with_incast())
        assert report.culprit_port == HOT
        assert report.culprit_flow == "heavy"

    def test_ports_ranked_by_total_occupancy(self):
        report = diagnose(hub_with_incast())
        occupancies = [occ for _, occ in report.ports]
        assert occupancies == sorted(occupancies, reverse=True)
        assert report.ports[0][0] == HOT

    def test_empty_hub_diagnoses_nothing(self):
        report = diagnose(TelemetryHub(TelemetryConfig()))
        assert report == Diagnosis(ports=(), flows=(), bursts=())
        assert report.culprit_port is None
        assert report.culprit_flow is None

    def test_deterministic(self):
        assert diagnose(hub_with_incast()) == diagnose(hub_with_incast())
